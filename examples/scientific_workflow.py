#!/usr/bin/env python3
"""Scientific workflow provenance with invalidation (Figure 4 / SciLedger).

Three institutions run a shared analysis pipeline on one consortium
ledger.  Midway, the ingest step turns out to be wrong: the invalidation
cascades to every dependent result (no stale conclusions survive), the
affected tasks re-execute, and the full history — including the mistake —
remains verifiable on-chain.

Run:  python examples/scientific_workflow.py
"""

from repro.systems import SciLedger


def main() -> None:
    ledger = SciLedger(["uni-alpha", "uni-beta", "institute-gamma"],
                       batch_size=8)

    # -- Design: a small branching/merging pipeline -----------------------
    ledger.create_workflow("climate-study", owner="dr-rivera")
    ledger.design_task("climate-study", "ingest", "dr-rivera",
                       inputs=["station-feed"], outputs=["raw"])
    ledger.design_task("climate-study", "clean", "dr-rivera",
                       inputs=["raw"], outputs=["clean"])
    ledger.design_task("climate-study", "trend-model", "dr-okafor",
                       inputs=["clean"], outputs=["trends"])
    ledger.design_task("climate-study", "anomaly-model", "dr-okafor",
                       inputs=["clean"], outputs=["anomalies"])
    ledger.design_task("climate-study", "synthesis", "dr-chen",
                       inputs=["trends", "anomalies"], outputs=["report"])

    # -- Execute ----------------------------------------------------------
    order = ledger.run_workflow("climate-study")
    print(f"executed in dependency order: {' -> '.join(order)}")
    print(f"valid results: {sorted(ledger.valid_results('climate-study'))}")

    # -- Verified provenance queries --------------------------------------
    answer = ledger.provenance_of("report")
    print(f"provenance of 'report': {len(answer.records)} records, "
          f"verified={answer.verified}")
    lineage = ledger.lineage_of("report@1")
    print(f"lineage of report@1 ({len(lineage)} nodes): "
          f"{[n for n in lineage if not n.startswith('station')][:6]}…")

    # -- The Figure-4 feedback loop ----------------------------------------
    print("\ningest was mis-calibrated — invalidating…")
    cascade = ledger.invalidate("ingest", reason="sensor mis-calibration")
    print(f"invalidation cascade: {' -> '.join(cascade)}")
    print(f"valid results now: {ledger.valid_results('climate-study')}")

    ledger.re_execute(cascade)
    print(f"after re-execution: "
          f"{sorted(ledger.valid_results('climate-study'))}")
    print(f"ingest has now run "
          f"{ledger.workflows.tasks['ingest'].execution_count} times")

    # The mistake is part of the permanent record.
    ledger.finalize()
    invalidations = ledger.database.by_operation("invalidate")
    print(f"invalidation events on the ledger: {len(invalidations)} "
          "(history is immutable; corrections are additive)")
    ledger.chain.verify()
    print("consortium chain integrity: OK")


if __name__ == "__main__":
    main()
