#!/usr/bin/env python3
"""Quickstart: audit your cloud files with blockchain provenance.

The RQ1 scenario in its smallest form: a user stores files in a cloud
service; every operation is captured as a provenance record, Merkle-
batched, and anchored on a blockchain; an audit later *proves* the
history is exactly what happened.

Run:  python examples/quickstart.py
"""

from repro import ProvChain


def main() -> None:
    # A ProvChain-style system: hooked cloud store + PoW-sealed chain.
    system = ProvChain(difficulty_bits=6, batch_size=4)

    # Ordinary storage operations — capture is automatic.
    system.create("alice", "report.pdf", b"draft 1")
    system.update("alice", "report.pdf", b"draft 2")
    system.share("alice", "report.pdf", "bob")
    system.read("bob", "report.pdf")

    # Audit: every record comes back with a verified chain anchor.
    answer = system.audit_object("report.pdf")
    print(f"audit verified: {answer.verified}")
    for record, proof in zip(answer.records, answer.proofs):
        print(f"  t={record['timestamp']:>3}  {record['operation']:<7} "
              f"by {record['actor'][:14]:<16} "
              f"anchored@block {proof.block_height}")

    # Privacy: actors are pseudonyms; only the mapping holder can
    # re-identify.
    actor = answer.records[0]["actor"]
    print(f"pseudonym {actor} -> {system.reidentify(actor)}")

    # Tamper evidence: rewriting history breaks verification.
    record_id = answer.records[0]["record_id"]
    system.database.annotate(record_id, operation="never-happened")
    assert not system.audit_object("report.pdf").verified
    print("tampered history detected: audit now fails, as it must")


if __name__ == "__main__":
    main()
