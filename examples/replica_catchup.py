#!/usr/bin/env python3
"""Snapshot sync: a new member org joins a consortium mid-stream.

Walkthrough of the catch-up subsystem (``repro.sync``):

1. a running 2-shard consortium has months of history — provenance
   records Merkle-anchored into shard blocks, every block committed
   under the beacon chain (whose sealing rounds also anchor each
   shard's **state root**);
2. a gateway node starts serving snapshot sync on the ``sync/offer`` /
   ``sync/chunk`` / ``sync/tail`` topics;
3. a new org spawns a shard replica and catches up over the simulated
   network: the state image is chunk-verified against a beacon-anchored
   manifest and installed with **zero transaction re-execution**, the
   block history arrives as raw log frames hash-chained to the
   beacon-verified head — the replica opens with
   ``blocks_replayed_on_open == 0``;
4. the new org audits a record *offline*: a federated proof served by
   its own replica verifies against a single beacon block header;
5. resilience: a mid-sync kill (client dies after two chunks) is
   survived — the restarted client resumes from its staged chunks — and
   a byzantine peer serving corrupt chunks is rejected with a
   structured ``SyncError`` and the client fails over to an honest
   peer, even while the network drops a third of all sync messages.

Run:  python examples/replica_catchup.py
"""

import os
import tempfile

from repro.chain import Transaction, TxKind
from repro.errors import SyncError
from repro.network import ChainNode, LatencyModel, SimNet
from repro.persist.segment import CrashPoint
from repro.sharding import ShardedChain, ShardedQueryEngine
from repro.sync import SnapshotServer

SUBJECT = "acme-pharma/lot-0007"


def populate(sharded: ShardedChain) -> None:
    """The consortium's history before the new org shows up."""
    sharded.ingest_records([
        {"record_id": f"evt-{i:05d}",
         "subject": f"acme-pharma/lot-{i % 12:04d}",
         "actor": ("manufacturer", "carrier", "wholesaler")[i % 3],
         "operation": ("produce", "ship", "receive")[i % 3],
         "timestamp": 1_700_000_000 + i}
        for i in range(180)
    ])
    sharded.flush_anchors()
    report = sharded.submit_many([
        Transaction(f"acme-pharma/plant-{i % 4}", TxKind.DATA,
                    {"key": f"sensor/{i % 64}", "value": 20 + i % 9},
                    timestamp=1_700_000_000 + i).seal()
        for i in range(160)
    ])
    assert not report.rejected
    while sharded.mempool_backlog:
        sharded.seal_round(blocks_per_shard=4)


class CorruptingServer(SnapshotServer):
    """A byzantine peer: every chunk it serves is bit-flipped."""

    def chunk(self, shard_id, height, index):
        resp = super().chunk(shard_id, height, index)
        data = bytearray(resp["data"])
        data[len(data) // 2] ^= 0xFF
        return dict(resp, data=bytes(data))


def main() -> None:
    work_dir = tempfile.mkdtemp(prefix="repro-catchup-")

    # -- 1. the running consortium -------------------------------------
    sharded = ShardedChain(2, max_block_txs=8, anchor_batch_size=32,
                           storage_dir=os.path.join(work_dir, "source"))
    populate(sharded)
    shard0 = sharded.shard(0)
    print("consortium running:")
    for shard in sharded.shards:
        print(f"  shard {shard.shard_id}: height {shard.chain.height}, "
              f"{len(shard.database)} records")
    print(f"  beacon: {sharded.beacon.rounds_anchored} rounds anchored")

    # -- 2. a gateway serves snapshot sync -----------------------------
    net = SimNet(LatencyModel(base=3, jitter=2), seed=2026)
    gateway = ChainNode("consortium-gateway", net)
    gateway.serve_sync(SnapshotServer(sharded, chunk_size=16 * 1024))

    # -- 3. the new org joins mid-stream, surviving a mid-sync kill ----
    replica_dir = os.path.join(work_dir, "neworg-shard0")
    replica = sharded.spawn_replica(0, replica_dir, net,
                                    node_id="neworg-replica",
                                    peers=["consortium-gateway"])
    try:
        replica.catch_up(crash_after_chunks=2)
    except CrashPoint as crash:
        print(f"\nmid-sync kill: {crash}")
    report = replica.catch_up()           # a fresh process resumes
    print("resumed catch-up after the kill:")
    print(f"  resumed={report.resumed}, chunks reused from staging: "
          f"{report.chunks_reused}, downloaded: {report.chunks_downloaded}")
    print(f"  blocks installed: {report.blocks_installed} "
          f"(height {report.height}), records: {report.records_installed}")
    assert replica.chain.head.block_hash == shard0.chain.head.block_hash
    assert replica.chain.blocks_replayed_on_open == 0
    print(f"  replica at source head, blocks replayed on open: "
          f"{replica.chain.blocks_replayed_on_open}  (no genesis replay)")

    # -- 4. the new org audits via the beacon light bundle -------------
    engine = ShardedQueryEngine(sharded)
    history = replica.history(SUBJECT)
    assert history == shard0.query.history(SUBJECT)
    record = history[0]
    proof = replica.federated_proof(record["record_id"])
    beacon_header = sharded.beacon.chain.block_at(proof.beacon_height).header
    assert proof.verify(record, beacon_header)
    src_proof = engine.federated_proof(record["record_id"],
                                       subject=SUBJECT)
    assert src_proof.shard_header.block_hash == \
        proof.shard_header.block_hash
    print(f"\noffline audit of {SUBJECT!r} on the replica:")
    print(f"  {len(history)} events, byte-identical to the source shard")
    print(f"  federated proof verifies against beacon header "
          f"#{proof.beacon_height} alone")

    # -- 5. byzantine peer rejected, honest peer wins, lossy network ---
    byzantine = ChainNode("byzantine-peer", net)
    byzantine.serve_sync(CorruptingServer(sharded, chunk_size=16 * 1024))
    for topic in ("sync/offer", "sync/chunk", "sync/tail"):
        net.inject_faults(topic, drop=0.3)
    replica2 = sharded.spawn_replica(
        0, os.path.join(work_dir, "auditor-shard0"), net,
        node_id="auditor-replica",
        peers=["byzantine-peer", "consortium-gateway"],
    )
    try:
        # Against the byzantine peer alone, catch-up fails closed.
        probe = sharded.spawn_replica(
            0, os.path.join(work_dir, "probe"), net,
            node_id="probe-replica", peers=["byzantine-peer"],
        )
        probe.catch_up(max_retries=20)
    except SyncError as err:
        print(f"\nbyzantine peer rejected: reason={err.reason!r}")
    report2 = replica2.catch_up(max_retries=20)
    print("failover on a lossy network (30% drop on sync topics):")
    print(f"  synced from {report2.peer!r} after "
          f"{report2.retries} retries; "
          f"{net.stats.messages_dropped} messages dropped in total")
    assert replica2.chain.head.block_hash == shard0.chain.head.block_hash
    replica2.chain.verify(deep=True)
    print("  replica verifies end to end (deep) — catch-up never "
          "trusted the serving peer")

    replica.close()
    replica2.close()
    sharded.close()
    print("\ndone.")


if __name__ == "__main__":
    main()
