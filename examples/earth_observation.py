#!/usr/bin/env python3
"""Earth-observation data management with consortium consensus ([87]).

The §4.1 EO scenario: data centers ingest satellite granules, store the
bytes off-chain, register essentials on a Raft-ordered consortium chain,
and track derived products in a DAG so any result traces back to its raw
acquisitions.  A light client then verifies provenance holding nothing
but block headers, and the multi-modal tokenizer gives each granule a
modality-aware identity.

Run:  python examples/earth_observation.py
"""

from repro.chain import LightClient
from repro.errors import DomainError
from repro.provenance import MultiModalTokenizer
from repro.systems import EOChain


def main() -> None:
    eo = EOChain(["esa", "nasa", "jaxa"])

    # -- Ingest raw acquisitions at different centers ---------------------
    tile_a = bytes(i % 251 for i in range(4096))
    tile_b = bytes((i * 7) % 253 for i in range(4096))
    eo.upload("esa", "S2A-tile-31UFU", tile_a)
    eo.upload("nasa", "L9-scene-044-034", tile_b)
    print("ingested 2 raw acquisitions at esa and nasa")

    # -- Derive products (the DAG) -----------------------------------------
    eo.derive("jaxa", "mosaic-EU-2026w23", tile_a[:2048] + tile_b[:2048],
              parents=["S2A-tile-31UFU", "L9-scene-044-034"])
    eo.derive("esa", "ndvi-EU-2026w23", bytes(64),
              parents=["mosaic-EU-2026w23"])
    print("derived mosaic and NDVI products")

    # -- Verified retrieval + traceability ----------------------------------
    fetched = eo.fetch("S2A-tile-31UFU")
    print(f"fetch verified against on-chain hash: {fetched == tile_a}")
    trace = eo.trace("ndvi-EU-2026w23")
    print("traceability walk (product -> raw):")
    for granule in trace:
        arrow = f" <- parents {list(granule.parents)}" if granule.parents \
            else "  (raw acquisition)"
        print(f"  {granule.granule_id:<20} @{granule.center_id}{arrow}")
    print(f"consortium replicas consistent: "
          f"{eo.replicated_consistently()} "
          f"(height {eo.consortium_height})")

    # -- Availability hazard: a center garbage-collects an ancestor --------
    raw = eo.granules["S2A-tile-31UFU"]
    eo.centers["esa"].unpin(raw.cid)
    eo.centers["esa"].collect_garbage()
    try:
        eo.trace("ndvi-EU-2026w23")
    except DomainError as exc:
        print(f"availability audit caught it: {exc}")

    # -- Light-client verification of the consortium chain -----------------
    leader_chain = eo._leader_chain()
    client = LightClient(leader_chain.chain_id)
    client.sync_from(leader_chain)
    tx = leader_chain.blocks[2].transactions[0]
    _, proof = leader_chain.prove_transaction(tx.tx_id)
    print(f"light client ({client.height + 1} headers) verifies a "
          f"registration tx: {client.verify_transaction(tx, proof, 2)}")

    # -- Multi-modal identity (§6.2 future work) ---------------------------
    tokenizer = MultiModalTokenizer()
    token = tokenizer.tokenize("image", tile_a)
    reencoded = tokenizer.tokenize("image", tile_a)   # same pixels
    print(f"granule image token: {token.token_id} "
          f"(re-encode keeps identity: {token.digest == reencoded.digest})")


if __name__ == "__main__":
    main()
