#!/usr/bin/env python3
"""Durable storage: a sharded deployment survives a full restart.

Walkthrough of the persistence layer (``repro.persist``):

1. a 4-shard deployment opens on a *store directory* — each shard gets an
   append-only segment log + sqlite index, the beacon gets its own;
2. a day of traffic: provenance records ingested and Merkle-anchored,
   transactions sealed into per-shard blocks, every block committed to
   the beacon chain; a verified federated query answers with proofs;
3. ``close()`` checkpoints each shard's state image at its head and
   fsyncs the logs;
4. the process "restarts": a brand-new ``ShardedChain`` opens on the same
   directory and resumes from the checkpoints — **zero blocks replayed**,
   no genesis replay — serving byte-identical query results, and the
   pre-restart federated proof still verifies against the restored
   beacon headers;
5. a crash is simulated by truncating a shard's block log mid-frame: on
   reopen the store recovers to the last committed block and the chain
   still verifies end to end.

Run:  python examples/durable_restart.py
"""

import os
import tempfile

from repro.chain import Transaction, TxKind
from repro.persist import DurableStorage
from repro.sharding import ShardedChain, ShardedQueryEngine

N_SHARDS = 4
SUBJECT = "satellite/landsat-9/scene-007"


def populate(sharded: ShardedChain) -> None:
    """One working day: records + transactions across many tenants."""
    for i in range(120):
        sharded.ingest_record({
            "record_id": f"obs-{i:05d}",
            "subject": f"satellite/landsat-9/scene-{i % 10:03d}",
            "actor": f"ground-station-{i % 3}",
            "operation": ("calibrate", "ingest", "publish")[i % 3],
            "timestamp": 1_700_000_000 + i,
        })
    txs = [
        Transaction(f"tenant-{i % 7}", TxKind.DATA,
                    {"key": f"telemetry/{i}", "value": i},
                    timestamp=1_700_000_000 + i).seal()
        for i in range(60)
    ]
    report = sharded.submit_many(txs)
    assert not report.rejected and not report.deferred
    sharded.flush_anchors()
    sharded.seal_until_drained()


def main() -> None:
    store_dir = tempfile.mkdtemp(prefix="repro-durable-")
    print(f"store directory: {store_dir}")

    # -- 1+2: build a deployment and put a day of traffic through it ---
    sharded = ShardedChain(N_SHARDS, storage_dir=store_dir,
                           anchor_batch_size=16, max_block_txs=32)
    populate(sharded)
    engine = ShardedQueryEngine(sharded)
    before = engine.history_verified(SUBJECT)
    record_id = before.records[0]["record_id"]
    proof = engine.federated_proof(record_id)
    print(f"before restart: {sharded.total_txs_committed} txs committed, "
          f"{sharded.rounds_sealed} rounds, history({SUBJECT!r}) = "
          f"{len(before.records)} records, verified={before.verified}")

    # -- 3: clean shutdown — checkpoint state images, fsync, close -----
    heights = [s.chain.height for s in sharded.shards]
    sharded.close()
    print(f"closed. shard heights {heights}, "
          f"beacon height {proof.beacon_height} checkpointed to disk")

    # -- 4: restart — reopen the same directory --------------------------
    reopened = ShardedChain(N_SHARDS, storage_dir=store_dir,
                            anchor_batch_size=16, max_block_txs=32)
    replayed = [s.chain.blocks_replayed_on_open for s in reopened.shards]
    assert replayed == [0] * N_SHARDS, "restart must not replay blocks"
    assert reopened.beacon.chain.blocks_replayed_on_open == 0
    engine2 = ShardedQueryEngine(reopened)
    after = engine2.history_verified(SUBJECT)
    assert after.verified
    assert [r["record_id"] for r in after.records] == \
        [r["record_id"] for r in before.records]
    print(f"after restart:  blocks replayed per shard {replayed} — "
          f"history identical ({len(after.records)} records, verified)")

    # The *pre-restart* federated proof verifies against the restored
    # beacon — the restart preserved every commitment bit-for-bit.
    header = reopened.beacon.chain.block_at(proof.beacon_height).header
    record = reopened.shard_for_subject(SUBJECT).database.get(record_id)
    assert proof.verify(record, header)
    print(f"pre-restart federated proof for {record_id!r} still verifies "
          "against the restored beacon header")

    # Still live: keep ingesting and sealing after the restart.
    reopened.ingest_record({
        "record_id": "obs-post-restart", "subject": SUBJECT,
        "actor": "auditor", "operation": "audit",
        "timestamp": 1_700_100_000,
    })
    reopened.flush_anchors()
    reopened.seal_round()
    reopened.verify_all(deep=True)
    print(f"resumed sealing: now {reopened.rounds_sealed} rounds, "
          "deep verification passes on every shard + beacon")
    reopened.close()

    # -- 5: crash recovery — torn write on the busiest shard's log -----
    busiest = max(range(N_SHARDS),
                  key=lambda i: heights[i])
    shard_dir = os.path.join(store_dir, f"shard-{busiest}")
    seg_dir = os.path.join(shard_dir, "blocks-log")
    tail = sorted(os.listdir(seg_dir))[-1]
    path = os.path.join(seg_dir, tail)
    size = os.path.getsize(path)
    os.truncate(path, size - 11)   # kill -9 mid-append
    print(f"simulated crash: truncated {tail} by 11 bytes "
          f"({size} -> {size - 11})")

    storage = DurableStorage(shard_dir)
    print(f"recovery dropped {storage.recovered_blocks} torn block(s); "
          f"store head is now height {storage.blocks.height()}")
    from repro.chain import Blockchain, ChainParams
    chain = Blockchain(ChainParams(chain_id=f"shard-{busiest}"),
                       store=storage.blocks, snapshot_store=storage.state)
    chain.verify(deep=True)
    print(f"recovered chain verifies end to end at height {chain.height} "
          f"(replayed {chain.blocks_replayed_on_open} post-checkpoint "
          "block(s))")
    storage.close()
    print("done.")


if __name__ == "__main__":
    main()
