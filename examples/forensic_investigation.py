#!/usr/bin/env python3
"""A digital forensics investigation through all five stages (Figure 5).

ForensiBlock-style: stage-scoped access control (an analyst cannot touch
evidence during preservation; a collector cannot during analysis), a
per-case distributed Merkle forest, and a court-ready extraction bundle
whose every record verifies against the agency chain.

Run:  python examples/forensic_investigation.py
"""

from repro.errors import AccessDenied
from repro.systems import ForensiBlock
from repro.systems.forensiblock import ForensiBlock as FB


def main() -> None:
    agency = ForensiBlock(["city-pd", "state-lab"])
    agency.assign_role("det-ramos", "lead_investigator")
    agency.assign_role("tech-liu", "collector")
    agency.assign_role("analyst-voss", "analyst")

    # -- Identification ----------------------------------------------------
    agency.open_case("2026-0611", "det-ramos")
    print("case 2026-0611 opened (identification)")

    # Stage scoping in action: the analyst tries to jump the gun.
    try:
        agency.collect_evidence("2026-0611", "laptop", "analyst-voss",
                                b"...", "image")
    except AccessDenied as exc:
        print(f"stage guard: {exc}")

    # -- Preservation & collection ------------------------------------------
    agency.advance_stage("2026-0611", "det-ramos")
    disk = agency.collect_evidence("2026-0611", "laptop-disk", "tech-liu",
                                   b"dd image of laptop", "image")
    agency.advance_stage("2026-0611", "det-ramos")
    agency.collect_evidence("2026-0611", "chat-logs", "tech-liu",
                            b"exported chats", "text",
                            depends_on=["laptop-disk"])
    print("evidence collected: laptop-disk, chat-logs "
          "(chat-logs depends on laptop-disk)")

    # -- Analysis -------------------------------------------------------------
    agency.advance_stage("2026-0611", "det-ramos")
    agency.access_evidence("2026-0611", "laptop-disk", "analyst-voss")
    agency.access_evidence("2026-0611", "chat-logs", "analyst-voss",
                           purpose="copy")
    custody = agency.cases.chain_of_custody("2026-0611", "laptop-disk")
    print("chain of custody for laptop-disk:")
    for entry in custody:
        print(f"  t={entry.timestamp:>3} {entry.stage.value:<12} "
              f"{entry.action:<8} by {entry.actor}")

    # -- Reporting & closure ----------------------------------------------
    agency.advance_stage("2026-0611", "det-ramos")
    agency.close_case("2026-0611", "det-ramos")

    # -- Court-ready extraction ------------------------------------------
    bundle = agency.extract_case("2026-0611", "det-ramos")
    print(f"\nextraction bundle: {len(bundle['records'])} records, "
          f"{len(bundle['anchor_proofs'])} anchored proofs")
    print(f"case forest root: {bundle['forest_root'].hex()[:24]}…")
    print(f"custody intact:   {bundle['custody_intact']}")
    print(f"external verification: "
          f"{FB.verify_extraction(bundle, agency.anchors)}")

    # A forged bundle fails.
    bundle["records"][0]["operation"] = "redacted"
    print(f"forged bundle verifies:   "
          f"{FB.verify_extraction(bundle, agency.anchors)}")

    # The access audit trail itself is tamper-evident.
    print(f"access decisions recorded: {len(agency.audit)}, "
          f"log intact: {agency.audit.verify()}")


if __name__ == "__main__":
    main()
