#!/usr/bin/env python3
"""Remote capture: an IoT fleet rides out a QueueFull storm.

Walkthrough of the socket front door (``repro.gateway``):

1. a 2-shard deployment starts a ``GatewayServer`` on loopback TCP —
   real sockets, length-prefixed frames over the canonical codec, the
   same ``IngestPipeline`` admission path as in-process submits;
2. a fleet of asyncio sensor clients connects and streams batched
   capture transactions; the ingest queues are kept deliberately tiny,
   so the fleet slams into ``QueueFull`` almost immediately;
3. nothing is dropped: every bounced transaction comes back as a
   structured ``RETRY_AFTER`` frame carrying the server's sealing-pace
   hint, ``submit_with_retry`` sleeps exactly that long and resubmits
   the bounced tail — while repeat offenders get their socket paused
   so the kernel's TCP buffer does the throttling;
4. one blocking (non-asyncio) client shows the same protocol working
   from a plain ``socket`` — no event loop required on the edge;
5. the server drains gracefully: in-flight submits are pumped through
   sealing, new connections are refused, and the books balance —
   every acknowledged reading is committed, byte-for-byte the same
   chain an in-process submitter would have produced.

Run:  python examples/remote_capture.py
"""

import asyncio

from repro.chain import Transaction, TxKind
from repro.gateway import AsyncGatewayClient, GatewayClient, GatewayServer
from repro.ingest import IngestPipeline
from repro.net_retry import RetryPolicy
from repro.obs.runtime import Telemetry
from repro.sharding import ShardedChain

FLEET = 24          # asyncio sensor clients
READINGS = 40       # readings per sensor
BATCH = 10          # readings per frame
QUEUE_DEPTH = 48    # deliberately tiny: provoke the storm


def readings_for(sensor: int) -> list[Transaction]:
    return [
        Transaction(
            f"edge/sensor-{sensor:03d}", TxKind.DATA,
            {"subject": f"plant-{sensor % 5}/line-{i % 3}",
             "key": f"temp/{i}", "value": 20 + (sensor * 7 + i) % 15},
            timestamp=1_700_000_000 + i,
            fee=sensor * READINGS + i,   # unique fees: total order
        ).seal()
        for i in range(READINGS)
    ]


async def sensor_task(host: str, port: int, sensor: int,
                      policy: RetryPolicy) -> tuple[int, int]:
    """One sensor: stream readings in batches, obeying RETRY_AFTER."""
    acked = attempts = 0
    async with await AsyncGatewayClient.connect(
            host, port, tenant=f"plant-{sensor % 5}",
            policy=policy) as client:
        txs = readings_for(sensor)
        for i in range(0, len(txs), BATCH):
            result = await client.submit_with_retry(txs[i:i + BATCH])
            acked += result.queued
            attempts += result.attempts
    return acked, attempts


async def main() -> None:
    telemetry = Telemetry()
    sharded = ShardedChain(n_shards=2, max_block_txs=32,
                           telemetry=telemetry)
    pipeline = IngestPipeline(sharded, queue_capacity=QUEUE_DEPTH,
                              telemetry=telemetry)
    server = GatewayServer(pipeline, auto_seal=True, telemetry=telemetry)
    host, port = await server.start()
    print(f"gateway listening on {host}:{port} "
          f"(queues {QUEUE_DEPTH} deep — storm guaranteed)")

    # -- 1. the asyncio fleet, storming the tiny queues ----------------
    policy = RetryPolicy(max_retries=120, tick_s=0.001,
                         max_backoff_ticks=64)
    results = await asyncio.gather(
        *(sensor_task(host, port, s, policy) for s in range(FLEET)))
    acked = sum(a for a, _ in results)
    attempts = sum(n for _, n in results)
    sent = FLEET * READINGS
    print(f"fleet: {FLEET} sensors x {READINGS} readings = {sent} sent, "
          f"{acked} acked over {attempts} submit attempts")
    assert acked == sent, "a retried fleet never loses a reading"

    # -- 2. the same protocol from a plain blocking socket -------------
    # (in a thread: this example's server shares our event loop, and a
    # real edge device has its own process anyway)
    extra = [
        Transaction("edge/laptop", TxKind.DATA,
                    {"subject": "plant-0/manual", "key": f"note/{i}",
                     "value": i},
                    timestamp=1_700_000_100 + i,
                    fee=10_000 + i).seal()
        for i in range(20)
    ]

    def field_laptop():
        with GatewayClient(host, port, tenant="field-laptop",
                           policy=policy) as edge:
            return edge.submit_with_retry(extra), edge.ops()

    result, ops = await asyncio.get_running_loop().run_in_executor(
        None, field_laptop)
    print(f"blocking client: {result.queued} queued in "
          f"{result.attempts} attempts (no event loop on the edge)")

    # -- 3. ops without HTTP: health + counters over the same socket ---
    counters = ops["snapshot"]["counters"]
    bounced = sum(v for k, v in counters.items()
                  if k.startswith("gateway_txs_rejected_total"))
    pauses = counters.get("gateway_pauses_total", 0)
    print(f"storm debris: {bounced} submissions bounced with RETRY_AFTER, "
          f"{pauses} socket pauses for repeat offenders")
    assert bounced > 0, "the tiny queues must have bounced someone"

    # -- 4. graceful drain: pump in-flight, refuse new, say goodbye ----
    await server.drain()
    committed = sharded.total_txs_committed
    print(f"drained: {committed} committed == {sent + len(extra)} acked; "
          f"beacon height {sharded.beacon.height}, "
          f"{sharded.rounds_sealed} rounds sealed")
    assert committed == sent + len(extra)
    try:
        await AsyncGatewayClient.connect(host, port)
    except OSError:
        print("post-drain connect refused — the front door is closed")


if __name__ == "__main__":
    asyncio.run(main())
