#!/usr/bin/env python3
"""Sharded supply chain: cross-shard custody handoff between two orgs.

Two organizations run their provenance namespaces on *different* shards
of one sharded deployment:

1. the manufacturer captures a pharmaceutical lot's production history
   on its home shard (records Merkle-anchored per batch, every shard
   block committed to the beacon chain);
2. custody moves manufacturer → hospital through the cross-shard
   two-phase-commit coordinator — locks, on-chain lock/commit legs on
   both shards, handoff records materialized only on full commit;
3. a federated query stitches the lot's full story back together across
   both shards, every record verified against its shard anchor *and*
   the beacon;
4. an auditor holding nothing but beacon headers re-verifies one
   handoff record offline via a packaged federated proof;
5. a second handoff times out (the counterparty shard stalls) and is
   aborted-and-unlocked — no phantom custody record survives;
6. a burst of scan events overruns a deliberately tiny ingest queue:
   the overflow comes back as structured retry-after backpressure (per
   shard: queued / deferred / rejected counters), is retried on
   schedule, and every event still commits — nothing is dropped.

Run:  python examples/sharded_supply_chain.py
"""

from repro.chain import Transaction, TxKind
from repro.chain.lightclient import LightClient
from repro.ingest import IngestPipeline
from repro.sharding import (
    CrossShardCoordinator,
    ShardedChain,
    ShardedQueryEngine,
)


def pick_org_names(sharded: ShardedChain) -> tuple[str, str]:
    """Two org namespaces that land on different shards (placement is a
    stable hash, so candidates are probed, not assumed)."""
    maker = "acme-pharma"
    maker_shard = sharded.router.shard_for(maker)
    for candidate in ("metro-hospital", "city-hospital", "bay-clinic",
                      "north-hospital"):
        if sharded.router.shard_for(candidate) != maker_shard:
            return maker, candidate
    raise SystemExit("no distinct-shard candidate (unreachable)")


def main() -> None:
    sharded = ShardedChain(n_shards=4, max_block_txs=32,
                           anchor_batch_size=4)
    coordinator = CrossShardCoordinator(sharded, timeout_rounds=2)
    queries = ShardedQueryEngine(sharded)
    maker, hospital = pick_org_names(sharded)
    lot_at_maker = f"{maker}/lot-7781"
    lot_at_hospital = f"{hospital}/lot-7781"
    print(f"{maker} -> shard {sharded.router.shard_for(maker)}, "
          f"{hospital} -> shard {sharded.router.shard_for(hospital)}")

    # -- 1. Production history on the manufacturer's shard --------------
    for i, operation in enumerate(("create", "qa-sample", "package")):
        sharded.ingest_record({
            "record_id": f"prod-{i}", "subject": lot_at_maker,
            "actor": f"{maker}/line-3", "operation": operation,
            "timestamp": i,
        })
    sharded.flush_anchors()
    sharded.seal_round()
    print(f"production captured: {len(queries.history(lot_at_maker))} "
          f"records, beacon height {sharded.beacon.height}")

    # -- 2. Cross-shard custody handoff (2PC) ---------------------------
    transfer = coordinator.begin(
        lot_at_maker, lot_at_hospital,
        {"carrier": "medlog-dist", "temperature_ok": True},
        actor=f"{maker}/shipping", timestamp=10,
    )
    rounds = 0
    while transfer.state not in ("committed", "aborted"):
        sharded.seal_round()
        rounds += 1
    print(f"handoff {transfer.xid}: {transfer.state} after {rounds} "
          f"rounds ({transfer.outcome.on_chain_txs} on-chain legs)")
    sharded.flush_anchors()
    sharded.seal_round()

    # -- 3. Federated verified trace across both shards -----------------
    answer = queries.trace_verified(lot_at_maker, lot_at_hospital)
    print(f"federated trace: {len(answer.records)} records across shards "
          f"{sorted(set(answer.shard_ids))}, verified={answer.verified}")
    for record, shard_id in zip(answer.records, answer.shard_ids):
        print(f"  t={record['timestamp']:>2}  shard {shard_id}  "
              f"{record['operation']:<12} {record['subject']}")

    # -- 4. Offline audit against beacon headers only -------------------
    auditor = LightClient("beacon")
    auditor.sync_from(sharded.beacon.chain)
    proof = queries.federated_proof(f"{transfer.xid}:in")
    record = next(r for r in queries.history(lot_at_hospital)
                  if r["record_id"] == f"{transfer.xid}:in")
    header = auditor.header_at(proof.beacon_height)
    print(f"offline auditor verifies handoff-in: "
          f"{proof.verify(record, header)}")
    print(f"tampered copy verifies: "
          f"{proof.verify(dict(record, actor='mallory'), header)}")

    # -- 5. A stalled counterparty: abort-and-unlock --------------------
    second = coordinator.begin(
        f"{maker}/lot-7782", f"{hospital}/lot-7782",
        actor=f"{maker}/shipping", timestamp=20,
    )
    stalled = sharded.router.shard_for(hospital)
    live = [i for i in range(sharded.n_shards) if i != stalled]
    while second.state == "preparing":
        sharded.seal_round(shard_ids=live)   # hospital shard is down
    print(f"handoff {second.xid}: {second.state} "
          f"({second.outcome.extra['reason']}); subjects unlocked, no "
          f"phantom records: "
          f"{not any(s.database.contains(f'{second.xid}:in') for s in sharded.shards)}")

    # -- 6. A scan burst meets backpressure ----------------------------
    pipeline = IngestPipeline(sharded, queue_capacity=24,
                              high_watermark=0.75)
    burst = [
        Transaction(
            sender=f"{maker}/scanner-{i % 3}", kind=TxKind.DATA,
            payload={"subject": f"{maker}/lot-{8000 + i}",
                     "key": f"scan-{i}", "value": {"gate": i % 4}},
            timestamp=100 + i,
        ).seal()
        for i in range(60)
    ]
    report = pipeline.submit_many(burst)
    print(f"scan burst of {len(burst)}: queued={report.queued_total}, "
          f"rejected={report.rejected_total} "
          f"(per shard: {report.backpressure_summary()})")
    pending = [tx for tx, _ in report.rejected]
    if pending:
        _, signal = report.rejected[0]
        print(f"  retry-after signal: depth {signal.depth}/"
              f"{signal.capacity}, ~{signal.retry_after_rounds} round(s)")
    while pending or pipeline.backlog or sharded.mempool_backlog:
        pipeline.seal_round()
        pending = [tx for tx, _ in pipeline.submit_many(pending).rejected]
    stats = pipeline.stats
    print(f"burst absorbed: admitted={stats.admitted}, "
          f"re-submitted rejections={stats.rejected}, dropped=0; "
          f"all {len(burst)} scans committed: "
          f"{all(sharded.shard_for_subject(tx.payload['subject']).chain.find_transaction(tx.tx_id) is not None for tx in burst)}")

    sharded.verify_all(deep=True)
    print("all shard chains and the beacon verify intact")


if __name__ == "__main__":
    main()
