#!/usr/bin/env python3
"""Federated learning with blockchain provenance and poisoning defense.

The §4.4 story: participants train collaboratively; some are poisoners.
A BlockDFL-style committee scores every update against a robust median,
reputation accumulates, and the model converges despite a 40% attack —
while the same attack destroys an undefended run.  Every update and
aggregation lands in the provenance store, so "documenting all steps of
training" (Table 2) is a query, not a promise.

Run:  python examples/federated_learning_provenance.py
"""

from repro.analysis.figures import ascii_series
from repro.domains import FLConfig, FederatedLearning
from repro.provenance.capture import CaptureSink
from repro.storage.provdb import ProvenanceDatabase


def run(attacker_fraction: float, defense: str,
        sink: CaptureSink | None = None) -> list[float]:
    config = FLConfig(
        n_participants=10,
        attacker_fraction=attacker_fraction,
        defense=defense,
        seed=42,
    )
    return FederatedLearning(config, sink).run(rounds=25)


def main() -> None:
    print("federated learning: model error vs training rounds\n")
    for fraction in (0.0, 0.3, 0.4):
        defended = run(fraction, "reputation")
        undefended = run(fraction, "none")
        print(f"attackers {int(fraction * 100):>2}%  "
              f"defended   {ascii_series(defended, width=25)}  "
              f"final={defended[-1]:8.4f}")
        print(f"              undefended {ascii_series(undefended, width=25)}  "
              f"final={undefended[-1]:8.4f}")
    print("\n(defense holds below the 50% boundary; undefended runs "
          "diverge as soon as poisoners appear)")

    # Provenance: every training step is recorded and queryable.
    database = ProvenanceDatabase()
    sink = CaptureSink(database)
    fl = FederatedLearning(
        FLConfig(n_participants=6, attacker_fraction=0.3, seed=7), sink
    )
    fl.run(rounds=5)
    updates = database.by_operation("submit_update")
    aggregates = database.by_operation("aggregate")
    print(f"\nprovenance store: {len(updates)} accepted updates, "
          f"{len(aggregates)} aggregations over {fl.round_number} rounds")
    last_model = aggregates[-1]
    print(f"model {last_model['asset_id']} aggregates "
          f"{len(last_model['parent_assets'])} updates "
          f"(round {last_model['training_round']})")

    # Reputation separates honest from malicious.
    honest = [p.reputation for p in fl.participants if p.honest]
    attackers = [p.reputation for p in fl.participants if not p.honest]
    print(f"reputation after 5 rounds: honest min={min(honest):.2f}, "
          f"attacker max={max(attackers):.2f}")


if __name__ == "__main__":
    main()
