#!/usr/bin/env python3
"""Patient-centric EHR sharing with consent, ABE, and HIPAA-style audit.

The §4.3 scenario: patients control who reads their records; payloads are
attribute-encrypted so even consented staff need the right credentials;
break-glass emergency access works but is loudly accounted for; and the
provenance trail carries pseudonyms, never patient identities.

Run:  python examples/healthcare_ehr.py
"""

from repro.clock import SimClock
from repro.domains import EHRSystem
from repro.errors import AccessDenied, ConsentError
from repro.provenance.capture import CaptureSink
from repro.storage.provdb import ProvenanceDatabase


def main() -> None:
    database = ProvenanceDatabase()
    ehr = EHRSystem(CaptureSink(database), SimClock())

    # Staff credentials (ABE attributes).
    ehr.credential_staff("dr-patel", ["doctor", "cardiology"])
    ehr.credential_staff("dr-kim", ["doctor", "radiology"])
    ehr.credential_staff("nurse-ortiz", ["nurse"])

    # The patient consents to their cardiologist only.
    ehr.consents.grant("patient-88", "dr-patel")
    record = ehr.add_record(
        "patient-88", "dr-patel", ["ecg", "note"],
        b"ECG shows sinus rhythm; follow up in 6 months.",
        required_attributes=["doctor", "cardiology"],
    )
    print(f"record {record.ehr_id} written under consent")

    # Consented + right attributes -> read succeeds.
    body = ehr.read_record(record.ehr_id, "dr-patel")
    print(f"dr-patel reads: {body.decode()[:40]}…")

    # No consent -> denied (and audited).
    try:
        ehr.read_record(record.ehr_id, "dr-kim")
    except AccessDenied as exc:
        print(f"dr-kim denied: {exc}")

    # Consent without the needed attributes -> encryption still blocks.
    ehr.consents.grant("patient-88", "nurse-ortiz")
    try:
        ehr.read_record(record.ehr_id, "nurse-ortiz")
    except Exception as exc:
        print(f"nurse-ortiz (consented, wrong attributes) blocked: "
              f"{type(exc).__name__}")

    # Break-glass: the ER doctor reads without consent — fully audited.
    ehr.credential_staff("dr-er", ["doctor", "cardiology"])
    ehr.emergency_access(record.ehr_id, "dr-er", "cardiac arrest, ER")
    print("dr-er used break-glass access (flagged for review)")

    # Patient revokes the cardiologist.
    ehr.consents.revoke("patient-88", "dr-patel")
    try:
        ehr.read_record(record.ehr_id, "dr-patel")
    except AccessDenied:
        print("after revocation, dr-patel can no longer read")

    # HIPAA-style accounting of disclosures.
    print("\naccounting of disclosures for patient-88:")
    for event in ehr.disclosures_for("patient-88"):
        flag = "ALLOW" if event["allowed"] else "DENY "
        print(f"  t={event['timestamp']:>3} {flag} {event['action']:<15} "
              f"{event['provider']:<12} via {event['mechanism']}")
    print(f"\nemergency accesses this period: {len(ehr.emergency_report())}")
    print(f"audit log tamper-evident and intact: {ehr.audit.verify()}")

    # Provenance privacy: records carry pseudonyms only.
    sample = next(database.records())
    print(f"provenance record names patient as: "
          f"{sample['patient_pseudonym']}")
    try:
        ehr.pseudonyms.reidentify(sample["patient_pseudonym"])
        print("(re-identification possible only for the mapping holder)")
    except ConsentError:
        pass


if __name__ == "__main__":
    main()
