#!/usr/bin/env python3
"""Pharmaceutical supply chain with privacy-preserving cold-chain proofs.

The paper's §4.2 scenario end to end:

1. an authorized manufacturer registers a vaccine lot (counterfeiters
   cannot — "illegitimate product registration" is blocked);
2. custody moves maker → distributor → pharmacy via confirmation-based
   two-phase transfers (Cui et al.);
3. the lot carries a PUF-backed device id; a cloned device fails
   authentication (Islam et al.);
4. temperature readings are stored as Pedersen *commitments*; the
   pharmacy pays a bounty for a zero-knowledge proof that the cold chain
   stayed within [2.0, 8.0]°C without ever learning the readings
   (PrivChain).

Run:  python examples/supply_chain_pharma.py
"""

from repro.clock import SimClock
from repro.domains import ColdChainMonitor, PUFDevice, SupplyChainRegistry
from repro.errors import CustodyError, PrivacyError
from repro.provenance.capture import CaptureSink
from repro.systems import PrivChain


def main() -> None:
    clock = SimClock()
    sink = CaptureSink()
    registry = SupplyChainRegistry(
        sink, authorized_manufacturers={"curevax"},
        clock=clock, cold_chain=ColdChainMonitor(20, 80),  # 2.0–8.0 °C
    )

    # -- 1. Registration ------------------------------------------------
    lot = registry.register_product(
        "curevax", "lot-7781", batch_number="B-42",
        product_type="mrna-vaccine", expiration_date=10_000, with_puf=True,
    )
    print(f"registered {lot.product_id} by {lot.manufacturer_id}")
    try:
        registry.register_product("shady-labs", "lot-9999", "B-1",
                                  "mrna-vaccine", 10_000)
    except CustodyError as exc:
        print(f"counterfeit registration blocked: {exc}")

    # -- 2. Two-phase custody transfers ----------------------------------
    registry.initiate_transfer("lot-7781", "curevax", "medlog-dist")
    registry.confirm_transfer("lot-7781", "medlog-dist")
    registry.initiate_transfer("lot-7781", "medlog-dist", "corner-pharmacy")
    registry.confirm_transfer("lot-7781", "corner-pharmacy")
    print(f"travel trace: {' -> '.join(registry.trace('lot-7781'))}")

    # -- 3. PUF authentication -------------------------------------------
    genuine = registry.products["lot-7781"].device
    clone = PUFDevice.manufacture("lot-7781", seed=666)
    print(f"genuine device authenticates: "
          f"{registry.authenticate_device('lot-7781', genuine)}")
    print(f"cloned device authenticates:  "
          f"{registry.authenticate_device('lot-7781', clone)}")

    # -- 4. Committed readings + ZK range proof + bounty -----------------
    privchain = PrivChain({"curevax"}, verifier="fda")
    readings = []
    for temperature in (35, 41, 52, 47):        # tenths of °C: all in band
        readings.append(privchain.commit_reading(
            "curevax", "lot-7781", "reefer-truck", value=temperature
        ))
    print(f"{len(readings)} readings committed on-chain "
          "(values never revealed)")

    total_paid = 0
    for reading in readings:
        bounty_id = privchain.request_range_proof(
            "corner-pharmacy", reading.reading_id, lo=20, hi=80, bounty=5
        )
        proof = privchain.produce_proof(reading.reading_id,
                                        lo=20, hi=80, n_bits=8)
        outcome = privchain.settle(bounty_id, reading.reading_id, proof)
        total_paid += 5 if outcome == "paid" else 0
    print(f"cold-chain proofs settled: {privchain.proofs_verified} valid, "
          f"{total_paid} tokens paid to the data owner")

    # An out-of-band reading cannot be proven in-band.
    hot = privchain.commit_reading("curevax", "lot-7781", "loading-dock",
                                   value=95)
    try:
        privchain.produce_proof(hot.reading_id, lo=20, hi=80, n_bits=8)
    except PrivacyError as exc:
        print(f"excursion cannot be hidden: {exc}")

    privchain.chain.verify()
    print("privchain ledger integrity: OK")


if __name__ == "__main__":
    main()
