#!/usr/bin/env python3
"""Multi-chain collaboration (RQ3): forensics across jurisdictions,
dependency-guided provenance queries, and an atomic asset swap.

Three demonstrations:

1. **ForensiCross** — US and EU agencies, each on their own private
   chain, run a joint case through a unanimous bridge: stages stay
   synchronized, evidence moves with forest proofs, and when one side
   goes offline the whole case freezes (by design).
2. **Vassago** — a provenance query over four shard chains: the
   dependency blockchain makes it touch only the relevant transactions,
   vs. a naive scan of everything.
3. **Atomic swap** — the §2.3 HTLC mechanism: all-or-nothing value
   exchange between two chains, including the abort path.

Run:  python examples/cross_chain_collaboration.py
"""

from repro import Blockchain, ChainParams, SimClock
from repro.crosschain import AtomicSwap, HTLCManager, SwapParty
from repro.errors import BridgeError
from repro.systems import ForensiCross, Vassago


def forensicross_demo() -> None:
    print("=== 1. ForensiCross: joint investigation over a bridge ===")
    joint = ForensiCross(["us", "eu"])
    actors = {"us": "agent-smith", "eu": "kommissar-weber"}
    joint.open_joint_case("INTERPOL-44", actors)
    stage = joint.sync_stage("INTERPOL-44", actors)
    print(f"both orgs advanced to: {stage}")

    joint.orgs["us"].collect_evidence("INTERPOL-44", "server-image",
                                      "agent-smith", b"seized server",
                                      "image")
    shared = joint.share_evidence("INTERPOL-44", "us", "eu",
                                  "server-image", "agent-smith")
    print(f"evidence shared US->EU with forest proof: {shared}")

    joint.block_org("eu")
    try:
        joint.sync_stage("INTERPOL-44", actors)
    except BridgeError as exc:
        print(f"EU offline -> unanimity blocks progression: {exc}")
    joint.unblock_org("eu")
    joint.sync_stage("INTERPOL-44", actors)

    bundle = joint.extract_cross_chain("INTERPOL-44", actors)
    print(f"cross-chain extraction verified on both chains: "
          f"{bundle['all_verified']}\n")


def vassago_demo() -> None:
    print("=== 2. Vassago: dependency-guided cross-chain queries ===")
    system = Vassago([f"org-{c}" for c in "abcd"])
    tip = system.commit_tx("org-a", "curator", {"op": "dataset-publish"})
    for i, org in enumerate("bcdabc"):
        tip = system.commit_tx(f"org-{org}", f"user-{i}",
                               {"op": f"derive-{i}"}, depends_on=[tip])
    hops = system.query_provenance(tip)
    guided = system.last_query_cost
    system.query_provenance_naive(tip)
    naive = system.last_query_cost
    print(f"provenance path: {len(hops)} hops, all proofs valid: "
          f"{all(h.proof_valid for h in hops)}")
    print(f"guided query examined {guided.txs_examined} txs on "
          f"{len(guided.chains_touched)} chains")
    print(f"naive query examined {naive.txs_examined} txs "
          f"({naive.txs_examined // max(guided.txs_examined, 1)}x more)\n")


def atomic_swap_demo() -> None:
    print("=== 3. Atomic swap: all-or-nothing across two chains ===")
    clock = SimClock()
    chain_a = Blockchain(ChainParams(chain_id="tokens-a"))
    chain_b = Blockchain(ChainParams(chain_id="tokens-b"))
    chain_a.state.credit("alice", 100)
    chain_b.state.credit("bob", 100)
    swap = AtomicSwap(
        parties=[SwapParty("alice", 30, HTLCManager(chain_a, clock)),
                 SwapParty("bob", 45, HTLCManager(chain_b, clock))],
        clock=clock,
    )
    outcome = swap.execute()
    print(f"happy path: {outcome.status}; "
          f"bob holds {chain_a.state.balance('bob')} on A, "
          f"alice holds {chain_b.state.balance('alice')} on B")

    # Abort path on fresh chains: only one leg locks, then timeout.
    clock2 = SimClock()
    fresh_a = Blockchain(ChainParams(chain_id="fa"))
    fresh_b = Blockchain(ChainParams(chain_id="fb"))
    fresh_a.state.credit("alice", 100)
    fresh_b.state.credit("bob", 100)
    aborted = AtomicSwap(
        parties=[SwapParty("alice", 30, HTLCManager(fresh_a, clock2)),
                 SwapParty("bob", 45, HTLCManager(fresh_b, clock2))],
        clock=clock2, secret_seed=b"second",
    ).execute_with_abort(locked_legs=1)
    print(f"abort path: {aborted.status}; "
          f"alice restored to {fresh_a.state.balance('alice')}, "
          f"bob untouched at {fresh_b.state.balance('bob')}")


def main() -> None:
    forensicross_demo()
    vassago_demo()
    atomic_swap_demo()


if __name__ == "__main__":
    main()
