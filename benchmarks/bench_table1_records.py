"""TAB1 — provenance record fields per domain (paper Table 1).

Two parts:

1. **Regeneration**: the published table must be derivable from the
   registered schemas, verbatim (asserted).
2. **Throughput**: record build+validate+digest cost per domain — the
   per-record overhead a capture pipeline pays for schema conformance.
"""

import pytest

from repro.analysis.tables import (
    PUBLISHED_TABLE1,
    render_table1,
    table1_data,
    table1_matches_paper,
)
from repro.provenance.records import make_record, record_digest

DOMAIN_FACTORIES = {
    "supply_chain": lambda i: make_record(
        "supply_chain", f"s{i}", subject=f"prod-{i}", actor="maker",
        operation="register", timestamp=i, product_id=f"prod-{i}",
        batch_number="B1", manufacturing_date=i, expiration_date=i + 100,
        travel_trace=["maker"], product_type="device",
        manufacturer_id="maker", access_url="qr://x",
    ),
    "digital_forensics": lambda i: make_record(
        "digital_forensics", f"f{i}", subject=f"ev-{i}", actor="det",
        operation="collect", timestamp=i, case_number="C1",
        stage="collection", case_start=0, file_types=["image"],
        access_patterns=["det:read"], file_dependencies=[],
    ),
    "scientific": lambda i: make_record(
        "scientific", f"c{i}", subject=f"out-{i}", actor="sci",
        operation="execute", timestamp=i, task_id=f"t{i}",
        workflow_id="w", execution_time=3, user_id="sci",
        input_data=["in"], output_data=[f"out-{i}"],
        invalidated_results=[],
    ),
    "healthcare": lambda i: make_record(
        "healthcare", f"h{i}", subject=f"ehr-{i}", actor="dr",
        operation="write", timestamp=i, patient_pseudonym="anon-x",
        ehr_id=f"ehr-{i}", provider_id="dr", consent_ref="c",
        record_types=["note"], regulation="HIPAA",
    ),
    "machine_learning": lambda i: make_record(
        "machine_learning", f"m{i}", subject=f"model-{i}", actor="agg",
        operation="aggregate", timestamp=i, asset_id=f"model-{i}",
        asset_type="model", training_round=i, parent_assets=["u1", "u2"],
        contributor_id="agg",
    ),
}


def test_table1_regenerates_exactly(once, report):
    """The headline TAB1 result: code-derived table == published table."""
    derived = once(table1_data)
    assert table1_matches_paper()
    assert derived == PUBLISHED_TABLE1
    report("TAB1: regenerated from the registered schemas",
           render_table1())


@pytest.mark.parametrize("domain", sorted(DOMAIN_FACTORIES))
def test_record_build_validate_digest(benchmark, domain):
    factory = DOMAIN_FACTORIES[domain]
    counter = iter(range(10_000_000))

    def op():
        record = factory(next(counter))
        return record_digest(record)

    digest = benchmark(op)
    assert len(digest) == 32


def test_shape_validation_rejects_all_field_removals(once):
    """Every required field is load-bearing: removing any one of them
    must fail validation (the schemas are not decorative)."""
    from repro.errors import RecordValidationError
    from repro.provenance.records import DOMAIN_SCHEMAS, validate_record

    def run():
        rejected = 0
        total = 0
        for domain, factory in DOMAIN_FACTORIES.items():
            record = factory(0)
            for field in DOMAIN_SCHEMAS[domain].required_fields():
                broken = {k: v for k, v in record.items() if k != field}
                total += 1
                try:
                    validate_record(broken)
                except RecordValidationError:
                    rejected += 1
        return rejected, total

    rejected, total = once(run)
    assert rejected == total
