"""EVAL-STORE — storage locus ablation (paper §6.1: "storage performance
overhead, overhead for provenance data upload, and validation time").

Ablations:

1. on-chain bytes: inline records vs Merkle-batched anchors, across
   payload sizes (the off-chain + anchor design wins by ~payload/hash);
2. anchor batch size sweep: bigger batches amortize the anchor
   transaction but lengthen proofs (log growth) — the trade-off curve;
3. proof validation time and size;
4. CAS chunk dedup on versioned content (why IPFS-style storage suits
   versioned cloud data).
"""

import time

import pytest

from repro.analysis import Sweep, format_table
from repro.chain import Blockchain, ChainParams
from repro.provenance.anchor import AnchorService
from repro.storage.cas import ContentAddressedStore


def records_with_payload(n, payload_bytes):
    payload = "x" * payload_bytes
    return [{"record_id": f"r{i}", "domain": "generic",
             "subject": f"s{i % 4}", "actor": "u", "operation": "w",
             "timestamp": i, "notes": payload} for i in range(n)]


@pytest.mark.parametrize("mode", ["inline", "batched"])
def test_anchor_throughput(benchmark, mode):
    rows = records_with_payload(64, 256)
    counter = iter(range(100_000))

    def anchor_all():
        chain = Blockchain(ChainParams(chain_id=f"st-{next(counter)}"))
        service = AnchorService(chain, batch_size=16, mode=mode)
        for record in rows:
            service.enqueue(record)
        service.flush()
        return service.bytes_on_chain

    on_chain = benchmark(anchor_all)
    assert on_chain > 0


def test_proof_validation(benchmark):
    chain = Blockchain(ChainParams(chain_id="pv"))
    service = AnchorService(chain, batch_size=256)
    rows = records_with_payload(256, 64)
    for record in rows:
        service.enqueue(record)
    service.flush()
    proof = service.prove("r100")
    ok = benchmark(lambda: service.verify(rows[100], proof))
    assert ok


def test_shape_onchain_bytes_inline_vs_batched(benchmark, report):
    def sweep():
        def measure(payload_bytes):
            out = {}
            for mode in ("inline", "batched"):
                chain = Blockchain(ChainParams(
                    chain_id=f"sw-{mode}-{payload_bytes}"))
                service = AnchorService(chain, batch_size=32, mode=mode)
                for record in records_with_payload(64, payload_bytes):
                    service.enqueue(record)
                service.flush()
                out[f"{mode}_bytes"] = service.bytes_on_chain
            out["saving_x"] = out["inline_bytes"] / out["batched_bytes"]
            return out
        return Sweep("payload_B", [64, 512, 4096], measure).run()

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report("EVAL-STORE: on-chain bytes for 64 records, inline vs anchored",
           result.to_table(["payload_B", "inline_bytes", "batched_bytes",
                            "saving_x"]))
    savings = result.column("saving_x")
    assert all(s > 1 for s in savings)
    assert savings[-1] > 10 * savings[0] / 10  # grows with payload
    assert savings[-1] > savings[0]


def test_shape_batch_size_tradeoff(benchmark, report):
    """Bigger batches: fewer anchor transactions (less chain growth) but
    longer inclusion proofs and longer time-to-anchor."""
    def sweep():
        def measure(batch):
            chain = Blockchain(ChainParams(chain_id=f"bt-{batch}"))
            service = AnchorService(chain, batch_size=batch)
            rows = records_with_payload(256, 64)
            t0 = time.perf_counter()
            for record in rows:
                service.enqueue(record)
            service.flush()
            upload_ms = (time.perf_counter() - t0) * 1e3
            proof = service.prove("r0")
            t0 = time.perf_counter()
            for _ in range(50):
                service.verify(rows[0], proof)
            validate_us = (time.perf_counter() - t0) / 50 * 1e6
            return {"anchor_txs": len(service.receipts),
                    "proof_bytes": proof.size_bytes,
                    "upload_ms": upload_ms,
                    "validate_us": validate_us}
        return Sweep("batch_size", [1, 16, 64, 256], measure).run()

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report("EVAL-STORE: anchor batch-size trade-off (256 records)",
           result.to_table(["batch_size", "anchor_txs", "proof_bytes",
                            "upload_ms", "validate_us"]))
    assert result.is_monotonic("anchor_txs", increasing=False)
    assert result.is_monotonic("proof_bytes")


def test_shape_cas_dedup_on_versions(benchmark, report):
    """Versioned documents share most chunks; the CAS stores deltas."""
    def run():
        base = bytes(range(256)) * 64              # 16 KiB document
        versions = [
            base[:i * 1024] + b"EDIT %04d" % i + base[i * 1024 + 9:]
            for i in range(16)
        ]
        cas = ContentAddressedStore(chunk_size=1024)
        for version in versions:
            cas.put(version)
        logical = sum(len(v) for v in versions)
        return {"logical_bytes": logical,
                "stored_bytes": cas.stored_bytes,
                "dedup_x": logical / cas.stored_bytes,
                "dedup_hits": cas.dedup_hits}

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    report("EVAL-STORE: CAS chunk dedup over 16 document versions",
           format_table([row], ["logical_bytes", "stored_bytes",
                                "dedup_x", "dedup_hits"]))
    assert row["dedup_x"] > 4
