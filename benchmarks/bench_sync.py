#!/usr/bin/env python3
"""Snapshot-sync benchmark: replica catch-up vs genesis replay.

Measures what the ISSUE-5 sync subsystem buys a joining replica:

* **catch-up** — ``spawn_replica`` + ``catch_up`` over ``SimNet``: the
  state image is chunk-verified and installed via ``load_entries``, the
  block history arrives as raw segment-log frames that are header-
  scanned, hash-chained to the beacon-verified head, and group-
  committed **without executing a single transaction**.  The opened
  replica reports ``blocks_replayed_on_open == 0``.
* **genesis replay** — the only pre-sync alternative: stand the replica
  up by re-validating and re-executing every block from genesis into
  its own durable store (plus re-inserting the record database).
  ``catchup_speedup_vs_replay`` is the headline number and the full run
  asserts it >= 5x.
* **transfer throughput** — image bytes and tail blocks per second
  through the chunked protocol (virtual network, so this measures codec
  + verification + install cost, not wire latency).

Results go to ``BENCH_sync.json``.

Run: ``PYTHONPATH=src python benchmarks/bench_sync.py [--smoke]``
(``make bench-sync``).
"""

from __future__ import annotations

import gc
import json
import shutil
import tempfile
import time
from pathlib import Path

from _harness import finish_bench, parse_bench_args
from repro.chain import Blockchain, ChainParams, Transaction, TxKind
from repro.network import ChainNode, LatencyModel, SimNet
from repro.persist import DurableStorage
from repro.sharding import ShardedChain, ShardedQueryEngine
from repro.storage.provdb import ProvenanceDatabase
from repro.sync import SnapshotServer


def build_source(store_dir: str, n_blocks: int, txs_per_block: int,
                 n_records: int) -> tuple[ShardedChain, list[dict]]:
    sharded = ShardedChain(1, max_block_txs=txs_per_block,
                           anchor_batch_size=64, storage_dir=store_dir)
    records = [
        {"record_id": f"r{i:06d}", "subject": f"bench/asset-{i % 97}",
         "actor": f"actor-{i % 13}", "operation": "update", "timestamp": i}
        for i in range(n_records)
    ]
    sharded.ingest_records(records)
    sharded.flush_anchors()
    produced = sharded.shards[0].chain.height
    i = 0
    while produced < n_blocks:
        # Keys cycle over a bounded working set (balances, counters,
        # object heads) — the realistic shape: state size tracks the
        # *key space*, not the transaction count.
        batch = [
            Transaction("bench/acct", TxKind.DATA,
                        {"key": f"k{(i + j) % 4096}", "value": i + j},
                        timestamp=i + j).seal()
            for j in range(txs_per_block * 50)
        ]
        i += len(batch)
        report = sharded.submit_many(batch)
        assert report.rejected_total == 0
        sharded.seal_round(blocks_per_shard=max(
            1, min(50, n_blocks - produced)))
        produced = sharded.shards[0].chain.height
    return sharded, records


def bench_catch_up(sharded: ShardedChain, replica_dir: str) -> dict:
    net = SimNet(LatencyModel(base=1, jitter=0), seed=5)
    gateway = ChainNode("gateway", net)
    server = SnapshotServer(sharded)
    gateway.serve_sync(server)
    gc.collect()
    t0 = time.perf_counter()
    replica = sharded.spawn_replica(0, replica_dir, net,
                                    node_id="bench-replica",
                                    peers=["gateway"])
    report = replica.catch_up(tail_batch=512)
    catchup_s = time.perf_counter() - t0

    source = sharded.shards[0]
    assert replica.chain.head.block_hash == source.chain.head.block_hash
    assert replica.chain.state.state_root() == \
        source.chain.state.state_root()
    assert replica.chain.blocks_replayed_on_open == 0
    head_hash = replica.chain.head.block_hash
    replica.close()

    # Reopen the synced directory cold: still zero replay.
    storage = DurableStorage(replica_dir)
    reopened = Blockchain(
        ChainParams(chain_id=source.chain.chain_id,
                    max_block_txs=source.chain.params.max_block_txs),
        store=storage.blocks, snapshot_store=storage.state,
    )
    assert reopened.blocks_replayed_on_open == 0
    assert reopened.head.block_hash == head_hash
    storage.close()

    return {
        "catchup_s": round(catchup_s, 4),
        "blocks_installed": report.blocks_installed,
        "chunks_downloaded": report.chunks_downloaded,
        "image_bytes": report.bytes_received,
        "transfer_mib_per_s": round(
            report.bytes_received / catchup_s / (1024 * 1024), 2),
        "tail_blocks_per_s": round(report.blocks_installed / catchup_s),
        "requests": report.requests,
    }


def bench_genesis_replay(sharded: ShardedChain, records: list[dict],
                         replay_dir: str) -> dict:
    source = sharded.shards[0]
    gc.collect()
    t0 = time.perf_counter()
    storage = DurableStorage(replay_dir)
    chain = Blockchain(
        ChainParams(chain_id=source.chain.chain_id,
                    max_block_txs=source.chain.params.max_block_txs),
        store=storage.blocks, snapshot_store=storage.state,
    )
    for height in range(1, source.chain.height + 1):
        chain.append_block(source.chain.block_at(height))
    database = ProvenanceDatabase(store=storage.records)
    database.insert_many(records)
    chain.checkpoint()
    replay_s = time.perf_counter() - t0
    assert chain.head.block_hash == source.chain.head.block_hash
    assert chain.state.state_root() == source.chain.state.state_root()
    storage.close()
    return {"genesis_replay_s": round(replay_s, 4)}


def verify_replica_proofs(sharded: ShardedChain, replica_dir: str,
                          records: list[dict]) -> None:
    """A synced replica must serve a verifiable federated proof."""
    net = SimNet(seed=6)
    gateway = ChainNode("gateway2", net)
    gateway.serve_sync(SnapshotServer(sharded))
    replica = sharded.spawn_replica(0, replica_dir, net,
                                    node_id="bench-replica-2",
                                    peers=["gateway2"])
    replica.catch_up(tail_batch=512)
    engine = ShardedQueryEngine(sharded)
    record = next(r for r in records
                  if sharded.shards[0].anchor.is_anchored(r["record_id"]))
    proof = replica.federated_proof(record["record_id"])
    header = sharded.beacon.chain.block_at(proof.beacon_height).header
    assert proof.verify(record, header)
    src_proof = engine.federated_proof(record["record_id"],
                                       subject=record["subject"])
    assert src_proof.shard_header.block_hash == \
        proof.shard_header.block_hash
    replica.close()


def main() -> None:
    args = parse_bench_args(__doc__)

    if args.smoke:
        n_blocks, txs_per_block, n_records = 120, 8, 400
    else:
        n_blocks, txs_per_block, n_records = 2_000, 48, 2_000

    root = tempfile.mkdtemp(prefix="repro-bench-sync-")
    try:
        sharded, records = build_source(
            str(Path(root) / "source"), n_blocks, txs_per_block,
            n_records)
        catchup = bench_catch_up(sharded, str(Path(root) / "replica"))
        replay = bench_genesis_replay(sharded, records,
                                      str(Path(root) / "replay"))
        verify_replica_proofs(sharded, str(Path(root) / "replica2"),
                              records)
        sharded.close()
    finally:
        shutil.rmtree(root, ignore_errors=True)

    speedup = round(replay["genesis_replay_s"] / catchup["catchup_s"], 1)
    result = {
        "mode": "smoke" if args.smoke else "full",
        "model": ("catch-up = beacon-verified manifest + chunked state "
                  "image (load_entries, no execution) + raw-frame block "
                  "tail (header scan + hash chain, group-committed); "
                  "replay = decode + validate + execute + per-block "
                  "durable commit from genesis"),
        "n_blocks": n_blocks,
        "txs_per_block": txs_per_block,
        "n_records": n_records,
        "catch_up": catchup,
        "genesis_replay": replay,
        "catchup_speedup_vs_replay": speedup,
    }
    print(json.dumps(result, indent=2))
    finish_bench(result, "BENCH_sync.json", args, floors=[
        ("snapshot-sync catch-up speedup vs genesis replay",
         speedup, 5.0),
    ])


if __name__ == "__main__":
    main()
