"""EVAL-ACCESS — access control mechanisms (paper §6.1 "Access Control"
and LedgerView).

Measures RBAC vs ABAC decision throughput (with and without auditing),
view lifecycle costs (creation, grant, read for revocable vs
irrevocable), and the audit-trail overhead.

Expected shape: RBAC decisions are cheaper than ABAC rule evaluation;
audit adds a constant per-decision cost; irrevocable views pay their
snapshot at creation and serve reads at stable cost.
"""

import time

import pytest

from repro.access import (
    ABACPolicy,
    AccessAuditLog,
    Attribute,
    RBACPolicy,
    ViewManager,
)
from repro.analysis import format_table
from repro.storage.provdb import ProvenanceDatabase


def build_rbac(audit=None):
    policy = RBACPolicy(audit_log=audit)
    policy.define_role("viewer").allow("docs/*", "read")
    policy.define_role("editor", parents=["viewer"]).allow("docs/*", "write")
    policy.define_role("admin", parents=["editor"]).allow("*", "delete")
    for i in range(1_000):
        policy.assign(f"user-{i}", ("viewer", "editor", "admin")[i % 3])
    return policy


def build_abac(audit=None):
    policy = ABACPolicy(audit_log=audit)
    policy.deny("sealed", Attribute("sealed", on="resource") == True)  # noqa: E712
    policy.permit("by-role", Attribute("role").is_in(("viewer", "editor",
                                                      "admin")),
                  actions=("read",))
    policy.permit("writers", Attribute("role").is_in(("editor", "admin")),
                  actions=("write",))
    policy.permit("admin-all", Attribute("role") == "admin")
    return policy


@pytest.mark.parametrize("mechanism", ["rbac", "abac"])
def test_decision_throughput(benchmark, mechanism):
    if mechanism == "rbac":
        policy = build_rbac()
        decide = lambda i: policy.is_allowed(  # noqa: E731
            f"user-{i % 1000}", "docs/x", "read")
    else:
        policy = build_abac()
        decide = lambda i: policy.is_allowed(  # noqa: E731
            {"role": ("viewer", "editor", "admin")[i % 3]},
            {"id": "docs/x"}, "read")
    counter = iter(range(10_000_000))
    result = benchmark(lambda: decide(next(counter)))
    assert result is True


def test_view_read(benchmark):
    database = ProvenanceDatabase()
    for i in range(2_000):
        database.insert({"record_id": f"r{i}", "subject": f"s{i % 10}",
                         "actor": "a", "operation": "op", "timestamp": i})
    manager = ViewManager(database)
    manager.create_view("v", "owner", lambda r: r["subject"] == "s3")
    manager.grant("v", "owner", "reader")
    rows = benchmark(lambda: manager.read("v", "reader"))
    assert len(rows) == 200


def test_shape_rbac_abac_audit_overhead(benchmark, report):
    def run():
        rows = []
        for mechanism in ("rbac", "abac"):
            for audited in (False, True):
                audit = AccessAuditLog() if audited else None
                if mechanism == "rbac":
                    policy = build_rbac(audit)

                    def decide(i):
                        return policy.is_allowed(f"user-{i % 1000}",
                                                 "docs/x", "read")
                else:
                    policy = build_abac(audit)

                    def decide(i):
                        return policy.is_allowed({"role": "editor",
                                                  "id": f"user-{i}"},
                                                 {"id": "docs/x"}, "read")
                n = 3_000
                t0 = time.perf_counter()
                for i in range(n):
                    decide(i)
                per_decision_us = (time.perf_counter() - t0) / n * 1e6
                rows.append({"mechanism": mechanism,
                             "audited": audited,
                             "us_per_decision": per_decision_us})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("EVAL-ACCESS: decision cost (10k subjects, 3k decisions)",
           format_table(rows, ["mechanism", "audited", "us_per_decision"]))
    cost = {(r["mechanism"], r["audited"]): r["us_per_decision"]
            for r in rows}
    # Audit adds cost for both mechanisms.
    assert cost[("rbac", True)] > cost[("rbac", False)]
    assert cost[("abac", True)] > cost[("abac", False)]


def test_shape_view_lifecycle(benchmark, report):
    """Revocable views serve live data; irrevocable views pay a snapshot
    at creation and keep serving after the source grows."""
    def run():
        database = ProvenanceDatabase()
        for i in range(5_000):
            database.insert({"record_id": f"r{i}",
                             "subject": f"s{i % 10}", "actor": "a",
                             "operation": "op", "timestamp": i})
        manager = ViewManager(database)
        rows = []
        for revocable in (True, False):
            name = "revocable" if revocable else "irrevocable"
            t0 = time.perf_counter()
            manager.create_view(name, "owner",
                                lambda r: r["subject"] == "s1",
                                revocable=revocable)
            create_ms = (time.perf_counter() - t0) * 1e3
            manager.grant(name, "owner", "reader")
            t0 = time.perf_counter()
            for _ in range(20):
                served = manager.read(name, "reader")
            read_ms = (time.perf_counter() - t0) / 20 * 1e3
            rows.append({"view": name, "create_ms": create_ms,
                         "read_ms": read_ms, "rows_served": len(served)})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("EVAL-ACCESS: view lifecycle (5k-record ledger)",
           format_table(rows, ["view", "create_ms", "read_ms",
                               "rows_served"]))
    by_view = {r["view"]: r for r in rows}
    # The snapshot makes irrevocable creation more expensive than
    # revocable creation (which defers the scan to read time).
    assert by_view["irrevocable"]["create_ms"] > \
        by_view["revocable"]["create_ms"]


def test_shape_audit_trail_integrity_cost(benchmark, report):
    def run():
        audit = AccessAuditLog()
        for i in range(5_000):
            audit.record(f"u{i % 50}", f"r{i % 200}", "read", i % 7 != 0,
                         mechanism="bench")
        t0 = time.perf_counter()
        intact = audit.verify()
        verify_ms = (time.perf_counter() - t0) * 1e3
        return {"decisions": len(audit), "verify_ms": verify_ms,
                "intact": intact,
                "denial_rate": round(audit.denial_rate(), 3)}

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    report("EVAL-ACCESS: audit trail replay verification (5k decisions)",
           format_table([row], ["decisions", "verify_ms", "intact",
                                "denial_rate"]))
    assert row["intact"]
