"""Hot-path before/after benchmark: append, verify, and reorg.

Measures the three operations the caching layer targets and records the
speedups to ``BENCH_perf_hotpath.json``:

* **append** — build + append blocks with hash caching disabled (the
  seed's recompute-per-read behavior, toggled via
  ``repro.chain.transaction.HASH_CACHING_ENABLED``) vs enabled;
* **verify** — full-chain audit with ``deep=True`` (recompute every tx
  and header hash from raw bytes — the seed's cost) vs the default
  auditor path (rebuilds Merkle trees from cached leaf hashes);
* **reorg** — a short fork atop a long chain, on a replay-only chain
  (``reorg_journal_depth=0``, the seed's replay-from-genesis) vs the
  journaled O(delta) rollback.

Run: ``PYTHONPATH=src python benchmarks/bench_perf_hotpath.py [--smoke]``
(``make bench-hotpath`` / ``make bench-smoke``).
"""

from __future__ import annotations

import time

from _harness import finish_bench, parse_bench_args
from repro.chain import Block, Blockchain, ChainParams, Transaction, TxKind
from repro.chain import transaction as tx_mod

# A moderately sized payload: representative of a provenance record
# anchor, and large enough that canonical encoding dominates the naive
# hash cost the way it does in the real ingestion paths.
def _payload(i: int) -> dict:
    return {
        "record_id": f"rec-{i:08d}",
        "subject": f"artifact-{i % 97}",
        "actor": f"user-{i % 13}",
        "operation": "derive" if i % 3 else "create",
        "inputs": [f"rec-{j:08d}" for j in range(max(0, i - 2), i)],
        "attrs": {"size": i * 17 % 4096, "tool": "pipeline/v2",
                  "checksum": f"{i:064x}"},
        "timestamp": i,
    }


def _make_txs(n_blocks: int, txs_per_block: int) -> list[list[Transaction]]:
    batches = []
    for b in range(n_blocks):
        batches.append([
            Transaction(sender=f"acct-{(b + j) % 29}", kind=TxKind.DATA,
                        payload=_payload(b * txs_per_block + j), timestamp=b)
            for j in range(txs_per_block)
        ])
    return batches


def _build_chain(batches, journal_depth: int) -> Blockchain:
    chain = Blockchain(ChainParams(chain_id="bench-hotpath",
                                   reorg_journal_depth=journal_depth))
    for i, txs in enumerate(batches):
        chain.append_block(chain.build_block(txs, timestamp=i))
    return chain


def _fork_suffix(chain: Blockchain, fork_height: int,
                 length: int) -> list[Block]:
    suffix = []
    prev = chain.blocks[fork_height].block_hash
    for i in range(length):
        height = fork_height + 1 + i
        txs = [Transaction(sender="forker", kind=TxKind.DATA,
                           payload=_payload(10_000_000 + height * 10 + j),
                           timestamp=height)
               for j in range(len(chain.blocks[1].transactions))]
        block = Block(height, prev, txs, timestamp=height, proposer="forker")
        suffix.append(block)
        prev = block.block_hash
    return suffix


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def bench_append(batches) -> dict:
    tx_mod.HASH_CACHING_ENABLED = False
    try:
        before = _timed(lambda: _build_chain(batches, journal_depth=0))
    finally:
        tx_mod.HASH_CACHING_ENABLED = True
    # Fresh transactions so the "after" run pays its own (one-time)
    # hash costs rather than reusing digests cached by the baseline.
    fresh = [
        [Transaction(sender=tx.sender, kind=tx.kind,
                     payload=dict(tx.payload), timestamp=tx.timestamp)
         for tx in batch]
        for batch in batches
    ]
    after = _timed(lambda: _build_chain(fresh, journal_depth=64))
    return {"before_s": before, "after_s": after,
            "speedup": before / after}


def bench_verify(chain: Blockchain) -> dict:
    before = _timed(lambda: chain.verify(deep=True))
    after = _timed(chain.verify)
    return {"before_s": before, "after_s": after,
            "speedup": before / after}


def bench_reorg(batches, fork_depth: int) -> dict:
    replay_chain = _build_chain(batches, journal_depth=0)
    journal_chain = _build_chain(batches, journal_depth=64)
    fork_height = replay_chain.height - fork_depth
    replay_suffix = _fork_suffix(replay_chain, fork_height, fork_depth + 1)
    journal_suffix = _fork_suffix(journal_chain, fork_height, fork_depth + 1)
    before = _timed(lambda: replay_chain.reorg_to(replay_suffix, fork_height))
    after = _timed(lambda: journal_chain.reorg_to(journal_suffix, fork_height))
    # Both strategies must land on the same chain and the same state.
    assert replay_chain.head.block_hash == journal_chain.head.block_hash
    assert (replay_chain.state.state_root()
            == journal_chain.state.state_root())
    return {"before_s": before, "after_s": after,
            "speedup": before / after}


def main() -> None:
    args = parse_bench_args(__doc__)

    if args.smoke:
        n_blocks, txs_per_block, fork_depth = 200, 4, 5
    else:
        n_blocks, txs_per_block, fork_depth = 2000, 8, 10

    batches = _make_txs(n_blocks, txs_per_block)
    append = bench_append(batches)
    chain = _build_chain(_make_txs(n_blocks, txs_per_block), 64)
    verify = bench_verify(chain)
    reorg = bench_reorg(_make_txs(n_blocks, txs_per_block), fork_depth)

    results = {
        "mode": "smoke" if args.smoke else "full",
        "config": {"n_blocks": n_blocks, "txs_per_block": txs_per_block,
                   "fork_depth": fork_depth},
        "append": append,
        "verify": verify,
        "reorg": reorg,
    }
    print(f"hot-path bench ({results['mode']}): "
          f"{n_blocks} blocks x {txs_per_block} txs, "
          f"fork depth {fork_depth}")
    for name in ("append", "verify", "reorg"):
        r = results[name]
        print(f"  {name:>7}: {r['before_s']*1e3:9.1f} ms -> "
              f"{r['after_s']*1e3:8.1f} ms   ({r['speedup']:6.1f}x)")

    # Acceptance floors (ISSUE 1): verify >= 5x, reorg >= 10x.
    finish_bench(results, "BENCH_perf_hotpath.json", args, floors=[
        ("verify speedup", verify["speedup"], 5.0),
        ("reorg speedup", reorg["speedup"], 10.0),
    ])


if __name__ == "__main__":
    main()
