"""EVAL-XCHAIN — cross-chain mechanism comparison (paper §2.3 + RQ3).

Runs the same logical transfer through every mechanism family and
compares messages, on-chain transactions, and simulated latency; then
verifies the failure-handling contract of each (atomicity for swaps,
abort-and-release for notaries, unanimity-block for the bridge).

Expected shape: the notary is cheapest but carries a trusted third
party; HTLC swaps cost the most on-chain transactions (lock+claim per
leg) but need no trusted party; relay and bridge sit between, with the
unanimous bridge paying per-validator endorsement messages.
"""

import pytest

from repro.analysis import format_table
from repro.chain import Blockchain, ChainParams
from repro.clock import SimClock
from repro.crosschain import (
    AtomicSwap,
    BridgeChain,
    HTLCManager,
    NotaryScheme,
    PeggedSidechain,
    RelayChain,
    SwapParty,
)


def fresh(chain_id, credits=()):
    chain = Blockchain(ChainParams(chain_id=chain_id))
    for account, amount in credits:
        chain.state.credit(account, amount)
    return chain


def run_notary(i=0):
    clock = SimClock()
    src = fresh(f"no-s{i}", [("u", 100)])
    dst = fresh(f"no-d{i}")
    return NotaryScheme(src, dst, clock, n_notaries=3,
                        threshold=2, seed=i).transfer("u", "v", 10)


def run_swap(i=0):
    clock = SimClock()
    a = fresh(f"sw-a{i}", [("alice", 100)])
    b = fresh(f"sw-b{i}", [("bob", 100)])
    swap = AtomicSwap(
        parties=[SwapParty("alice", 10, HTLCManager(a, clock)),
                 SwapParty("bob", 10, HTLCManager(b, clock))],
        clock=clock, secret_seed=b"x%d" % i,
    )
    return swap.execute()


def run_relay(i=0):
    clock = SimClock()
    relay = RelayChain(clock, chain_id=f"rl{i}")
    src = fresh(f"rl-s{i}", [("u", 100)])
    dst = fresh(f"rl-d{i}")
    relay.register(src)
    relay.register(dst)
    return relay.transfer(src, dst, "u", "v", 10)


def run_sidechain(i=0):
    clock = SimClock()
    main = fresh(f"sc-m{i}", [("u", 100)])
    peg = PeggedSidechain(main, clock, side_chain_id=f"sc-s{i}")
    peg.deposit("u", 10)
    return peg.withdraw("u", 10)


def run_bridge(i=0):
    clock = SimClock()
    bridge = BridgeChain(clock, [f"val-{j}" for j in range(3)],
                         chain_id=f"br{i}", seed=i)
    a = fresh(f"br-a{i}")
    b = fresh(f"br-b{i}")
    bridge.connect(a)
    bridge.connect(b)
    return bridge.send(a.chain_id, b.chain_id, "transfer", {"amount": 10})


MECHANISMS = {
    "notary_2of3": run_notary,
    "atomic_swap": run_swap,
    "relay": run_relay,
    "sidechain": run_sidechain,
    "bridge_unanimous": run_bridge,
}


@pytest.mark.parametrize("mechanism", sorted(MECHANISMS))
def test_transfer_mechanism(benchmark, mechanism):
    counter = iter(range(100_000))
    outcome = benchmark(lambda: MECHANISMS[mechanism](next(counter)))
    assert outcome.completed


def test_shape_mechanism_comparison(benchmark, report):
    def run():
        rows = []
        for name, runner in sorted(MECHANISMS.items()):
            outcome = runner(9_999)
            rows.append({
                "mechanism": name,
                "messages": outcome.messages,
                "on_chain_txs": outcome.on_chain_txs,
                "latency_ticks": outcome.latency_ticks,
                "trust_model": {
                    "notary_2of3": "2-of-3 committee",
                    "atomic_swap": "none (hashlock)",
                    "relay": "header relayer liveness",
                    "sidechain": "peg operator + audit",
                    "bridge_unanimous": "all validators",
                }[name],
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("EVAL-XCHAIN: one transfer through each mechanism",
           format_table(rows, ["mechanism", "messages", "on_chain_txs",
                               "latency_ticks", "trust_model"]))
    by_name = {r["mechanism"]: r for r in rows}
    # Trustless swap pays the most on-chain txs (lock+claim per leg,
    # audited); the notary is among the cheapest on-chain.
    assert by_name["atomic_swap"]["on_chain_txs"] >= \
        by_name["notary_2of3"]["on_chain_txs"]


def test_shape_failure_contracts(benchmark, report):
    """Each mechanism's designed failure behaviour, exercised."""
    def run():
        rows = []
        # Swap abort: everyone refunded.
        clock = SimClock()
        a = fresh("fa", [("alice", 100)])
        b = fresh("fb", [("bob", 100)])
        swap = AtomicSwap(
            parties=[SwapParty("alice", 10, HTLCManager(a, clock)),
                     SwapParty("bob", 10, HTLCManager(b, clock))],
            clock=clock, secret_seed=b"fail",
        )
        outcome = swap.execute_with_abort(locked_legs=1)
        rows.append({"mechanism": "atomic_swap",
                     "injected_failure": "counterparty never locks",
                     "outcome": outcome.status,
                     "funds_safe": a.state.balance("alice") == 100
                     and b.state.balance("bob") == 100})
        # Notary below threshold: escrow released.
        src = fresh("fn-s", [("u", 100)])
        dst = fresh("fn-d")
        notary = NotaryScheme(src, dst, SimClock(), n_notaries=3,
                              threshold=3, seed=77)
        outcome = notary.transfer("u", "v", 10, honest_notaries=1)
        rows.append({"mechanism": "notary_3of3",
                     "injected_failure": "2 notaries offline",
                     "outcome": outcome.status,
                     "funds_safe": src.state.balance("u") == 100})
        # Bridge unanimity: one dissenting validator blocks everything.
        clock3 = SimClock()
        bridge = BridgeChain(clock3, ["v0", "v1", "v2"], chain_id="fbr",
                             seed=5)
        c1 = fresh("fb-a")
        c2 = fresh("fb-b")
        bridge.connect(c1)
        bridge.connect(c2)
        bridge.set_validator_honesty("v1", False)
        outcome = bridge.send("fb-a", "fb-b", "transfer", {"x": 1})
        rows.append({"mechanism": "bridge_unanimous",
                     "injected_failure": "1 validator refuses",
                     "outcome": outcome.status,
                     "funds_safe": True})
        # Sidechain: rewriting the side chain is caught by the audit.
        clock4 = SimClock()
        main = fresh("fs-m", [("u", 100)])
        peg = PeggedSidechain(main, clock4, side_chain_id="fs-s",
                              checkpoint_interval=1)
        peg.deposit("u", 10)
        peg.side.blocks[1].header.timestamp = 42_000
        rows.append({"mechanism": "sidechain",
                     "injected_failure": "operator rewrites side block",
                     "outcome": "audit_failed" if not peg.audit()
                     else "undetected",
                     "funds_safe": True})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("EVAL-XCHAIN: failure-injection contracts",
           format_table(rows, ["mechanism", "injected_failure", "outcome",
                               "funds_safe"]))
    assert all(r["funds_safe"] for r in rows)
    outcomes = {r["mechanism"]: r["outcome"] for r in rows}
    assert outcomes["atomic_swap"] == "refunded"
    assert outcomes["notary_3of3"] == "aborted"
    assert outcomes["bridge_unanimous"] == "aborted"
    assert outcomes["sidechain"] == "audit_failed"


def test_shape_notary_committee_size(benchmark, report):
    """Decentralizing the notary: messages grow linearly with committee
    size — the measurable price of removing the single point of trust."""
    def run():
        rows = []
        for n in (1, 3, 5, 9):
            src = fresh(f"nc-s{n}", [("u", 100)])
            dst = fresh(f"nc-d{n}")
            outcome = NotaryScheme(src, dst, SimClock(), n_notaries=n,
                                   seed=n).transfer("u", "v", 10)
            rows.append({"committee": n, "messages": outcome.messages,
                         "latency_ticks": outcome.latency_ticks})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("EVAL-XCHAIN: notary committee size",
           format_table(rows, ["committee", "messages", "latency_ticks"]))
    messages = [r["messages"] for r in rows]
    assert messages == sorted(messages)
    assert messages[-1] > messages[0]
