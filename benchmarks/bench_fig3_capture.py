"""FIG3 — the four provenance-capture pathways (paper Figure 3).

Measures per-operation capture cost and metadata hop count for:
user-direct, store-mediated, third-party centralized, third-party
decentralized (quorum), and multi-source capture.

Expected shape: direct is cheapest in hops; third-party adds
authentication work that grows with the authenticator count; multi-source
pays per-fragment overhead.  Store-mediated matches direct in hops but
moves trust from the user to the infrastructure (qualitative).
"""

import time

import pytest

from repro.analysis import format_table
from repro.clock import SimClock
from repro.provenance.capture import (
    CaptureSink,
    DirectCapture,
    MultiSourceCapture,
    StoreMediatedCapture,
    ThirdPartyCapture,
)
from repro.storage.cloudstore import CloudObjectStore
from repro.storage.provdb import ProvenanceDatabase


def record(i, prefix="r"):
    return {"record_id": f"{prefix}{i}", "domain": "generic",
            "subject": f"obj-{i % 5}", "actor": "user",
            "operation": "write", "timestamp": i}


@pytest.mark.parametrize("pathway", ["direct", "store", "tp1", "tp5", "multi"])
def test_capture_pathway_cost(benchmark, pathway):
    sink = CaptureSink(ProvenanceDatabase())
    counter = iter(range(10_000_000))

    if pathway == "direct":
        capture = DirectCapture(sink)

        def op():
            capture.record_operation(record(next(counter)))
    elif pathway == "store":
        store = CloudObjectStore(SimClock())
        StoreMediatedCapture(sink, store)
        store.create("user", "obj", b"seed")

        def op():
            store.update("user", "obj", b"content")
    elif pathway in ("tp1", "tp5"):
        n = 1 if pathway == "tp1" else 5
        capture = ThirdPartyCapture(sink, [lambda a, r: True] * n, quorum=n)

        def op():
            capture.request("user", "obj", record(next(counter)))
    else:
        capture = MultiSourceCapture(sink, required_sources=2)

        def op():
            i = next(counter)
            capture.report("s1", f"m{i}", {"subject": "x", "timestamp": i})
            capture.report("s2", f"m{i}", {"actor": "user",
                                           "domain": "generic",
                                           "operation": "write"})

    benchmark(op)


def test_shape_hops_and_auth_checks(once, report):
    """Hop/auth accounting per pathway for an identical 200-op workload."""
    n_ops = 200

    def run():
        rows = []
        sink = CaptureSink(ProvenanceDatabase())
        direct = DirectCapture(sink)
        for i in range(n_ops):
            direct.record_operation(record(i, "d"))
        rows.append({"pathway": "direct", **_metrics(direct)})

        sink2 = CaptureSink(ProvenanceDatabase())
        store = CloudObjectStore(SimClock())
        mediated = StoreMediatedCapture(sink2, store)
        store.create("user", "obj", b"x")
        for i in range(n_ops - 1):
            store.update("user", "obj", b"y")
        rows.append({"pathway": "store_mediated", **_metrics(mediated)})

        for n_auth in (1, 3, 5):
            sink3 = CaptureSink(ProvenanceDatabase())
            third = ThirdPartyCapture(sink3, [lambda a, r: True] * n_auth,
                                      quorum=n_auth)
            for i in range(n_ops):
                third.request("user", "obj", record(i, f"t{n_auth}-"))
            rows.append({"pathway": f"third_party_{n_auth}",
                         **_metrics(third)})

        sink4 = CaptureSink(ProvenanceDatabase())
        multi = MultiSourceCapture(sink4, required_sources=2)
        for i in range(n_ops):
            multi.report("s1", f"m{i}", {"subject": "x"})
            multi.report("s2", f"m{i}", {"actor": "user"})
        rows.append({"pathway": "multi_source_2", **_metrics(multi)})
        return rows

    rows = once(run)

    report("FIG3: capture pathway accounting (200 operations)",
           format_table(rows, ["pathway", "messages", "auth_checks",
                               "records"]))

    by_name = {r["pathway"]: r for r in rows}
    # Shape: direct has the fewest hops; third-party hop count grows with
    # the authenticator pool; multi-source pays per-fragment messages.
    assert by_name["direct"]["messages"] <= \
        by_name["third_party_1"]["messages"]
    assert by_name["third_party_1"]["messages"] < \
        by_name["third_party_3"]["messages"] < \
        by_name["third_party_5"]["messages"]
    assert by_name["multi_source_2"]["messages"] == 2 * n_ops
    assert all(r["records"] == n_ops for r in rows)


def _metrics(capture):
    return {
        "messages": capture.metrics.messages,
        "auth_checks": capture.metrics.auth_checks,
        "records": capture.metrics.records_delivered,
    }
