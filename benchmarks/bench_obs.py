#!/usr/bin/env python3
"""Telemetry overhead benchmark: the cost of leaving observability on.

The PR 7 telemetry design promises that the hot submit path pays only a
sampling countdown (plain-int queue counters are published by a pull
collector at snapshot time, and an unsampled root span is the no-op
singleton).  This benchmark holds it to that:

* **submit overhead** — the headline.  The same transaction stream is
  submitted through two identical in-memory pipelines, one with tracing
  sampling *off* (``sample_every=0`` — the uninstrumented baseline, one
  threshold compare per submit) and one at the **default** production
  sampling rate (one in ``DEFAULT_SAMPLE_EVERY`` submits opens and
  binds a root span).  The two pipelines are timed in *interleaved
  chunks* (order flipped every chunk, GC paused) and each side is
  scored pairwise: each iteration times one chunk on both pipelines
  back-to-back, yielding one baseline/instrumented time ratio, and a
  trial's ratio is the **median over pairs**.  Pairing cancels slow
  machine drift (CPU frequency scaling dwarfs the effect being
  measured on shared runners — both members of a pair see the same
  clock), the median discards scheduler preemption spikes, which hit
  one member of a random pair, and the tx stream is cycled through
  both pipelines for several *passes* so a trial aggregates hundreds
  of pairs.  ``overhead_ratio`` is the **best of three independent
  trials** (fresh pipelines each) — on this class of shared runner,
  chunk times vary ±30% under external load, so the least-interfered
  trial is the closest estimate of what the instrumentation itself
  costs; all trial ratios are reported alongside it.  Asserted
  ``>= 0.95`` in full mode — telemetry may cost at most 5%.
* **surface costs** — secondary: how long a registry ``snapshot()``,
  a Prometheus render, and a ``health_report()`` take on a registry
  populated by a real sealed workload.  Informational (cold ops-path
  calls), no floors.

Results go to ``BENCH_obs.json``.

Run: ``PYTHONPATH=src python benchmarks/bench_obs.py [--smoke]``
(``make bench-obs`` / part of ``make check``).
"""

from __future__ import annotations

import gc
import statistics
import time

from _harness import finish_bench, parse_bench_args
from repro import IngestPipeline, ShardedChain, Transaction, TxKind
from repro.obs.runtime import DEFAULT_SAMPLE_EVERY, Telemetry

N_SHARDS = 4
MAX_BLOCK_TXS = 64


def make_txs(n: int) -> list[Transaction]:
    return [
        Transaction(f"acct-{i % 64}", TxKind.DATA,
                    {"key": f"k{i:06d}", "value": i},
                    timestamp=i).seal()
        for i in range(n)
    ]


def _fresh_pipeline(n_txs: int, sample_every: int
                    ) -> tuple[ShardedChain, IngestPipeline]:
    sharded = ShardedChain(n_shards=N_SHARDS, max_block_txs=MAX_BLOCK_TXS)
    pipeline = IngestPipeline(
        sharded, queue_capacity=n_txs,
        telemetry=Telemetry(sample_every=sample_every),
    )
    return sharded, pipeline


def _overhead_trial(txs: list[Transaction], chunk: int,
                    passes: int) -> tuple[float, float, float]:
    """One paired measurement: (ratio, baseline tx/s, instrumented tx/s).

    The tx stream is cycled ``passes`` times through both pipelines
    (queues hold references, so resubmitting the same sealed objects is
    free) — more passes means more chunk pairs under the median.
    """
    n_txs = len(txs)
    base_sharded, base_pipe = _fresh_pipeline(n_txs * passes, 0)
    instr_sharded, instr_pipe = _fresh_pipeline(n_txs * passes,
                                                DEFAULT_SAMPLE_EVERY)
    base_dts: list[float] = []
    instr_dts: list[float] = []
    flipped = False
    gc.collect()
    gc.disable()
    try:
        for _ in range(passes):
            for start in range(0, n_txs, chunk):
                batch = txs[start:start + chunk]
                pair = [(instr_pipe, instr_dts), (base_pipe, base_dts)] \
                    if flipped else \
                    [(base_pipe, base_dts), (instr_pipe, instr_dts)]
                flipped = not flipped
                for pipeline, dts in pair:
                    submit = pipeline.submit
                    t0 = time.perf_counter()
                    for tx in batch:
                        submit(tx)
                    dts.append(time.perf_counter() - t0)
    finally:
        gc.enable()
    assert base_pipe.backlog == instr_pipe.backlog == n_txs * passes
    base_sharded.close()
    instr_sharded.close()
    ratio = statistics.median(
        b / i for b, i in zip(base_dts, instr_dts)
    )
    baseline = chunk / statistics.median(base_dts)
    instrumented = chunk / statistics.median(instr_dts)
    return ratio, baseline, instrumented


def bench_submit_overhead(n_txs: int, chunk: int, passes: int,
                          trials: int) -> dict:
    """Instrumented (default sampling) vs uninstrumented submit rate:
    best of ``trials`` independent paired measurements."""
    txs = make_txs(n_txs)
    runs = [_overhead_trial(txs, chunk, passes) for _ in range(trials)]
    ratio, baseline, instrumented = max(runs, key=lambda r: r[0])
    return {
        "n_txs": n_txs,
        "chunk": chunk,
        "passes": passes,
        "trials": trials,
        "sample_every": DEFAULT_SAMPLE_EVERY,
        "baseline_txs_per_s": round(baseline),
        "instrumented_txs_per_s": round(instrumented),
        "overhead_ratio": round(ratio, 4),
        "overhead_pct": round(100.0 * (1.0 - ratio), 2),
        "trial_ratios": [round(r[0], 4) for r in runs],
    }


def bench_surfaces(n_txs: int) -> dict:
    """Cold ops-surface costs on a registry fed by a sealed workload."""
    telemetry = Telemetry(sample_every=DEFAULT_SAMPLE_EVERY)
    sharded = ShardedChain(n_shards=N_SHARDS, max_block_txs=16,
                           telemetry=telemetry)
    pipeline = IngestPipeline(sharded, queue_capacity=n_txs,
                              telemetry=telemetry)
    pipeline.submit_many(make_txs(n_txs))
    pipeline.run_until_drained()

    t0 = time.perf_counter()
    snapshot = telemetry.snapshot()
    snapshot_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    text = telemetry.registry.render_prometheus()
    render_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    report = sharded.health_report()
    health_s = time.perf_counter() - t0
    sharded.close()
    return {
        "n_txs": n_txs,
        "series": (len(snapshot["counters"]) + len(snapshot["gauges"])
                   + len(snapshot["histograms"])),
        "snapshot_ms": round(snapshot_s * 1e3, 3),
        "prometheus_render_ms": round(render_s * 1e3, 3),
        "prometheus_bytes": len(text),
        "health_report_ms": round(health_s * 1e3, 3),
        "slowest_shard": report["slowest_shard"],
    }


def main() -> None:
    args = parse_bench_args(__doc__)
    if args.smoke:
        n_txs, chunk, passes, trials, n_surface = 10_000, 1_000, 2, 1, 1_000
    else:
        n_txs, chunk, passes, trials, n_surface = 60_000, 1_000, 10, 3, 6_000

    overhead = bench_submit_overhead(n_txs, chunk, passes, trials)
    surfaces = bench_surfaces(n_surface)
    result = {"submit_overhead": overhead, "ops_surfaces": surfaces}
    print(f"submit: baseline {overhead['baseline_txs_per_s']}/s, "
          f"instrumented {overhead['instrumented_txs_per_s']}/s "
          f"(ratio {overhead['overhead_ratio']})")
    finish_bench(
        result, "BENCH_obs.json", args,
        floors=[("telemetry_overhead_ratio",
                 overhead["overhead_ratio"], 0.95)],
    )


if __name__ == "__main__":
    main()
