"""FIG4 — scientific workflow lifecycle (paper Figure 4).

Measures the lifecycle loop (design → execute → record → invalidate →
re-execute) and the cost of invalidation cascades as the dependency DAG
deepens and widens.

Expected shape: cascade size (and cost) grows with the reachable
downstream subgraph; re-execution restores exactly the invalidated set.
"""

import time

import pytest

from repro.analysis import Sweep, format_table
from repro.clock import SimClock
from repro.domains import TaskStatus, WorkflowManager
from repro.provenance.capture import CaptureSink
from repro.storage.provdb import ProvenanceDatabase
from repro.workloads import WorkflowShape


def build_manager(n_tasks, fanout, seed=0):
    manager = WorkflowManager(CaptureSink(ProvenanceDatabase()), SimClock())
    manager.create_workflow("w", "owner")
    for spec in WorkflowShape(n_tasks=n_tasks, fanout=fanout,
                              seed=seed).tasks():
        manager.design_task("w", spec["task_id"], spec["user_id"],
                            spec["inputs"], spec["outputs"])
    return manager


@pytest.mark.parametrize("n_tasks", [10, 50, 200])
def test_workflow_execution(benchmark, n_tasks):
    def run():
        manager = build_manager(n_tasks, fanout=2)
        for task_id in manager.execution_schedule("w"):
            manager.execute_task(task_id)
        return manager

    manager = benchmark(run)
    assert len(manager.valid_results("w")) == n_tasks


def test_invalidation_cascade(benchmark):
    manager = build_manager(100, fanout=3, seed=5)
    for task_id in manager.execution_schedule("w"):
        manager.execute_task(task_id)

    def cascade_and_restore():
        invalidated = manager.invalidate_task("task-0000")
        for task_id in manager.execution_schedule("w"):
            if manager.tasks[task_id].status == TaskStatus.INVALIDATED:
                manager.re_execute(task_id)
        return invalidated

    invalidated = benchmark(cascade_and_restore)
    assert "task-0000" in invalidated
    assert manager.invalidation_cascades >= 1


def test_shape_cascade_grows_with_fanout(once, report):
    """Invalidating the root hits more of the workflow as fanout rises."""
    def measure(fanout):
        manager = build_manager(60, fanout=fanout, seed=3)
        for task_id in manager.execution_schedule("w"):
            manager.execute_task(task_id)
        t0 = time.perf_counter()
        cascade = manager.invalidate_task("task-0000")
        elapsed_ms = (time.perf_counter() - t0) * 1e3
        return {"cascade_size": len(cascade),
                "cascade_ms": elapsed_ms}

    result = once(lambda: Sweep("fanout", [1, 2, 4, 6], measure).run())
    report("FIG4: invalidation cascade vs DAG fanout (60 tasks)",
           result.to_table(["fanout", "cascade_size", "cascade_ms"]))
    sizes = result.column("cascade_size")
    assert sizes[-1] > sizes[0], "wider DAGs must cascade further"


def test_shape_lifecycle_record_counts(once, report):
    """Each lifecycle phase leaves its records: the Figure-4 loop is
    fully accounted for in the provenance store."""
    def run():
        database = ProvenanceDatabase()
        manager = WorkflowManager(CaptureSink(database), SimClock())
        manager.create_workflow("w", "owner")
        manager.design_task("w", "t1", "u", ["in"], ["mid"])
        manager.design_task("w", "t2", "u", ["mid"], ["out"])
        manager.execute_task("t1")
        manager.execute_task("t2")
        cascade = manager.invalidate_task("t1")
        for task_id in ("t1", "t2"):
            manager.re_execute(task_id)
        counts = {
            "execute": len(database.by_operation("execute")),
            "invalidate": len(database.by_operation("invalidate")),
        }
        return counts, cascade

    counts, cascade = once(run)
    report("FIG4: lifecycle records for execute/invalidate/re-execute",
           format_table([counts], ["execute", "invalidate"]))
    assert counts == {"execute": 4, "invalidate": 2}
    assert cascade == ["t1", "t2"]
