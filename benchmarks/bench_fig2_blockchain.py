"""FIG2 — the blockchain substrate (paper Figure 2).

Regenerates the figure's structural story as measurements:

* block formation cost vs transactions per block (Merkle root dominates);
* tamper-evidence: mutating block k is detected, and detection cost is a
  full-chain scan (linear in chain length).
"""

import copy
import time

import pytest

from repro.analysis import Sweep, format_table
from repro.chain import Blockchain, ChainParams, Transaction, TxKind


def make_txs(n):
    return [
        Transaction(sender="bench", kind=TxKind.DATA,
                    payload={"key": f"k{i}", "value": i})
        for i in range(n)
    ]


def _mutated_copy(block):
    """A copy of ``block`` whose body was mutated after sealing: it keeps
    the original header (so the Merkle mismatch is what gets caught)."""
    clone = copy.copy(block)
    txs = list(block.transactions)
    txs[0] = Transaction(sender="attacker", kind=TxKind.DATA,
                         payload={"key": "evil", "value": -1})
    clone.transactions = txs
    return clone


@pytest.mark.parametrize("tx_count", [1, 8, 64, 256])
def test_block_formation_vs_tx_count(benchmark, tx_count):
    chain = Blockchain(ChainParams(chain_id="fig2", max_block_txs=512))
    txs = make_txs(tx_count)
    block = benchmark(lambda: chain.build_block(txs))
    assert len(block) == tx_count


@pytest.mark.parametrize("chain_len", [64, 256])
def test_full_chain_verification(benchmark, chain_len):
    chain = Blockchain(ChainParams(chain_id="fig2v"))
    for i in range(chain_len):
        chain.append_block(chain.build_block(make_txs(2)))
    benchmark(chain.verify)


def test_tamper_detection_at_every_height(benchmark, report):
    """Mutating any block is detected exactly at its height."""
    chain_len = 40
    chain = Blockchain(ChainParams(chain_id="fig2t"))
    for i in range(chain_len):
        chain.append_block(chain.build_block(make_txs(2)))

    def detect_all():
        detected = []
        for target in range(1, chain_len + 1, 8):
            probe = Blockchain(ChainParams(chain_id="probe"))
            probe.blocks = list(chain.blocks)
            probe.blocks[target] = _mutated_copy(chain.blocks[target])
            detected.append((target, probe.first_broken_height()))
        return detected

    detected = benchmark(detect_all)
    for target, found in detected:
        assert found == target, "tamper must be located at its height"

    rows = [{"mutated_height": t, "detected_at": f} for t, f in detected]
    report("FIG2: tamper localization",
           format_table(rows, ["mutated_height", "detected_at"]))


def test_shape_formation_cost_grows_with_txs(once, report):
    """The FIG2 series: per-block formation time is increasing in the
    transaction count (Merkle tree construction dominates)."""
    def measure(n):
        chain = Blockchain(ChainParams(chain_id="fig2s", max_block_txs=1024))
        txs = make_txs(n)
        t0 = time.perf_counter()
        for _ in range(5):
            chain.build_block(txs)
        return {"ms_per_block": (time.perf_counter() - t0) / 5 * 1e3}

    result = once(lambda: Sweep("txs_per_block", [1, 16, 128, 512],
                                measure).run())
    report("FIG2: block formation cost",
           result.to_table(["txs_per_block", "ms_per_block"]))
    assert result.is_monotonic("ms_per_block")
