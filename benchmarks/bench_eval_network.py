"""EVAL-NET — dissemination vs network size (paper §6.1: "network size",
"load", and the public-chain propagation substrate of RQ1 systems).

Measures gossip coverage/overhead as the mesh grows and as fanout
varies, plus delivery under packet loss — the knobs a provenance-chain
operator actually turns.

Expected shape: coverage reaches 100% with messages ≈ n·fanout
(duplicates suppressed); latency grows logarithmically with n; moderate
loss slows but does not stop dissemination at fanout ≥ 3.
"""

import pytest

from repro.analysis import Sweep, format_table
from repro.network import GossipProtocol, LatencyModel, SimNet


def build_mesh(n, fanout, seed=0, drop_rate=0.0):
    net = SimNet(LatencyModel(base=3, jitter=2), drop_rate=drop_rate,
                 seed=seed)
    gossip = GossipProtocol(net, fanout=fanout, seed=seed)
    for i in range(n):
        node_id = f"n{i}"
        net.register(node_id,
                     lambda msg, nid=node_id: gossip.handle(nid, msg))
        gossip.attach(node_id, lambda item, body: None)
    return net, gossip


@pytest.mark.parametrize("n_nodes", [8, 32, 128])
def test_gossip_dissemination(benchmark, n_nodes):
    counter = iter(range(100_000))

    def disseminate():
        net, gossip = build_mesh(n_nodes, fanout=4, seed=next(counter))
        gossip.publish("n0", "blk", {"height": 1})
        net.run()
        # Flooding leaves a small probabilistic tail; anti-entropy pull
        # closes it (how production gossip works).
        gossip.anti_entropy("blk", {"height": 1})
        net.run()
        return gossip.coverage("blk")

    coverage = benchmark(disseminate)
    assert coverage == 1.0


def test_shape_coverage_vs_network_size(once, report):
    def sweep():
        def measure(n):
            net, gossip = build_mesh(n, fanout=4, seed=7)
            gossip.publish("n0", "blk", {})
            net.run()
            flood = gossip.coverage("blk")
            repaired = gossip.anti_entropy("blk", {})
            net.run()
            return {"flood_coverage": flood,
                    "repaired": repaired,
                    "final_coverage": gossip.coverage("blk"),
                    "messages": net.stats.messages_sent,
                    "msgs_per_node": net.stats.messages_sent / n,
                    "latency_ticks": net.clock.now()}
        return Sweep("n_nodes", [8, 16, 64, 256], measure).run()

    result = once(sweep)
    report("EVAL-NET: gossip dissemination vs network size (fanout 4)",
           result.to_table(["n_nodes", "flood_coverage", "repaired",
                            "final_coverage", "msgs_per_node",
                            "latency_ticks"]))
    assert all(c >= 0.95 for c in result.column("flood_coverage"))
    assert all(c == 1.0 for c in result.column("final_coverage"))
    # Per-node overhead stays bounded by the fanout (duplicates
    # suppressed), and latency grows sublinearly.
    assert all(m <= 4.5 for m in result.column("msgs_per_node"))
    latencies = result.column("latency_ticks")
    sizes = result.column("n_nodes")
    assert latencies[-1] < latencies[0] * (sizes[-1] / sizes[0])


def test_shape_fanout_tradeoff(once, report):
    def sweep():
        def measure(fanout):
            net, gossip = build_mesh(64, fanout=fanout, seed=11)
            gossip.publish("n0", "blk", {})
            net.run()
            return {"coverage": gossip.coverage("blk"),
                    "messages": net.stats.messages_sent,
                    "latency_ticks": net.clock.now()}
        return Sweep("fanout", [1, 2, 4, 8], measure).run()

    result = once(sweep)
    report("EVAL-NET: fanout trade-off (64 nodes)",
           result.to_table(["fanout", "coverage", "messages",
                            "latency_ticks"]))
    # Higher fanout: more messages, faster spread.
    assert result.is_monotonic("messages")
    latencies = result.column("latency_ticks")
    assert latencies[-1] <= latencies[0]


def test_shape_loss_resilience(once, report):
    def sweep():
        def measure(drop_pct):
            rows = {"coverage": 0.0, "messages": 0}
            trials = 5
            for t in range(trials):
                net, gossip = build_mesh(64, fanout=4, seed=100 + t,
                                         drop_rate=drop_pct / 100)
                gossip.publish("n0", "blk", {})
                net.run()
                rows["coverage"] += gossip.coverage("blk") / trials
                rows["messages"] += net.stats.messages_sent // trials
            return rows
        return Sweep("drop_pct", [0, 10, 25, 50], measure).run()

    result = once(sweep)
    report("EVAL-NET: gossip under packet loss (64 nodes, fanout 4)",
           result.to_table(["drop_pct", "coverage", "messages"]))
    coverages = result.column("coverage")
    # Flood coverage sits in the mid-90s loss-free (anti-entropy closes
    # the tail; not applied here so the loss effect is visible), degrades
    # gracefully at 10–25% loss, and drops hardest at 50%.
    assert coverages[0] >= 0.95
    assert coverages[1] > 0.9           # 10% loss barely dents coverage
    assert coverages[-1] <= coverages[1]