"""Shared benchmark plumbing: ``--smoke`` contract, JSON persistence,
acceptance floors.

Every ``bench_*.py`` follows the same protocol:

* ``--smoke`` runs small sizes — same shape, fast enough for
  ``make check`` — asserts **no** floors and writes **no** JSON (the
  committed full-mode ``BENCH_*.json`` numbers must never be clobbered
  by a smoke pass);
* full mode writes ``BENCH_<name>.json`` at the repo root and asserts
  the ISSUE's acceptance floors;
* an explicit ``--out`` is always honored, smoke or not.

This module is that protocol in one place; the scripts keep only their
workload and their floors.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Callable, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent


def _telemetry_snapshot() -> dict:
    """The run's metrics registry snapshot, embedded in every
    ``BENCH_*.json`` under ``"telemetry"`` — what the workload actually
    exercised (cache hits, fsyncs, queue churn) travels with its
    numbers.  JSON needs no bytes/None handling: registry snapshots are
    str-keyed scalars by construction."""
    try:
        from repro.obs.runtime import telemetry

        return telemetry().snapshot()
    except Exception:  # noqa: BLE001 - a bench must never fail on this
        return {}


def parse_bench_args(
    doc: str | None,
    extra: Callable[[argparse.ArgumentParser], None] | None = None,
) -> argparse.Namespace:
    """The standard bench CLI: ``--smoke``, ``--out``, plus whatever
    ``extra(parser)`` adds for one script."""
    parser = argparse.ArgumentParser(description=doc)
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI (same shape, faster); "
                             "no floors asserted, no JSON written")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: repo root; "
                             "always honored, even with --smoke)")
    if extra is not None:
        extra(parser)
    return parser.parse_args()


def finish_bench(
    result: dict,
    json_name: str,
    args: argparse.Namespace,
    floors: Sequence[tuple[str, float, float]] = (),
) -> None:
    """Persist and gate one bench run.

    ``floors`` is a sequence of ``(label, measured, floor)``; each is
    asserted ``measured >= floor`` in full mode only.
    """
    smoke = bool(getattr(args, "smoke", False))
    explicit_out = getattr(args, "out", None)
    out = Path(explicit_out) if explicit_out else REPO_ROOT / json_name
    if explicit_out or not smoke:
        result = dict(result, telemetry=_telemetry_snapshot())
        out.write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {out}")
    if smoke:
        return
    for label, measured, floor in floors:
        assert measured >= floor, (
            f"{label} {measured} below the {floor} floor"
        )
    if floors:
        print("floors ok: " + "; ".join(
            f"{label} {round(measured, 2)}x >= {floor}x"
            for label, measured, floor in floors
        ))
