#!/usr/bin/env python3
"""Execution-engine benchmark: process-pool sealing vs serial, plus
storage tiering.

Measures what the ISSUE-6 execution engine and storage axis buy:

* **process vs serial sealing** — the headline.  The serial baseline
  seals every shard in-process: contract execution (CPU-bound sha256
  grinding under the GIL) and the durable commit (fsync + sqlite
  transaction) are paid strictly in sequence.  The process path ships
  each shard's popped batch to an exec worker as canonical codec bytes,
  executes and verifies out-of-process, and the parent applies deltas /
  commits shards *as workers finish* — so compute parallelism across
  cores stacks with exec/commit overlap (the deployment runs more
  shards than workers precisely so early finishers commit while the
  rest still grind).  The asserted full-mode floor is
  ``min(2.0, 0.9 x hardware budget)`` where the *hardware budget* is
  this machine's raw 4-process speedup on the same sha256 grind,
  measured framework-free in the same run: on any real multicore the
  binding floor is the ISSUE's 2.0x, while a throttled or
  oversubscribed container (shared 2-vCPU sandboxes measure a ~1.3x
  budget) still asserts the engine loses < 10% of whatever raw
  multiprocessing can reach there.  Both numbers land in the JSON.
* **determinism** — byte-identical beacon state and per-shard state
  roots across serial / thread / process modes, asserted in **every**
  mode (smoke included): the engine is only admissible if the
  commitments cannot tell executors apart.
* **workers curve** — process sealing at 1/2/4 workers.
* **storage tiering** — a durable deployment with incompressible
  payloads is checkpointed and tiered (cold blocks archived into the
  CAS, segment logs compacted generationally).  The indexed-store
  reclaim is asserted ``>= 30%`` in full mode, and the pruned replica
  must reopen with **zero** block replay and still serve verified
  queries for archived heights.
* **frame compression** — the same chain committed through the raw vs
  zlib ``SegmentCodec`` (report-only ratio; per-frame flags make the
  codecs interchangeable across reopens).

Results go to ``BENCH_exec.json``.

Run: ``PYTHONPATH=src python benchmarks/bench_exec.py [--smoke]``
(``make bench-exec`` / part of ``make check``).
"""

from __future__ import annotations

import gc
import hashlib
import multiprocessing
import random
import shutil
import tempfile
import time
from pathlib import Path

from _harness import finish_bench, parse_bench_args
from repro.chain import Blockchain, ChainParams, Transaction, TxKind
from repro.contracts.contract import Contract, method
from repro.contracts.runtime import ContractRuntime
from repro.crypto.hashing import hash_hex
from repro.persist import DurableStorage
from repro.sharding import ShardedChain

# More shards than workers on purpose: a worker that finishes shard A
# picks up shard E while the parent durably commits A — the commit I/O
# overlaps the remaining compute instead of trailing it.
N_SHARDS = 8
EXEC_WORKERS = 4


class GrindRegistry(Contract):
    """CPU-heavy attestation: each call grinds a sha256 chain and
    persists the result — per-tx compute that saturates one core under
    the GIL, which is exactly what the process pool exists to beat."""

    def setup(self) -> None:
        self.storage.set("entries", 0)

    @method
    def attest(self, key: str = "", seed: str = "",
               iters: int = 200) -> dict:
        self.charge(1 + iters // 64)
        digest = seed.encode()
        for _ in range(iters):
            digest = hashlib.sha256(digest).digest()
        self.storage.set(key, digest.hex())
        self.storage.set("entries",
                         int(self.storage.get("entries", 0)) + 1)
        return {"digest": digest.hex()[:16]}


def runtime_factory() -> ContractRuntime:
    # Module level so forked/spawned exec workers rebuild the exact
    # same registry the parent shards use.
    rt = ContractRuntime()
    rt.register(GrindRegistry)
    return rt


def _grind_raw(n: int) -> None:
    digest = b"calibrate"
    for _ in range(n):
        digest = hashlib.sha256(digest).digest()


def hardware_parallel_budget(workers: int = EXEC_WORKERS,
                             n: int = 1_200_000) -> float:
    """Raw ``workers``-process speedup on the same sha256 grind,
    framework-free: the ceiling this machine lets *any* process pool
    reach.  Shared CI sandboxes routinely throttle a nominal 2-vCPU box
    to ~1.3x; the exec floor scales by this so such a box asserts
    engine overhead instead of failing on cores it doesn't have."""
    best_serial = min(
        _timed_call(_grind_raw, n) for _ in range(2)
    )

    def fan_out() -> float:
        procs = [
            multiprocessing.Process(target=_grind_raw,
                                    args=(n // workers,))
            for _ in range(workers)
        ]
        t0 = time.perf_counter()
        for p in procs:
            p.start()
        for p in procs:
            p.join()
        return time.perf_counter() - t0

    best_parallel = min(fan_out() for _ in range(2))
    return best_serial / best_parallel


def _timed_call(fn, *args) -> float:
    t0 = time.perf_counter()
    fn(*args)
    return time.perf_counter() - t0


def make_stream(rounds: int, calls_per_round: int,
                blob_len: int) -> list[list[tuple[str, int, str]]]:
    """The deterministic call stream every executor mode replays:
    ``(sender, nonce, blob)`` per call, identical across modes so the
    commitments have to be identical too."""
    rng = random.Random(7)
    blobs = [bytes(rng.getrandbits(8) for _ in range(blob_len)).hex()
             for _ in range(32)]
    senders = [f"acct-{i:02d}" for i in range(16)]
    stream = []
    n = 0
    for _ in range(rounds):
        batch = []
        for _ in range(calls_per_round):
            batch.append((senders[n % 16], n, blobs[n % 32]))
            n += 1
        stream.append(batch)
    return stream


def run_mode(executor: str, workers: int | None,
             stream: list[list[tuple[str, int, str]]], iters: int,
             store_dir: str) -> dict:
    """One full deployment in one executor mode: deploy the contract,
    replay the stream round by round, return timings plus the
    commitments that must not depend on the executor."""
    sc = ShardedChain(
        N_SHARDS, storage_dir=store_dir,
        executor=executor, exec_workers=workers,
        contract_runtime_factory=runtime_factory,
    )
    senders = [f"acct-{i:02d}" for i in range(16)]
    deploys = []
    for i, sender in enumerate(senders):
        tx = Transaction(sender=sender, kind=TxKind.CONTRACT_DEPLOY,
                         payload={"contract": "GrindRegistry", "args": {}},
                         nonce=10_000 + i, timestamp=500 + i).seal()
        sc.submit(tx)
        deploys.append("ct-" + hash_hex({"deploy": tx.tx_id})[:16])
    sc.seal_round(timestamp=900)

    n_calls = 0
    seal_s = 0.0
    gc.collect()
    t0 = time.perf_counter()
    for r, batch in enumerate(stream):
        for sender, n, blob in batch:
            tx = Transaction(
                sender=sender, kind=TxKind.CONTRACT_CALL,
                payload={"address": deploys[n % len(deploys)],
                         "entry": "attest",
                         "args": {"key": f"k{n}", "seed": f"s{n}",
                                  "iters": iters},
                         "blob": blob},
                nonce=n, timestamp=1000 + n).seal()
            sc.submit(tx)
            n_calls += 1
        s0 = time.perf_counter()
        sc.seal_round(timestamp=50_000 + r)
        seal_s += time.perf_counter() - s0
    total_s = time.perf_counter() - t0

    commitments = {
        "beacon": sc.beacon.dump_state(),
        "roots": [sc.shard(s).chain.state.state_root()
                  for s in range(N_SHARDS)],
        "heights": [sc.shard(s).chain.height for s in range(N_SHARDS)],
    }
    committed = sc.total_txs_committed
    respawns = sc.exec_pool.respawns if sc.exec_pool is not None else 0
    sc.close()
    return {
        "executor": executor,
        "workers": workers,
        "total_s": round(total_s, 4),
        "seal_s": round(seal_s, 4),
        "txs_per_s": round(n_calls / total_s),
        "txs_committed": committed,
        "respawns": respawns,
        "_commitments": commitments,
    }


def best_of(repeats: int, executor: str, workers: int | None,
            stream, iters: int, root: Path, tag: str) -> dict:
    """Run one mode ``repeats`` times on fresh stores, keep the fastest
    (standard noise hygiene on shared machines); every repeat's
    commitments must agree before one is discarded."""
    runs = [
        run_mode(executor, workers, stream, iters,
                 str(root / f"{tag}-r{i}"))
        for i in range(repeats)
    ]
    for run in runs[1:]:
        assert run["_commitments"] == runs[0]["_commitments"]
    return min(runs, key=lambda run: run["seal_s"])


def bench_exec_modes(rounds: int, calls_per_round: int, iters: int,
                     blob_len: int, repeats: int,
                     root: Path) -> tuple[dict, list[dict]]:
    stream = make_stream(rounds, calls_per_round, blob_len)
    # Warm the global LRUs (leaf hashes etc.) once so the first-run
    # mode doesn't pay all the cold-cache cost: same trick as
    # bench_shard_scaling.
    run_mode("serial", None, stream[:1], max(iters // 8, 10),
             str(root / "exec-warm"))

    budget = hardware_parallel_budget()
    serial = best_of(repeats, "serial", None, stream, iters, root, "ser")
    thread = best_of(repeats, "thread", N_SHARDS, stream, iters, root,
                     "thr")
    curve = [
        best_of(repeats, "process", w, stream, iters, root, f"proc{w}")
        for w in (1, 2, EXEC_WORKERS)
    ]
    process = curve[-1]

    # Determinism gate, asserted in every mode: commitments must be
    # byte-identical regardless of executor.
    reference = serial["_commitments"]
    for run in [thread, *curve]:
        assert run["_commitments"] == reference, (
            f"{run['executor']}({run['workers']}) diverged from serial"
        )
    for run in (serial, thread, *curve):
        del run["_commitments"]

    for run in (thread, *curve):
        run["speedup_vs_serial"] = round(
            serial["seal_s"] / run["seal_s"], 2)
    section = {
        "serial": serial,
        "thread": thread,
        "process": process,
        "process_speedup_vs_serial": process["speedup_vs_serial"],
        "hardware_parallel_budget": round(budget, 2),
        "effective_floor": round(min(2.0, 0.9 * budget), 2),
        "identical_commitments": True,
    }
    return section, curve


def bench_tiering(rounds: int, txs_per_round: int, root: Path) -> dict:
    """Durable 2-shard deployment with incompressible payloads:
    checkpoint, tier (archive + compact), reopen pruned with zero
    replay and verified queries for archived heights."""
    rng = random.Random(3)
    store_dir = str(root / "tiering")
    sc = ShardedChain(2, storage_dir=store_dir, reorg_journal_depth=4)
    n = 0
    for r in range(rounds):
        for _ in range(txs_per_round):
            blob = bytes(rng.getrandbits(8) for _ in range(500)).hex()
            tx = Transaction(sender=f"acct-{n % 11}", kind=TxKind.DATA,
                             payload={"blob": blob, "i": n},
                             nonce=n, timestamp=1000 + n).seal()
            sc.submit(tx)
            n += 1
        sc.seal_round(timestamp=50_000 + r)
    sc.checkpoint()

    t0 = time.perf_counter()
    stats = sc.tier_storage(keep_tail=8)
    tier_s = time.perf_counter() - t0
    bytes_before = sum(st["bytes_before"] for st in stats.values())
    bytes_after = sum(st["bytes_after"] for st in stats.values())
    archived = sum(st["archived"]["archived"] for st in stats.values())
    archive_bytes = sum(
        shard.storage.disk_usage(include_archive=True)
        - shard.storage.disk_usage()
        for shard in sc.shards
    )
    heights = [sc.shard(s).chain.height for s in range(2)]
    roots = [sc.shard(s).chain.state.state_root() for s in range(2)]
    sc.close()

    # The pruned replica must come back with zero replay and still
    # serve verified queries for archived heights (via the CAS).
    t0 = time.perf_counter()
    sc2 = ShardedChain(2, storage_dir=store_dir, reorg_journal_depth=4)
    reopen_s = time.perf_counter() - t0
    for s in range(2):
        ch = sc2.shard(s).chain
        assert ch.blocks_replayed_on_open == 0, "reopen replayed blocks"
        assert ch.height == heights[s]
        assert ch.state.state_root() == roots[s]
        assert ch.block_at(1).height == 1  # archived height, via CAS
        ch.verify()
    sc2.close()

    reclaim_pct = round(100 * (1 - bytes_after / bytes_before), 1)
    return {
        "rounds": rounds,
        "txs": n,
        "blocks_archived": archived,
        "indexed_bytes_before": bytes_before,
        "indexed_bytes_after": bytes_after,
        "reclaim_pct": reclaim_pct,
        "archive_bytes": archive_bytes,
        "tier_s": round(tier_s, 4),
        "pruned_reopen_s": round(reopen_s, 4),
        "blocks_replayed_on_reopen": 0,
    }


def bench_compression(n_blocks: int, txs_per_block: int,
                      root: Path) -> dict:
    """The same (compressible, provenance-shaped) chain through the raw
    vs zlib frame codec — report-only footprint ratio."""

    def build(codec: str, store_dir: str) -> int:
        storage = DurableStorage(store_dir, codec=codec)
        chain = Blockchain(ChainParams(chain_id="codec-bench"),
                           store=storage.blocks,
                           snapshot_store=storage.state)
        for b in range(n_blocks):
            height = chain.height + 1
            txs = [
                Transaction(
                    f"acct-{j % 16}", TxKind.DATA,
                    {"record_id": f"rec-{height:06d}-{j:03d}",
                     "operation": "derive",
                     "tool": "pipeline/v2",
                     "inputs": [f"rec-{height - 1:06d}-{j:03d}"],
                     "attrs": {"size": j * 17 % 4096,
                               "content_type": "application/json"}},
                    timestamp=height).seal()
                for j in range(txs_per_block)
            ]
            chain.append_block(chain.build_block(txs, timestamp=height))
        head = chain.head.block_hash
        usage = storage.disk_usage()
        chain.close()
        return usage, head

    raw_bytes, raw_head = build("raw", str(root / "codec-raw"))
    zlib_bytes, zlib_head = build("zlib", str(root / "codec-zlib"))
    assert raw_head == zlib_head  # codec is a frame detail, not chain state
    return {
        "n_blocks": n_blocks,
        "raw_bytes": raw_bytes,
        "zlib_bytes": zlib_bytes,
        "zlib_ratio": round(zlib_bytes / raw_bytes, 3),
    }


def main() -> None:
    args = parse_bench_args(__doc__)

    if args.smoke:
        rounds, calls_per_round, iters, blob_len = 2, 32, 200, 300
        repeats = 1
        tier_rounds, tier_txs = 10, 20
        codec_blocks, codec_txs = 30, 8
    else:
        rounds, calls_per_round, iters, blob_len = 4, 96, 2_000, 1_000
        repeats = 2
        tier_rounds, tier_txs = 40, 40
        codec_blocks, codec_txs = 200, 16

    root = Path(tempfile.mkdtemp(prefix="repro-bench-exec-"))
    try:
        exec_section, curve = bench_exec_modes(
            rounds, calls_per_round, iters, blob_len, repeats, root)
        tiering = bench_tiering(tier_rounds, tier_txs, root)
        compression = bench_compression(codec_blocks, codec_txs, root)
    finally:
        shutil.rmtree(root, ignore_errors=True)

    result = {
        "mode": "smoke" if args.smoke else "full",
        "model": (
            "serial = in-process exec + inline durable commit per "
            "shard; process = popped batches shipped to exec workers "
            "as codec bytes (execute + verify out-of-process), parent "
            "applies deltas and commits shards as workers finish — "
            "core parallelism stacks with exec/commit overlap; "
            "commitments (beacon state, state roots) byte-identical "
            "across executors"
        ),
        "config": {
            "n_shards": N_SHARDS, "exec_workers": EXEC_WORKERS,
            "rounds": rounds, "calls_per_round": calls_per_round,
            "grind_iters": iters, "blob_len": blob_len,
            "repeats": repeats,
        },
        "exec": exec_section,
        "workers_curve": [
            {k: run[k] for k in ("workers", "total_s", "seal_s",
                                 "txs_per_s", "speedup_vs_serial")}
            for run in curve
        ],
        "tiering": tiering,
        "compression": compression,
    }

    print(f"exec bench ({result['mode']}): "
          f"{rounds} rounds x {calls_per_round} calls, "
          f"{iters} grind iters, blob {blob_len}")
    print(f"  hw budget   : {exec_section['hardware_parallel_budget']:.2f}x "
          f"raw {EXEC_WORKERS}-process grind -> floor "
          f"{exec_section['effective_floor']:.2f}x")
    serial = exec_section["serial"]
    print(f"  serial      : {serial['seal_s']:7.3f} s seal  "
          f"{serial['txs_per_s']:6d} tx/s")
    for run in (exec_section["thread"], *curve):
        print(f"  {run['executor']:>7}({run['workers']}) : "
              f"{run['seal_s']:7.3f} s seal  {run['txs_per_s']:6d} tx/s  "
              f"({run['speedup_vs_serial']:.2f}x)")
    print(f"  tiering     : reclaim {tiering['reclaim_pct']}%  "
          f"archived {tiering['blocks_archived']} blocks  "
          f"reopen replay {tiering['blocks_replayed_on_reopen']}")
    print(f"  compression : zlib/raw = {compression['zlib_ratio']}")

    finish_bench(result, "BENCH_exec.json", args, floors=[
        ("process sealing speedup at 4 workers",
         exec_section["process_speedup_vs_serial"],
         exec_section["effective_floor"]),
        ("tiering indexed-store reclaim pct", tiering["reclaim_pct"],
         30.0),
    ])


if __name__ == "__main__":
    main()
