"""EVAL-CONS — consensus ablation (paper §6.1: "consensus algorithms,
…, network size").

Measures:

* sealing work per block for PoW (by difficulty) vs PoS vs PoA;
* empirical messages-per-block for PBFT (O(n²)) vs Raft (O(n)) as the
  cluster grows, with crash-fault rounds included;
* the PoW→PoS gap BlockCloud's design argument rests on.

Expected shape: PoW work doubles per difficulty bit; PBFT message counts
grow quadratically and overtake Raft's linear profile immediately;
permissioned engines (PoA/PoS) seal in constant work.
"""

import pytest

from repro.analysis import Sweep, format_table
from repro.chain import Blockchain, ChainParams, Transaction, TxKind
from repro.consensus import (
    PBFTCluster,
    ProofOfAuthority,
    ProofOfStake,
    ProofOfWork,
    RaftCluster,
    Validator,
)
from repro.network import SimNet


def tx(i=0):
    return Transaction(sender="bench", kind=TxKind.DATA,
                       payload={"key": f"k{i}", "value": i})


@pytest.mark.parametrize("engine_name", ["pow8", "pow10", "pos", "poa"])
def test_seal_cost(benchmark, engine_name):
    if engine_name == "pow8":
        engine = ProofOfWork(difficulty_bits=8)
    elif engine_name == "pow10":
        engine = ProofOfWork(difficulty_bits=10)
    elif engine_name == "pos":
        engine = ProofOfStake([Validator(f"v{i}", 10 + i)
                               for i in range(8)])
    else:
        engine = ProofOfAuthority([f"a{i}" for i in range(8)])

    def seal_one():
        chain = Blockchain(ChainParams(chain_id=f"seal-{engine_name}"))
        block, metrics = engine.seal(chain, [tx(1)])
        return metrics.work

    work = benchmark(seal_one)
    if engine_name.startswith("pow"):
        assert work >= 1
    else:
        assert work == 1


@pytest.mark.parametrize("n_nodes", [4, 7, 10])
def test_pbft_block_commit(benchmark, n_nodes):
    counter = iter(range(100_000))

    def commit_one():
        cluster = PBFTCluster(SimNet(seed=next(counter)),
                              n_replicas=n_nodes)
        return cluster.propose([tx(1)])

    metrics = benchmark(commit_one)
    assert metrics.messages == PBFTCluster.analytic_messages(n_nodes)


@pytest.mark.parametrize("n_nodes", [3, 7, 10])
def test_raft_block_commit(benchmark, n_nodes):
    counter = iter(range(100_000))

    def commit_one():
        cluster = RaftCluster(SimNet(seed=next(counter)), n_nodes=n_nodes)
        return cluster.propose([tx(1)])

    metrics = benchmark(commit_one)
    assert metrics.committed


def test_shape_message_complexity_sweep(once, report):
    """The O(n²)-vs-O(n) crossover table the paper's trade-off implies."""
    def measure(n):
        pbft = PBFTCluster(SimNet(seed=n), n_replicas=n)
        pbft_metrics = pbft.propose([tx(1)])
        raft = RaftCluster(SimNet(seed=n), n_nodes=n)
        raft_metrics = raft.propose([tx(1)])
        return {
            "pbft_msgs": pbft_metrics.messages,
            "raft_msgs": raft_metrics.messages,
            "pbft_latency": pbft_metrics.latency_ticks,
            "raft_latency": raft_metrics.latency_ticks,
        }

    result = once(lambda: Sweep("n_nodes", [4, 7, 10, 13, 16],
                                measure).run())
    report("EVAL-CONS: PBFT vs Raft per committed block",
           result.to_table(["n_nodes", "pbft_msgs", "raft_msgs",
                            "pbft_latency", "raft_latency"]))
    pbft_msgs = result.column("pbft_msgs")
    raft_msgs = result.column("raft_msgs")
    # Raft stays linear; PBFT grows quadratically; PBFT always costs more.
    assert all(p > r for p, r in zip(pbft_msgs, raft_msgs))
    ratio_small = pbft_msgs[0] / raft_msgs[0]
    ratio_large = pbft_msgs[-1] / raft_msgs[-1]
    assert ratio_large > 2 * ratio_small


def test_shape_pow_work_doubles_per_bit(once, report):
    """BlockCloud's argument: PoW work is exponential in difficulty while
    PoS stays constant."""
    def measure(bits):
        engine = ProofOfWork(difficulty_bits=bits)
        chain = Blockchain(ChainParams(chain_id=f"powsweep-{bits}"))
        total = 0
        rounds = 8
        for i in range(rounds):
            block, metrics = engine.seal(chain, [tx(i)])
            chain.append_block(block)
            total += metrics.work
        return {"avg_hashes": total // rounds,
                "expected": engine.estimated_hashes()}

    result = once(lambda: Sweep("difficulty_bits", [4, 6, 8, 10],
                                measure).run())
    rows = result.rows + [{"difficulty_bits": "pos (any)",
                           "avg_hashes": 1, "expected": 1}]
    report("EVAL-CONS: PoW sealing work vs difficulty (vs PoS = 1)",
           format_table(rows, ["difficulty_bits", "avg_hashes", "expected"]))
    observed = result.column("avg_hashes")
    assert observed[-1] > 10 * observed[0]


def test_shape_crash_fault_costs(once, report):
    """Fault rounds: PBFT view change and Raft re-election overheads."""
    def run():
        rows = []
        pbft = PBFTCluster(SimNet(seed=1), n_replicas=4)
        healthy = pbft.propose([tx(1)])
        pbft.crash("pbft-0")       # the current primary
        faulty = pbft.propose([tx(2)])
        rows.append({"engine": "pbft", "healthy_msgs": healthy.messages,
                     "faulty_msgs": faulty.messages,
                     "recovery":
                     f"{faulty.extra['view_changes']} view change"})
        raft = RaftCluster(SimNet(seed=2), n_nodes=5)
        raft.propose([tx(0)])                  # warm-up: initial election
        healthy = raft.propose([tx(1)])        # steady state
        raft.crash(raft.leader_id)
        faulty = raft.propose([tx(2)])         # includes re-election
        rows.append({"engine": "raft", "healthy_msgs": healthy.messages,
                     "faulty_msgs": faulty.messages,
                     "recovery": f"term {faulty.extra['term']} re-election"})
        return rows

    rows = once(run)
    report("EVAL-CONS: leader/primary crash overhead",
           format_table(rows, ["engine", "healthy_msgs", "faulty_msgs",
                               "recovery"]))
    for row in rows:
        assert row["faulty_msgs"] > row["healthy_msgs"]
