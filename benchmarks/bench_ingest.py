#!/usr/bin/env python3
"""Ingestion benchmark: pipelined vs synchronous durable capture.

Measures what the ISSUE-4 ingestion pipeline buys on a durable 4-shard
deployment absorbing a bursty capture stream (each event = one
provenance record + one capture transaction):

* **pipeline vs synchronous** — the headline.  The synchronous baseline
  is the PR 3 path: every event pays routing, per-record durable insert
  (one sqlite transaction + log write each), and mempool admission
  inline, and sealing drains one block per shard per round with one
  index transaction per block.  The pipelined path parks events in
  bounded per-shard queues (submit is O(1)), group-commits records
  (one log write + one fsync + one index transaction per shard per
  burst), batch-admits into mempools, and seals multiple blocks per
  shard per round through the chain's group-commit surface with the
  shards sealing on a thread pool.  ``sustained_speedup`` is asserted
  ``>= 2.0`` in full mode.
* **submit latency** — p50/p99 of what the capture source waits per
  event: the full synchronous ingest call vs the pipeline's enqueue.
* **group-commit vs per-append** — store-level micro for records and
  blocks: the same data committed one-at-a-time vs in groups.  The
  record-path speedup is asserted ``>= 2.0`` in full mode.

Results go to ``BENCH_ingest.json``.

Run: ``PYTHONPATH=src python benchmarks/bench_ingest.py [--smoke]``
(``make bench-ingest`` / part of ``make check``).
"""

from __future__ import annotations

import gc
import json
import shutil
import tempfile
import time
from pathlib import Path

from _harness import finish_bench, parse_bench_args
from repro import IngestPipeline, ShardedChain, Transaction, TxKind
from repro.chain import Blockchain, ChainParams
from repro.chain import transaction as tx_mod
from repro.crypto import signatures as sig
from repro.crypto.signatures import KeyPair
from repro.persist import DurableStorage
from repro.storage.provdb import ProvenanceDatabase

N_SHARDS = 4
MAX_BLOCK_TXS = 16
ANCHOR_BATCH = 64


def make_events(n: int) -> list[tuple[dict, Transaction]]:
    events = []
    for i in range(n):
        subject = f"tenant-{i % 41}/obj-{i % 7}"
        record = {
            "record_id": f"r{i:07d}", "subject": subject,
            "actor": f"sensor-{i % 17}", "operation": "observe",
            "timestamp": i,
        }
        tx = Transaction(
            f"sensor-{i % 17}", TxKind.DATA,
            {"subject": subject, "key": f"k{i}", "value": i},
            timestamp=i,
        ).seal()
        events.append((record, tx))
    return events


def percentile(samples: list[float], p: float) -> float:
    ordered = sorted(samples)
    return ordered[int(p * (len(ordered) - 1))]


def latency_stats(samples: list[float]) -> dict:
    return {
        "p50_us": round(percentile(samples, 0.50) * 1e6, 1),
        "p99_us": round(percentile(samples, 0.99) * 1e6, 1),
        "max_us": round(max(samples) * 1e6, 1),
    }


def bench_synchronous(events, burst: int, store_dir: str) -> dict:
    """PR 3 baseline: per-event durable ingest, per-append sealing."""
    sharded = ShardedChain(
        n_shards=N_SHARDS, max_block_txs=MAX_BLOCK_TXS,
        anchor_batch_size=ANCHOR_BATCH, storage_dir=store_dir,
        seal_workers=1,
    )
    gc.collect()
    latencies = []
    t0 = time.perf_counter()
    for i, (record, tx) in enumerate(events):
        e0 = time.perf_counter()
        sharded.ingest_record(record)
        sharded.submit(tx)
        latencies.append(time.perf_counter() - e0)
        if (i + 1) % burst == 0:
            while sharded.mempool_backlog:
                sharded.seal_round(parallel=False)
    sharded.flush_anchors()
    while sharded.mempool_backlog:
        sharded.seal_round(parallel=False)
    total_s = time.perf_counter() - t0
    committed = sharded.total_txs_committed
    sharded.verify_all()
    sharded.close()
    return {
        "total_s": round(total_s, 4),
        "events_per_s": round(len(events) / total_s),
        "txs_committed": committed,
        "submit_latency": latency_stats(latencies),
    }


def bench_pipelined(events, burst: int, store_dir: str) -> dict:
    """ISSUE 4 path: queued submission, group-committed records and
    blocks, thread-pool sealing."""
    sharded = ShardedChain(
        n_shards=N_SHARDS, max_block_txs=MAX_BLOCK_TXS,
        anchor_batch_size=ANCHOR_BATCH, storage_dir=store_dir,
    )
    pipeline = IngestPipeline(sharded, queue_capacity=4 * burst,
                              max_blocks_per_round=32)
    gc.collect()
    latencies = []
    record_batch: list[dict] = []
    t0 = time.perf_counter()
    for i, (record, tx) in enumerate(events):
        e0 = time.perf_counter()
        record_batch.append(record)
        pipeline.submit(tx)
        latencies.append(time.perf_counter() - e0)
        if (i + 1) % burst == 0:
            sharded.ingest_records(record_batch)
            record_batch = []
            pipeline.seal_round()
    if record_batch:
        sharded.ingest_records(record_batch)
    sharded.flush_anchors()
    pipeline.run_until_drained()
    total_s = time.perf_counter() - t0
    committed = sharded.total_txs_committed
    stats = pipeline.stats
    sharded.verify_all()
    sharded.close()
    return {
        "total_s": round(total_s, 4),
        "events_per_s": round(len(events) / total_s),
        "txs_committed": committed,
        "submit_latency": latency_stats(latencies),
        "pipeline": {
            "submitted": stats.submitted,
            "admitted": stats.admitted,
            "rejected": stats.rejected,
            "rounds_sealed": stats.rounds_sealed,
            "seal_workers": N_SHARDS,
        },
    }


def bench_group_commit_records(n_records: int, group: int,
                               root: Path) -> dict:
    records = [
        {"record_id": f"g{i:07d}", "subject": f"asset/{i % 97}",
         "actor": f"actor-{i % 13}", "operation": "update", "timestamp": i}
        for i in range(n_records)
    ]
    storage = DurableStorage(str(root / "rec-per"))
    per_db = ProvenanceDatabase(store=storage.records)
    gc.collect()
    t0 = time.perf_counter()
    for record in records:
        per_db.insert(record)
    per_s = time.perf_counter() - t0
    storage.close()

    storage = DurableStorage(str(root / "rec-grp"))
    grp_db = ProvenanceDatabase(store=storage.records)
    gc.collect()
    t0 = time.perf_counter()
    for i in range(0, n_records, group):
        grp_db.insert_many(records[i:i + group])
    grp_s = time.perf_counter() - t0
    assert len(grp_db) == len(per_db) == n_records
    storage.close()
    return {
        "n_records": n_records,
        "group_size": group,
        "per_append_s": round(per_s, 4),
        "group_commit_s": round(grp_s, 4),
        "per_append_records_per_s": round(n_records / per_s),
        "group_commit_records_per_s": round(n_records / grp_s),
        "speedup": round(per_s / grp_s, 2),
    }


def bench_group_commit_blocks(n_blocks: int, txs_per_block: int,
                              group: int, root: Path) -> dict:
    # Build the block sequence once on a memory chain; both durable
    # chains then execute + commit identical blocks, isolating the
    # storage path difference.
    template = Blockchain(ChainParams(chain_id="grp"))
    blocks = []
    for b in range(n_blocks):
        txs = [
            Transaction(f"acct-{j % 16}", TxKind.DATA,
                        {"key": f"b{b}/t{j}", "value": j},
                        timestamp=b).seal()
            for j in range(txs_per_block)
        ]
        block = template.build_block(txs, timestamp=b + 1)
        template.append_block(block)
        blocks.append(block)

    storage = DurableStorage(str(root / "blk-per"))
    per_chain = Blockchain(ChainParams(chain_id="grp"),
                           store=storage.blocks)
    gc.collect()
    t0 = time.perf_counter()
    for block in blocks:
        per_chain.append_block(block)
    per_s = time.perf_counter() - t0
    per_head = per_chain.head.block_hash
    storage.close()

    storage = DurableStorage(str(root / "blk-grp"))
    grp_chain = Blockchain(ChainParams(chain_id="grp"),
                           store=storage.blocks)
    gc.collect()
    t0 = time.perf_counter()
    for i in range(0, n_blocks, group):
        grp_chain.append_blocks(blocks[i:i + group])
    grp_s = time.perf_counter() - t0
    assert grp_chain.head.block_hash == per_head == template.head.block_hash
    storage.close()
    return {
        "n_blocks": n_blocks,
        "txs_per_block": txs_per_block,
        "group_size": group,
        "per_append_s": round(per_s, 4),
        "group_commit_s": round(grp_s, 4),
        "per_append_blocks_per_s": round(n_blocks / per_s),
        "group_commit_blocks_per_s": round(n_blocks / grp_s),
        "speedup": round(per_s / grp_s, 2),
    }


def bench_signed_admission(n_events: int, burst: int,
                           store_dir: str) -> dict:
    """Signed capture stream through the verify-offloading pipeline.

    Admission verification runs batched in the exec workers
    (``executor="process"``); sealing re-verifies under
    ``require_signatures``.  The surfaced LRU counters confirm the
    process-pool path keeps the *parent* caches hot (worker-verified
    signatures are recorded back via ``record_verified``, so the
    re-verification at append time must hit, not recompute).
    """
    keys = [KeyPair.generate(f"ingest-signer-{k}") for k in range(8)]
    txs = [
        Transaction(keys[i % 8].address, TxKind.DATA,
                    {"key": f"s{i:06d}", "value": i})
        .seal().sign_with(keys[i % 8])
        for i in range(n_events)
    ]
    sig.reset_cache_stats()
    tx_mod._reset_signature_cache_stats()
    sharded = ShardedChain(
        n_shards=N_SHARDS, max_block_txs=MAX_BLOCK_TXS,
        anchor_batch_size=ANCHOR_BATCH, storage_dir=store_dir,
        executor="process", exec_workers=2,
    )
    for s in range(N_SHARDS):
        sharded.shard(s).chain.params.require_signatures = True
    pipeline = IngestPipeline(sharded, queue_capacity=4 * burst,
                              verify_signatures=True,
                              max_blocks_per_round=32)
    gc.collect()
    t0 = time.perf_counter()
    for i in range(0, len(txs), burst):
        pipeline.submit_many(txs[i:i + burst])
        pipeline.seal_round()
    pipeline.run_until_drained()
    total_s = time.perf_counter() - t0
    committed = sharded.total_txs_committed
    sharded.verify_all()
    sharded.close()
    # Parent-side audit: re-verify every committed signature.  The
    # workers verified these batches out-of-process; if their results
    # were not recorded back into the parent cache this pass would pay
    # full HMAC cost (hits would stay 0 — the cold-cache failure mode
    # this section exists to catch).
    r0 = time.perf_counter()
    assert all(tx.verify_signature() for tx in txs)
    recheck_s = time.perf_counter() - r0
    return {
        "total_s": round(total_s, 4),
        "events_per_s": round(len(txs) / total_s),
        "txs_committed": committed,
        "invalid": pipeline.stats.invalid,
        "parent_recheck_s": round(recheck_s, 4),
        "verify_cache": sig.cache_stats(),
        "tx_signature_cache": tx_mod._signature_cache_stats(),
    }


def main() -> None:
    args = parse_bench_args(__doc__)

    if args.smoke:
        n_events, burst = 1_500, 256
        n_records, n_blocks = 1_000, 60
        n_signed = 512
    else:
        n_events, burst = 12_000, 2_048
        n_records, n_blocks = 8_000, 400
        n_signed = 4_000

    root = Path(tempfile.mkdtemp(prefix="repro-bench-ingest-"))
    try:
        events = make_events(n_events)
        sync = bench_synchronous(events, burst, str(root / "sync"))
        events = make_events(n_events)
        pipe = bench_pipelined(events, burst, str(root / "pipe"))
        records = bench_group_commit_records(n_records, 256, root)
        blocks = bench_group_commit_blocks(n_blocks, MAX_BLOCK_TXS, 8, root)
        signed = bench_signed_admission(n_signed, min(burst, 512),
                                        str(root / "signed"))
    finally:
        shutil.rmtree(root, ignore_errors=True)

    sustained = round(pipe["events_per_s"] / sync["events_per_s"], 2)
    result = {
        "mode": "smoke" if args.smoke else "full",
        "model": (
            "event = provenance record + capture tx on a durable "
            f"{N_SHARDS}-shard deployment, bursts of {burst}; "
            "synchronous = per-event durable insert + inline admission "
            "+ one index txn per sealed block; pipelined = bounded "
            "per-shard queues, group-committed records and blocks "
            "(one buffered log write + one fsync + one sqlite txn per "
            "group), thread-pool sealing"
        ),
        "config": {
            "n_events": n_events, "burst": burst, "n_shards": N_SHARDS,
            "max_block_txs": MAX_BLOCK_TXS,
            "anchor_batch_size": ANCHOR_BATCH,
        },
        "synchronous": sync,
        "pipelined": pipe,
        "sustained_speedup": sustained,
        "group_commit_records": records,
        "group_commit_blocks": blocks,
        "signed_admission": signed,
        "floors": {
            "sustained_speedup": 2.0,
            "group_commit_records_speedup": 2.0,
        },
    }
    print(json.dumps(result, indent=2))
    finish_bench(result, "BENCH_ingest.json", args, floors=[
        ("pipelined sustained ingest", sustained, 2.0),
        ("record group-commit", records["speedup"], 2.0),
    ])


if __name__ == "__main__":
    main()
