"""Shared benchmark helpers.

Every bench prints the table/series it regenerates (visible with
``pytest benchmarks/ --benchmark-only -s`` and in the captured output of
EXPERIMENTS.md runs) and *asserts the paper's qualitative shape* — who
wins, what grows, where things cross — rather than absolute numbers.
"""

from __future__ import annotations

import pytest


def print_report(title: str, body: str) -> None:
    bar = "=" * max(len(title), 8)
    print(f"\n{bar}\n{title}\n{bar}\n{body}")


@pytest.fixture(scope="session")
def report():
    return print_report


@pytest.fixture
def once(benchmark):
    """Run a shape/report measurement exactly once under pytest-benchmark
    (so it is collected by ``--benchmark-only`` without being re-run)."""
    def _once(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return _once
