"""EVAL-QUERY — query mechanisms (paper §6.1 "Provenance Query", §6.2
repeated queries, Vassago and SynergyChain's efficiency claims).

Four ablations:

1. index vs full scan as the database grows (the provdb design);
2. repeated-query cache on a Zipf-skewed stream (§6.2's future-work
   item): hit rate and speedup;
3. verified vs unverified queries (the price of proofs);
4. Vassago dependency-guided vs naive cross-chain provenance, and
   SynergyChain aggregated vs sequential multichain queries.
"""

import time

import pytest

from repro.analysis import Sweep, format_table
from repro.chain import Blockchain, ChainParams
from repro.provenance.anchor import AnchorService
from repro.provenance.capture import CaptureSink
from repro.provenance.query import ProvenanceQueryEngine, QueryCache
from repro.storage.provdb import ProvenanceDatabase
from repro.systems import SynergyChain, Vassago
from repro.workloads import QueryWorkload


def loaded_database(n, n_subjects=50):
    database = ProvenanceDatabase()
    for i in range(n):
        database.insert({
            "record_id": f"r{i}",
            "subject": f"s{i % n_subjects}",
            "actor": f"u{i % 7}",
            "operation": "write",
            "timestamp": i,
        })
    return database


@pytest.mark.parametrize("size", [1_000, 10_000])
def test_indexed_lookup(benchmark, size):
    database = loaded_database(size)
    rows = benchmark(lambda: database.by_subject("s7"))
    assert len(rows) == size // 50


@pytest.mark.parametrize("size", [1_000, 10_000])
def test_scan_lookup(benchmark, size):
    database = loaded_database(size)
    rows = benchmark(lambda: database.scan_subject("s7"))
    assert len(rows) == size // 50


def test_shape_index_beats_scan_and_gap_grows(benchmark, report):
    def sweep():
        def measure(size):
            database = loaded_database(size)
            t0 = time.perf_counter()
            for _ in range(20):
                database.by_subject("s7")
            indexed = (time.perf_counter() - t0) / 20
            t0 = time.perf_counter()
            for _ in range(20):
                database.scan_subject("s7")
            scanned = (time.perf_counter() - t0) / 20
            return {"indexed_us": indexed * 1e6,
                    "scan_us": scanned * 1e6,
                    "speedup": scanned / indexed}
        return Sweep("records", [500, 2_000, 8_000, 32_000], measure).run()

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report("EVAL-QUERY: index vs scan",
           result.to_table(["records", "indexed_us", "scan_us", "speedup"]))
    speedups = result.column("speedup")
    # Both sides scale with result size, so the *ratio* plateaus rather
    # than growing forever; the claim is that the index wins decisively
    # at every size, and scan cost keeps growing with the table.
    assert all(s > 3 for s in speedups)
    assert max(speedups) > 5
    assert result.is_monotonic("scan_us")


def test_shape_repeated_query_cache(benchmark, report):
    """§6.2: Zipf-skewed repeats make the cache collapse latency."""
    def run():
        database = loaded_database(20_000, n_subjects=200)
        workload = QueryWorkload(
            subjects=[f"s{i}" for i in range(200)], zipf_s=1.2, seed=3
        )
        queries = workload.queries(2_000)
        cold = ProvenanceQueryEngine(database)
        t0 = time.perf_counter()
        for subject in queries:
            cold.history(subject)
        uncached_s = time.perf_counter() - t0
        warm = ProvenanceQueryEngine(database, cache=QueryCache(256))
        t0 = time.perf_counter()
        for subject in queries:
            warm.history(subject)
        cached_s = time.perf_counter() - t0
        hit_rate = warm.stats.cache_hits / warm.stats.queries
        return {"uncached_ms": uncached_s * 1e3,
                "cached_ms": cached_s * 1e3,
                "hit_rate": hit_rate,
                "speedup": uncached_s / cached_s}

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    report("EVAL-QUERY: repeated-query cache on a Zipf(1.2) stream",
           format_table([row], ["uncached_ms", "cached_ms", "hit_rate",
                                "speedup"]))
    assert row["hit_rate"] > 0.5
    assert row["speedup"] > 1.5


def test_shape_verified_query_overhead(benchmark, report):
    """Verification (proof production + checking) costs a measurable but
    bounded multiple over plain retrieval."""
    def run():
        chain = Blockchain(ChainParams(chain_id="vq"))
        database = ProvenanceDatabase()
        service = AnchorService(chain, batch_size=32)
        sink = CaptureSink(database, service)
        for i in range(640):
            sink.deliver({"record_id": f"r{i}", "domain": "generic",
                          "subject": f"s{i % 8}", "actor": "u",
                          "operation": "w", "timestamp": i})
        service.flush()
        engine = ProvenanceQueryEngine(database, service)
        t0 = time.perf_counter()
        for _ in range(30):
            engine.history("s3")
        plain = (time.perf_counter() - t0) / 30
        t0 = time.perf_counter()
        for _ in range(30):
            answer = engine.history_verified("s3")
        verified = (time.perf_counter() - t0) / 30
        assert answer.verified
        return {"plain_us": plain * 1e6, "verified_us": verified * 1e6,
                "overhead_x": verified / plain}

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    report("EVAL-QUERY: verified vs plain history query (80 records)",
           format_table([row], ["plain_us", "verified_us", "overhead_x"]))
    assert row["overhead_x"] > 1.0


def test_shape_vassago_guided_vs_naive(benchmark, report):
    """Vassago's claim: dependency guidance touches only the relevant
    transactions; the gap widens with total chain content."""
    def run():
        rows = []
        for extra_noise in (10, 40, 160):
            system = Vassago([f"org-{i}" for i in range(4)])
            tip = system.commit_tx("org-0", "u", {"op": "root"})
            for i in range(1, 8):
                tip = system.commit_tx(f"org-{i % 4}", "u",
                                       {"op": f"s{i}"}, depends_on=[tip])
            # Unrelated traffic the naive scan must wade through.
            for i in range(extra_noise):
                system.commit_tx(f"org-{i % 4}", "noise", {"op": "noise"})
            system.query_provenance(tip)
            guided = system.last_query_cost.txs_examined
            system.query_provenance_naive(tip)
            naive = system.last_query_cost.txs_examined
            rows.append({"noise_txs": extra_noise, "guided": guided,
                         "naive": naive, "ratio": naive / guided})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("EVAL-QUERY: Vassago dependency-guided vs naive scan",
           format_table(rows, ["noise_txs", "guided", "naive", "ratio"]))
    assert all(r["guided"] < r["naive"] for r in rows)
    assert rows[-1]["ratio"] > rows[0]["ratio"]
    assert all(r["guided"] == 8 for r in rows), \
        "guided cost must be independent of unrelated traffic"


def test_shape_synergychain_aggregated_vs_sequential(benchmark, report):
    """SynergyChain's claim: the aggregation tier beats sequentially
    querying each member chain, increasingly so with more members."""
    def run():
        rows = []
        for n_orgs in (2, 4, 8):
            system = SynergyChain([f"org-{i}" for i in range(n_orgs)])
            system.rbac.assign("admin", "admin")
            for org in list(system.members):
                for i in range(300):
                    system.submit(org, {
                        "record_id": f"{org}-{i}", "domain": "generic",
                        "subject": f"s{i % 20}", "actor": "w",
                        "operation": "op", "timestamp": i,
                    })
            t0 = time.perf_counter()
            for _ in range(10):
                agg = system.query_aggregated("admin", "s5")
            agg_time = (time.perf_counter() - t0) / 10
            t0 = time.perf_counter()
            for _ in range(10):
                seq = system.query_sequential("admin", "s5")
            seq_time = (time.perf_counter() - t0) / 10
            assert len(agg) == len(seq)
            rows.append({"orgs": n_orgs,
                         "aggregated_us": agg_time * 1e6,
                         "sequential_us": seq_time * 1e6,
                         "speedup": seq_time / agg_time})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("EVAL-QUERY: SynergyChain aggregated vs sequential multichain",
           format_table(rows, ["orgs", "aggregated_us", "sequential_us",
                               "speedup"]))
    assert all(r["speedup"] > 1 for r in rows)
    assert rows[-1]["speedup"] > rows[0]["speedup"]
