#!/usr/bin/env python3
"""Shard-scaling benchmark: aggregate ingest throughput at 1/2/4/8 shards.

Replays the identical :class:`MultiTenantShardWorkload` stream (Zipf-
skewed tenants, a configurable fraction of cross-shard handoffs through
the 2PC coordinator) against a :class:`ShardedChain` at several shard
counts and records, per count:

* **parallel_s** — deployment-model wall time: shards are independent
  stacks on independent machines, so a round costs its *slowest* shard
  (admission + sealing, as measured per shard inside the facade) plus
  the beacon commit.  This is the headline scaling number.
* **serial_s** — the same work summed across shards: what this single
  Python process actually spent.  Serial time is roughly flat across
  shard counts (same total work), which is exactly the point — the
  speedup comes from the partition, not from doing less work.

Results go to ``BENCH_shard_scaling.json``.  In full mode the run
asserts the ISSUE-2 floor: >= 2.5x aggregate ingest throughput at 4
shards vs 1 shard.

Run: ``PYTHONPATH=src python benchmarks/bench_shard_scaling.py [--smoke]``
(``make bench-shard`` / part of ``make check``).
"""

from __future__ import annotations

import gc

from _harness import finish_bench, parse_bench_args
from repro.chain import Transaction, TxKind
from repro.crypto.merkle import leaf_hash
from repro.sharding import CrossShardCoordinator, ShardedChain
from repro.workloads import MultiTenantShardWorkload, ShardOp


def _tx_for(op: ShardOp) -> Transaction:
    """A capture transaction for one single-namespace workload op."""
    return Transaction(
        sender=op.actor,
        kind=TxKind.DATA,
        payload={
            "subject": op.subject,
            "key": f"{op.subject}#{op.timestamp}",
            "operation": op.operation,
            "value": {"size": op.size, "tool": "capture/v1",
                      "seq": op.timestamp},
        },
        timestamp=op.timestamp,
    )


def run_config(ops: list[ShardOp], n_shards: int,
               max_block_txs: int) -> dict:
    """Drive the full op stream through an ``n_shards`` deployment.

    The whole stream is submitted up front (saturated steady-state
    ingest: every shard always has work if any was routed to it), then
    rounds are sealed until the mempools drain and every cross-shard
    transfer settles.  Lock-deferred transactions are retried each
    round."""
    sharded = ShardedChain(n_shards=n_shards, max_block_txs=max_block_txs,
                           anchor_batch_size=256)
    coordinator = CrossShardCoordinator(sharded, timeout_rounds=4)
    # A collector pause lands on one shard's timer and inflates the
    # per-round max; a real deployment's shards do not share a heap.
    gc.collect()
    gc.disable()
    parallel_s = serial_s = 0.0
    rounds = 0
    aborted_conflicts = 0
    txs: list[Transaction] = []
    for op in ops:
        if op.kind == "cross":
            transfer = coordinator.begin(
                op.subject, op.target_subject,
                {"size": op.size}, actor=op.actor, timestamp=op.timestamp,
            )
            if transfer.state == "aborted":
                aborted_conflicts += 1
        else:
            txs.append(_tx_for(op))
    def submit_pending(pending):
        # Retry lock-deferred AND mempool-rejected transactions — the
        # backpressure report partitions the input; dropping either
        # bucket would silently shrink the workload.
        report = sharded.submit_many(pending)
        return report.deferred + [tx for tx, _ in report.rejected]

    pending = submit_pending(txs)
    while pending or sharded.mempool_backlog or coordinator.active:
        round_report = sharded.seal_round()
        parallel_s += round_report.critical_path_s
        serial_s += round_report.serial_s
        rounds += 1
        if pending:
            pending = submit_pending(pending)
    gc.enable()
    committed = sharded.total_txs_committed
    per_shard_committed = [len(s.chain.receipts) for s in sharded.shards]
    return {
        "n_shards": n_shards,
        "rounds": rounds,
        "ops": len(ops),
        "txs_committed": committed,
        "per_shard_txs": per_shard_committed,
        "max_shard_share": max(per_shard_committed) / max(1, committed),
        "transfers_committed": coordinator.committed,
        "transfers_aborted": aborted_conflicts,
        "beacon_height": sharded.beacon.height,
        "parallel_s": parallel_s,
        "serial_s": serial_s,
        "ops_per_s_parallel": len(ops) / parallel_s,
        "ops_per_s_serial": len(ops) / serial_s,
    }


def main() -> None:
    args = parse_bench_args(__doc__, extra=lambda p: p.add_argument(
        "--shards", default="1,2,4,8",
        help="comma-separated shard counts"))

    if args.smoke:
        n_ops, max_block_txs = 3_000, 64
    else:
        n_ops, max_block_txs = 24_000, 256
    shard_counts = [int(s) for s in args.shards.split(",")]

    workload = MultiTenantShardWorkload(
        n_tenants=128, objects_per_tenant=64, zipf_s=0.85,
        cross_shard_ratio=0.02, seed=7,
    )
    ops = workload.generate(n_ops)
    # Warm the global Merkle leaf-hash LRU once so every configuration
    # runs equally warm (tx content is identical across configurations,
    # so without this the first-run configuration would pay all the
    # cold-cache cost).
    for op in ops:
        if op.kind == "record":
            leaf_hash(_tx_for(op).tx_hash)

    runs = [run_config(ops, n, max_block_txs) for n in shard_counts]
    base = runs[0]
    for run in runs:
        run["speedup_vs_1shard"] = (
            run["ops_per_s_parallel"] / base["ops_per_s_parallel"]
        )

    results = {
        "mode": "smoke" if args.smoke else "full",
        "model": ("per-round critical path: slowest shard (admission + "
                  "seal) + beacon commit; shards run on independent "
                  "machines"),
        "config": {"n_ops": n_ops, "max_block_txs": max_block_txs,
                   "n_tenants": 128, "zipf_s": 0.85,
                   "cross_shard_ratio": 0.02},
        "runs": runs,
    }
    print(f"shard scaling ({results['mode']}): {n_ops} ops, "
          f"block limit {max_block_txs}")
    for run in runs:
        print(f"  {run['n_shards']:2d} shard(s): "
              f"{run['ops_per_s_parallel']:10.0f} ops/s  "
              f"({run['speedup_vs_1shard']:5.2f}x)  "
              f"rounds={run['rounds']:4d}  "
              f"max-share={run['max_shard_share']:.2f}  "
              f"2pc={run['transfers_committed']}")

    # Acceptance floor (ISSUE 2): >= 2.5x aggregate ingest at 4 shards.
    by_count = {run["n_shards"]: run for run in runs}
    floors = []
    if 4 in by_count:
        floors.append(("4-shard throughput speedup",
                       by_count[4]["speedup_vs_1shard"], 2.5))
    finish_bench(results, "BENCH_shard_scaling.json", args, floors=floors)


if __name__ == "__main__":
    main()
