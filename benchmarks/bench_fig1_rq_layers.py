"""FIG1 — the interrelation of RQ1 → RQ2 → RQ3 (paper Figure 1).

The figure's claim is architectural: multi-chain provenance (RQ3) builds
on intra-chain collaboration (RQ2), which builds on single-entity
provenance (RQ1).  This bench measures the *cost of widening the
environment* for the same logical work — recording and then verifying a
batch of provenance records:

* RQ1: one owner, one chain (ProvChain-style, PoA-sealed for
  comparability);
* RQ2: eight collaborators on one consortium chain (SciLedger);
* RQ3: three organizations on separate chains joined by a unanimous
  bridge (ForensiCross).

Expected shape: cost strictly increases across the layers — collaboration
adds multi-party records and invalidation machinery; multi-chain adds
bridge endorsements and per-org chains.
"""

import time

from repro.analysis import format_table
from repro.clock import SimClock
from repro.consensus import ProofOfAuthority
from repro.systems import CloudProvenanceSystem, ForensiCross, SciLedger
from repro.workloads import WorkflowShape

N_RECORDS = 40


def run_rq1():
    """Single entity: N cloud operations captured, anchored, audited."""
    system = CloudProvenanceSystem(
        engine=ProofOfAuthority(["owner"]), chain_id="rq1",
        batch_size=8, pseudonymize=False,
    )
    system.create("owner", "file-0", b"seed")
    for i in range(N_RECORDS - 1):
        system.update("owner", "file-0", b"v%d" % i)
    answer = system.audit_object("file-0")
    assert answer.verified
    return {"records": system.records_captured,
            "chains": 1,
            "blocks": system.chain.height}


def run_rq2():
    """Collaboration: 8 users execute a shared workflow on one chain."""
    ledger = SciLedger([f"inst-{i}" for i in range(4)], batch_size=8)
    ledger.create_workflow("w", "pi")
    specs = WorkflowShape(n_tasks=N_RECORDS // 2, fanout=2,
                          users=8, seed=9).tasks()
    for spec in specs:
        ledger.design_task("w", spec["task_id"], spec["user_id"],
                           spec["inputs"], spec["outputs"])
    ledger.run_workflow("w")
    cascade = ledger.invalidate(specs[0]["task_id"])
    ledger.re_execute(cascade)
    answer = ledger.provenance_of(specs[-1]["outputs"][0])
    assert answer.verified
    return {"records": len(ledger.database),
            "chains": 1,
            "blocks": ledger.chain.height}


def run_rq3():
    """Multi-chain: a joint case across 3 org chains over the bridge."""
    orgs = ["us", "eu", "apac"]
    joint = ForensiCross(orgs)
    actors = {org: f"lead-{org}" for org in orgs}
    joint.open_joint_case("JC", actors)
    joint.sync_stage("JC", actors)                 # preservation
    per_org = N_RECORDS // (3 * 2)
    for org in orgs:
        for i in range(per_org):
            joint.orgs[org].collect_evidence(
                "JC", f"{org}-ev-{i}", actors[org],
                b"payload-%d" % i, "image",
            )
    joint.share_evidence("JC", "us", "eu", "us-ev-0", actors["us"])
    joint.sync_stage("JC", actors)                 # collection
    bundle = joint.extract_cross_chain("JC", actors)
    assert bundle["all_verified"]
    records = sum(len(b["records"])
                  for b in bundle["organizations"].values())
    blocks = sum(system.chain.height for system in joint.orgs.values())
    return {"records": records,
            "chains": len(orgs) + 1,               # + the bridge chain
            "blocks": blocks + joint.bridge.chain.height}


LAYERS = [("RQ1 single entity", run_rq1),
          ("RQ2 intra-chain collaboration", run_rq2),
          ("RQ3 multi-chain collaboration", run_rq3)]


def test_fig1_layered_costs(benchmark, report):
    def sweep():
        rows = []
        for name, runner in LAYERS:
            t0 = time.perf_counter()
            stats = runner()
            elapsed_ms = (time.perf_counter() - t0) * 1e3
            rows.append({"layer": name, "ms": round(elapsed_ms, 1), **stats})
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report("FIG1: the same provenance job as the environment widens",
           format_table(rows, ["layer", "records", "chains", "blocks",
                               "ms"]))
    # The architectural shape: each layer engages strictly more machinery.
    assert rows[0]["chains"] < rows[2]["chains"]
    assert rows[0]["ms"] <= rows[2]["ms"] * 10      # sanity ordering guard
    assert rows[1]["records"] >= rows[0]["records"] // 2


def test_rq1_layer(benchmark):
    benchmark.pedantic(run_rq1, rounds=2, iterations=1)


def test_rq2_layer(benchmark):
    benchmark.pedantic(run_rq2, rounds=2, iterations=1)


def test_rq3_layer(benchmark):
    benchmark.pedantic(run_rq3, rounds=2, iterations=1)
