"""FIG5 — the five forensic investigation stages (paper Figure 5).

Runs generated cases through identification → preservation → collection
→ analysis → reporting, measuring per-stage operation cost and the
distributed-Merkle integrity machinery (ForensiBlock's construction).

Expected shape: proof generation/verification stays cheap (logarithmic
in stage size) while case roots commit to every action; custody stays
intact across arbitrarily many accesses.
"""

import pytest

from repro.analysis import format_table
from repro.clock import SimClock
from repro.domains import CaseManager, InvestigationStage
from repro.provenance.capture import CaptureSink
from repro.storage.provdb import ProvenanceDatabase
from repro.workloads import ForensicCaseWorkload


def run_case(manager, case_number, plan):
    manager.open_case(case_number, "lead")
    manager.advance_stage(case_number, "lead")        # preservation
    half = len(plan["evidence"]) // 2
    for item in plan["evidence"][:half]:
        manager.collect_evidence(case_number, item["evidence_id"],
                                 item["collector"], item["content"],
                                 item["file_type"],
                                 depends_on=item["depends_on"])
    manager.advance_stage(case_number, "lead")        # collection
    for item in plan["evidence"][half:]:
        manager.collect_evidence(case_number, item["evidence_id"],
                                 item["collector"], item["content"],
                                 item["file_type"],
                                 depends_on=item["depends_on"])
    manager.advance_stage(case_number, "lead")        # analysis
    for access in plan["accesses"]:
        manager.access_evidence(case_number, access["evidence_id"],
                                access["actor"], access["purpose"])
    manager.advance_stage(case_number, "lead")        # reporting
    manager.close_case(case_number, "lead")


@pytest.mark.parametrize("n_evidence", [20, 100])
def test_full_case_lifecycle(benchmark, n_evidence):
    plan = ForensicCaseWorkload(n_evidence=n_evidence,
                                n_accesses=2 * n_evidence, seed=1).plan()
    counter = iter(range(10_000))

    def run():
        manager = CaseManager(CaptureSink(ProvenanceDatabase()), SimClock())
        run_case(manager, f"C-{next(counter)}", plan)
        return manager

    manager = benchmark(run)
    case = next(iter(manager.cases.values()))
    assert not case.is_open


def test_forest_proof_generation(benchmark):
    manager = CaseManager(CaptureSink(ProvenanceDatabase()), SimClock())
    plan = ForensicCaseWorkload(n_evidence=100, n_accesses=200,
                                seed=2).plan()
    run_case(manager, "C", plan)
    benchmark(lambda: manager.prove_case_entry(
        "C", InvestigationStage.ANALYSIS, 10
    ))


def test_forest_proof_verification(benchmark):
    manager = CaseManager(CaptureSink(ProvenanceDatabase()), SimClock())
    plan = ForensicCaseWorkload(n_evidence=50, n_accesses=100,
                                seed=3).plan()
    run_case(manager, "C", plan)
    case = manager.cases["C"]
    item = case.evidence[plan["evidence"][0]["evidence_id"]]
    proof = manager.prove_case_entry("C", InvestigationStage.PRESERVATION, 0)
    record = {"evidence_id": item.evidence_id,
              "content_hash": item.content_hash,
              "actor": item.collected_by,
              "timestamp": item.collected_at}
    ok = benchmark(lambda: case.forest.verify(record, proof))
    assert ok


def test_shape_per_stage_accounting(once, report):
    """Stage-by-stage record/forest accounting for one generated case."""
    database = ProvenanceDatabase()
    manager = CaseManager(CaptureSink(database), SimClock())
    plan = ForensicCaseWorkload(n_evidence=40, n_accesses=120,
                                seed=4).plan()
    once(lambda: run_case(manager, "C", plan))
    case = manager.cases["C"]
    rows = []
    for stage in InvestigationStage.ordered():
        stage_records = database.scan(
            lambda r, s=stage.value: r.get("stage") == s
        )
        forest_entries = (case.forest.stage_size(stage.value)
                          if stage.value in case.forest.stages else 0)
        rows.append({"stage": stage.value,
                     "records": len(stage_records),
                     "forest_entries": forest_entries})
    report("FIG5: per-stage accounting (40 evidence items, 120 accesses)",
           format_table(rows, ["stage", "records", "forest_entries"]))
    by_stage = {r["stage"]: r for r in rows}
    assert by_stage["preservation"]["forest_entries"] == 20
    assert by_stage["collection"]["forest_entries"] == 20
    assert by_stage["analysis"]["forest_entries"] == 120
    assert manager.custody_intact("C")
    # Integrity: every stage's subtree is committed under one root.
    assert len(case.forest.stages) == 3
