#!/usr/bin/env python3
"""Gateway benchmark: O(1000) socket capture clients vs in-process.

Measures what the socket front door (:mod:`repro.gateway`) costs and
guarantees when a large simulated capture fleet streams transactions
over real loopback TCP into one ingest pipeline:

* **fleet vs in-process** — the headline.  The in-process baseline
  drives the identical workload — same batches, same shard layout,
  same wire codec round trip (encode frame → decode frame → submit)
  — straight into ``IngestPipeline.submit_many`` and seals to
  drained; serialization is part of the capture workload either way,
  so the ratio isolates what the *network* costs.  The gateway run
  terminates ~1000 concurrent asyncio clients, each speaking framed
  batched submits, with sealing overlapped off-loop.
  ``throughput_ratio`` (gateway / in-process events committed per
  second) is asserted ``>= 0.5`` in full mode: asyncio scheduling and
  socket hops for a thousand clients may cost at most half the
  in-process rate.
* **submit ack latency** — p50/p99 of a client's submit→report round
  trip under full fleet contention.  At saturation the fair-share ack
  time is ``outstanding txs / gateway throughput`` (every batch waits
  its turn behind one frame from each peer), so the bound is a
  *fairness* bound: p99 must stay within ``3x`` fair share — a LIFO
  or starvation-prone server fails it even at identical throughput.
* **QueueFull storm** — tiny queues, greedy clients, every submission
  bounced at least once: the never-drop contract.  ``lost`` (sent
  minus committed) is asserted ``== 0`` in full mode; drops are
  backpressured-and-retried, never silent.

Results go to ``BENCH_gateway.json``.

Run: ``PYTHONPATH=src python benchmarks/bench_gateway.py [--smoke]``
(``make bench-gateway`` / smoke in ``make check``).
"""

from __future__ import annotations

import asyncio
import gc
import json
import time

from _harness import finish_bench, parse_bench_args
from repro.chain import Transaction, TxKind
from repro.gateway import AsyncGatewayClient, GatewayServer, encode_frame
from repro.gateway.frames import decode_frame_payload, frame_to_txs, txs_to_frame_body
from repro.ingest import IngestPipeline
from repro.net_retry import RetryPolicy
from repro.obs.runtime import Telemetry
from repro.sharding import ShardedChain

N_SHARDS = 4
MAX_BLOCK_TXS = 256


def make_txs(client_idx: int, n: int, salt: str = "") -> list[Transaction]:
    return [
        Transaction(
            f"sensor-{client_idx % 97}", TxKind.DATA,
            {"subject": f"t{(client_idx + i) % 41}/obj{salt}",
             "key": f"c{client_idx}k{i}", "value": i},
            timestamp=i, fee=client_idx * n + i,
        ).seal()
        for i in range(n)
    ]


def percentile(samples: list[float], p: float) -> float:
    ordered = sorted(samples)
    return ordered[int(p * (len(ordered) - 1))]


def bench_in_process(n_clients: int, per_client: int,
                     batch: int) -> dict:
    telemetry = Telemetry()
    sharded = ShardedChain(n_shards=N_SHARDS,
                           max_block_txs=MAX_BLOCK_TXS,
                           telemetry=telemetry)
    pipe = IngestPipeline(sharded, queue_capacity=256 * 1024,
                          max_blocks_per_round=32, telemetry=telemetry)
    payloads = [make_txs(c, per_client) for c in range(n_clients)]
    gc.collect()
    # Same wire codec round trip the gateway path pays: the capture
    # workload arrives serialized either way.
    t0 = time.perf_counter()
    for txs in payloads:
        for i in range(0, len(txs), batch):
            frame = encode_frame(txs_to_frame_body(txs[i:i + batch], 1))
            pipe.submit_many(frame_to_txs(decode_frame_payload(frame[4:])))
    pipe.run_until_drained()
    total_s = time.perf_counter() - t0
    committed = sharded.total_txs_committed
    assert committed == n_clients * per_client
    return {
        "total_s": round(total_s, 4),
        "events_per_s": round(committed / total_s),
        "txs_committed": committed,
    }


def bench_gateway_fleet(n_clients: int, per_client: int,
                        batch: int) -> dict:
    telemetry = Telemetry()
    sharded = ShardedChain(n_shards=N_SHARDS,
                           max_block_txs=MAX_BLOCK_TXS,
                           telemetry=telemetry)
    pipe = IngestPipeline(sharded, queue_capacity=256 * 1024,
                          max_blocks_per_round=32, telemetry=telemetry)
    server = GatewayServer(pipe, auto_seal=True, telemetry=telemetry)
    latencies: list[float] = []

    async def scenario() -> float:
        host, port = await server.start()

        async def connect(idx: int) -> AsyncGatewayClient:
            return await AsyncGatewayClient.connect(
                host, port, tenant=f"fleet-{idx % 32}")

        # Connect the fleet in slices to keep accept bursts sane.
        clients: list[AsyncGatewayClient] = []
        for start in range(0, n_clients, 200):
            clients.extend(await asyncio.gather(
                *(connect(i)
                  for i in range(start, min(start + 200, n_clients)))))

        async def capture(idx: int, client: AsyncGatewayClient):
            txs = make_txs(idx, per_client)
            queued = 0
            for i in range(0, len(txs), batch):
                t0 = time.perf_counter()
                result = await client.submit(txs[i:i + batch])
                latencies.append(time.perf_counter() - t0)
                queued += result.queued
            assert queued == per_client, "fleet bench saw backpressure"

        gc.collect()
        t0 = time.perf_counter()
        await asyncio.gather(*(capture(i, c)
                               for i, c in enumerate(clients)))
        for client in clients:
            await client.close()
        await server.drain()
        return time.perf_counter() - t0

    total_s = asyncio.run(scenario())
    committed = sharded.total_txs_committed
    assert committed == n_clients * per_client
    snap = telemetry.registry.snapshot()["counters"]
    return {
        "n_clients": n_clients,
        "total_s": round(total_s, 4),
        "events_per_s": round(committed / total_s),
        "txs_committed": committed,
        "submit_ack_latency": {
            "p50_ms": round(percentile(latencies, 0.50) * 1e3, 2),
            "p99_ms": round(percentile(latencies, 0.99) * 1e3, 2),
            "max_ms": round(max(latencies) * 1e3, 2),
        },
        "connections": snap.get("gateway_connections_total", 0),
        "frames_sent": snap.get("gateway_frames_sent_total", 0),
        "undeliverable": sum(
            v for k, v in snap.items()
            if k.startswith("gateway_frames_undeliverable_total")),
    }


def bench_queuefull_storm(n_clients: int, per_client: int) -> dict:
    """Greedy fleet vs tiny queues: everything bounces, nothing drops."""
    telemetry = Telemetry()
    sharded = ShardedChain(n_shards=2, max_block_txs=64,
                           telemetry=telemetry)
    pipe = IngestPipeline(sharded, queue_capacity=64,
                          telemetry=telemetry)
    server = GatewayServer(pipe, auto_seal=True, telemetry=telemetry)
    policy = RetryPolicy(max_retries=200, tick_s=0.001,
                         max_backoff_ticks=64)

    async def scenario() -> tuple[float, list[int]]:
        host, port = await server.start()

        async def flood(idx: int) -> int:
            async with await AsyncGatewayClient.connect(
                    host, port, policy=policy) as client:
                txs = make_txs(idx, per_client, salt="storm")
                result = await client.submit_with_retry(txs)
                assert result.queued == per_client
                return result.attempts

        t0 = time.perf_counter()
        attempts = await asyncio.gather(
            *(flood(i) for i in range(n_clients)))
        await server.drain()
        return time.perf_counter() - t0, list(attempts)

    total_s, attempts = asyncio.run(scenario())
    sent = n_clients * per_client
    committed = sharded.total_txs_committed
    snap = telemetry.registry.snapshot()["counters"]
    return {
        "n_clients": n_clients,
        "sent": sent,
        "committed": committed,
        "lost": sent - committed,
        "total_s": round(total_s, 4),
        "rejected_then_retried": snap.get(
            "gateway_txs_rejected_total", 0),
        "server_pauses": snap.get("gateway_pauses_total", 0),
        "max_client_attempts": max(attempts),
        "mean_client_attempts": round(
            sum(attempts) / len(attempts), 1),
    }


def main() -> None:
    args = parse_bench_args(__doc__)

    if args.smoke:
        n_clients, per_client, batch = 100, 20, 10
        storm_clients, storm_per_client = 20, 40
    else:
        n_clients, per_client, batch = 1_000, 60, 20
        storm_clients, storm_per_client = 100, 100

    in_proc = bench_in_process(n_clients, per_client, batch)
    fleet = bench_gateway_fleet(n_clients, per_client, batch)
    storm = bench_queuefull_storm(storm_clients, storm_per_client)

    ratio = round(fleet["events_per_s"] / in_proc["events_per_s"], 3)
    p99_s = fleet["submit_ack_latency"]["p99_ms"] / 1e3
    # Fair-share ack time at saturation: every batch waits behind one
    # outstanding frame from each of the other clients.
    fair_share_s = (n_clients * batch) / fleet["events_per_s"]
    p99_bound_s = round(3.0 * fair_share_s, 3)
    result = {
        "mode": "smoke" if args.smoke else "full",
        "model": (
            f"{n_clients} concurrent asyncio capture clients over "
            f"loopback TCP, framed batched submits ({batch}/frame) "
            f"into a {N_SHARDS}-shard in-memory deployment with "
            "off-loop sealing; baseline = identical workload through "
            "IngestPipeline.submit_many in process; storm = "
            f"{storm_clients} greedy clients vs 64-deep queues, "
            "retrying on structured RETRY_AFTER hints"
        ),
        "config": {
            "n_clients": n_clients, "per_client": per_client,
            "batch": batch, "n_shards": N_SHARDS,
            "max_block_txs": MAX_BLOCK_TXS,
            "storm_clients": storm_clients,
            "storm_per_client": storm_per_client,
        },
        "in_process": in_proc,
        "gateway_fleet": fleet,
        "throughput_ratio": ratio,
        "queuefull_storm": storm,
        "floors": {
            "throughput_ratio": 0.5,
            "submit_ack_fair_share_s": round(fair_share_s, 3),
            "submit_ack_p99_bound_s": p99_bound_s,
            "storm_lost": 0,
        },
    }
    print(json.dumps(result, indent=2))
    finish_bench(result, "BENCH_gateway.json", args, floors=[
        ("gateway/in-process throughput", ratio, 0.5),
        ("submit ack p99 within 3x fair share", p99_bound_s - p99_s, 0.0),
        ("storm zero loss", float(storm["lost"] == 0), 1.0),
    ])


if __name__ == "__main__":
    main()
