#!/usr/bin/env python3
"""Persistence benchmark: durable vs in-memory append, reopen vs replay.

Measures what the ISSUE-3 storage backend costs and what it buys:

* **append throughput** — the same block stream committed to an
  in-memory chain vs a durable chain (segment log + sqlite index +
  per-block index transaction).  The durable factor is the *price of
  durability* per block.
* **record ingest throughput** — ``ProvenanceDatabase.insert`` on both
  backends.
* **reopen** — the payoff: opening the durable chain from its
  checkpointed state image (``blocks_replayed_on_open == 0``) vs a
  genesis replay of the same blocks (the only option the seed had).
  ``reopen_speedup_vs_replay`` is the headline number and the full run
  asserts it >= 5x.

Results go to ``BENCH_persist.json``.

Run: ``PYTHONPATH=src python benchmarks/bench_persist.py [--smoke]``
(``make bench-persist``).
"""

from __future__ import annotations

import gc
import json
import shutil
import tempfile
import time
from pathlib import Path

from _harness import finish_bench, parse_bench_args

from repro.chain import Blockchain, ChainParams, Transaction, TxKind
from repro.persist import DurableStorage
from repro.storage.provdb import ProvenanceDatabase


def build_blocks(chain: Blockchain, n_blocks: int, txs_per_block: int):
    for b in range(n_blocks):
        height = chain.height + 1
        txs = [
            Transaction(f"acct-{j % 16}", TxKind.DATA,
                        {"key": f"b{height}/t{j}", "value": j},
                        timestamp=height).seal()
            for j in range(txs_per_block)
        ]
        chain.append_block(chain.build_block(txs, timestamp=height))


def bench_chain_append(n_blocks: int, txs_per_block: int,
                       store_dir: str) -> dict:
    gc.collect()
    memory = Blockchain(ChainParams(chain_id="bench"))
    t0 = time.perf_counter()
    build_blocks(memory, n_blocks, txs_per_block)
    memory_s = time.perf_counter() - t0

    storage = DurableStorage(store_dir)
    durable = Blockchain(ChainParams(chain_id="bench"),
                         store=storage.blocks,
                         snapshot_store=storage.state)
    gc.collect()
    t0 = time.perf_counter()
    build_blocks(durable, n_blocks, txs_per_block)
    durable_s = time.perf_counter() - t0
    assert durable.head.block_hash == memory.head.block_hash
    durable.close()

    txs = n_blocks * txs_per_block
    return {
        "n_blocks": n_blocks,
        "txs_per_block": txs_per_block,
        "memory_append_s": round(memory_s, 4),
        "durable_append_s": round(durable_s, 4),
        "memory_txs_per_s": round(txs / memory_s),
        "durable_txs_per_s": round(txs / durable_s),
        "durable_overhead_factor": round(durable_s / memory_s, 2),
    }


def bench_reopen(n_blocks: int, txs_per_block: int, store_dir: str) -> dict:
    # Reopen from the checkpoint written by close() above.
    gc.collect()
    t0 = time.perf_counter()
    storage = DurableStorage(store_dir)
    reopened = Blockchain(ChainParams(chain_id="bench"),
                          store=storage.blocks,
                          snapshot_store=storage.state)
    reopen_s = time.perf_counter() - t0
    assert reopened.blocks_replayed_on_open == 0
    head_hash = reopened.head.block_hash
    state_root = reopened.state.state_root()
    storage.close()

    # The seed's only option: replay every block from genesis.
    gc.collect()
    storage = DurableStorage(store_dir)
    t0 = time.perf_counter()
    replayer = Blockchain(ChainParams(chain_id="bench"))
    for height in range(1, storage.blocks.height() + 1):
        replayer._commit_block(storage.blocks.block_at(height))
    replay_s = time.perf_counter() - t0
    assert replayer.head.block_hash == head_hash
    assert replayer.state.state_root() == state_root
    storage.close()

    return {
        "reopen_from_snapshot_s": round(reopen_s, 4),
        "genesis_replay_s": round(replay_s, 4),
        "reopen_speedup_vs_replay": round(replay_s / reopen_s, 1),
    }


def bench_records(n_records: int, store_dir: str) -> dict:
    records = [
        {"record_id": f"r{i:06d}", "subject": f"asset/{i % 97}",
         "actor": f"actor-{i % 13}", "operation": "update", "timestamp": i}
        for i in range(n_records)
    ]
    gc.collect()
    memory_db = ProvenanceDatabase()
    t0 = time.perf_counter()
    memory_db.insert_many(records)
    memory_s = time.perf_counter() - t0

    storage = DurableStorage(store_dir)
    durable_db = ProvenanceDatabase(store=storage.records)
    gc.collect()
    t0 = time.perf_counter()
    durable_db.insert_many(records)
    durable_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    storage.close()
    storage2 = DurableStorage(store_dir)
    reloaded = ProvenanceDatabase(store=storage2.records)
    reload_s = time.perf_counter() - t0
    assert len(reloaded) == n_records
    storage2.close()

    return {
        "n_records": n_records,
        "memory_insert_s": round(memory_s, 4),
        "durable_insert_s": round(durable_s, 4),
        "memory_records_per_s": round(n_records / memory_s),
        "durable_records_per_s": round(n_records / durable_s),
        "reopen_and_reindex_s": round(reload_s, 4),
    }


def main() -> None:
    args = parse_bench_args(__doc__)

    if args.smoke:
        n_blocks, txs_per_block, n_records = 40, 8, 500
    else:
        n_blocks, txs_per_block, n_records = 600, 16, 20_000

    root = tempfile.mkdtemp(prefix="repro-bench-persist-")
    try:
        chain_dir = str(Path(root) / "chain")
        append = bench_chain_append(n_blocks, txs_per_block, chain_dir)
        reopen = bench_reopen(n_blocks, txs_per_block, chain_dir)
        records = bench_records(n_records, str(Path(root) / "records"))
    finally:
        shutil.rmtree(root, ignore_errors=True)

    result = {
        "mode": "smoke" if args.smoke else "full",
        "model": ("durable = segment log (CRC frames, flush per append, "
                  "fsync on seal/checkpoint) + sqlite index txn per "
                  "block; reopen = state snapshot at head, zero replay"),
        "chain_append": append,
        "chain_reopen": reopen,
        "record_ingest": records,
    }
    print(json.dumps(result, indent=2))
    finish_bench(result, "BENCH_persist.json", args, floors=[
        ("reopen-from-snapshot speedup vs genesis replay",
         reopen["reopen_speedup_vs_replay"], 5.0),
    ])


if __name__ == "__main__":
    main()
