"""TAB2 — design considerations across domains (paper Table 2).

Regenerates the consideration matrix from the domain capability
registries and runs one end-to-end scenario per domain to demonstrate
the considerations are *implemented*, not just listed.  The benchmark
numbers are the per-domain scenario costs.
"""

import pytest

from repro.analysis.tables import render_table2, table2_data
from repro.clock import SimClock
from repro.provenance.capture import CaptureSink
from repro.storage.provdb import ProvenanceDatabase


def scenario_scientific():
    from repro.domains import WorkflowManager

    manager = WorkflowManager(CaptureSink(ProvenanceDatabase()), SimClock())
    manager.create_workflow("w", "pi")
    manager.design_task("w", "t1", "pi", ["raw"], ["mid"])
    manager.design_task("w", "t2", "pi", ["mid"], ["out"])
    manager.execute_task("t1")
    manager.execute_task("t2")
    cascade = manager.invalidate_task("t1")          # invalidating tasks
    for task in cascade:
        manager.re_execute(task)                     # re-execution
    return len(cascade)


def scenario_forensics():
    from repro.domains import CaseManager

    manager = CaseManager(CaptureSink(ProvenanceDatabase()), SimClock())
    manager.open_case("C", "lead")
    manager.advance_stage("C", "lead")               # stage coordination
    manager.collect_evidence("C", "e1", "lead", b"img", "image")
    manager.collect_evidence("C", "e2", "lead", b"vid", "video")  # modality
    manager.advance_stage("C", "lead")
    manager.advance_stage("C", "lead")
    manager.access_evidence("C", "e1", "analyst")
    return manager.case_root("C")


def scenario_ml():
    from repro.domains import FLConfig, FederatedLearning

    fl = FederatedLearning(
        FLConfig(n_participants=6, attacker_fraction=0.3, seed=1),
        CaptureSink(ProvenanceDatabase()),
    )
    fl.run(5)                                        # documented training
    return fl.model_error()


def scenario_supply_chain():
    from repro.domains import ColdChainMonitor, SupplyChainRegistry

    registry = SupplyChainRegistry(
        CaptureSink(ProvenanceDatabase()), {"maker"},
        SimClock(), ColdChainMonitor(20, 80),
    )
    registry.register_product("maker", "p", "b", "device", 100,
                              with_puf=True)
    registry.initiate_transfer("p", "maker", "dist")  # ownership transfer
    registry.confirm_transfer("p", "dist")
    registry.record_temperature("p", "truck", 50)     # industry focus
    return registry.trace("p")


def scenario_healthcare():
    from repro.domains import EHRSystem

    ehr = EHRSystem(CaptureSink(ProvenanceDatabase()), SimClock())
    ehr.credential_staff("dr", ["doctor"])
    ehr.consents.grant("pat", "dr")                   # data ownership
    record = ehr.add_record("pat", "dr", ["note"], b"x", ["doctor"])
    ehr.read_record(record.ehr_id, "dr")              # managed access
    return len(ehr.disclosures_for("pat"))            # HIPAA accounting


SCENARIOS = {
    "scientific": scenario_scientific,
    "digital_forensics": scenario_forensics,
    "machine_learning": scenario_ml,
    "supply_chain": scenario_supply_chain,
    "healthcare": scenario_healthcare,
}


def test_table2_regenerates(once, report):
    data = once(table2_data)
    assert set(data) == set(SCENARIOS)
    # Every domain lists at least four implemented considerations.
    assert all(len(v) >= 4 for v in data.values())
    report("TAB2: considerations -> implementing modules", render_table2())


@pytest.mark.parametrize("domain", sorted(SCENARIOS))
def test_domain_scenario(benchmark, domain):
    result = benchmark(SCENARIOS[domain])
    assert result is not None
