"""Sharded execution subsystem: router, beacon, 2PC, federated queries.

Pins the subsystem's contracts:

* routing is deterministic, total, and namespace-stable;
* every shard block lands under exactly one beacon header and verifies
  against it (full-node and header-only light paths, tamper rejected);
* cross-shard 2PC commits atomically, aborts-and-unlocks on timeout,
  and handoff provenance exists *only* after full commit;
* federated verified answers compound anchored proofs with beacon
  proofs, and the packaged :class:`FederatedProof` verifies against a
  single beacon header.
"""

import pytest

from repro.chain import Transaction, TxKind
from repro.chain.lightclient import LightClient
from repro.errors import InvalidTransaction, QueryError, ShardError
from repro.network import ChainNode, SimNet
from repro.sharding import (
    ABORTED,
    COMMITTED,
    PREPARING,
    CrossShardCoordinator,
    FederatedProof,
    ShardedChain,
    ShardedQueryEngine,
    ShardRouter,
    namespace_of,
)
from repro.workloads import MultiTenantShardWorkload


def record_tx(subject: str, i: int = 0, actor: str = "agent") -> Transaction:
    return Transaction(sender=actor, kind=TxKind.DATA,
                       payload={"subject": subject, "key": f"{subject}#{i}",
                                "value": i},
                       timestamp=i)


def distinct_shard_namespaces(router: ShardRouter,
                              count: int = 2) -> list[str]:
    """Namespaces guaranteed to land on ``count`` different shards."""
    picked: list[str] = []
    seen: set[int] = set()
    i = 0
    while len(picked) < count:
        candidate = f"org-{i:03d}"
        i += 1
        shard = router.shard_for(candidate)
        if shard not in seen:
            seen.add(shard)
            picked.append(candidate)
    return picked


@pytest.fixture
def sharded() -> ShardedChain:
    return ShardedChain(n_shards=4, max_block_txs=8)


class TestRouter:
    def test_routing_is_deterministic_and_stable(self):
        a, b = ShardRouter(4), ShardRouter(4)
        for i in range(50):
            ns = f"tenant-{i}"
            assert a.shard_for(ns) == b.shard_for(ns)
            assert a.shard_for(ns) == a.shard_for(ns)

    def test_namespace_prefix_rule(self):
        assert namespace_of("orgA/lot-1") == "orgA"
        assert namespace_of("bare-subject") == "bare-subject"
        router = ShardRouter(8)
        assert (router.shard_for_subject("orgA/x")
                == router.shard_for_subject("orgA/y"))

    def test_key_precedence_namespace_subject_sender(self):
        router = ShardRouter(4)
        tx = Transaction(sender="s", kind=TxKind.DATA,
                         payload={"namespace": "explicit",
                                  "subject": "other/x"})
        assert router.key_for(tx) == "explicit"
        assert router.key_for(record_tx("orgA/x")) == "orgA"
        bare = Transaction(sender="s", kind=TxKind.DATA, payload={"k": 1})
        assert router.key_for(bare) == "s"

    def test_partition_is_total(self):
        router = ShardRouter(4)
        txs = [record_tx(f"t{i}/obj", i) for i in range(40)]
        buckets = router.partition(txs)
        assert sum(len(b) for b in buckets.values()) == 40
        assert set(buckets) <= set(range(4))

    def test_rejects_zero_shards(self):
        with pytest.raises(ShardError):
            ShardRouter(0)


class TestShardedChainSealing:
    def test_submit_routes_to_home_shard(self, sharded):
        tx = record_tx("orgA/x")
        shard_id = sharded.submit(tx)
        assert shard_id == sharded.router.shard_for("orgA")
        assert tx.tx_id in sharded.shard(shard_id).mempool

    def test_seal_round_commits_and_beacon_anchors(self, sharded):
        report = sharded.submit_many(
            [record_tx(f"t{i % 7}/obj", i) for i in range(30)]
        )
        assert report.accepted_total == 30
        assert not report.deferred
        sharded.seal_until_drained()
        assert sharded.total_txs_committed == 30
        beacon = sharded.beacon
        for shard in sharded.shards:
            for height in range(1, shard.chain.height + 1):
                assert beacon.is_anchored(shard.shard_id, height)
        sharded.verify_all(deep=True)

    def test_anchor_flush_blocks_are_beacon_anchored_next_round(self, sharded):
        sharded.ingest_record({"record_id": "r1", "subject": "orgA/x",
                               "actor": "a", "operation": "create",
                               "timestamp": 1})
        receipts = sharded.flush_anchors()
        [(shard_id, receipt)] = receipts.items()
        assert not sharded.beacon.is_anchored(shard_id, receipt.block_height)
        sharded.seal_round()
        assert sharded.beacon.is_anchored(shard_id, receipt.block_height)

    def test_round_report_timing_model(self, sharded):
        sharded.submit_many([record_tx(f"t{i}/o", i) for i in range(16)])
        report = sharded.seal_round()
        assert report.txs_sealed == 16
        assert 0 < report.critical_path_s <= report.serial_s
        assert report.beacon_receipt is not None

    def test_empty_round_skips_beacon(self, sharded):
        report = sharded.seal_round()
        assert report.beacon_receipt is None
        assert sharded.beacon.height == 0


class TestBeacon:
    def test_shard_block_proof_roundtrip(self, sharded):
        sharded.submit_many([record_tx(f"t{i}/o", i) for i in range(12)])
        sharded.seal_round()
        beacon = sharded.beacon
        shard = next(s for s in sharded.shards if s.chain.height > 0)
        block = shard.chain.block_at(1)
        proof = beacon.prove_shard_block(shard.shard_id, 1, block.block_hash)
        assert beacon.verify_shard_block(proof)

    def test_wrong_block_hash_rejected(self, sharded):
        sharded.submit(record_tx("orgA/x"))
        sharded.seal_round()
        beacon = sharded.beacon
        shard_id = sharded.router.shard_for("orgA")
        with pytest.raises(ShardError):
            beacon.prove_shard_block(shard_id, 1, b"\x00" * 32)

    def test_light_bundle_verifies_against_header_only(self, sharded):
        sharded.submit_many([record_tx(f"t{i}/o", i) for i in range(12)])
        sharded.seal_round()
        shard = next(s for s in sharded.shards if s.chain.height > 0)
        block = shard.chain.block_at(1)
        bundle = sharded.beacon.light_bundle(shard.shard_id, 1,
                                             block.block_hash)
        client = LightClient("beacon")
        client.sync_from(sharded.beacon.chain)
        header = client.header_at(bundle.shard_proof.beacon_height)
        assert bundle.verify(header)
        # The wrong header must not verify.
        assert not bundle.verify(client.header_at(0))

    def test_double_anchor_rejected(self, sharded):
        sharded.submit(record_tx("orgA/x"))
        sharded.seal_round()
        shard_id = sharded.router.shard_for("orgA")
        block_hash = sharded.shard(shard_id).chain.block_at(1).block_hash
        with pytest.raises(ShardError):
            sharded.beacon.anchor_round([(shard_id, 1, block_hash)])

    def test_duplicate_entry_within_round_rejected(self, sharded):
        with pytest.raises(ShardError):
            sharded.beacon.anchor_round(
                [(0, 1, b"\x01" * 32), (0, 1, b"\x02" * 32)]
            )


class TestCrossShard2PC:
    def _handoff_pair(self, sharded):
        ns_a, ns_b = distinct_shard_namespaces(sharded.router)
        return f"{ns_a}/lot-1", f"{ns_b}/lot-1"

    def test_commit_path(self, sharded):
        coordinator = CrossShardCoordinator(sharded, timeout_rounds=3)
        source, target = self._handoff_pair(sharded)
        transfer = coordinator.begin(source, target, {"qty": 5},
                                     actor="alice", timestamp=7)
        assert transfer.state == PREPARING
        assert transfer.is_cross_shard
        for _ in range(3):
            sharded.seal_round()
        assert transfer.state == COMMITTED
        assert transfer.outcome.completed
        assert coordinator.committed == 1
        # Handoff records landed on both home shards.
        src_shard = sharded.shard_for_subject(source)
        dst_shard = sharded.shard_for_subject(target)
        assert src_shard.database.get(f"{transfer.xid}:out")[
            "operation"] == "handoff-out"
        assert dst_shard.database.get(f"{transfer.xid}:in")[
            "operation"] == "handoff-in"
        # Locks released: regular traffic flows again.
        sharded.submit(record_tx(source, 99))

    def test_lock_blocks_conflicting_writes_until_commit(self, sharded):
        coordinator = CrossShardCoordinator(sharded, timeout_rounds=3)
        source, target = self._handoff_pair(sharded)
        coordinator.begin(source, target)
        with pytest.raises(ShardError):
            sharded.submit(record_tx(source, 1))
        report = sharded.submit_many([record_tx(target, 2)])
        assert len(report.deferred) == 1
        assert report.accepted_total == 0

    def test_abort_on_timeout_unlocks(self, sharded):
        coordinator = CrossShardCoordinator(sharded, timeout_rounds=2)
        source, target = self._handoff_pair(sharded)
        transfer = coordinator.begin(source, target)
        stalled = sharded.router.shard_for_subject(source)
        live = [i for i in range(sharded.n_shards) if i != stalled]
        # The source shard never seals, so the prepare phase cannot
        # complete; the deadline passes and the coordinator aborts.
        for _ in range(4):
            sharded.seal_round(shard_ids=live)
        assert transfer.state == ABORTED
        assert transfer.outcome.status == "aborted"
        assert transfer.outcome.extra["reason"] == "prepare_timeout"
        assert coordinator.aborted == 1
        # Unlocked: both subjects accept writes again.
        sharded.submit(record_tx(source, 1))
        sharded.submit(record_tx(target, 2))
        # No half-transfer ever materialized.
        for shard in sharded.shards:
            assert not shard.database.contains(f"{transfer.xid}:out")
            assert not shard.database.contains(f"{transfer.xid}:in")

    def test_lock_conflict_aborts_second_transfer(self, sharded):
        coordinator = CrossShardCoordinator(sharded)
        source, target = self._handoff_pair(sharded)
        first = coordinator.begin(source, target)
        second = coordinator.begin(source, f"{namespace_of(target)}/lot-2")
        assert first.state == PREPARING
        assert second.state == ABORTED
        assert second.outcome.extra["reason"] == "lock_conflict"

    def test_payload_cannot_override_protocol_fields(self, sharded):
        coordinator = CrossShardCoordinator(sharded, timeout_rounds=3)
        source, target = self._handoff_pair(sharded)
        transfer = coordinator.begin(
            source, target,
            {"operation": "evil", "subject": "other/x",
             "record_id": "collide", "note": "kept"},
        )
        for _ in range(3):
            sharded.seal_round()
        assert transfer.state == COMMITTED
        out = sharded.shard_for_subject(source).database.get(
            f"{transfer.xid}:out")
        assert out["operation"] == "handoff-out"
        assert out["subject"] == source
        assert out["note"] == "kept"        # benign payload keys survive

    def test_tx_queued_before_lock_does_not_seal_mid_2pc(self, sharded):
        coordinator = CrossShardCoordinator(sharded, timeout_rounds=3)
        source, target = self._handoff_pair(sharded)
        early = record_tx(source, 42)
        sharded.submit(early)               # admitted before the lock
        transfer = coordinator.begin(source, target)
        src_chain = sharded.shard_for_subject(source).chain
        sharded.seal_round()
        # The queued write was held back, not committed alongside the
        # lock leg.
        assert transfer.state != COMMITTED
        assert src_chain.find_transaction(early.tx_id) is None
        for _ in range(3):
            sharded.seal_round()
        assert transfer.state == COMMITTED
        sharded.seal_until_drained()        # lock released: it seals now
        assert src_chain.find_transaction(early.tx_id) is not None

    def test_ingest_record_respects_locks(self, sharded):
        coordinator = CrossShardCoordinator(sharded)
        source, target = self._handoff_pair(sharded)
        coordinator.begin(source, target)
        with pytest.raises(ShardError):
            sharded.ingest_record({"record_id": "r", "subject": source,
                                   "actor": "a", "operation": "update",
                                   "timestamp": 1})

    def test_failed_leg_submit_releases_locks(self, sharded, monkeypatch):
        """A leg that cannot even be queued must not leak the locks."""
        coordinator = CrossShardCoordinator(sharded)
        source, target = self._handoff_pair(sharded)

        def full_mempool(shard_id, tx):
            raise InvalidTransaction("mempool full")

        monkeypatch.setattr(sharded, "submit_to", full_mempool)
        transfer = coordinator.begin(source, target)
        assert transfer.state == ABORTED
        assert transfer.outcome.extra["reason"] == "submit_failed"
        monkeypatch.undo()
        sharded.submit(record_tx(source, 1))   # unlocked again

    def test_same_shard_transfer_commits(self, sharded):
        coordinator = CrossShardCoordinator(sharded)
        ns = distinct_shard_namespaces(sharded.router, 1)[0]
        transfer = coordinator.begin(f"{ns}/a", f"{ns}/b")
        assert not transfer.is_cross_shard
        assert transfer.participants == (
            sharded.router.shard_for(ns),
        )
        for _ in range(3):
            sharded.seal_round()
        assert transfer.state == COMMITTED


class TestFederatedQueries:
    def _committed_handoff(self, sharded):
        coordinator = CrossShardCoordinator(sharded, timeout_rounds=3)
        source, target = (f"{ns}/lot-9" for ns in
                          distinct_shard_namespaces(sharded.router))
        for i in range(3):
            sharded.ingest_record({
                "record_id": f"pre-{i}", "subject": source,
                "actor": "alice", "operation": "update", "timestamp": i,
            })
        transfer = coordinator.begin(source, target, actor="alice",
                                     timestamp=10)
        for _ in range(3):
            sharded.seal_round()
        assert transfer.state == COMMITTED
        sharded.flush_anchors()
        sharded.seal_round()
        return transfer, source, target

    def test_history_merges_across_shards_in_time_order(self, sharded):
        engine = ShardedQueryEngine(sharded)
        transfer, source, target = self._committed_handoff(sharded)
        rows = engine.trace(source, target)
        assert [r["record_id"] for r in rows[-2:]] == \
            [f"{transfer.xid}:in", f"{transfer.xid}:out"] or \
            [r["record_id"] for r in rows[-2:]] == \
            [f"{transfer.xid}:out", f"{transfer.xid}:in"]
        timestamps = [r.get("timestamp", 0) for r in rows]
        assert timestamps == sorted(timestamps)

    def test_trace_verified_compounds_anchor_and_beacon(self, sharded):
        engine = ShardedQueryEngine(sharded)
        transfer, source, target = self._committed_handoff(sharded)
        answer = engine.trace_verified(source, target)
        assert answer.verified
        assert len(answer.records) == 5      # 3 updates + out + in
        assert all(answer.beacon_verified)
        assert len(set(answer.shard_ids)) == 2
        assert not answer.unanchored

    def test_unflushed_record_fails_verification(self, sharded):
        engine = ShardedQueryEngine(sharded)
        sharded.ingest_record({"record_id": "r0", "subject": "orgA/x",
                               "actor": "a", "operation": "create",
                               "timestamp": 0})
        answer = engine.history_verified("orgA/x")
        assert not answer.verified
        assert answer.unanchored == ("r0",)

    def test_anchored_but_not_beacon_committed_fails(self, sharded):
        engine = ShardedQueryEngine(sharded)
        sharded.ingest_record({"record_id": "r0", "subject": "orgA/x",
                               "actor": "a", "operation": "create",
                               "timestamp": 0})
        sharded.flush_anchors()     # anchored on the shard...
        answer = engine.history_verified("orgA/x")
        assert not answer.verified  # ...but no beacon header covers it yet
        assert answer.proofs[0] is not None
        assert answer.beacon_verified == (False,)
        sharded.seal_round()
        assert engine.history_verified("orgA/x").verified

    def test_federated_proof_verifies_against_beacon_header(self, sharded):
        engine = ShardedQueryEngine(sharded)
        transfer, source, target = self._committed_handoff(sharded)
        record_id = f"{transfer.xid}:in"
        proof = engine.federated_proof(record_id)
        assert isinstance(proof, FederatedProof)
        record = next(r for r in engine.history(target)
                      if r["record_id"] == record_id)
        client = LightClient("beacon")
        client.sync_from(sharded.beacon.chain)
        header = client.header_at(proof.beacon_height)
        assert proof.verify(record, header)
        # Tampered record and wrong header both fail.
        tampered = dict(record, actor="mallory")
        assert not proof.verify(tampered, header)
        assert not proof.verify(record, client.header_at(0))

    def test_federated_proof_subject_hint_resolves_home_shard(self, sharded):
        engine = ShardedQueryEngine(sharded)
        transfer, source, target = self._committed_handoff(sharded)
        proof = engine.federated_proof(f"{transfer.xid}:in", subject=target)
        assert proof.shard_id == sharded.router.shard_for_subject(target)
        with pytest.raises(QueryError):
            # :in lives on the target's shard, not the source's.
            engine.federated_proof(f"{transfer.xid}:in", subject=source)


class TestShardGatewayNode:
    def test_shard_tx_topic_routes_into_sharded_chain(self):
        net = SimNet(seed=3)
        sharded = ShardedChain(n_shards=4, max_block_txs=8)
        gateway = ChainNode("gateway", net)
        client = ChainNode("client", net)
        gateway.serve_shards(sharded)
        tx = record_tx("orgA/x", 1)
        assert client.send_shard_transaction("gateway", tx)
        net.run()
        home = sharded.router.shard_for("orgA")
        assert tx.tx_id in sharded.shard(home).mempool
        sharded.seal_round()
        assert sharded.shard(home).chain.find_transaction(tx.tx_id)

    def test_gateway_drops_conflicting_tx_without_killing_net(self):
        net = SimNet(seed=3)
        sharded = ShardedChain(n_shards=4, max_block_txs=8)
        coordinator = CrossShardCoordinator(sharded)
        gateway = ChainNode("gateway", net)
        client = ChainNode("client", net)
        gateway.serve_shards(sharded)
        ns_a, ns_b = distinct_shard_namespaces(sharded.router)
        coordinator.begin(f"{ns_a}/x", f"{ns_b}/x")
        client.send_shard_transaction("gateway", record_tx(f"{ns_a}/x", 1))
        ok = record_tx(f"{ns_a}/free", 2)
        client.send_shard_transaction("gateway", ok)
        net.run()   # the conflicting tx is dropped, not loop-fatal
        home = sharded.router.shard_for(ns_a)
        assert ok.tx_id in sharded.shard(home).mempool


class TestMultiTenantWorkload:
    def test_deterministic_for_seed(self):
        a = MultiTenantShardWorkload(seed=5).generate(200)
        b = MultiTenantShardWorkload(seed=5).generate(200)
        assert a == b
        c = MultiTenantShardWorkload(seed=6).generate(200)
        assert a != c

    def test_shapes_and_timestamps(self):
        ops = MultiTenantShardWorkload(
            n_tenants=8, cross_shard_ratio=0.3, seed=1
        ).generate(300)
        assert len(ops) == 300
        assert [op.timestamp for op in ops] == list(range(300))
        for op in ops:
            assert op.subject.startswith(op.namespace + "/")
            if op.kind == "cross":
                assert op.target_namespace != op.namespace
                assert op.target_subject.startswith(
                    op.target_namespace + "/")
            else:
                assert op.operation in ("update", "create", "derive")

    def test_cross_ratio_is_respected(self):
        ops = MultiTenantShardWorkload(
            n_tenants=16, cross_shard_ratio=0.2, seed=2
        ).generate(2000)
        crosses = sum(1 for op in ops if op.kind == "cross")
        assert 0.12 < crosses / len(ops) < 0.28

    def test_zipf_skew_concentrates_tenants(self):
        ops = MultiTenantShardWorkload(
            n_tenants=64, zipf_s=1.1, cross_shard_ratio=0.0, seed=3
        ).generate(2000)
        counts: dict[str, int] = {}
        for op in ops:
            counts[op.namespace] = counts.get(op.namespace, 0) + 1
        top = max(counts.values())
        assert top / len(ops) > 0.05       # a hot tenant exists
        assert len(counts) > 20            # but the tail is populated

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            MultiTenantShardWorkload(cross_shard_ratio=1.5)
        with pytest.raises(ValueError):
            MultiTenantShardWorkload(n_tenants=1, cross_shard_ratio=0.1)
