"""Capture pathways, anchoring, verified queries, and the query cache."""

import pytest

from repro.clock import SimClock
from repro.errors import AccessDenied, AnchorError, CaptureError, QueryError
from repro.provenance.anchor import AnchorService
from repro.provenance.capture import (
    CaptureSink,
    DirectCapture,
    MultiSourceCapture,
    StoreMediatedCapture,
    ThirdPartyCapture,
)
from repro.provenance.query import ProvenanceQueryEngine, QueryCache
from repro.storage.cloudstore import CloudObjectStore
from repro.storage.provdb import ProvenanceDatabase


def generic_record(i, subject="file", actor="alice"):
    return {
        "record_id": f"g{i}",
        "domain": "generic",
        "subject": subject,
        "actor": actor,
        "operation": "touch",
        "timestamp": i,
    }


class TestDirectCapture:
    def test_delivers_to_database(self, sink, database):
        capture = DirectCapture(sink)
        capture.record_operation(generic_record(1))
        assert database.contains("g1")
        assert capture.metrics.messages == 1

    def test_schema_validation_applies_to_known_domains(self, sink):
        capture = DirectCapture(sink)
        bad = {"record_id": "x", "domain": "scientific", "subject": "s",
               "actor": "a", "operation": "o", "timestamp": 1}
        with pytest.raises(Exception):
            capture.record_operation(bad)

    def test_record_without_id_rejected(self, sink):
        capture = DirectCapture(sink)
        with pytest.raises(CaptureError):
            capture.record_operation({"domain": "generic"})


class TestStoreMediatedCapture:
    def test_operations_become_records(self, sink, database, clock):
        store = CloudObjectStore(clock)
        capture = StoreMediatedCapture(sink, store)
        store.create("alice", "doc", b"v1")
        store.update("alice", "doc", b"v2")
        store.read("alice", "doc")
        assert len(database) == 3
        assert capture.metrics.records_delivered == 3
        ops = [r["operation"] for r in database.by_subject("doc")]
        assert ops == ["create", "update", "read"]

    def test_content_hash_recorded(self, sink, database, clock):
        store = CloudObjectStore(clock)
        StoreMediatedCapture(sink, store)
        store.create("alice", "doc", b"payload")
        record = database.by_subject("doc")[0]
        assert record["content_hash"]

    def test_denied_operations_not_captured(self, sink, database, clock):
        store = CloudObjectStore(clock)
        StoreMediatedCapture(sink, store)
        store.create("alice", "doc", b"x")
        with pytest.raises(AccessDenied):
            store.read("eve", "doc")
        # Only the create observed; the denied read never happened.
        assert len(database) == 1


class TestThirdPartyCapture:
    def test_centralized_allows_and_records(self, sink, database):
        capture = ThirdPartyCapture(sink, [lambda a, r: a == "alice"])
        capture.request("alice", "res", generic_record(1))
        assert database.contains("g1")
        assert capture.metrics.auth_checks == 1

    def test_centralized_denies(self, sink, database):
        capture = ThirdPartyCapture(sink, [lambda a, r: a == "alice"])
        with pytest.raises(AccessDenied):
            capture.request("eve", "res", generic_record(2))
        assert not database.contains("g2")
        assert capture.metrics.records_rejected == 1

    def test_decentralized_quorum(self, sink, database):
        # Three authenticators, two required; one of them rejects alice.
        auths = [lambda a, r: True, lambda a, r: False, lambda a, r: True]
        capture = ThirdPartyCapture(sink, auths, quorum=2)
        capture.request("alice", "res", generic_record(3))
        assert database.contains("g3")

    def test_decentralized_quorum_not_met(self, sink):
        auths = [lambda a, r: False, lambda a, r: False, lambda a, r: True]
        capture = ThirdPartyCapture(sink, auths, quorum=2)
        with pytest.raises(AccessDenied):
            capture.request("alice", "res", generic_record(4))

    def test_more_authenticators_more_messages(self, sink):
        one = ThirdPartyCapture(sink, [lambda a, r: True])
        five = ThirdPartyCapture(sink, [lambda a, r: True] * 5)
        one.request("a", "r", generic_record(10))
        five.request("a", "r", generic_record(11))
        assert five.metrics.messages > one.metrics.messages

    def test_quorum_bounds_validated(self, sink):
        with pytest.raises(CaptureError):
            ThirdPartyCapture(sink, [lambda a, r: True], quorum=5)


class TestMultiSourceCapture:
    def test_merges_at_required_sources(self, sink, database):
        capture = MultiSourceCapture(sink, required_sources=3)
        assert capture.report("s1", "m", {"subject": "x"}) is None
        assert capture.report("s2", "m", {"actor": "a"}) is None
        merged = capture.report("s3", "m", {"operation": "op",
                                            "timestamp": 1,
                                            "domain": "generic"})
        assert merged is not None
        assert database.contains("m")

    def test_same_source_does_not_double_count(self, sink):
        capture = MultiSourceCapture(sink, required_sources=2)
        capture.report("s1", "m", {"subject": "x"})
        assert capture.report("s1", "m", {"actor": "a"}) is None
        assert capture.pending_count == 1

    def test_conflicting_fragments_fail_loudly(self, sink):
        capture = MultiSourceCapture(sink, required_sources=2)
        capture.report("s1", "m", {"subject": "x"})
        with pytest.raises(CaptureError):
            capture.report("s2", "m", {"subject": "CONTRADICTION"})
        assert capture.pending_count == 0
        assert capture.metrics.records_rejected == 1


class TestAnchorService:
    def test_auto_flush_at_batch_size(self, chain, database):
        service = AnchorService(chain, batch_size=3)
        sink = CaptureSink(database, service)
        receipts = [sink.deliver(generic_record(i)) for i in range(7)]
        assert chain.height == 2          # two full batches anchored
        assert service.pending_count == 1

    def test_explicit_flush(self, chain, database):
        service = AnchorService(chain, batch_size=100)
        sink = CaptureSink(database, service)
        sink.deliver(generic_record(1))
        receipt = service.flush()
        assert receipt is not None and receipt.record_count == 1
        assert service.flush() is None    # nothing pending

    def test_prove_and_verify(self, chain, database):
        service = AnchorService(chain, batch_size=4)
        sink = CaptureSink(database, service)
        for i in range(4):
            sink.deliver(generic_record(i))
        proof = service.prove("g2")
        assert service.verify(database.get("g2"), proof)

    def test_forged_record_fails(self, chain, database):
        service = AnchorService(chain, batch_size=2)
        sink = CaptureSink(database, service)
        sink.deliver(generic_record(0))
        sink.deliver(generic_record(1))
        proof = service.prove("g1")
        forged = dict(database.get("g1"), operation="evil")
        assert not service.verify(forged, proof)

    def test_proof_against_wrong_block_fails(self, chain, database):
        service = AnchorService(chain, batch_size=1)
        sink = CaptureSink(database, service)
        sink.deliver(generic_record(0))
        sink.deliver(generic_record(1))
        proof_g0 = service.prove("g0")
        # Splice: claim g1's block height for g0's proof.
        from repro.provenance.anchor import AnchoredProof

        spliced = AnchoredProof(
            anchor_id=proof_g0.anchor_id,
            merkle_proof=proof_g0.merkle_proof,
            merkle_root=proof_g0.merkle_root,
            block_height=proof_g0.block_height + 1,
            tx_id=proof_g0.tx_id,
        )
        assert not service.verify(database.get("g0"), spliced)

    def test_duplicate_anchor_rejected(self, chain):
        service = AnchorService(chain, batch_size=10)
        service.enqueue(generic_record(1))
        with pytest.raises(AnchorError):
            service.enqueue(generic_record(1))

    def test_unanchored_proof_request(self, chain):
        service = AnchorService(chain, batch_size=10)
        with pytest.raises(AnchorError):
            service.prove("nothing")

    def test_inline_mode_stores_records_on_chain(self, chain, database):
        service = AnchorService(chain, batch_size=2, mode="inline")
        sink = CaptureSink(database, service)
        sink.deliver(generic_record(0))
        sink.deliver(generic_record(1))
        payload = chain.head.transactions[0].payload
        assert payload["mode"] == "inline"
        assert len(payload["records"]) == 2

    def test_inline_costs_more_bytes_than_batched(self, database):
        from repro.chain import Blockchain, ChainParams

        big = {"notes": "x" * 500}
        inline_chain = Blockchain(ChainParams(chain_id="in"))
        inline = AnchorService(inline_chain, batch_size=4, mode="inline")
        batched_chain = Blockchain(ChainParams(chain_id="ba"))
        batched = AnchorService(batched_chain, batch_size=4)
        for i in range(4):
            inline.enqueue(dict(generic_record(i), **big))
            batched.enqueue(dict(generic_record(i), **big))
        assert inline.bytes_on_chain > 4 * batched.bytes_on_chain


class TestQueryEngine:
    def _loaded_engine(self, chain, database, n=20):
        service = AnchorService(chain, batch_size=5)
        sink = CaptureSink(database, service)
        for i in range(n):
            sink.deliver(generic_record(i, subject=f"s{i % 4}",
                                        actor=f"u{i % 2}"))
        service.flush()
        return ProvenanceQueryEngine(database, service, cache=QueryCache())

    def test_history_sorted_by_time(self, chain, database):
        engine = self._loaded_engine(chain, database)
        history = engine.history("s1")
        timestamps = [r["timestamp"] for r in history]
        assert timestamps == sorted(timestamps)

    def test_verified_history(self, chain, database):
        engine = self._loaded_engine(chain, database)
        answer = engine.history_verified("s2")
        assert answer.verified
        assert len(answer.records) == 5
        assert all(p is not None for p in answer.proofs)

    def test_unanchored_records_flagged(self, chain, database):
        service = AnchorService(chain, batch_size=100)   # never auto-flush
        sink = CaptureSink(database, service)
        sink.deliver(generic_record(1))
        engine = ProvenanceQueryEngine(database, service)
        answer = engine.history_verified("file")
        assert not answer.verified
        assert answer.unanchored == ("g1",)

    def test_verified_needs_anchor_service(self, database):
        engine = ProvenanceQueryEngine(database)
        with pytest.raises(QueryError):
            engine.point_verified("x")

    def test_cache_hit_on_repeat(self, chain, database):
        engine = self._loaded_engine(chain, database)
        engine.history("s1")
        engine.history("s1")
        engine.history("s1")
        assert engine.stats.cache_hits == 2
        assert engine.stats.cache_misses == 1

    def test_write_invalidates_cache(self, chain, database):
        engine = self._loaded_engine(chain, database)
        engine.history("s1")
        engine.notify_write()
        engine.history("s1")
        assert engine.stats.cache_misses == 2

    def test_cache_lru_eviction(self):
        cache = QueryCache(capacity=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        cache.get(("a",))
        cache.put(("c",), 3)     # evicts ("b",), the least recent
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == 1

    def test_time_range_query(self, chain, database):
        engine = self._loaded_engine(chain, database)
        rows = engine.time_range(5, 10)
        assert all(5 <= r["timestamp"] < 10 for r in rows)
        assert len(rows) == 5
