"""RBAC, ABAC, LedgerView views, and the audit trail."""

import pytest

from repro.access import (
    ABACPolicy,
    AccessAuditLog,
    Attribute,
    LedgerView,
    RBACPolicy,
    ViewManager,
)
from repro.access.rbac import pattern_matches
from repro.errors import AccessDenied, PolicyError
from repro.storage.provdb import ProvenanceDatabase


class TestPatternMatching:
    def test_exact(self):
        assert pattern_matches("a/b", "a/b")
        assert not pattern_matches("a/b", "a/c")

    def test_wildcard_prefix(self):
        assert pattern_matches("case-7/*", "case-7/evidence-1")
        assert not pattern_matches("case-7/*", "case-8/evidence-1")

    def test_star_matches_all(self):
        assert pattern_matches("*", "anything/at/all")


class TestRBAC:
    @pytest.fixture
    def policy(self):
        policy = RBACPolicy()
        policy.define_role("viewer").allow("docs/*", "read")
        policy.define_role("editor", parents=["viewer"]).allow("docs/*", "write")
        policy.define_role("admin", parents=["editor"]).allow("*", "delete")
        return policy

    def test_direct_permission(self, policy):
        policy.assign("alice", "viewer")
        assert policy.is_allowed("alice", "docs/a", "read")
        assert not policy.is_allowed("alice", "docs/a", "write")

    def test_inherited_permission(self, policy):
        policy.assign("bob", "admin")
        assert policy.is_allowed("bob", "docs/a", "read")     # via viewer
        assert policy.is_allowed("bob", "docs/a", "write")    # via editor
        assert policy.is_allowed("bob", "other", "delete")

    def test_unassigned_denied(self, policy):
        assert not policy.is_allowed("stranger", "docs/a", "read")

    def test_unassign_revokes(self, policy):
        policy.assign("carol", "viewer")
        policy.unassign("carol", "viewer")
        assert not policy.is_allowed("carol", "docs/a", "read")

    def test_require_raises(self, policy):
        with pytest.raises(AccessDenied):
            policy.require("nobody", "docs/a", "read")

    def test_duplicate_role_rejected(self, policy):
        with pytest.raises(PolicyError):
            policy.define_role("viewer")

    def test_unknown_parent_rejected(self, policy):
        with pytest.raises(PolicyError):
            policy.define_role("x", parents=["ghost"])

    def test_decisions_audited(self):
        audit = AccessAuditLog()
        policy = RBACPolicy(audit_log=audit)
        policy.define_role("r").allow("x", "read")
        policy.assign("alice", "r")
        policy.is_allowed("alice", "x", "read")
        policy.is_allowed("eve", "x", "read")
        assert len(audit) == 2
        assert audit.denial_rate() == 0.5


class TestABAC:
    @pytest.fixture
    def policy(self):
        policy = ABACPolicy()
        policy.permit(
            "doctors-read-own-dept",
            Attribute("role") == "doctor",
            Attribute("department", on="resource").present(),
            actions=("read",),
        )
        policy.deny(
            "sealed-records",
            Attribute("sealed", on="resource") == True,  # noqa: E712
        )
        policy.permit(
            "admins-anything",
            Attribute("role") == "admin",
        )
        return policy

    def test_permit_applies(self, policy):
        allowed, rule = policy.decide(
            {"role": "doctor"}, {"department": "cardio"}, "read"
        )
        assert allowed and rule == "doctors-read-own-dept"

    def test_default_deny(self, policy):
        allowed, rule = policy.decide({"role": "nurse"}, {}, "read")
        assert not allowed and rule == "default-deny"

    def test_deny_overrides_permit(self, policy):
        allowed, rule = policy.decide(
            {"role": "admin"}, {"sealed": True}, "read"
        )
        assert not allowed and rule == "sealed-records"

    def test_action_filter(self, policy):
        assert not policy.is_allowed(
            {"role": "doctor"}, {"department": "cardio"}, "delete"
        )

    def test_attribute_comparators(self):
        policy = ABACPolicy()
        policy.permit("senior", Attribute("level").at_least(5))
        policy.permit("regions", Attribute("region").is_in(("us", "eu")))
        assert policy.is_allowed({"level": 7}, {}, "go")
        assert not policy.is_allowed({"level": 3}, {}, "go")
        assert policy.is_allowed({"region": "eu"}, {}, "go")

    def test_environment_attributes(self):
        policy = ABACPolicy()
        policy.permit(
            "work-hours",
            Attribute("hour", on="environment").at_least(9),
        )
        assert policy.is_allowed({}, {}, "x", {"hour": 10})
        assert not policy.is_allowed({}, {}, "x", {"hour": 3})

    def test_require_raises_with_rule_name(self, policy):
        with pytest.raises(AccessDenied) as excinfo:
            policy.require({"role": "admin"}, {"sealed": True}, "read")
        assert "sealed-records" in str(excinfo.value)


class TestViews:
    @pytest.fixture
    def rig(self):
        database = ProvenanceDatabase()
        for i in range(10):
            database.insert({
                "record_id": f"r{i}",
                "subject": f"s{i % 2}",
                "actor": "a",
                "operation": "op",
                "timestamp": i,
            })
        return database, ViewManager(database)

    def test_read_through_grant(self, rig):
        database, manager = rig
        manager.create_view("v", "owner",
                            lambda r: r["subject"] == "s0")
        manager.grant("v", "owner", "reader")
        rows = manager.read("v", "reader")
        assert len(rows) == 5

    def test_ungranted_reader_denied(self, rig):
        _, manager = rig
        manager.create_view("v", "owner", lambda r: True)
        with pytest.raises(AccessDenied):
            manager.read("v", "stranger")

    def test_revocable_grant_withdrawn(self, rig):
        _, manager = rig
        manager.create_view("v", "owner", lambda r: True)
        manager.grant("v", "owner", "reader")
        manager.revoke_grant("v", "owner", "reader")
        with pytest.raises(AccessDenied):
            manager.read("v", "reader")

    def test_irrevocable_grant_cannot_be_withdrawn(self, rig):
        _, manager = rig
        manager.create_view("v", "owner", lambda r: True, revocable=False)
        manager.grant("v", "owner", "reader")
        with pytest.raises(PolicyError):
            manager.revoke_grant("v", "owner", "reader")
        with pytest.raises(PolicyError):
            manager.revoke_view("v", "owner")

    def test_irrevocable_view_frozen_content(self, rig):
        database, manager = rig
        manager.create_view("v", "owner",
                            lambda r: r["subject"] == "s0",
                            revocable=False)
        manager.grant("v", "owner", "reader")
        before = len(manager.read("v", "reader"))
        database.insert({"record_id": "new", "subject": "s0",
                         "actor": "a", "operation": "op", "timestamp": 99})
        after = len(manager.read("v", "reader"))
        assert before == after        # snapshot semantics

    def test_revocable_view_is_live(self, rig):
        database, manager = rig
        manager.create_view("v", "owner",
                            lambda r: r["subject"] == "s0")
        manager.grant("v", "owner", "reader")
        before = len(manager.read("v", "reader"))
        database.insert({"record_id": "new", "subject": "s0",
                         "actor": "a", "operation": "op", "timestamp": 99})
        assert len(manager.read("v", "reader")) == before + 1

    def test_only_owner_grants(self, rig):
        _, manager = rig
        manager.create_view("v", "owner", lambda r: True)
        with pytest.raises(AccessDenied):
            manager.grant("v", "mallory", "mallory")

    def test_revoked_view_unreadable_even_by_owner(self, rig):
        _, manager = rig
        manager.create_view("v", "owner", lambda r: True)
        manager.revoke_view("v", "owner")
        with pytest.raises(AccessDenied):
            manager.read("v", "owner")

    def test_readable_by_listing(self, rig):
        _, manager = rig
        manager.create_view("v1", "owner", lambda r: True)
        manager.create_view("v2", "owner", lambda r: True)
        manager.grant("v1", "owner", "reader")
        assert manager.readable_by("reader") == ["v1"]
        assert manager.readable_by("owner") == ["v1", "v2"]


class TestAuditLog:
    def test_chain_verifies(self, clock):
        log = AccessAuditLog(clock)
        log.record("a", "r", "read", True, "rbac")
        log.record("b", "r", "read", False, "rbac")
        assert log.verify()

    def test_tamper_detected(self, clock):
        log = AccessAuditLog(clock)
        log.record("a", "r", "read", True, "rbac")
        log.record("b", "r", "read", False, "rbac")
        log._decisions[0] = log._decisions[0].__class__(
            seq=0, subject="a", resource="r", action="read",
            allowed=False,       # flipped!
            mechanism="rbac", timestamp=0,
        )
        assert not log.verify()

    def test_export_as_provenance_record(self, clock):
        log = AccessAuditLog(clock)
        decision = log.record("alice", "doc", "write", False, "abac")
        record = decision.to_provenance_record()
        assert record["operation"] == "write:deny"
        assert record["actor"] == "alice"

    def test_filters(self, clock):
        log = AccessAuditLog(clock)
        log.record("a", "r1", "read", True)
        log.record("a", "r2", "read", False)
        log.record("b", "r1", "read", False)
        assert len(log.denials()) == 2
        assert len(log.for_subject("a")) == 2
