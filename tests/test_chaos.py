"""Chaos-harness tests: the crash matrix, leases, fencing, quarantine,
and seeded fault-plan determinism.

The crash matrix is the heart of the robustness story: kill the 2PC
coordinator immediately after *every* persisted WAL step boundary,
reopen the store, and assert that presumed-abort recovery restores the
atomicity invariants (no leaked lock, no half-handoff pair, subjects
usable again).
"""

from __future__ import annotations

import pytest

from repro.chain import Transaction, TxKind
from repro.chaos import (
    ChaosRunner,
    CoordinatorKill,
    FaultPlan,
    NetFault,
    check_invariants,
    proof_digest,
    seeded_plan,
)
from repro.errors import ShardError, SyncError
from repro.net_retry import RetryPolicy, failover
from repro.persist.segment import CrashPoint
from repro.sharding import (
    ABORTED,
    COMMITTED,
    CrossShardCoordinator,
    ShardedChain,
)


def record_tx(subject: str, i: int = 0) -> Transaction:
    return Transaction(sender="chaos-test", kind=TxKind.DATA,
                       payload={"subject": subject,
                                "key": f"{subject}#{i}", "value": i},
                       timestamp=i)


def cross_pair(sharded: ShardedChain, tag: str = "t") -> tuple[str, str]:
    """Two subjects guaranteed to live on different shards."""
    src = f"{tag}-src/asset"
    src_shard = sharded.router.shard_for_subject(src)
    j = 0
    while True:
        tgt = f"{tag}-tgt-{j}/asset"
        if sharded.router.shard_for_subject(tgt) != src_shard:
            return src, tgt
        j += 1


def durable(tmp_path, **kwargs) -> ShardedChain:
    kwargs.setdefault("n_shards", 4)
    kwargs.setdefault("max_block_txs", 16)
    kwargs.setdefault("anchor_batch_size", 4)
    kwargs.setdefault("checkpoint_every_rounds", 1)
    kwargs.setdefault("executor", "serial")
    return ShardedChain(storage_dir=str(tmp_path / "store"), **kwargs)


def drive(sharded: ShardedChain, transfer, rounds: int = 8) -> None:
    for _ in range(rounds):
        if transfer.state in (COMMITTED, ABORTED):
            return
        sharded.seal_round(timestamp=sharded.rounds_sealed)


class TestCrashMatrix:
    """Kill after every WAL write a 2-shard transfer makes (8 on the
    happy path: begin, 2 lock legs, committing, 2 commit legs,
    finalizing, finalized) and recover."""

    @pytest.mark.parametrize("kill_after", range(1, 9))
    def test_kill_at_every_wal_boundary(self, tmp_path, kill_after):
        sharded = durable(tmp_path)
        coord = CrossShardCoordinator(sharded)
        src, tgt = cross_pair(sharded)
        coord.crash_after_wal_writes = kill_after
        with pytest.raises(CrashPoint):
            transfer = coord.begin(src, tgt, {"qty": 1}, timestamp=1)
            drive(sharded, transfer)
        sharded.crash()

        reopened = durable(tmp_path)
        coord2 = CrossShardCoordinator(reopened)
        summary = coord2.last_recovery
        if kill_after <= 6:
            # Lock / committing / commit-leg boundaries: the commit
            # legs were not all on-chain yet — presumed abort.
            assert summary["aborted"] and not summary["finalized"]
        elif kill_after == 7:
            # Crashed after "finalizing": both commit legs are on-chain,
            # recovery replays the idempotent finalize.
            assert summary["finalized"] and not summary["aborted"]
        else:
            # Crashed after the terminal "finalized" write but before
            # the active-list cleanup: recovery just sweeps the entry.
            assert summary["cleaned"]

        xids = set(coord2.transfers) | {
            xid for bucket in ("finalized", "aborted", "cleaned")
            for xid in summary[bucket]
        }
        assert xids, "recovery must have seen the crashed transfer"
        inv = check_invariants(reopened, xids)
        assert inv["ok"], inv["issues"]

        # The subjects must be writable and transferable again.
        retry = coord2.begin(src, tgt, {"qty": 2}, timestamp=2)
        drive(reopened, retry)
        assert retry.state == COMMITTED
        reopened.close()

    @pytest.mark.parametrize("step,resolution", [
        ("begin", "aborted"),
        ("committing", "aborted"),
        ("finalizing", "finalized"),
        ("aborting", "aborted"),
    ])
    def test_kill_at_named_step(self, tmp_path, step, resolution):
        sharded = durable(tmp_path)
        coord = CrossShardCoordinator(sharded, timeout_rounds=1)
        src, tgt = cross_pair(sharded)
        coord.crash_at_step = step
        if step == "aborting":
            # Starve the prepare phase so the deadline passes and the
            # abort path runs: seal only non-participant shards.
            with pytest.raises(CrashPoint):
                transfer = coord.begin(src, tgt, timestamp=1)
                participants = set(transfer.participants)
                others = [sid for sid in range(len(sharded.shards))
                          if sid not in participants]
                for _ in range(4):
                    sharded.seal_round(shard_ids=others,
                                       timestamp=sharded.rounds_sealed)
        else:
            with pytest.raises(CrashPoint):
                transfer = coord.begin(src, tgt, timestamp=1)
                drive(sharded, transfer)
        sharded.crash()

        reopened = durable(tmp_path)
        coord2 = CrossShardCoordinator(reopened)
        assert coord2.last_recovery[resolution]
        inv = check_invariants(reopened, set(coord2.transfers))
        assert inv["ok"], inv["issues"]
        reopened.close()

    def test_recovered_proofs_verify(self, tmp_path):
        """A transfer finalized *by recovery* must yield the same
        verifying federated proofs as a clean commit."""
        sharded = durable(tmp_path)
        coord = CrossShardCoordinator(sharded)
        src, tgt = cross_pair(sharded)
        coord.crash_after_wal_writes = 7     # after "finalizing"
        with pytest.raises(CrashPoint):
            transfer = coord.begin(src, tgt, {"qty": 9}, timestamp=3)
            drive(sharded, transfer)
        sharded.crash()

        reopened = durable(tmp_path)
        coord2 = CrossShardCoordinator(reopened)
        xid = coord2.last_recovery["finalized"][0]
        reopened.flush_anchors()
        reopened.seal_round(timestamp=99)
        digest = proof_digest(reopened, [xid])
        assert digest
        # Byte-stable across a clean close/reopen.
        reopened.close()
        again = durable(tmp_path)
        assert proof_digest(again, [xid]) == digest
        again.close()

    def test_recovery_counters(self, tmp_path):
        sharded = durable(tmp_path)
        coord = CrossShardCoordinator(sharded)
        src, tgt = cross_pair(sharded)
        coord.crash_after_wal_writes = 4
        with pytest.raises(CrashPoint):
            transfer = coord.begin(src, tgt, timestamp=1)
            drive(sharded, transfer)
        sharded.crash()
        reopened = durable(tmp_path)
        coord2 = CrossShardCoordinator(reopened)
        registry = reopened.telemetry.registry
        assert registry.counter("xshard_transfers_recovered_total",
                                resolution="aborted").value >= 1
        assert registry.counter(
            "xshard_aborts_total", reason="recovered_presumed_abort"
        ).value >= 1
        assert coord2.recovered >= 1
        reopened.close()


class TestLeasesAndFencing:
    def test_orphaned_lock_lease_expires(self):
        sharded = ShardedChain(4, lock_lease_rounds=2)
        src, tgt = cross_pair(sharded)
        shard_id = sharded.router.shard_for_subject(src)
        assert sharded.acquire_lock(shard_id, src, "xid-dead", epoch=1)
        # No coordinator is renewing this lease; a normal write to the
        # subject is refused until the lease runs out.
        with pytest.raises(ShardError):
            sharded.submit(record_tx(src))
        # Lease taken at round 0 expires once rounds_sealed passes
        # expires_round: the sweep at the start of round lease+2 drops it.
        for _ in range(4):
            sharded.seal_round(timestamp=sharded.rounds_sealed)
        assert sharded.lock_entry(shard_id, src) is None
        assert (sharded.telemetry.registry
                .counter("xshard_lock_leases_expired_total").value >= 1)
        sharded.submit(record_tx(src))   # flows again

    def test_active_transfer_lease_is_renewed(self):
        """A *live* coordinator renews its leases every round, so a
        transfer outlives the nominal lease length."""
        sharded = ShardedChain(4, lock_lease_rounds=1)
        coord = CrossShardCoordinator(sharded, timeout_rounds=8)
        src, tgt = cross_pair(sharded)
        transfer = coord.begin(src, tgt, timestamp=1)
        drive(sharded, transfer)
        assert transfer.state == COMMITTED

    def test_fenced_coordinator_cannot_start_transfers(self, tmp_path):
        sharded = durable(tmp_path)
        stale = CrossShardCoordinator(sharded)
        sharded.detach_coordinator(stale)
        fresh = CrossShardCoordinator(sharded)
        assert fresh.epoch == stale.epoch + 1
        src, tgt = cross_pair(sharded)
        # The zombie's protocol legs are stamped with the fenced epoch
        # and refused at submit; its abort legs are refused too, which
        # the outcome audits instead of silently dropping.
        doomed = stale.begin(src, tgt, timestamp=1)
        assert doomed.state == ABORTED
        assert doomed.outcome.extra["reason"] == "submit_failed"
        assert doomed.outcome.extra["abort_legs_lost"] == 2
        assert (sharded.telemetry.registry
                .counter("xshard_abort_legs_lost_total").value >= 2)
        # The current-epoch coordinator is unaffected.
        good = fresh.begin(src, tgt, timestamp=2)
        drive(sharded, good)
        assert good.state == COMMITTED
        sharded.close()

    def test_xids_never_collide_across_restarts(self, tmp_path):
        xids: set[str] = set()
        for generation in range(3):
            sharded = durable(tmp_path)
            coord = CrossShardCoordinator(sharded)
            src, tgt = cross_pair(sharded, tag=f"g{generation}")
            transfer = coord.begin(src, tgt, timestamp=generation)
            assert transfer.xid not in xids
            xids.add(transfer.xid)
            drive(sharded, transfer)
            assert transfer.state == COMMITTED
            sharded.close()
        assert len(xids) == 3


class TestQuarantine:
    def _flaky(self, sharded, victim, failures):
        orig = sharded._seal_shard_round

        def seal(shard_id, ts, blocks_per_shard):
            if shard_id == victim and failures["left"] > 0:
                failures["left"] -= 1
                raise ShardError("injected seal failure",
                                 reason="seal_failed", shard_id=victim)
            return orig(shard_id, ts, blocks_per_shard)

        sharded._seal_shard_round = seal

    def test_failing_shard_is_quarantined_and_readmitted(self):
        sharded = ShardedChain(4, quarantine_after=2,
                               quarantine_probe_every=2,
                               executor="serial")
        failures = {"left": 2}
        self._flaky(sharded, victim=1, failures=failures)
        # Two consecutive failed rounds: attributed, then quarantined —
        # the round itself still seals for the healthy shards.
        r1 = sharded.seal_round(timestamp=1)
        assert 1 in r1.failed_shards
        assert r1.failed_shards[1]["reason"] == "seal_failed"
        assert not r1.failed_shards[1]["quarantined"]
        r2 = sharded.seal_round(timestamp=2)
        assert r2.failed_shards[1]["quarantined"]
        assert "1" in sharded.health_report()["quarantined_shards"]
        assert (sharded.telemetry.registry
                .counter("shard_quarantined_total").value >= 1)
        # While quarantined the shard is skipped on non-probe rounds and
        # probed periodically; a clean probe re-admits it.
        for ts in range(3, 7):
            sharded.seal_round(timestamp=ts)
            if "1" not in sharded.health_report()["quarantined_shards"]:
                break
        assert "1" not in sharded.health_report()["quarantined_shards"]
        assert (sharded.telemetry.registry
                .counter("shard_readmitted_total").value >= 1)

    def test_quarantine_disabled_by_default(self):
        sharded = ShardedChain(2, executor="serial")
        failures = {"left": 1}
        self._flaky(sharded, victim=0, failures=failures)
        with pytest.raises(ShardError):
            sharded.seal_round(timestamp=1)


class TestNetRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_backoff_ticks=8, factor=2.0,
                             max_backoff_ticks=50, jitter_ticks=0)
        ticks = [policy.backoff_ticks(k) for k in range(5)]
        assert ticks == [0, 8, 16, 32, 50]

    def test_failover_tries_peers_in_order(self):
        calls = []

        def attempt(peer):
            calls.append(peer)
            if peer != "c":
                raise SyncError(f"{peer} down", reason="peer_unresponsive")
            return peer

        assert failover(["a", "b", "c"], attempt) == "c"
        assert calls == ["a", "b", "c"]

    def test_failover_empty_and_exhausted(self):
        with pytest.raises(SyncError) as exc:
            failover([], lambda peer: peer)
        assert exc.value.reason == "no_peers"
        with pytest.raises(SyncError) as exc:
            failover(["a"], lambda peer: (_ for _ in ()).throw(
                SyncError("down", reason="peer_unresponsive")))
        assert exc.value.reason == "peer_unresponsive"


class TestSeededPlans:
    def test_seeded_plan_is_pure(self):
        assert seeded_plan(7) == seeded_plan(7)
        assert seeded_plan(7) != seeded_plan(8)
        plan = seeded_plan(7)
        assert plan.describe()["seed"] == 7
        assert all(0.0 <= f.drop < 1.0 for f in plan.net_faults)

    def test_chaos_run_is_deterministic_per_seed(self, tmp_path):
        plan = FaultPlan(
            seed=101,
            net_faults=(NetFault("shard_tx", drop=0.15, duplicate=0.1,
                                 reorder=0.2, reorder_delay=30),
                        NetFault("ops/metrics", drop=0.2)),
            kills=(CoordinatorKill(4), CoordinatorKill(7)),
            transfers=3,
        )
        first = ChaosRunner(plan, str(tmp_path / "a")).run()
        second = ChaosRunner(plan, str(tmp_path / "b")).run()
        assert first.invariants_ok, first.invariants
        assert second.invariants_ok
        assert first.signature() == second.signature()
        assert first.crashes == 2
        assert first.proof_digest == first.reopen_digest

    def test_chaos_run_invariants_hold_without_kills(self, tmp_path):
        plan = FaultPlan(
            seed=5,
            net_faults=(NetFault("shard_tx", drop=0.3, duplicate=0.25,
                                 reorder=0.4, reorder_delay=40),),
            kills=(),
            transfers=2,
        )
        report = ChaosRunner(plan, str(tmp_path)).run()
        assert report.invariants_ok, report.invariants
        assert report.crashes == 0
        assert report.committed == 2
