"""Unified runtime telemetry (PR 7): registry, tracing, ops surfaces.

Four layers of coverage:

* unit behavior of the metrics registry (counters/gauges/histograms,
  labels, collectors, Prometheus/JSON-lines export, cross-process
  counter deltas) and the tracer (decimation sampling, implicit
  nesting, wire round trips, bounded buffers);
* accessor regressions — ``sig.cache_stats()`` and ``SimNet.stats``
  keep their pre-telemetry shapes while now being registry-backed;
* end-to-end trace propagation: a sampled submit's trace id is an
  ancestor of the exec worker's apply span (merged back across the
  process boundary) and of the persist layer's fsync span — including
  when the worker is killed mid-deployment and execution falls back
  in-process;
* ``ops/metrics`` over SimNet: gateway and live replica both answer a
  remote snapshot request, and the facade's health rollup attributes
  the slowest shard.
"""

from __future__ import annotations

import json

import pytest

from repro import IngestPipeline, ShardedChain, Transaction, TxKind
from repro.chain import transaction as tx_mod
from repro.crypto import signatures as sig
from repro.crypto.signatures import KeyPair
from repro.errors import SyncError
from repro.network import ChainNode, LatencyModel, SimNet
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import (
    DEFAULT_SAMPLE_EVERY,
    Telemetry,
    reset_default_telemetry,
    telemetry,
)
from repro.obs.trace import NOOP_SPAN, SpanRecord, TraceContext, Tracer
from repro.sync.server import SnapshotServer

N_SHARDS = 2


def make_txs(n: int, tag: str = "t") -> list[Transaction]:
    return [
        Transaction(f"acct-{i % 16}", TxKind.DATA,
                    {"key": f"{tag}{i:05d}", "value": i},
                    timestamp=i).seal()
        for i in range(n)
    ]


@pytest.fixture
def traced_telemetry():
    """A fresh process default sampling *every* root; restored after."""
    tel = reset_default_telemetry(sample_every=1)
    yield tel
    reset_default_telemetry()


# ---------------------------------------------------------------------------
# Metrics registry units
# ---------------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_gauge_histogram_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("events_total").inc()
        reg.counter("events_total").inc(4)
        reg.gauge("depth").set(7)
        hist = reg.histogram("latency_seconds")
        for v in (2e-6, 5e-4, 0.3):
            hist.observe(v)
        snap = reg.snapshot()
        assert snap["counters"]["events_total"] == 5
        assert snap["gauges"]["depth"] == 7
        h = snap["histograms"]["latency_seconds"]
        assert h["count"] == 3
        assert h["sum"] == pytest.approx(2e-6 + 5e-4 + 0.3)
        # Cumulative bucket counts are monotone and end at count.
        running = [c for _, c in h["buckets"]]
        assert running == sorted(running)
        assert running[-1] == 3

    def test_labels_make_distinct_series_and_cached_handles(self):
        reg = MetricsRegistry()
        a = reg.counter("ops_total", shard=0)
        b = reg.counter("ops_total", shard=1)
        assert a is not b
        assert reg.counter("ops_total", shard=0) is a
        a.inc(2)
        b.inc(3)
        snap = reg.snapshot()
        assert snap["counters"]['ops_total{shard="0"}'] == 2
        assert snap["counters"]['ops_total{shard="1"}'] == 3

    def test_collector_runs_at_snapshot_and_drops_when_dead(self):
        reg = MetricsRegistry()

        class Subsystem:
            def __init__(self):
                self.pending = 0

            def collect(self):
                reg.gauge("pending").set(self.pending)

        sub = Subsystem()
        reg.register_collector(sub.collect)
        sub.pending = 11
        assert reg.snapshot()["gauges"]["pending"] == 11
        sub.pending = 3
        assert reg.snapshot()["gauges"]["pending"] == 3
        del sub  # weakly-held collector silently leaves the registry
        assert reg.snapshot()["gauges"]["pending"] == 3

    def test_raising_collector_is_pruned_not_propagated(self):
        reg = MetricsRegistry()

        class Broken:
            calls = 0

            def collect(self):
                Broken.calls += 1
                raise RuntimeError("closed store")

        broken = Broken()
        reg.register_collector(broken.collect)
        reg.snapshot()  # must not raise
        reg.snapshot()
        assert Broken.calls == 1  # dropped after the first failure

    def test_histogram_percentile_bound(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", buckets=[0.01, 0.1, 1.0])
        for _ in range(99):
            hist.observe(0.005)
        hist.observe(5.0)
        assert hist.percentile_bound(0.5) == 0.01
        assert hist.percentile_bound(1.0) == float("inf")

    def test_prometheus_rendering(self):
        reg = MetricsRegistry()
        reg.counter("reqs_total", shard=0).inc(2)
        reg.gauge("depth").set(4)
        reg.histogram("lat_seconds", buckets=[0.1, 1.0]).observe(0.05)
        text = reg.render_prometheus()
        assert 'reqs_total{shard="0"} 2' in text
        assert "depth 4" in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_count 1" in text

    def test_jsonl_exporter_appends_parseable_lines(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("writes_total").inc()
        path = tmp_path / "metrics.jsonl"
        reg.write_jsonl(path, extra={"phase": "a"})
        reg.counter("writes_total").inc()
        reg.write_jsonl(path, extra={"phase": "b"})
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert [e["phase"] for e in lines] == ["a", "b"]
        assert lines[0]["counters"]["writes_total"] == 1
        assert lines[1]["counters"]["writes_total"] == 2
        assert all("ts" in e for e in lines)

    def test_counter_deltas_drain_and_merge(self):
        worker = MetricsRegistry()
        parent = MetricsRegistry()
        worker.counter("blocks_total", shard=1).inc(3)
        deltas = worker.drain_counter_deltas()
        assert deltas == [["blocks_total", {"shard": "1"}, 3]]
        # Drains report increments, never cumulative values twice.
        assert worker.drain_counter_deltas() == []
        worker.counter("blocks_total", shard=1).inc(2)
        parent.merge_counter_deltas(deltas)
        parent.merge_counter_deltas(worker.drain_counter_deltas())
        assert parent.snapshot()["counters"]['blocks_total{shard="1"}'] == 5

    def test_reset_zeroes_but_keeps_handles(self):
        reg = MetricsRegistry()
        counter = reg.counter("n_total")
        counter.inc(9)
        reg.reset()
        assert counter.value == 0
        counter.inc()
        assert reg.snapshot()["counters"]["n_total"] == 1


# ---------------------------------------------------------------------------
# Tracer units
# ---------------------------------------------------------------------------
class TestTracer:
    def test_decimation_sampling(self):
        tracer = Tracer(sample_every=4)
        decisions = [tracer.should_sample() for _ in range(8)]
        assert decisions == [True, False, False, False,
                             True, False, False, False]
        assert not any(Tracer(sample_every=0).should_sample()
                       for _ in range(10))

    def test_span_without_active_trace_is_noop(self):
        tracer = Tracer(sample_every=0)
        assert tracer.span("anything") is NOOP_SPAN
        assert tracer.root_span("root") is NOOP_SPAN  # sampler says no
        with tracer.span("nested") as span:
            span.set_attr("k", "v")  # all no-ops, nothing recorded
        assert tracer.spans() == []

    def test_implicit_nesting_under_active_span(self):
        tracer = Tracer(sample_every=1)
        with tracer.root_span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        records = {s.name: s for s in tracer.spans()}
        assert records["inner"].parent_id == outer.ctx.span_id
        assert records["inner"].trace_id == outer.ctx.trace_id
        assert records["outer"].parent_id is None
        assert inner.ctx.span_id != outer.ctx.span_id

    def test_error_status_recorded_and_exception_propagates(self):
        tracer = Tracer(sample_every=1)
        with pytest.raises(ValueError):
            with tracer.root_span("failing"):
                raise ValueError("boom")
        (record,) = tracer.spans()
        assert record.status == "error:ValueError"

    def test_context_wire_round_trip(self):
        ctx = TraceContext(trace_id="t1", span_id="s1", sampled=True)
        assert TraceContext.from_wire(ctx.to_wire()) == ctx
        assert TraceContext.from_wire(None) is None
        assert not TraceContext.from_wire(
            {"trace_id": "t", "span_id": "s", "sampled": False}
        ).sampled

    def test_explicit_parent_crosses_boundaries(self):
        parent_tracer = Tracer(sample_every=1)
        with parent_tracer.root_span("submit") as root:
            wire = root.ctx.to_wire()
        worker_tracer = Tracer(sample_every=0)  # worker samples nothing
        ctx = TraceContext.from_wire(wire)
        with worker_tracer.span("exec", parent=ctx) as span:
            span.set_attr("blocks", 2)
        rows = worker_tracer.span_rows(drain=True)
        assert worker_tracer.spans() == []
        n = parent_tracer.ingest_rows(rows)
        assert n == 1
        merged = parent_tracer.find_spans(root.ctx.trace_id)
        assert {s.name for s in merged} == {"submit", "exec"}
        exec_span = next(s for s in merged if s.name == "exec")
        assert exec_span.parent_id == root.ctx.span_id
        assert exec_span.attrs == {"blocks": 2}

    def test_ingest_rows_tolerates_malformed(self):
        tracer = Tracer(sample_every=1)
        good = SpanRecord(name="ok", trace_id="t", span_id="s",
                          parent_id=None, start_s=0.0,
                          duration_s=0.1).to_row()
        assert tracer.ingest_rows([["junk"], None, good, 42]) == 1
        assert [s.name for s in tracer.spans()] == ["ok"]

    def test_bind_tx_take_and_bound_cap(self):
        tracer = Tracer(sample_every=1, max_bound_txs=4)
        ctxs = {}
        for i in range(6):
            ctx = TraceContext(trace_id=f"t{i}", span_id=f"s{i}")
            ctxs[f"tx{i}"] = ctx
            tracer.bind_tx(f"tx{i}", ctx)
        # Oldest two bindings were evicted by the cap.
        assert tracer.take_tx_ctx(["tx0", "tx1"]) is None
        assert tracer.take_tx_ctx(["tx5", "tx4"]) == ctxs["tx5"]
        # take pops every listed binding, not just the hit.
        assert tracer.take_tx_ctx(["tx4"]) is None
        assert tracer.has_bound_txs  # tx2/tx3 still bound

    def test_span_ring_is_bounded(self):
        tracer = Tracer(sample_every=1, max_spans=8)
        for i in range(20):
            with tracer.root_span(f"s{i}"):
                pass
        spans = tracer.spans()
        assert len(spans) == 8
        assert spans[-1].name == "s19"


# ---------------------------------------------------------------------------
# Accessor regressions (pre-telemetry shapes must survive the migration)
# ---------------------------------------------------------------------------
class TestAccessorRegressions:
    def test_cache_stats_shape_and_counts(self):
        sig.reset_cache_stats()
        sig.clear_verify_cache()
        key = KeyPair.generate("obs-signer")
        tx = Transaction(key.address, TxKind.DATA,
                         {"key": "a", "value": 1}).seal().sign_with(key)
        blob = tx._encoded_body()
        assert sig.verify_encoded(blob, tx.signature, tx.signer)
        assert sig.verify_encoded(blob, tx.signature, tx.signer)
        stats = sig.cache_stats()
        assert set(stats) == {"verify_encoded", "verify_signature"}
        for section in stats.values():
            assert set(section) == {"hits", "misses", "size", "capacity"}
        assert stats["verify_encoded"]["misses"] == 1
        assert stats["verify_encoded"]["hits"] == 1
        # The same counts are visible in the registry, labeled by cache.
        snap = telemetry().snapshot()
        label = 'sig_verify_cache_hits_total{cache="verify_encoded"}'
        assert snap["counters"][label] >= 1
        sig.reset_cache_stats()
        fresh = sig.cache_stats()
        assert fresh["verify_encoded"]["hits"] == 0
        assert fresh["verify_encoded"]["misses"] == 0

    def test_simnet_stats_accessor_and_topic_counters(self):
        tel = Telemetry(sample_every=0)
        net = SimNet(latency=LatencyModel(base=1, jitter=0), seed=3,
                     telemetry=tel)
        node_a = ChainNode("a", net)
        ChainNode("b", net)
        tx = make_txs(1)[0]
        assert node_a.send_shard_transaction("b", tx)
        net.run()
        stats = net.stats
        assert stats.messages_sent == 1
        assert stats.messages_delivered == 1
        assert stats.by_topic == {"shard_tx": 1}
        assert stats.bytes_sent > 0
        snap = tel.snapshot()
        assert snap["counters"][
            'net_messages_sent_total{topic="shard_tx"}'] == 1
        assert snap["counters"]["net_messages_delivered_total"] == 1
        assert "net_pending_messages" in snap["gauges"]

    def test_simnet_fault_counters_per_topic(self):
        tel = Telemetry(sample_every=0)
        net = SimNet(latency=LatencyModel(base=1, jitter=0), seed=5,
                     telemetry=tel)
        received = []
        net.register("sink", received.append)
        net.register("src", lambda msg: None)
        net.inject_faults("noisy", drop=0.5, duplicate=0.3)
        from repro.network.message import NetMessage

        for i in range(60):
            net.send(NetMessage(sender="src", recipient="sink",
                                topic="noisy", body={"i": i}))
        net.run()
        snap = tel.snapshot()
        dropped = snap["counters"][
            'net_messages_dropped_total{topic="noisy"}']
        assert dropped == net.stats.messages_dropped > 0
        assert snap["counters"][
            'net_messages_duplicated_total{topic="noisy"}'] \
            == net.stats.messages_duplicated > 0


# ---------------------------------------------------------------------------
# Subsystem instrumentation behind unchanged APIs
# ---------------------------------------------------------------------------
class TestSubsystemInstrumentation:
    def test_ingest_queue_gauges_and_counters(self):
        tel = Telemetry(sample_every=0)
        sharded = ShardedChain(N_SHARDS, max_block_txs=8,
                               telemetry=tel)
        pipeline = IngestPipeline(sharded, queue_capacity=64,
                                  telemetry=tel)
        report = pipeline.submit_many(make_txs(40))
        assert report.rejected_total == 0
        snap = tel.snapshot()
        depth_total = sum(
            snap["gauges"][f'ingest_queue_depth{{shard="{s}"}}']
            for s in range(N_SHARDS)
        )
        assert depth_total == 40 == pipeline.backlog
        assert snap["counters"]["ingest_submitted_total"] == 40
        pipeline.run_until_drained()
        snap = tel.snapshot()
        assert sum(
            snap["gauges"][f'ingest_queue_depth{{shard="{s}"}}']
            for s in range(N_SHARDS)
        ) == 0
        assert snap["counters"]["rounds_sealed_total"] \
            == sharded.rounds_sealed > 0
        assert snap["histograms"]["ingest_admission_seconds"]["count"] > 0
        assert snap["histograms"]["seal_round_seconds"]["count"] > 0
        assert snap["counters"]["txs_sealed_total"] == 40
        sharded.close()

    def test_persist_fsync_histogram_and_tier_counters(self, tmp_path):
        tel = reset_default_telemetry(sample_every=0)
        try:
            sharded = ShardedChain(N_SHARDS, max_block_txs=8,
                                   storage_dir=str(tmp_path / "store"),
                                   telemetry=tel)
            sharded.submit_many(make_txs(32))
            while sharded.mempool_backlog:
                sharded.seal_round()
            snap = tel.snapshot()
            fsyncs = snap["histograms"]["persist_fsync_seconds"]
            assert fsyncs["count"] > 0
            assert snap["counters"]["persist_fsyncs_total"] \
                == fsyncs["count"]
            sharded.close()
        finally:
            reset_default_telemetry()

    def test_health_report_attributes_slowest_shard(self):
        sharded = ShardedChain(N_SHARDS, max_block_txs=8,
                               telemetry=Telemetry(sample_every=0))
        sharded.submit_many(make_txs(24))
        while sharded.mempool_backlog:
            sharded.seal_round()
        report = sharded.health_report()
        assert report["n_shards"] == N_SHARDS
        assert report["rounds_sealed"] == sharded.rounds_sealed
        assert set(report["per_shard"]) == {str(s)
                                            for s in range(N_SHARDS)}
        slowest = report["slowest_shard"]
        assert slowest in report["per_shard"]
        assert report["slowest_seal_s"] >= 0.0
        assert report["per_shard"][slowest]["last_seal_s"] \
            == report["slowest_seal_s"]
        assert report["last_round_txs"] >= 0
        assert report["mempool_backlog_total"] == 0
        sharded.close()


# ---------------------------------------------------------------------------
# End-to-end trace propagation
# ---------------------------------------------------------------------------
class TestTracePropagation:
    def _submit_trace_ids(self, tracer) -> set[str]:
        return {s.trace_id for s in tracer.spans()
                if s.name in ("ingest.submit", "ingest.submit_many")}

    def test_submit_ancestry_reaches_worker_and_fsync(
            self, tmp_path, traced_telemetry):
        tel = traced_telemetry
        sharded = ShardedChain(N_SHARDS, max_block_txs=8,
                               storage_dir=str(tmp_path / "store"),
                               executor="process", exec_workers=2)
        pipeline = IngestPipeline(sharded, queue_capacity=256)
        pipeline.submit_many(make_txs(48))
        pipeline.run_until_drained()
        names = {s.name for s in tel.tracer.spans()}
        assert {"ingest.submit_many", "round.seal", "shard.commit",
                "exec.apply_blocks", "persist.fsync"} <= names
        # At least one submit trace must contain the whole chain:
        # worker-side exec span (merged across the process boundary),
        # the parent-side commit span, and the fsync under it.
        chains = [
            {s.name for s in tel.tracer.find_spans(trace_id)}
            for trace_id in self._submit_trace_ids(tel.tracer)
        ]
        assert any(
            {"shard.commit", "exec.apply_blocks", "persist.fsync"} <= c
            for c in chains
        ), f"no complete submit trace in {chains}"
        # Worker counter deltas merged into the parent registry.
        snap = tel.snapshot()
        assert snap["counters"]["exec_worker_blocks_total"] > 0
        assert snap["counters"]["exec_worker_txs_total"] >= 48
        assert snap["counters"]["exec_rounds_offloaded_total"] > 0
        sharded.close()

    def test_worker_kill_falls_back_with_trace_and_counter(
            self, tmp_path, traced_telemetry):
        tel = traced_telemetry
        sharded = ShardedChain(N_SHARDS, max_block_txs=8,
                               storage_dir=str(tmp_path / "store"),
                               executor="process", exec_workers=2)
        pipeline = IngestPipeline(sharded, queue_capacity=256)
        pipeline.submit_many(make_txs(16, tag="warm"))
        pipeline.run_until_drained()  # pool is live now
        pipeline.submit_many(make_txs(16, tag="kill"))
        for widx in range(2):
            sharded.exec_pool.kill_worker(widx)
        pipeline.run_until_drained()
        assert sharded.total_txs_committed == 32
        snap = tel.snapshot()
        assert snap["counters"]["exec_fallback_total"] > 0
        # The fallback ran inside shard.commit, so sampled submit traces
        # still reach the commit and its fsync.
        chains = [
            {s.name for s in tel.tracer.find_spans(trace_id)}
            for trace_id in self._submit_trace_ids(tel.tracer)
        ]
        assert any({"shard.commit", "persist.fsync"} <= c
                   for c in chains)
        sharded.verify_all()
        sharded.close()

    def test_sampling_off_leaves_no_spans(self):
        tel = Telemetry(sample_every=0)
        sharded = ShardedChain(N_SHARDS, max_block_txs=8, telemetry=tel)
        pipeline = IngestPipeline(sharded, queue_capacity=64,
                                  telemetry=tel)
        pipeline.submit_many(make_txs(32))
        pipeline.run_until_drained()
        assert tel.tracer.spans() == []
        sharded.close()

    def test_default_sampling_rate_is_wired(self):
        tel = reset_default_telemetry()
        try:
            assert tel.tracer.sample_every == DEFAULT_SAMPLE_EVERY
            pipeline = IngestPipeline(
                ShardedChain(1, max_block_txs=8, telemetry=tel),
                telemetry=tel,
            )
            assert pipeline._sample_every == DEFAULT_SAMPLE_EVERY
        finally:
            reset_default_telemetry()


# ---------------------------------------------------------------------------
# ops/metrics over SimNet
# ---------------------------------------------------------------------------
def build_served_source():
    """In-memory sealed source + SimNet gateway serving shards, sync,
    and ops."""
    tel = reset_default_telemetry(sample_every=0)
    sharded = ShardedChain(N_SHARDS, max_block_txs=8,
                           anchor_batch_size=16, telemetry=tel)
    sharded.ingest_records([
        {"record_id": f"r{i:04d}", "subject": f"org{i % 4}/asset",
         "actor": f"actor-{i % 3}", "operation": "update",
         "timestamp": i}
        for i in range(24)
    ])
    sharded.flush_anchors()
    sharded.submit_many(make_txs(48))
    while sharded.mempool_backlog:
        sharded.seal_round()
    net = SimNet(latency=LatencyModel(base=1, jitter=0), seed=11,
                 telemetry=tel)
    gateway = ChainNode("gateway", net)
    gateway.serve_shards(sharded)
    gateway.serve_sync(SnapshotServer(sharded))
    return tel, sharded, net, gateway


class TestOpsMetricsOverNetwork:
    def test_gateway_snapshot_attributes_slowest_shard(self):
        try:
            _, sharded, net, _ = build_served_source()
            client = ChainNode("client", net)
            resp = client.request_ops("gateway")
            assert resp["node"] == "gateway"
            snap = resp["snapshot"]
            assert snap["counters"]["rounds_sealed_total"] \
                == sharded.rounds_sealed > 0
            health = resp["health"]
            assert health["slowest_shard"] in health["per_shard"]
            assert health["slowest_seal_s"] > 0.0
            # The exchange itself is visible in the net counters.
            assert snap["counters"][
                'net_messages_sent_total{topic="ops/metrics"}'] >= 1
            sharded.close()
        finally:
            reset_default_telemetry()

    def test_live_replica_answers_ops(self, tmp_path):
        try:
            tel, sharded, net, _ = build_served_source()
            replica = sharded.spawn_replica(
                0, str(tmp_path / "rep"), net, node_id="rep",
                peers=["gateway"],
            )
            replica.catch_up()
            client = ChainNode("client", net)
            resp = client.request_ops("rep")
            assert resp["node"] == "rep"
            health = resp["health"]
            assert health["synced"] is True
            assert health["shard_id"] == 0
            assert health["height"] >= 1
            assert health["last_sync_peer"] == "gateway"
            # The replica shares the process registry: its snapshot
            # carries the sync client's chunk/tail progress counters.
            counters = resp["snapshot"]["counters"]
            assert counters['sync_chunks_downloaded_total{shard="0"}'] > 0
            assert counters['sync_tail_blocks_installed_total{shard="0"}'] \
                >= 0
            replica.close()
            sharded.close()
        finally:
            reset_default_telemetry()

    def test_unserved_peer_raises_structured_error(self):
        try:
            _, sharded, net, _ = build_served_source()
            ChainNode("mute", net)  # never calls serve_ops
            client = ChainNode("client", net)
            with pytest.raises(SyncError) as err:
                client.request_ops("mute", max_retries=1)
            assert err.value.reason == "peer_unresponsive"
            sharded.close()
        finally:
            reset_default_telemetry()
