"""Simulated network: delivery, latency, partitions, gossip, and the
per-topic fault-injection knobs the snapshot-sync hardening tests use."""

import pytest

from repro.errors import NetworkError, SyncError
from repro.network import GossipProtocol, LatencyModel, NetMessage, SimNet


def collect_handler(received):
    def handler(msg):
        received.append(msg)
    return handler


class TestDelivery:
    def test_messages_arrive_in_latency_order(self):
        net = SimNet(seed=1)
        received = []
        net.register("a", collect_handler(received))
        net.register("b", collect_handler(received))
        net.send(NetMessage("a", "b", "t", {"n": 1}))
        net.send(NetMessage("a", "b", "t", {"n": 2}))
        net.run()
        assert len(received) == 2
        assert net.stats.messages_delivered == 2

    def test_clock_advances_to_delivery_time(self):
        net = SimNet(LatencyModel(base=10, jitter=0), seed=1)
        net.register("a", lambda m: None)
        net.register("b", lambda m: None)
        net.send(NetMessage("a", "b", "t", {}))
        net.run()
        assert net.clock.now() >= 10

    def test_unknown_recipient_raises(self):
        net = SimNet()
        net.register("a", lambda m: None)
        with pytest.raises(NetworkError):
            net.send(NetMessage("a", "ghost", "t", {}))

    def test_duplicate_registration_rejected(self):
        net = SimNet()
        net.register("a", lambda m: None)
        with pytest.raises(NetworkError):
            net.register("a", lambda m: None)

    def test_drop_rate_drops(self):
        net = SimNet(drop_rate=0.5, seed=42)
        net.register("a", lambda m: None)
        net.register("b", lambda m: None)
        for _ in range(200):
            net.send(NetMessage("a", "b", "t", {}))
        net.run()
        assert 40 < net.stats.messages_dropped < 160

    def test_region_penalty_increases_latency(self):
        model = LatencyModel(base=1, jitter=0, region_penalty=50)
        near = SimNet(model, seed=1)
        near.register("a", lambda m: None, region="us")
        near.register("b", lambda m: None, region="us")
        near.send(NetMessage("a", "b", "t", {}))
        near.run()
        far = SimNet(model, seed=1)
        far.register("a", lambda m: None, region="us")
        far.register("b", lambda m: None, region="eu")
        far.send(NetMessage("a", "b", "t", {}))
        far.run()
        assert far.clock.now() > near.clock.now()

    def test_deterministic_given_seed(self):
        def run_once():
            net = SimNet(LatencyModel(base=2, jitter=5), seed=7)
            order = []
            net.register("a", lambda m: order.append(m.body["n"]))
            net.register("b", lambda m: None)
            for i in range(10):
                net.send(NetMessage("b", "a", "t", {"n": i}))
            net.run()
            return order

        assert run_once() == run_once()


class TestPartitions:
    def test_partition_blocks_cross_group(self):
        net = SimNet(seed=1)
        received = []
        for node in ("a", "b", "c"):
            net.register(node, collect_handler(received))
        net.partition({"a", "b"}, {"c"})
        assert net.send(NetMessage("a", "b", "t", {}))
        assert not net.send(NetMessage("a", "c", "t", {}))
        net.run()
        assert len(received) == 1

    def test_heal_restores_delivery(self):
        net = SimNet(seed=1)
        received = []
        net.register("a", collect_handler(received))
        net.register("c", collect_handler(received))
        net.partition({"a"}, {"c"})
        net.heal()
        assert net.send(NetMessage("a", "c", "t", {}))
        net.run()
        assert len(received) == 1


class TestFaultInjection:
    def _pair(self, seed=3):
        net = SimNet(LatencyModel(base=2, jitter=0), seed=seed)
        received = []
        net.register("a", lambda m: None)
        net.register("b", collect_handler(received))
        return net, received

    def test_topic_drop_only_affects_that_topic(self):
        net, received = self._pair(seed=9)
        net.inject_faults("lossy", drop=0.5)
        for _ in range(100):
            net.send(NetMessage("a", "b", "lossy", {}))
            net.send(NetMessage("a", "b", "clean", {}))
        net.run()
        clean = [m for m in received if m.topic == "clean"]
        lossy = [m for m in received if m.topic == "lossy"]
        assert len(clean) == 100
        assert 20 < len(lossy) < 80
        assert net.stats.messages_dropped == 100 - len(lossy)

    def test_duplicate_delivers_twice(self):
        net, received = self._pair(seed=5)
        net.inject_faults("dup", duplicate=0.999)
        net.send(NetMessage("a", "b", "dup", {"n": 1}))
        net.run()
        assert len(received) == 2
        assert net.stats.messages_duplicated == 1
        # One logical send, two deliveries.
        assert net.stats.messages_sent == 1
        assert net.stats.messages_delivered == 2

    def test_reorder_lets_later_sends_overtake(self):
        net, received = self._pair(seed=1)
        net.inject_faults("ooo", reorder=0.999, reorder_delay=100)
        net.send(NetMessage("a", "b", "ooo", {"n": 1}))
        net.clear_faults("ooo")
        net.send(NetMessage("a", "b", "ooo", {"n": 2}))
        net.run()
        assert [m.body["n"] for m in received] == [2, 1]
        assert net.stats.messages_reordered == 1

    def test_deterministic_given_seed(self):
        def run_once():
            net = SimNet(LatencyModel(base=2, jitter=2), seed=17)
            order = []
            net.register("a", lambda m: None)
            net.register("b", lambda m: order.append(m.body["n"]))
            net.inject_faults("t", drop=0.2, duplicate=0.2, reorder=0.3)
            for i in range(40):
                net.send(NetMessage("a", "b", "t", {"n": i}))
            net.run()
            return order, net.stats.messages_dropped, \
                net.stats.messages_duplicated, net.stats.messages_reordered

        assert run_once() == run_once()

    def test_clear_faults_restores_clean_delivery(self):
        net, received = self._pair(seed=2)
        net.inject_faults("t", drop=0.9)
        net.clear_faults()
        for _ in range(50):
            net.send(NetMessage("a", "b", "t", {}))
        net.run()
        assert len(received) == 50

    def test_invalid_probability_rejected(self):
        net, _ = self._pair()
        with pytest.raises(NetworkError):
            net.inject_faults("t", drop=1.5)


class TestSyncUnderFaults:
    """Snapshot sync over this network must converge through loss and
    fail closed through partitions (the ISSUE's partition test)."""

    def _source(self):
        from repro.chain import Transaction, TxKind
        from repro.sharding import ShardedChain

        sharded = ShardedChain(1, max_block_txs=8, anchor_batch_size=8)
        sharded.ingest_records([
            {"record_id": f"n{i}", "subject": f"net/asset-{i % 3}",
             "actor": "net-actor", "operation": "update", "timestamp": i}
            for i in range(16)
        ])
        sharded.flush_anchors()
        sharded.submit_many([
            Transaction("net/acct", TxKind.DATA,
                        {"key": f"n{i}", "value": i}).seal()
            for i in range(32)
        ])
        while sharded.mempool_backlog:
            sharded.seal_round(blocks_per_shard=2)
        return sharded

    def test_partitioned_sync_fails_closed_then_converges(self, tmp_path):
        from repro.network import ChainNode
        from repro.sync import SnapshotServer

        sharded = self._source()
        net = SimNet(LatencyModel(base=2, jitter=1), seed=21)
        gateway = ChainNode("gateway", net)
        gateway.serve_sync(SnapshotServer(sharded))
        replica = sharded.spawn_replica(
            0, str(tmp_path / "rep"), net, node_id="rep",
            peers=["gateway"],
        )
        net.partition({"gateway"}, {"rep"})
        with pytest.raises(SyncError) as err:
            replica.catch_up(max_retries=2)
        assert err.value.reason == "peer_unresponsive"
        net.heal()
        report = replica.catch_up()
        assert report.height == sharded.shard(0).chain.height
        assert replica.chain.head.block_hash == \
            sharded.shard(0).chain.head.block_hash

    def test_sync_converges_under_heavy_message_loss(self, tmp_path):
        from repro.network import ChainNode
        from repro.sync import SnapshotServer

        sharded = self._source()
        net = SimNet(LatencyModel(base=2, jitter=1), seed=23)
        gateway = ChainNode("gateway", net)
        gateway.serve_sync(SnapshotServer(sharded, chunk_size=1024))
        for topic in ("sync/offer", "sync/chunk", "sync/tail"):
            net.inject_faults(topic, drop=0.4, duplicate=0.2,
                              reorder=0.2)
        replica = sharded.spawn_replica(
            0, str(tmp_path / "rep"), net, node_id="rep",
            peers=["gateway"],
        )
        report = replica.catch_up(tail_batch=4, max_retries=40)
        assert net.stats.messages_dropped > 0
        assert report.retries > 0
        assert replica.chain.head.block_hash == \
            sharded.shard(0).chain.head.block_hash
        assert replica.chain.blocks_replayed_on_open == 0


class TestGossip:
    def _mesh(self, n, fanout=3, seed=3):
        net = SimNet(seed=seed)
        gossip = GossipProtocol(net, fanout=fanout, seed=seed)
        deliveries = {f"n{i}": [] for i in range(n)}
        for i in range(n):
            node_id = f"n{i}"
            net.register(
                node_id,
                lambda msg, nid=node_id: gossip.handle(nid, msg),
            )
            gossip.attach(node_id,
                          lambda item, body, nid=node_id:
                          deliveries[nid].append(item))
        return net, gossip, deliveries

    def test_full_coverage(self):
        net, gossip, deliveries = self._mesh(12)
        gossip.publish("n0", "item-1", {"v": 1})
        net.run()
        assert gossip.coverage("item-1") == 1.0

    def test_each_node_delivers_once(self):
        net, gossip, deliveries = self._mesh(10)
        gossip.publish("n0", "item-1", {"v": 1})
        net.run()
        assert all(items.count("item-1") == 1 for items in deliveries.values())

    def test_message_overhead_bounded(self):
        net, gossip, _ = self._mesh(10, fanout=3)
        gossip.publish("n0", "item-1", {})
        net.run()
        # Flooding with dedup: each of the 10 nodes forwards at most
        # fanout times.
        assert net.stats.messages_sent <= 10 * 3


class TestDepartedRecipients:
    """Replies racing a client disconnect: counted, never raised,
    never silently vanished (gateway_frames_undeliverable_total)."""

    def _undeliverable(self, net, topic):
        snap = net.telemetry.registry.snapshot()
        key = (f'gateway_frames_undeliverable_total'
               f'{{topic="{topic}",transport="simnet"}}')
        return snap["counters"].get(key, 0)

    def test_send_to_departed_counts_instead_of_raising(self):
        from repro.obs.runtime import Telemetry
        net = SimNet(seed=1, telemetry=Telemetry())
        net.register("a", lambda m: None)
        net.register("b", lambda m: None)
        net.unregister("b")
        delivered = net.send(NetMessage("a", "b", "reply", {}))
        assert delivered is False
        assert net.stats.messages_dropped == 1
        assert self._undeliverable(net, "reply") == 1

    def test_never_registered_recipient_still_raises(self):
        net = SimNet(seed=1)
        net.register("a", lambda m: None)
        with pytest.raises(NetworkError):
            net.send(NetMessage("a", "ghost", "t", {}))

    def test_unregister_midflight_counts_at_delivery(self):
        from repro.obs.runtime import Telemetry
        net = SimNet(seed=1, telemetry=Telemetry())
        net.register("a", lambda m: None)
        net.register("b", lambda m: None)
        net.send(NetMessage("a", "b", "reply", {}))   # queued, not delivered
        net.unregister("b")                           # departs mid-flight
        net.run()
        assert net.stats.messages_delivered == 0
        assert net.stats.messages_dropped == 1
        assert self._undeliverable(net, "reply") == 1

    def test_rejoining_node_receives_again(self):
        received = []
        net = SimNet(seed=1)
        net.register("a", lambda m: None)
        net.register("b", lambda m: received.append(m))
        net.unregister("b")
        net.register("b", lambda m: received.append(m))
        net.send(NetMessage("a", "b", "t", {}))
        net.run()
        assert len(received) == 1
