"""Simulated network: delivery, latency, partitions, gossip."""

import pytest

from repro.errors import NetworkError
from repro.network import GossipProtocol, LatencyModel, NetMessage, SimNet


def collect_handler(received):
    def handler(msg):
        received.append(msg)
    return handler


class TestDelivery:
    def test_messages_arrive_in_latency_order(self):
        net = SimNet(seed=1)
        received = []
        net.register("a", collect_handler(received))
        net.register("b", collect_handler(received))
        net.send(NetMessage("a", "b", "t", {"n": 1}))
        net.send(NetMessage("a", "b", "t", {"n": 2}))
        net.run()
        assert len(received) == 2
        assert net.stats.messages_delivered == 2

    def test_clock_advances_to_delivery_time(self):
        net = SimNet(LatencyModel(base=10, jitter=0), seed=1)
        net.register("a", lambda m: None)
        net.register("b", lambda m: None)
        net.send(NetMessage("a", "b", "t", {}))
        net.run()
        assert net.clock.now() >= 10

    def test_unknown_recipient_raises(self):
        net = SimNet()
        net.register("a", lambda m: None)
        with pytest.raises(NetworkError):
            net.send(NetMessage("a", "ghost", "t", {}))

    def test_duplicate_registration_rejected(self):
        net = SimNet()
        net.register("a", lambda m: None)
        with pytest.raises(NetworkError):
            net.register("a", lambda m: None)

    def test_drop_rate_drops(self):
        net = SimNet(drop_rate=0.5, seed=42)
        net.register("a", lambda m: None)
        net.register("b", lambda m: None)
        for _ in range(200):
            net.send(NetMessage("a", "b", "t", {}))
        net.run()
        assert 40 < net.stats.messages_dropped < 160

    def test_region_penalty_increases_latency(self):
        model = LatencyModel(base=1, jitter=0, region_penalty=50)
        near = SimNet(model, seed=1)
        near.register("a", lambda m: None, region="us")
        near.register("b", lambda m: None, region="us")
        near.send(NetMessage("a", "b", "t", {}))
        near.run()
        far = SimNet(model, seed=1)
        far.register("a", lambda m: None, region="us")
        far.register("b", lambda m: None, region="eu")
        far.send(NetMessage("a", "b", "t", {}))
        far.run()
        assert far.clock.now() > near.clock.now()

    def test_deterministic_given_seed(self):
        def run_once():
            net = SimNet(LatencyModel(base=2, jitter=5), seed=7)
            order = []
            net.register("a", lambda m: order.append(m.body["n"]))
            net.register("b", lambda m: None)
            for i in range(10):
                net.send(NetMessage("b", "a", "t", {"n": i}))
            net.run()
            return order

        assert run_once() == run_once()


class TestPartitions:
    def test_partition_blocks_cross_group(self):
        net = SimNet(seed=1)
        received = []
        for node in ("a", "b", "c"):
            net.register(node, collect_handler(received))
        net.partition({"a", "b"}, {"c"})
        assert net.send(NetMessage("a", "b", "t", {}))
        assert not net.send(NetMessage("a", "c", "t", {}))
        net.run()
        assert len(received) == 1

    def test_heal_restores_delivery(self):
        net = SimNet(seed=1)
        received = []
        net.register("a", collect_handler(received))
        net.register("c", collect_handler(received))
        net.partition({"a"}, {"c"})
        net.heal()
        assert net.send(NetMessage("a", "c", "t", {}))
        net.run()
        assert len(received) == 1


class TestGossip:
    def _mesh(self, n, fanout=3, seed=3):
        net = SimNet(seed=seed)
        gossip = GossipProtocol(net, fanout=fanout, seed=seed)
        deliveries = {f"n{i}": [] for i in range(n)}
        for i in range(n):
            node_id = f"n{i}"
            net.register(
                node_id,
                lambda msg, nid=node_id: gossip.handle(nid, msg),
            )
            gossip.attach(node_id,
                          lambda item, body, nid=node_id:
                          deliveries[nid].append(item))
        return net, gossip, deliveries

    def test_full_coverage(self):
        net, gossip, deliveries = self._mesh(12)
        gossip.publish("n0", "item-1", {"v": 1})
        net.run()
        assert gossip.coverage("item-1") == 1.0

    def test_each_node_delivers_once(self):
        net, gossip, deliveries = self._mesh(10)
        gossip.publish("n0", "item-1", {"v": 1})
        net.run()
        assert all(items.count("item-1") == 1 for items in deliveries.values())

    def test_message_overhead_bounded(self):
        net, gossip, _ = self._mesh(10, fanout=3)
        gossip.publish("n0", "item-1", {})
        net.run()
        # Flooding with dedup: each of the 10 nodes forwards at most
        # fanout times.
        assert net.stats.messages_sent <= 10 * 3
