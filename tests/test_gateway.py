"""Socket gateway: frame codec, handshake, wire backpressure,
commitment equivalence with the in-process path, disconnect races, and
graceful drain.

The equivalence suite pins the gateway's core promise: transactions
streamed in by N concurrent asyncio clients — overlapping tenant
namespaces, cross-shard lock conflicts included — seal to
byte-identical shard heads, state roots, and beacon commitments as the
same batch submitted in process.  Unique per-transaction fees give the
mempool's ``(-fee, seq, tx_id)`` heap a total order independent of
arrival interleave, which is exactly what makes the promise testable.
"""

from __future__ import annotations

import asyncio
import struct

import pytest

from repro.chain import Transaction, TxKind
from repro.errors import (
    RETRY_AFTER_FLOOR_S, ChainError, GatewayError,
)
from repro.gateway import (
    MAX_FRAME_BYTES, AsyncGatewayClient, GatewayClient, GatewayServer,
    encode_frame,
)
from repro.gateway.frames import (
    decode_frame_payload, frame_to_txs, read_frame, txs_to_frame_body,
)
from repro.ingest import IngestPipeline
from repro.net_retry import RetryPolicy
from repro.obs.runtime import Telemetry
from repro.persist.codec import (
    transaction_from_mapping, transaction_to_mapping,
)
from repro.serialization import canonical_encode
from repro.sharding import CrossShardCoordinator, ShardedChain


def data_tx(i: int, tenant: str = "t0", fee: int = 0) -> Transaction:
    return Transaction(
        sender="alice", kind=TxKind.DATA,
        payload={"subject": f"{tenant}/obj", "key": f"k{i}", "value": i},
        timestamp=i, fee=fee,
    ).seal()


def make_stack(n_shards: int = 4, queue_capacity: int = 4096,
               **server_kw):
    """An isolated (own-telemetry) sharded chain + pipeline + server."""
    telemetry = Telemetry()
    sharded = ShardedChain(n_shards=n_shards, telemetry=telemetry)
    pipe = IngestPipeline(sharded, queue_capacity=queue_capacity,
                          telemetry=telemetry)
    server = GatewayServer(pipe, telemetry=telemetry, **server_kw)
    return sharded, pipe, server


def commitments(sharded: ShardedChain):
    return (
        [s.chain.head.block_hash for s in sharded.shards],
        [s.chain.state.state_root() for s in sharded.shards],
        sharded.beacon.chain.head.block_hash,
    )


def counter_of(server: GatewayServer, name: str) -> float:
    snap = server.telemetry.registry.snapshot()
    return sum(v for k, v in snap["counters"].items()
               if k == name or k.startswith(name + "{"))


# ---------------------------------------------------------------------------
# Frame codec
# ---------------------------------------------------------------------------
class TestFrames:
    def test_frame_roundtrip(self):
        body = {"op": "submit", "seq": 7, "txs": [], "b": b"\x00\xff"}
        frame = encode_frame(body)
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert decode_frame_payload(frame[4:]) == body

    def test_transaction_survives_the_wire_byte_identically(self):
        tx = data_tx(3, tenant="t9", fee=5)
        back = transaction_from_mapping(transaction_to_mapping(tx))
        assert back.tx_id == tx.tx_id
        assert back.is_sealed
        assert canonical_encode(back.signing_body()) == \
            canonical_encode(tx.signing_body())

    def test_submit_body_roundtrip(self):
        txs = [data_tx(i, fee=i) for i in range(5)]
        body = decode_frame_payload(
            encode_frame(txs_to_frame_body(txs, seq=3))[4:])
        back = frame_to_txs(body)
        assert [t.tx_id for t in back] == [t.tx_id for t in txs]

    @staticmethod
    def _read_fed(*chunks: bytes, eof: bool = True):
        async def scenario():
            reader = asyncio.StreamReader()
            for chunk in chunks:
                reader.feed_data(chunk)
            if eof:
                reader.feed_eof()
            return await read_frame(reader)
        return asyncio.run(scenario())

    def test_announced_oversize_frame_refused(self):
        with pytest.raises(GatewayError) as err:
            self._read_fed(struct.pack(">I", MAX_FRAME_BYTES + 1) + b"xx",
                           eof=False)
        assert err.value.reason == "frame_too_large"

    def test_corrupt_payload_fails_closed(self):
        frame = encode_frame({"op": "ping", "seq": 1})
        broken = frame[:4] + b"Z" + frame[5:]
        with pytest.raises(GatewayError) as err:
            decode_frame_payload(broken[4:])
        assert err.value.reason == "corrupt_frame"

    def test_non_mapping_payload_fails_closed(self):
        payload = canonical_encode([1, 2, 3])
        with pytest.raises(GatewayError) as err:
            decode_frame_payload(payload)
        assert err.value.reason == "corrupt_frame"

    def test_eof_mid_frame_is_connection_closed(self):
        frame = encode_frame({"op": "ping", "seq": 1})
        with pytest.raises(GatewayError) as err:
            self._read_fed(frame[: len(frame) - 2])
        assert err.value.reason == "connection_closed"

    def test_clean_eof_between_frames_is_none(self):
        assert self._read_fed() is None

    def test_malformed_tx_entry_fails_the_frame(self):
        body = txs_to_frame_body([data_tx(1)], seq=1)
        body["txs"].append({"not": "a tx"})
        with pytest.raises(GatewayError) as err:
            frame_to_txs(body)
        assert err.value.reason == "corrupt_frame"


# ---------------------------------------------------------------------------
# Handshake + control ops
# ---------------------------------------------------------------------------
class TestHandshake:
    def test_hello_ping_ops_bye(self):
        _, pipe, server = make_stack()

        async def scenario():
            host, port = await server.start()
            async with await AsyncGatewayClient.connect(
                    host, port, tenant="acme") as client:
                assert client.conn_id is not None
                assert not client.server_draining
                assert await client.ping() < 1.0
                await client.submit([data_tx(1)])
                ops = await client.ops()
                assert ops["ingest"]["submitted"] == 1
                assert ops["gateway"]["connections_active"] == 1
                assert "counters" in ops["snapshot"]
            await server.drain()

        asyncio.run(scenario())

    def test_wrong_protocol_version_refused(self):
        _, _, server = make_stack()

        async def scenario():
            host, port = await server.start()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(encode_frame({"op": "hello", "seq": 1,
                                       "proto": 99, "tenant": "x"}))
            await writer.drain()
            body = await read_frame(reader)
            assert body["op"] == "error"
            assert body["reason"] == "protocol"
            writer.close()
            await server.drain()

        asyncio.run(scenario())

    def test_unknown_op_answered_with_error(self):
        _, _, server = make_stack()

        async def scenario():
            host, port = await server.start()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(encode_frame({"op": "warp", "seq": 4}))
            await writer.drain()
            body = await read_frame(reader)
            assert body["op"] == "error"
            assert body["reason"] == "protocol"
            assert body["seq"] == 4
            writer.close()
            await server.drain()

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Commitment equivalence with the in-process path
# ---------------------------------------------------------------------------
class TestEquivalence:
    N_CLIENTS = 6
    PER_CLIENT = 50

    def _txs_for(self, client_idx: int) -> list[Transaction]:
        # Overlapping namespaces: every client writes into tenants
        # t0..t3, so shard queues interleave submissions from all
        # clients.  Fees are globally unique -> total mempool order.
        return [
            data_tx(client_idx * 1000 + i, tenant=f"t{i % 4}",
                    fee=client_idx * self.PER_CLIENT + i)
            for i in range(self.PER_CLIENT)
        ]

    def test_concurrent_clients_match_in_process(self):
        all_txs = [tx for c in range(self.N_CLIENTS)
                   for tx in self._txs_for(c)]

        # Reference: one in-process pipeline, same config.
        ref_telemetry = Telemetry()
        ref_sharded = ShardedChain(n_shards=4, telemetry=ref_telemetry)
        ref_pipe = IngestPipeline(ref_sharded, queue_capacity=4096,
                                  telemetry=ref_telemetry)
        report = ref_pipe.submit_many(all_txs)
        assert not report.rejected
        ref_pipe.run_until_drained()

        # Gateway: N concurrent asyncio clients, arbitrary interleave.
        sharded, pipe, server = make_stack()

        async def scenario():
            host, port = await server.start()

            async def one_client(idx: int):
                async with await AsyncGatewayClient.connect(
                        host, port, tenant=f"client-{idx}") as client:
                    result = await client.submit(self._txs_for(idx))
                    assert result.queued == self.PER_CLIENT
                    assert not result.rejected

            await asyncio.gather(*(one_client(i)
                                   for i in range(self.N_CLIENTS)))
            await server.drain()

        asyncio.run(scenario())
        assert commitments(sharded) == commitments(ref_sharded)
        sharded.verify_all(deep=True)

    def test_lock_conflicts_match_in_process(self):
        def build(telemetry):
            sharded = ShardedChain(n_shards=4, telemetry=telemetry)
            pipe = IngestPipeline(sharded, queue_capacity=4096,
                                  telemetry=telemetry)
            coord = CrossShardCoordinator(sharded, timeout_rounds=50)
            source = "t0/obj"
            target_ns = next(
                f"x{c}" for c in "abcdefgh"
                if sharded.router.shard_for(f"x{c}")
                != sharded.router.shard_for("t0")
            )
            coord.begin(source, f"{target_ns}/obj")
            return sharded, pipe

        all_txs = [tx for c in range(self.N_CLIENTS)
                   for tx in self._txs_for(c)]

        ref_sharded, ref_pipe = build(Telemetry())
        ref_pipe.submit_many(all_txs)   # t0/obj txs bounce off the lock
        ref_pipe.run_until_drained()

        telemetry = Telemetry()
        sharded, pipe = build(telemetry)
        server = GatewayServer(pipe, telemetry=telemetry)

        async def scenario():
            host, port = await server.start()

            async def one_client(idx: int):
                async with await AsyncGatewayClient.connect(
                        host, port) as client:
                    await client.submit(self._txs_for(idx))

            await asyncio.gather(*(one_client(i)
                                   for i in range(self.N_CLIENTS)))
            await server.drain()

        asyncio.run(scenario())
        assert commitments(sharded) == commitments(ref_sharded)
        assert sharded.rounds_sealed == ref_sharded.rounds_sealed
        sharded.verify_all(deep=True)

    def test_sync_client_matches_async_path(self):
        txs = [data_tx(i, tenant=f"t{i % 4}", fee=i) for i in range(80)]

        ref_telemetry = Telemetry()
        ref_sharded = ShardedChain(n_shards=4, telemetry=ref_telemetry)
        ref_pipe = IngestPipeline(ref_sharded, telemetry=ref_telemetry)
        ref_pipe.submit_many(txs)
        ref_pipe.run_until_drained()

        sharded, pipe, server = make_stack()

        async def scenario():
            host, port = await server.start()
            loop = asyncio.get_running_loop()

            def sync_side():
                with GatewayClient(host, port, tenant="sync") as client:
                    result = client.submit(txs)
                    assert result.queued == len(txs)
            await loop.run_in_executor(None, sync_side)
            await server.drain()

        asyncio.run(scenario())
        assert commitments(sharded) == commitments(ref_sharded)


# ---------------------------------------------------------------------------
# Backpressure over the wire
# ---------------------------------------------------------------------------
class TestWireBackpressure:
    def test_pre_first_seal_hint_never_below_the_floor(self):
        # The regression the bugfix satellite pins, observed end to
        # end: before any round has sealed, bounced submissions must
        # carry a non-zero retry hint (a client honoring 0.0 verbatim
        # would hot-loop the gateway).
        sharded, pipe, server = make_stack(n_shards=1,
                                           queue_capacity=8)

        async def scenario():
            host, port = await server.start()
            async with await AsyncGatewayClient.connect(
                    host, port) as client:
                result = await client.submit(
                    [data_tx(i, fee=i) for i in range(20)])
                assert result.queued == 8
                assert len(result.rejected) == 12
                for entry in result.rejected:
                    assert entry["retry_after_s"] >= RETRY_AFTER_FLOOR_S
                assert result.retry_after_s >= RETRY_AFTER_FLOOR_S
            await server.drain()

        asyncio.run(scenario())

    def test_queuefull_storm_loses_nothing(self):
        # Tiny queues + auto-seal + 6 greedy clients: every bounced
        # transaction must be retried to admission — zero drops.
        telemetry = Telemetry()
        sharded = ShardedChain(n_shards=2, max_block_txs=64,
                               telemetry=telemetry)
        pipe = IngestPipeline(sharded, queue_capacity=32,
                              telemetry=telemetry)
        server = GatewayServer(pipe, auto_seal=True, telemetry=telemetry)
        n_clients, per_client = 6, 150
        policy = RetryPolicy(max_retries=80, tick_s=0.001)

        async def scenario():
            host, port = await server.start()

            async def flood(idx: int):
                async with await AsyncGatewayClient.connect(
                        host, port, policy=policy) as client:
                    txs = [data_tx(idx * 1000 + i, tenant=f"t{i % 3}",
                                   fee=idx * per_client + i)
                           for i in range(per_client)]
                    result = await client.submit_with_retry(txs)
                    assert result.queued == per_client
                    return result.attempts

            attempts = await asyncio.gather(
                *(flood(i) for i in range(n_clients)))
            assert max(attempts) > 1    # the storm actually bounced
            await server.drain()

        asyncio.run(scenario())
        sealed = sum(sum(len(b.transactions) for b in s.chain.blocks[1:])
                     for s in sharded.shards)
        assert sealed == n_clients * per_client
        assert counter_of(server, "gateway_txs_rejected_total") > 0

    def test_budget_exhaustion_hands_back_pending(self):
        # No sealer: the queue never frees, so the retry budget runs
        # out — the still-pending transactions must come back on the
        # error, not vanish.
        _, pipe, server = make_stack(n_shards=1, queue_capacity=4)

        async def scenario():
            host, port = await server.start()
            policy = RetryPolicy(max_retries=2, tick_s=0.0001)
            async with await AsyncGatewayClient.connect(
                    host, port, policy=policy) as client:
                txs = [data_tx(i, fee=i) for i in range(10)]
                with pytest.raises(GatewayError) as err:
                    await client.submit_with_retry(txs)
                assert err.value.reason == "backpressure_budget"
                pending_ids = {tx.tx_id for tx in err.value.pending}
                assert len(pending_ids) == 6   # 4 queued, 6 stuck
                assert pending_ids <= {tx.tx_id for tx in txs}
            await server.drain()

        asyncio.run(scenario())

    def test_repeat_offenders_get_paused(self):
        _, pipe, server = make_stack(n_shards=1, queue_capacity=4,
                                     pause_after=2, pause_cap_s=0.01)

        async def scenario():
            host, port = await server.start()
            async with await AsyncGatewayClient.connect(
                    host, port) as client:
                for i in range(4):   # every submit bounces its tail
                    await client.submit(
                        [data_tx(100 * i + j, fee=100 * i + j)
                         for j in range(8)])
            await server.drain()

        asyncio.run(scenario())
        assert counter_of(server, "gateway_pauses_total") >= 1


# ---------------------------------------------------------------------------
# Disconnect races
# ---------------------------------------------------------------------------
class TestDisconnects:
    def test_kill_client_mid_frame(self):
        # A client dying mid-write leaves a truncated frame; the server
        # counts the aborted connection and keeps serving everyone else.
        sharded, pipe, server = make_stack()

        async def scenario():
            host, port = await server.start()
            reader, writer = await asyncio.open_connection(host, port)
            frame = encode_frame(txs_to_frame_body(
                [data_tx(i) for i in range(50)], seq=1))
            writer.write(frame[: len(frame) // 2])
            await writer.drain()
            writer.transport.abort()   # RST mid-frame
            await asyncio.sleep(0.05)
            assert counter_of(
                server, "gateway_connections_aborted_total") == 1
            # The accept loop survived: a well-behaved client still works.
            async with await AsyncGatewayClient.connect(
                    host, port) as client:
                result = await client.submit([data_tx(999)])
                assert result.queued == 1
            await server.drain()

        asyncio.run(scenario())
        assert sharded.total_txs_committed == 1

    def test_disconnect_during_batched_reply_is_counted(self):
        # report_chunk=1 + a mostly-bounced batch = a long streamed
        # reply; the client vanishes before reading it.  Every frame
        # that could not be flushed must land on the undeliverable
        # counter — never raise through the accept loop, never vanish.
        _, pipe, server = make_stack(n_shards=1, queue_capacity=2,
                                     report_chunk=1)

        async def scenario():
            host, port = await server.start()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(encode_frame({
                "op": "hello", "seq": 1, "proto": 1, "tenant": "x"}))
            await writer.drain()
            assert (await read_frame(reader))["op"] == "hello_ok"
            # 2002 txs -> 2 queued + 2000 retry_after chunks + report.
            writer.write(encode_frame(txs_to_frame_body(
                [data_tx(i, fee=i) for i in range(2002)], seq=2)))
            await writer.drain()
            writer.transport.abort()   # gone before reading the reply
            for _ in range(100):
                await asyncio.sleep(0.02)
                if counter_of(server,
                              "gateway_frames_undeliverable_total"):
                    break
            assert counter_of(
                server, "gateway_frames_undeliverable_total") > 0
            assert server.active_connections == 0
            # Server is healthy: the next client is served normally.
            async with await AsyncGatewayClient.connect(
                    host, port) as client:
                assert (await client.submit([])).queued == 0
            await server.drain()

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Graceful drain
# ---------------------------------------------------------------------------
class TestDrain:
    def test_drain_under_load_loses_nothing(self):
        sharded, pipe, server = make_stack()
        n_clients = 8
        acked = []

        async def scenario():
            host, port = await server.start()
            stop = asyncio.Event()

            async def capture(idx: int):
                client = await AsyncGatewayClient.connect(
                    host, port, tenant=f"cap-{idx}")
                queued = 0
                i = 0
                try:
                    while not stop.is_set():
                        result = await client.submit(
                            [data_tx(idx * 100000 + i + j,
                                     tenant=f"t{(i + j) % 5}",
                                     fee=idx * 100000 + i + j)
                             for j in range(10)])
                        queued += result.queued
                        i += 10
                        await asyncio.sleep(0)
                except GatewayError as exc:
                    assert exc.reason in ("draining",
                                          "connection_closed")
                acked.append(queued)

            tasks = [asyncio.ensure_future(capture(i))
                     for i in range(n_clients)]
            await asyncio.sleep(0.15)   # let the fleet stream
            stop.set()
            await server.drain()
            await asyncio.gather(*tasks)
            # New connections are refused once drained.
            with pytest.raises(OSError):
                await asyncio.open_connection(host, port)

        asyncio.run(scenario())
        assert pipe.backlog == 0
        assert sharded.mempool_backlog == 0
        assert sum(acked) > 0
        assert sharded.total_txs_committed == sum(acked)

    def test_submit_after_drain_starts_is_refused_structurally(self):
        _, pipe, server = make_stack()

        async def scenario():
            host, port = await server.start()
            client = await AsyncGatewayClient.connect(host, port)
            drain_task = asyncio.ensure_future(server.drain())
            await asyncio.sleep(0.01)
            with pytest.raises(GatewayError) as err:
                await client.submit([data_tx(1)])
            assert err.value.reason in ("draining", "connection_closed")
            await drain_task
            await client.close()

        asyncio.run(scenario())

    def test_duplicate_topic_guard_still_protects_simnet_gateway(self):
        # The on_topic audit rides along: a ChainNode fronting a facade
        # refuses a second, different claimant for its topics.
        from repro.chain import ChainParams
        from repro.network import ChainNode, SimNet

        net = SimNet(seed=3)
        node = ChainNode("gw", net, ChainParams(chain_id="g"))
        sharded = ShardedChain(n_shards=2)
        node.serve_shards(sharded)
        node.serve_shards(sharded)   # idempotent
        with pytest.raises(ChainError):
            node.on_topic("shard_tx", lambda m: None)
