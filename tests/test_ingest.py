"""Ingestion pipeline: queues, watermarks, backpressure, batch
admission, group-commit durability, and parallel sealing.

The equivalence suite pins the pipeline's core promise: a pipelined,
batched, group-committed ingest run commits the same chain state,
provenance records, and verifiable proofs as the synchronous
``submit_many`` path — including through a durable close + reopen.
The crash suite drives the segment log's fault-injection hook through
the *group* write path, so a kill at any byte of a group commit must
recover to a consistent log + index.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.chain import Blockchain, ChainParams, Mempool, Transaction, TxKind
from repro.crypto.signatures import KeyPair, verify_encoded_batch
from repro.errors import (
    RETRY_AFTER_FLOOR_S, InvalidBlock, QueueFull, ShardError,
)
from repro.ingest import IngestPipeline
from repro.persist import CrashPoint, DurableStorage, SegmentLog
from repro.sharding import CrossShardCoordinator, ShardedChain
from repro.storage.provdb import ProvenanceDatabase


def data_tx(i: int, tenant: str = "t0", sender: str = "alice",
            fee: int = 0) -> Transaction:
    return Transaction(
        sender=sender, kind=TxKind.DATA,
        payload={"subject": f"{tenant}/obj", "key": f"k{i}", "value": i},
        timestamp=i, fee=fee,
    ).seal()


def record_for(i: int, tenant: str = "t0") -> dict:
    return {"record_id": f"r{i}", "subject": f"{tenant}/obj",
            "actor": "alice", "operation": "update", "timestamp": i}


def shard_heads(sharded: ShardedChain) -> list[bytes]:
    return [s.chain.head.block_hash for s in sharded.shards]


def shard_state_roots(sharded: ShardedChain) -> list[bytes]:
    return [s.chain.state.state_root() for s in sharded.shards]


# ---------------------------------------------------------------------------
# Queues, watermarks, and backpressure signals
# ---------------------------------------------------------------------------
class TestQueueBackpressure:
    def test_submit_routes_and_counts(self):
        sharded = ShardedChain(n_shards=4)
        pipe = IngestPipeline(sharded, queue_capacity=64)
        txs = [data_tx(i, tenant=f"t{i % 5}") for i in range(20)]
        shard_ids = [pipe.submit(tx) for tx in txs]
        assert pipe.backlog == 20
        for tx, sid in zip(txs, shard_ids):
            assert sharded.router.route(tx) == sid
        assert sum(pipe.queue_stats(s).depth for s in range(4)) == 20

    def test_queue_full_raises_structured_signal(self):
        sharded = ShardedChain(n_shards=1)
        pipe = IngestPipeline(sharded, queue_capacity=4,
                              high_watermark=0.5)
        for i in range(4):
            pipe.submit(data_tx(i))
        with pytest.raises(QueueFull) as exc_info:
            pipe.submit(data_tx(99))
        signal = exc_info.value
        assert signal.shard_id == 0
        assert signal.depth == 4
        assert signal.capacity == 4
        assert signal.high_watermark == 2
        assert signal.retry_after_rounds >= 1
        assert signal.retry_after_s >= 0.0
        assert signal.as_dict()["capacity"] == 4
        # The rejection is counted, never silent.
        assert pipe.queue_stats(0).total_rejected == 1

    def test_watermark_observable_before_full(self):
        sharded = ShardedChain(n_shards=1)
        pipe = IngestPipeline(sharded, queue_capacity=10,
                              high_watermark=0.5)
        for i in range(4):
            pipe.submit(data_tx(i))
        assert pipe.backpressure(0) is None
        assert not pipe.queue_stats(0).over_watermark
        pipe.submit(data_tx(4))
        signal = pipe.backpressure(0)
        assert signal is not None and signal.depth == 5
        assert pipe.queue_stats(0).over_watermark
        assert pipe.queue_stats(0).saturation == 0.5
        # Still accepts until actually full.
        for i in range(5, 10):
            pipe.submit(data_tx(i))
        with pytest.raises(QueueFull):
            pipe.submit(data_tx(11))

    def test_submit_many_partitions_input_exactly(self):
        sharded = ShardedChain(n_shards=1)
        pipe = IngestPipeline(sharded, queue_capacity=8)
        txs = [data_tx(i) for i in range(12)]
        report = pipe.submit_many(txs)
        assert report.queued_total == 8
        assert report.rejected_total == 4
        assert report.queued_total + report.rejected_total == len(txs)
        for tx, signal in report.rejected:
            assert isinstance(signal, QueueFull)
            assert signal.retry_after_rounds >= 1
        summary = report.backpressure_summary()
        assert summary[0]["queued"] == 8
        assert summary[0]["rejected"] == 4

    def test_rejected_txs_are_resubmittable(self):
        sharded = ShardedChain(n_shards=1, max_block_txs=8)
        pipe = IngestPipeline(sharded, queue_capacity=8)
        txs = [data_tx(i) for i in range(12)]
        report = pipe.submit_many(txs)
        pending = [tx for tx, _ in report.rejected]
        while pending or pipe.backlog or sharded.mempool_backlog:
            pipe.seal_round()
            pending = [tx for tx, _ in
                       pipe.submit_many(pending).rejected]
        assert sharded.total_txs_committed == 12

    def test_mempool_full_is_structured(self):
        pool = Mempool(capacity=2)
        pool.add(data_tx(0))
        pool.add(data_tx(1))
        with pytest.raises(QueueFull) as exc_info:
            pool.add(data_tx(2))
        assert "mempool full" in str(exc_info.value)
        assert exc_info.value.depth == 2
        assert exc_info.value.capacity == 2

    def test_facade_submit_many_rejects_with_retry_after(self):
        sharded = ShardedChain(n_shards=1, max_block_txs=4)
        sharded.shards[0].mempool.capacity = 4
        report = sharded.submit_many([data_tx(i) for i in range(6)])
        assert report.accepted_total == 4
        assert report.rejected_total == 2
        _, signal = report.rejected[0]
        assert signal.shard_id == 0
        assert signal.retry_after_rounds >= 1
        assert report.min_retry_after_s() >= 0.0

    def test_constructor_validation(self):
        sharded = ShardedChain(n_shards=1)
        with pytest.raises(ShardError):
            IngestPipeline(sharded, queue_capacity=0)
        with pytest.raises(ShardError):
            IngestPipeline(sharded, high_watermark=0.0)
        with pytest.raises(ShardError):
            IngestPipeline(sharded, max_blocks_per_round=0)
        with pytest.raises(ShardError):
            ShardedChain(n_shards=1, seal_workers=0)


# ---------------------------------------------------------------------------
# Batch admission
# ---------------------------------------------------------------------------
class TestBatchAdmission:
    def test_add_batch_counts(self):
        pool = Mempool()
        txs = [data_tx(i) for i in range(5)]
        accepted, duplicates = pool.add_batch(txs + txs[:2])
        assert accepted == 5
        assert duplicates == 2
        assert len(pool) == 5
        assert pool.total_accepted == 5

    def test_add_batch_is_all_or_nothing_on_overflow(self):
        pool = Mempool(capacity=3)
        with pytest.raises(QueueFull):
            pool.add_batch([data_tx(i) for i in range(4)])
        assert len(pool) == 0

    def test_add_batch_duplicates_take_no_capacity(self):
        pool = Mempool(capacity=3)
        known = [data_tx(0), data_tx(1)]
        pool.add_batch(known)
        # 2 duplicates + 1 novel fits in the single free slot.
        accepted, duplicates = pool.add_batch(known + [data_tx(2)])
        assert (accepted, duplicates) == (1, 2)
        assert len(pool) == 3

    def test_add_batch_priority_matches_add(self):
        a, b = Mempool(), Mempool()
        txs = [data_tx(i, fee=i % 3) for i in range(9)]
        for tx in txs:
            a.add(tx)
        b.add_batch(txs)
        assert [t.tx_id for t in a.pop_batch(9)] == \
            [t.tx_id for t in b.pop_batch(9)]

    def test_batch_signature_verification(self):
        keys = KeyPair.generate("batch-signer")
        good = [
            Transaction(keys.address, TxKind.DATA,
                        {"key": f"k{i}", "value": i}).seal().sign_with(keys)
            for i in range(3)
        ]
        forged = Transaction(keys.address, TxKind.DATA,
                             {"key": "evil", "value": 1}).seal()
        forged.signature = b"\x00" * 32
        forged.signer = keys.public
        verdicts = verify_encoded_batch(
            [(tx._encoded_body(), tx.signature, tx.signer)
             for tx in good + [forged]]
        )
        assert verdicts == [True, True, True, False]

    def test_pipeline_rejects_bad_signatures_on_admission(self):
        keys = KeyPair.generate("pipeline-signer")
        sharded = ShardedChain(n_shards=1)
        pipe = IngestPipeline(sharded, verify_signatures=True)
        good = Transaction(keys.address, TxKind.DATA,
                           {"key": "ok", "value": 1}).seal().sign_with(keys)
        unsigned = Transaction(keys.address, TxKind.DATA,
                               {"key": "no-sig", "value": 2}).seal()
        pipe.submit_many([good, unsigned])
        pipe.run_until_drained()
        assert sharded.total_txs_committed == 1
        assert list(pipe.invalid_txs) == [unsigned]
        assert pipe.stats.invalid == 1

    def test_pump_quarantines_malformed_without_losing_batch(self):
        sharded = ShardedChain(n_shards=1)
        pipe = IngestPipeline(sharded, queue_capacity=64)
        good = [data_tx(i) for i in range(5)]
        poison = Transaction("alice", TxKind.DATA,
                             {"key": "bad", "value": 1}, fee=-5).seal()
        for tx in good[:3] + [poison] + good[3:]:
            pipe.submit(tx)
        pipe.run_until_drained()
        # Healthy batch-mates of the malformed tx all committed; the
        # poison tx is quarantined, not lost.
        assert sharded.total_txs_committed == 5
        assert list(pipe.invalid_txs) == [poison]
        assert pipe.stats.invalid == 1

    def test_submit_raises_shard_tagged_mempool_signal(self):
        sharded = ShardedChain(n_shards=1)
        sharded.shards[0].mempool.capacity = 2
        sharded.submit(data_tx(0))
        sharded.submit(data_tx(1))
        with pytest.raises(QueueFull) as exc_info:
            sharded.submit(data_tx(2))
        assert exc_info.value.shard_id == 0
        assert exc_info.value.retry_after_rounds >= 1

    def test_verify_signature_memoized(self):
        keys = KeyPair.generate("memo-signer")
        tx = Transaction(keys.address, TxKind.DATA,
                         {"key": "m", "value": 1}).seal().sign_with(keys)
        assert tx.verify_signature()
        assert tx.verify_signature()   # cache hit, same verdict
        other = Transaction(keys.address, TxKind.DATA,
                            {"key": "m", "value": 2}).seal()
        other.signature = tx.signature  # signature of a different body
        other.signer = keys.public
        assert not other.verify_signature()


# ---------------------------------------------------------------------------
# Equivalence with the synchronous path
# ---------------------------------------------------------------------------
class TestPipelineEquivalence:
    def test_single_block_rounds_match_exactly(self):
        txs = [data_tx(i, tenant=f"t{i % 7}", fee=i % 3)
               for i in range(120)]
        sync = ShardedChain(n_shards=3, max_block_txs=16)
        sync.submit_many(txs)
        sync.seal_until_drained()

        piped = ShardedChain(n_shards=3, max_block_txs=16)
        pipe = IngestPipeline(piped, queue_capacity=1024,
                              max_blocks_per_round=1)
        pipe.submit_many(txs)
        # Admit everything before sealing so fee prioritization sees the
        # same backlog the synchronous mempools did, then seal
        # single-block rounds — block-for-block identical chains.
        pipe.pump(max_batches_per_shard=1024)
        pipe.run_until_drained()
        assert shard_heads(piped) == shard_heads(sync)
        assert piped.beacon.chain.head.block_hash == \
            sync.beacon.chain.head.block_hash

    def test_deep_pipelining_matches_state_and_records(self):
        txs = [data_tx(i, tenant=f"t{i % 5}") for i in range(150)]
        records = [record_for(i, tenant=f"t{i % 5}") for i in range(40)]

        sync = ShardedChain(n_shards=3, max_block_txs=8,
                            anchor_batch_size=4)
        for record in records:
            sync.ingest_record(record)
        sync.submit_many(txs)
        sync.flush_anchors()
        sync.seal_until_drained()

        piped = ShardedChain(n_shards=3, max_block_txs=8,
                             anchor_batch_size=4)
        pipe = IngestPipeline(piped, queue_capacity=1024,
                              max_blocks_per_round=8)
        piped.ingest_records(records)
        pipe.submit_many(txs)
        piped.flush_anchors()
        pipe.run_until_drained()

        assert shard_state_roots(piped) == shard_state_roots(sync)
        assert piped.total_txs_committed == sync.total_txs_committed
        for s_sync, s_piped in zip(sync.shards, piped.shards):
            assert set(s_piped.chain.receipts) >= {
                tx.tx_id for block in s_sync.chain.blocks
                for tx in block.transactions
                if tx.kind == TxKind.DATA
            }
            assert sorted(r["record_id"] for r in s_piped.database.records()) \
                == sorted(r["record_id"] for r in s_sync.database.records())

    @settings(max_examples=10, deadline=None)
    @given(st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=6),   # tenant
            st.integers(min_value=0, max_value=3),   # fee
            st.integers(min_value=0, max_value=10 ** 6),  # value
        ),
        min_size=1, max_size=60,
    ))
    def test_pipelined_durable_equals_synchronous_memory(
            self, tmp_path_factory, plan):
        """Pipelined + group-committed + reopened == synchronous."""
        txs = [
            Transaction("hyp", TxKind.DATA,
                        {"subject": f"t{tenant}/obj", "key": f"k{i}",
                         "value": value},
                        timestamp=i, fee=fee).seal()
            for i, (tenant, fee, value) in enumerate(plan)
        ]
        sync = ShardedChain(n_shards=3, max_block_txs=8)
        sync.submit_many(txs)
        sync.seal_until_drained()

        directory = str(tmp_path_factory.mktemp("pipe-equiv"))
        piped = ShardedChain(n_shards=3, max_block_txs=8,
                             storage_dir=directory)
        pipe = IngestPipeline(piped, queue_capacity=4096,
                              max_blocks_per_round=4)
        report = pipe.submit_many(txs)
        assert report.rejected_total == 0
        pipe.run_until_drained()
        piped.close()

        reopened = ShardedChain(n_shards=3, max_block_txs=8,
                                storage_dir=directory)
        assert shard_state_roots(reopened) == shard_state_roots(sync)
        assert reopened.total_txs_committed == sync.total_txs_committed
        for s_sync, s_re in zip(sync.shards, reopened.shards):
            assert set(s_re.chain.receipts) == set(s_sync.chain.receipts)
        reopened.verify_all(deep=True)
        reopened.close()

    def test_proofs_survive_pipelined_durable_reopen(self, tmp_path):
        directory = str(tmp_path / "proofs")
        piped = ShardedChain(n_shards=3, max_block_txs=8,
                             anchor_batch_size=4, storage_dir=directory)
        pipe = IngestPipeline(piped, queue_capacity=1024)
        records = [record_for(i, tenant=f"t{i % 5}") for i in range(20)]
        piped.ingest_records(records)
        pipe.submit_many([data_tx(i, tenant=f"t{i % 5}")
                          for i in range(40)])
        piped.flush_anchors()
        pipe.run_until_drained()
        piped.close()

        from repro.sharding import ShardedQueryEngine
        reopened = ShardedChain(n_shards=3, max_block_txs=8,
                                anchor_batch_size=4,
                                storage_dir=directory)
        queries = ShardedQueryEngine(reopened)
        for i in (0, 7, 19):
            proof = queries.federated_proof(f"r{i}")
            record = next(r for r in queries.history(f"t{i % 5}/obj")
                          if r["record_id"] == f"r{i}")
            header = reopened.beacon.chain.block_at(
                proof.beacon_height).header
            assert proof.verify(record, header)
            assert not proof.verify(dict(record, actor="mallory"), header)
        reopened.close()


# ---------------------------------------------------------------------------
# Locks and parallel sealing
# ---------------------------------------------------------------------------
class TestPumpAndSealing:
    def test_pump_defers_locked_transactions(self):
        sharded = ShardedChain(n_shards=4)
        pipe = IngestPipeline(sharded, queue_capacity=256)
        coordinator = CrossShardCoordinator(sharded, timeout_rounds=50)
        source = "tenant-a/lot-1"
        target_ns = next(
            f"tenant-{c}" for c in "bcdefgh"
            if sharded.router.shard_for(f"tenant-{c}")
            != sharded.router.shard_for("tenant-a")
        )
        transfer = coordinator.begin(source, f"{target_ns}/lot-1")
        locked_tx = Transaction(
            "alice", TxKind.DATA,
            {"subject": source, "key": "later", "value": 1},
        ).seal()
        pipe.submit(locked_tx)
        pipe.pump()
        assert pipe.backlog == 1          # rotated back, not dropped
        assert pipe.queue_stats(
            sharded.router.route(locked_tx)).total_deferred == 1
        while transfer.state not in ("committed", "aborted"):
            pipe.seal_round()
        assert transfer.state == "committed"
        pipe.run_until_drained()
        assert sharded.shard_for_subject(source).chain.find_transaction(
            locked_tx.tx_id) is not None

    def test_parallel_and_serial_rounds_agree(self):
        txs = [data_tx(i, tenant=f"t{i % 9}", fee=i % 4)
               for i in range(200)]
        serial = ShardedChain(n_shards=4, max_block_txs=16)
        serial.submit_many(txs)
        while serial.mempool_backlog:
            serial.seal_round(parallel=False)

        threaded = ShardedChain(n_shards=4, max_block_txs=16,
                                seal_workers=4)
        threaded.submit_many(txs)
        while threaded.mempool_backlog:
            threaded.seal_round(parallel=True)
        assert shard_heads(threaded) == shard_heads(serial)
        assert threaded.beacon.chain.head.block_hash == \
            serial.beacon.chain.head.block_hash
        threaded.verify_all(deep=True)

    def test_durable_deployment_defaults_to_pool(self, tmp_path):
        durable = ShardedChain(n_shards=4,
                               storage_dir=str(tmp_path / "auto"))
        assert durable.seal_workers == 4
        durable.close()
        memory = ShardedChain(n_shards=4)
        assert memory.seal_workers == 1

    def test_multi_block_rounds_drain_deep_backlogs(self):
        sharded = ShardedChain(n_shards=2, max_block_txs=8)
        sharded.submit_many([data_tx(i, tenant=f"t{i % 3}")
                             for i in range(100)])
        report = sharded.seal_round(blocks_per_shard=8)
        assert max(s.blocks_produced for s in report.per_shard.values()) > 1
        sharded.seal_until_drained()
        assert sharded.total_txs_committed == 100
        sharded.verify_all(deep=True)


# ---------------------------------------------------------------------------
# Group-commit surfaces
# ---------------------------------------------------------------------------
class TestGroupCommit:
    def test_append_blocks_matches_sequential(self, tmp_path):
        def build(chain, n):
            blocks = []
            for b in range(n):
                txs = [data_tx(b * 10 + j) for j in range(3)]
                block = chain.build_block(txs, timestamp=b + 1)
                chain.append_block(block)
                blocks.append(block)
            return blocks

        template = Blockchain(ChainParams(chain_id="grp"))
        blocks = build(template, 9)

        seq = Blockchain(ChainParams(chain_id="grp"))
        for block in blocks:
            seq.append_block(block)
        storage = DurableStorage(tmp_path / "grp")
        grouped = Blockchain(ChainParams(chain_id="grp"),
                             store=storage.blocks)
        assert grouped.append_blocks([]) == []
        grouped.append_blocks(blocks[:4])
        grouped.append_blocks(blocks[4:])
        assert grouped.head.block_hash == seq.head.block_hash
        assert grouped.state.state_root() == seq.state.state_root()
        assert set(grouped.receipts) == set(seq.receipts)
        grouped.verify(deep=True)
        storage.close()

    def test_append_blocks_validates_linkage(self):
        template = Blockchain(ChainParams(chain_id="lk"))
        first = template.build_block([data_tx(1)], timestamp=1)
        template.append_block(first)
        second = template.build_block([data_tx(2)], timestamp=2)
        other = Blockchain(ChainParams(chain_id="lk"))
        with pytest.raises(InvalidBlock):
            other.append_blocks([second])   # skips height 1
        assert other.height == 0

    def test_ingest_records_duplicate_commits_nothing(self):
        sharded = ShardedChain(n_shards=3)
        sharded.ingest_record(record_for(7, tenant="t1"))
        batch = [record_for(100, tenant="t0"),
                 record_for(7, tenant="t1")]      # dup on another shard
        with pytest.raises(ShardError):
            sharded.ingest_records(batch)
        # The valid record's shard committed nothing either.
        assert not any(s.database.contains("r100") for s in sharded.shards)
        # The whole batch is retryable once corrected.
        sharded.ingest_records([record_for(100, tenant="t0")])

    def test_record_group_commit_equals_loop(self, tmp_path):
        records = [record_for(i, tenant=f"t{i % 4}") for i in range(30)]
        s1 = DurableStorage(tmp_path / "loop")
        looped = ProvenanceDatabase(store=s1.records)
        for record in records:
            looped.insert(record)
        s2 = DurableStorage(tmp_path / "grouped")
        grouped = ProvenanceDatabase(store=s2.records)
        grouped.insert_many(records)
        for tenant in range(4):
            assert grouped.by_subject(f"t{tenant}/obj") == \
                looped.by_subject(f"t{tenant}/obj")
        s1.close()
        s2.close()
        s3 = DurableStorage(tmp_path / "grouped")
        reopened = ProvenanceDatabase(store=s3.records)
        assert len(reopened) == 30
        assert reopened.get("r7") == looped.get("r7")
        s3.close()

    def test_append_blocks_unwinds_without_journal(self, tmp_path):
        """depth=0 must still get the all-or-nothing group unwind."""
        from repro.chain.receipts import TransactionReceipt

        calls = {"n": 0}

        def exploding_executor(tx, state, chain):
            calls["n"] += 1
            if calls["n"] > 4:     # fails inside the second group block
                raise RuntimeError("executor blew up")
            state.set("data", str(tx.payload["key"]), tx.payload["value"])
            return TransactionReceipt(tx_id=tx.tx_id, success=True,
                                      gas_used=1)

        template = Blockchain(ChainParams(chain_id="nz"))
        blocks = []
        for b in range(2):
            block = template.build_block([data_tx(b * 10 + j)
                                          for j in range(3)],
                                         timestamp=b + 1)
            template.append_block(block)
            blocks.append(block)
        chain = Blockchain(ChainParams(chain_id="nz",
                                       reorg_journal_depth=0),
                           executor=exploding_executor)
        root_before = chain.state.state_root()
        with pytest.raises(RuntimeError):
            chain.append_blocks(blocks)
        assert chain.height == 0
        assert chain.state.state_root() == root_before
        assert chain.state.open_snapshots == 0

    def test_group_crash_hook_counts_across_segment_rolls(self, tmp_path):
        from repro.persist import CrashPoint

        log = SegmentLog(tmp_path / "roll", max_segment_bytes=64)
        payloads = [bytes([i]) * 40 for i in range(4)]   # 48-byte frames
        log.fail_after_bytes = 100                        # second chunk
        with pytest.raises(CrashPoint):
            log.append_many(payloads)
        # 96 bytes (one full chunk) landed, then 4 more of the next.
        assert log.segment_size(0) == 96
        assert log.segment_size(log.current_segment) == 4
        log.close()

    def test_segment_append_many_layout(self, tmp_path):
        log = SegmentLog(tmp_path / "log", max_segment_bytes=64)
        payloads = [bytes([i]) * 10 for i in range(8)]
        locations = log.append_many(payloads)
        assert len(locations) == 8
        assert log.current_segment > 0        # rolled mid-group
        for payload, loc in zip(payloads, locations):
            assert log.read(loc.segment, loc.offset) == payload
        scanned = [p for _, p in log.scan()]
        assert scanned == payloads
        log.close()


# ---------------------------------------------------------------------------
# Crash during a group commit
# ---------------------------------------------------------------------------
class TestGroupCommitCrash:
    @pytest.mark.parametrize("cut_bytes", [1, 7, 30, 61, 120])
    def test_record_group_crash_recovers(self, tmp_path, cut_bytes):
        directory = tmp_path / f"crash-{cut_bytes}"
        storage = DurableStorage(directory)
        db = ProvenanceDatabase(store=storage.records)
        db.insert_many([record_for(i) for i in range(5)])

        storage.record_log.fail_after_bytes = cut_bytes
        with pytest.raises(CrashPoint):
            db.insert_many([record_for(100 + i, tenant="t9")
                            for i in range(5)])
        storage.close()

        recovered = DurableStorage(directory)
        reopened = ProvenanceDatabase(store=recovered.records)
        # The group's index transaction never committed, so recovery
        # truncates every partial frame: exactly the pre-crash records.
        assert len(reopened) == 5
        assert sorted(r["record_id"] for r in reopened.records()) == \
            [f"r{i}" for i in range(5)]
        # The store keeps working at the recovered boundary.
        reopened.insert_many([record_for(200 + i) for i in range(3)])
        assert len(reopened) == 8
        recovered.close()

    @pytest.mark.parametrize("cut_bytes", [2, 50, 200, 500])
    def test_block_group_crash_recovers(self, tmp_path, cut_bytes):
        directory = tmp_path / f"blk-crash-{cut_bytes}"
        storage = DurableStorage(directory)
        chain = Blockchain(ChainParams(chain_id="gc"),
                           store=storage.blocks,
                           snapshot_store=storage.state)
        template = Blockchain(ChainParams(chain_id="gc"))
        blocks = []
        for b in range(6):
            block = template.build_block([data_tx(b * 10 + j)
                                          for j in range(2)],
                                         timestamp=b + 1)
            template.append_block(block)
            blocks.append(block)
        chain.append_blocks(blocks[:3])
        pre_crash_root = chain.state.state_root()

        storage.block_log.fail_after_bytes = cut_bytes
        with pytest.raises(CrashPoint):
            chain.append_blocks(blocks[3:])
        # In-memory state unwound: the group is all-or-nothing.
        assert chain.state.state_root() == pre_crash_root
        storage.close()

        recovered = DurableStorage(directory)
        reopened = Blockchain(ChainParams(chain_id="gc"),
                              store=recovered.blocks,
                              snapshot_store=recovered.state)
        assert reopened.height == 3
        reopened.verify(deep=True)
        # The same suffix group-commits cleanly after recovery.
        reopened.append_blocks(blocks[3:])
        assert reopened.head.block_hash == template.head.block_hash
        assert reopened.state.state_root() == template.state.state_root()
        recovered.close()

    def test_failed_round_requeues_txs_and_reanchors(self, tmp_path):
        """A seal round that raises must lose nothing: the popped batch
        returns to the mempool, and blocks another shard already
        committed are still beacon-anchored by the next round."""
        sharded = ShardedChain(n_shards=2, max_block_txs=8,
                               storage_dir=str(tmp_path / "retry"))
        t0 = next(f"t{c}" for c in "abcdefgh"
                  if sharded.router.shard_for(f"t{c}") == 0)
        t1 = next(f"t{c}" for c in "abcdefgh"
                  if sharded.router.shard_for(f"t{c}") == 1)
        sharded.submit_many([data_tx(i, tenant=t0) for i in range(4)]
                            + [data_tx(100 + i, tenant=t1)
                               for i in range(4)])
        sharded.shards[1].storage.block_log.fail_after_bytes = 7
        with pytest.raises(CrashPoint):
            sharded.seal_round()
        # Shard 1's popped batch is back in its mempool; shard 0 may
        # have committed its block, but its anchored watermark did not
        # advance — the beacon never saw this round.
        assert len(sharded.shards[1].mempool) == 4
        assert sharded._anchored_height == [0, 0]
        report = sharded.seal_round()
        assert report.beacon_receipt is not None
        # Every committed shard block is now covered by the beacon.
        for shard in sharded.shards:
            assert sharded._anchored_height[shard.shard_id] == \
                shard.chain.height
            assert shard.chain.height >= 1
        assert sharded.total_txs_committed == 8
        sharded.verify_all(deep=True)

    def test_sharded_pipeline_crash_mid_round(self, tmp_path):
        directory = str(tmp_path / "sharded-crash")
        sharded = ShardedChain(n_shards=2, max_block_txs=8,
                               storage_dir=directory,
                               checkpoint_every_rounds=1)
        pipe = IngestPipeline(sharded, queue_capacity=256)
        pipe.submit_many([data_tx(i, tenant=f"t{i % 3}")
                          for i in range(40)])
        while pipe.backlog or sharded.mempool_backlog:
            pipe.seal_round()
        committed = sharded.total_txs_committed
        assert committed == 40

        # Crash the shard-0 block log mid-group on the next round; the
        # burst targets a tenant homed on shard 0.
        tenant = next(f"t{c}" for c in "abcdefgh"
                      if sharded.router.shard_for(f"t{c}") == 0)
        victim = sharded.shards[0]
        victim.storage.block_log.fail_after_bytes = 11
        pipe.submit_many([data_tx(100 + i, tenant=tenant)
                          for i in range(16)])
        with pytest.raises(CrashPoint):
            pipe.seal_round()

        # Simulated hard kill: no close/checkpoint on the old facade.
        reopened = ShardedChain(n_shards=2, max_block_txs=8,
                                storage_dir=directory)
        assert reopened.total_txs_committed == committed
        reopened.verify_all(deep=True)
        reopened.close()


# ---------------------------------------------------------------------------
# PR-4 gap coverage: round-pace EWMA and parallel-seal failure retry
# ---------------------------------------------------------------------------
class TestRoundPaceEwma:
    def test_pre_first_seal_window_clamps_to_the_floor(self):
        # Before any round has been sealed there is no pace estimate;
        # the wall hint must still be non-zero (a remote client honoring
        # retry_after_s verbatim would otherwise hot-loop) — it clamps
        # to the configured floor instead of reporting 0.0.
        sharded = ShardedChain(n_shards=1, max_block_txs=8)
        signal = sharded.backpressure_signal(0, depth=20, capacity=20,
                                             high_watermark=10)
        assert signal.retry_after_rounds >= 1
        assert signal.retry_after_s >= RETRY_AFTER_FLOOR_S
        assert signal.retry_after_s == pytest.approx(
            signal.retry_after_rounds * RETRY_AFTER_FLOOR_S)

    def test_retry_floor_is_configurable(self):
        sharded = ShardedChain(n_shards=1, max_block_txs=8,
                               retry_floor_s=0.25)
        signal = sharded.backpressure_signal(0, depth=20, capacity=20,
                                             high_watermark=10)
        assert signal.retry_after_s == pytest.approx(
            signal.retry_after_rounds * 0.25)
        with pytest.raises(ShardError):
            ShardedChain(n_shards=1, retry_floor_s=0.0)

    def test_first_round_seeds_the_estimate(self):
        sharded = ShardedChain(n_shards=1, max_block_txs=8)
        sharded.submit_many([data_tx(i) for i in range(8)])
        sharded.seal_round()
        assert sharded._round_pace_s > 0.0
        signal = sharded.backpressure_signal(0, depth=20, capacity=20,
                                             high_watermark=10)
        assert signal.retry_after_s == pytest.approx(max(
            signal.retry_after_rounds * sharded._round_pace_s,
            RETRY_AFTER_FLOOR_S))
        assert signal.retry_after_s >= RETRY_AFTER_FLOOR_S

    def test_ewma_decays_toward_a_faster_pace(self):
        sharded = ShardedChain(n_shards=1, max_block_txs=8)
        sharded.submit_many([data_tx(i) for i in range(8)])
        sharded.seal_round()                   # seed with a real pace
        sharded._round_pace_s = 10.0           # pretend rounds were slow
        sharded.submit_many([data_tx(100 + i) for i in range(8)])
        sharded.seal_round()                   # a fast round
        # pace' = 0.8 * 10.0 + 0.2 * round_s with round_s << 10.
        assert 8.0 <= sharded._round_pace_s < 9.0

    def test_ewma_rises_from_an_underestimate(self):
        sharded = ShardedChain(n_shards=1, max_block_txs=8)
        sharded.submit_many([data_tx(i) for i in range(8)])
        sharded.seal_round()
        sharded._round_pace_s = 1e-12          # absurdly optimistic
        sharded.submit_many([data_tx(100 + i) for i in range(8)])
        sharded.seal_round()
        # 0.2 * (a real round's wall time) dominates the stale estimate.
        assert sharded._round_pace_s > 1e-9

    def test_retry_after_scales_with_backlog_depth(self):
        sharded = ShardedChain(n_shards=1, max_block_txs=8)
        sharded._round_pace_s = 2.0
        shallow = sharded.backpressure_signal(0, depth=9, capacity=64,
                                              high_watermark=8)
        deep = sharded.backpressure_signal(0, depth=64, capacity=64,
                                           high_watermark=8)
        # over = 2 -> 1 round; over = 57 -> ceil(57 / 8) = 8 rounds.
        assert shallow.retry_after_rounds == 1
        assert deep.retry_after_rounds == 8
        assert shallow.retry_after_s == pytest.approx(2.0)
        assert deep.retry_after_s == pytest.approx(16.0)


class TestParallelSealFailure:
    def test_failed_shard_retries_and_survivors_still_anchor(self):
        sharded = ShardedChain(n_shards=3, max_block_txs=8,
                               seal_workers=3)
        txs = [data_tx(i, tenant=f"t{i % 9}") for i in range(60)]
        report = sharded.submit_many(txs)
        assert report.rejected_total == 0
        victim = sharded.shards[1]
        original = victim.chain.append_blocks

        def exploding(blocks):
            raise RuntimeError("disk died mid-seal")

        victim.chain.append_blocks = exploding
        with pytest.raises(RuntimeError):
            sharded.seal_round(parallel=True, blocks_per_shard=2)
        victim.chain.append_blocks = original
        # The failed round anchored nothing: surviving shards' new
        # blocks wait for the next successful round.
        for shard in (sharded.shards[0], sharded.shards[2]):
            if shard.chain.height > 0:
                assert not sharded.beacon.is_anchored(
                    shard.shard_id, shard.chain.height)
        # Retry: every shard's blocks (including the survivors' from the
        # failed round) get beacon-anchored, and nothing was lost.
        sharded.seal_round(parallel=True, blocks_per_shard=2)
        sharded.seal_until_drained()
        assert sharded.total_txs_committed == 60
        for shard in sharded.shards:
            for height in range(1, shard.chain.height + 1):
                assert sharded.beacon.is_anchored(shard.shard_id, height)
        sharded.verify_all(deep=True)
