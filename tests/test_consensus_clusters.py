"""PBFT and Raft clusters over the simulated network."""

import pytest

from repro.consensus import PBFTCluster, RaftCluster
from repro.errors import ConsensusError
from repro.network import SimNet
from .conftest import data_tx


def make_pbft(n=4, seed=0):
    return PBFTCluster(SimNet(seed=seed), n_replicas=n)


def make_raft(n=3, seed=0):
    return RaftCluster(SimNet(seed=seed), n_nodes=n)


class TestPBFT:
    def test_all_replicas_commit(self):
        cluster = make_pbft(4)
        cluster.propose([data_tx(1)])
        assert set(cluster.heights().values()) == {1}

    def test_replicas_agree_on_block_hash(self):
        cluster = make_pbft(4)
        cluster.propose([data_tx(1), data_tx(2)])
        hashes = {r.chain.head.block_hash for r in cluster.replicas}
        assert len(hashes) == 1

    def test_message_count_quadratic(self):
        small = make_pbft(4)
        big = make_pbft(10)
        m_small = small.propose([data_tx(1)]).messages
        m_big = big.propose([data_tx(1)]).messages
        assert m_small == PBFTCluster.analytic_messages(4)
        assert m_big == PBFTCluster.analytic_messages(10)
        # Quadratic growth: 2.5x nodes -> >4x messages.
        assert m_big > 4 * m_small

    def test_tolerates_f_crashed_backups(self):
        cluster = make_pbft(4)     # f = 1
        cluster.crash("pbft-2")
        metrics = cluster.propose([data_tx(1)])
        assert metrics.committed
        live_heights = [r.chain.height for r in cluster.replicas
                        if not r.crashed]
        assert all(h == 1 for h in live_heights)

    def test_view_change_on_crashed_primary(self):
        cluster = make_pbft(4)
        cluster.crash("pbft-0")      # view-0 primary
        metrics = cluster.propose([data_tx(1)])
        assert metrics.extra["view_changes"] >= 1
        assert metrics.committed

    def test_too_many_crashes_refused(self):
        cluster = make_pbft(4)
        cluster.crash("pbft-1")
        cluster.crash("pbft-2")
        with pytest.raises(ConsensusError):
            cluster.propose([data_tx(1)])

    def test_recovery_syncs_chain(self):
        cluster = make_pbft(4)
        cluster.crash("pbft-3")
        cluster.propose([data_tx(1)])
        cluster.propose([data_tx(2)])
        cluster.recover("pbft-3")
        assert cluster.heights()["pbft-3"] == 2

    def test_multiple_consecutive_blocks(self):
        cluster = make_pbft(7)
        for i in range(3):
            cluster.propose([data_tx(i)])
        assert set(cluster.heights().values()) == {3}

    def test_needs_four_replicas(self):
        with pytest.raises(ValueError):
            make_pbft(3)


class TestRaft:
    def test_replication_to_all(self):
        cluster = make_raft(5)
        cluster.propose([data_tx(1)])
        assert set(cluster.heights().values()) == {1}

    def test_message_count_linear(self):
        m5 = make_raft(5).propose([data_tx(1)]).messages
        m10 = make_raft(10).propose([data_tx(1)]).messages
        # Election + replication are both O(n): doubling nodes should
        # roughly double messages, never square them.
        assert m10 < 3 * m5

    def test_leader_crash_triggers_reelection(self):
        cluster = make_raft(5)
        cluster.propose([data_tx(1)])
        old_leader = cluster.leader_id
        cluster.crash(old_leader)
        metrics = cluster.propose([data_tx(2)])
        assert metrics.committed
        assert cluster.leader_id != old_leader

    def test_no_majority_refused(self):
        cluster = make_raft(3)
        cluster.crash("raft-1")
        cluster.crash("raft-2")
        with pytest.raises(ConsensusError):
            cluster.propose([data_tx(1)])

    def test_recovered_node_catches_up(self):
        cluster = make_raft(3)
        cluster.propose([data_tx(1)])
        cluster.crash("raft-2")
        cluster.propose([data_tx(2)])
        cluster.recover("raft-2")
        assert cluster.heights()["raft-2"] == 2

    def test_one_vote_per_term(self):
        cluster = make_raft(3)
        leader = cluster.elect()
        node = cluster.nodes[0]
        # The elected term's votes are already spent; a second candidate
        # in the same term cannot gather a majority.
        term = max(n.term for n in cluster.nodes)
        assert sum(
            1 for n in cluster.nodes if n.voted_for.get(term) == leader
        ) >= cluster.majority

    def test_pbft_vs_raft_message_gap_grows(self):
        for n in (4, 7, 10):
            pbft_messages = PBFTCluster.analytic_messages(n)
            raft_messages = RaftCluster.analytic_messages(n)
            assert pbft_messages > raft_messages
        gap4 = PBFTCluster.analytic_messages(4) - RaftCluster.analytic_messages(4)
        gap16 = PBFTCluster.analytic_messages(16) - RaftCluster.analytic_messages(16)
        assert gap16 > 10 * gap4
