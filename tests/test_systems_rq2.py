"""RQ2 reference systems: SciLedger, ForensiBlock, PrivChain, LedgerView."""

import pytest

from repro.errors import AccessDenied, DomainError
from repro.systems import (
    ForensiBlock,
    LedgerViewSystem,
    PrivChain,
    SciLedger,
)
from repro.systems.forensiblock import ForensiBlock as FB


class TestSciLedger:
    @pytest.fixture
    def ledger(self):
        ledger = SciLedger(["uni-a", "uni-b"], batch_size=4)
        ledger.create_workflow("w", "alice")
        ledger.design_task("w", "t1", "alice", ["raw"], ["clean"])
        ledger.design_task("w", "t2", "bob", ["clean"], ["stats"])
        ledger.design_task("w", "t3", "carol", ["clean", "stats"],
                           ["paper"])
        return ledger

    def test_run_and_verified_provenance(self, ledger):
        ledger.run_workflow("w")
        answer = ledger.provenance_of("paper")
        assert answer.verified

    def test_lineage_spans_workflow(self, ledger):
        ledger.run_workflow("w")
        lineage = ledger.lineage_of("paper@1")
        assert "clean@1" in lineage or "clean" in lineage
        assert "raw" in lineage

    def test_invalidation_and_reexecution(self, ledger):
        ledger.run_workflow("w")
        cascade = ledger.invalidate("t1")
        assert set(cascade) == {"t1", "t2", "t3"}
        assert ledger.valid_results("w") == []
        ledger.re_execute(cascade)
        assert set(ledger.valid_results("w")) == {"clean", "stats", "paper"}
        assert ledger.invalidated_tasks() == []

    def test_invalidation_recorded_on_ledger(self, ledger):
        ledger.run_workflow("w")
        ledger.invalidate("t2")
        ledger.finalize()
        invalidations = ledger.database.by_operation("invalidate")
        assert len(invalidations) == 2        # t2 and dependent t3

    def test_multiple_workflows_share_ledger(self, ledger):
        ledger.run_workflow("w")
        ledger.create_workflow("w2", "dave")
        ledger.design_task("w2", "x1", "dave", ["other"], ["out2"])
        ledger.run_workflow("w2")
        assert ledger.provenance_of("out2").verified
        assert ledger.provenance_of("paper").verified


class TestForensiBlock:
    @pytest.fixture
    def system(self):
        system = ForensiBlock(["fbi", "interpol"])
        system.assign_role("lead", "lead_investigator")
        system.assign_role("colle", "collector")
        system.assign_role("ana", "analyst")
        return system

    def _to_analysis(self, system):
        system.open_case("C", "lead")
        system.advance_stage("C", "lead")      # preservation
        system.collect_evidence("C", "e1", "colle", b"disk", "image")
        system.advance_stage("C", "lead")      # collection
        system.advance_stage("C", "lead")      # analysis

    def test_stage_scoped_roles(self, system):
        system.open_case("C", "lead")
        # Analyst cannot act during identification.
        with pytest.raises(AccessDenied):
            system.collect_evidence("C", "e", "ana", b"x", "text")
        system.advance_stage("C", "lead")
        # Collector can act during preservation.
        system.collect_evidence("C", "e1", "colle", b"x", "image")

    def test_stage_change_rescopes_access(self, system):
        self._to_analysis(system)
        # Now the analyst may act — and the collector may not.
        system.access_evidence("C", "e1", "ana")
        with pytest.raises(AccessDenied):
            system.access_evidence("C", "e1", "colle")

    def test_non_lead_cannot_advance(self, system):
        system.open_case("C", "lead")
        with pytest.raises(AccessDenied):
            system.advance_stage("C", "ana")

    def test_extraction_bundle_verifies(self, system):
        self._to_analysis(system)
        system.access_evidence("C", "e1", "ana")
        bundle = system.extract_case("C", "ana")
        assert FB.verify_extraction(bundle, system.anchors)
        assert bundle["custody_intact"]
        assert len(bundle["records"]) >= 4

    def test_extraction_detects_forged_bundle(self, system):
        self._to_analysis(system)
        bundle = system.extract_case("C", "ana")
        bundle["records"][0]["operation"] = "forged"
        assert not FB.verify_extraction(bundle, system.anchors)

    def test_all_decisions_audited(self, system):
        self._to_analysis(system)
        assert system.audit.verify()
        assert len(system.audit) > 0

    def test_case_root_changes_with_activity(self, system):
        self._to_analysis(system)
        root_before = system.case_root("C")
        system.access_evidence("C", "e1", "ana")
        assert system.case_root("C") != root_before


class TestPrivChain:
    @pytest.fixture
    def system(self):
        return PrivChain({"acme"}, verifier="regulator")

    def test_value_stays_off_chain(self, system):
        reading = system.commit_reading("acme", "prod", "truck", value=42)
        for block in system.chain.blocks:
            for tx in block.transactions:
                assert 42 not in tx.payload.values()

    def test_valid_proof_pays_bounty(self, system):
        reading = system.commit_reading("acme", "prod", "truck", value=42)
        bounty = system.request_range_proof("consumer", reading.reading_id,
                                            lo=20, hi=80, bounty=15)
        proof = system.produce_proof(reading.reading_id, lo=20, hi=80,
                                     n_bits=8)
        assert system.settle(bounty, reading.reading_id, proof) == "paid"
        assert system.payable_to("prod") == 15
        assert system.proofs_verified == 1

    def test_false_claim_cannot_be_proven(self, system):
        reading = system.commit_reading("acme", "prod", "truck", value=95)
        system.request_range_proof("consumer", reading.reading_id,
                                   lo=20, hi=80, bounty=15)
        # The honest prover cannot produce a proof for a false statement.
        with pytest.raises(Exception):
            system.produce_proof(reading.reading_id, lo=20, hi=80, n_bits=8)

    def test_forged_proof_refunds_consumer(self, system):
        r_good = system.commit_reading("acme", "prod", "truck", value=42)
        r_bad = system.commit_reading("acme", "prod2", "truck", value=95)
        bounty = system.request_range_proof("consumer", r_bad.reading_id,
                                            lo=20, hi=80, bounty=15)
        # Replay a proof for a different commitment — must be rejected.
        wrong_proof = system.produce_proof(r_good.reading_id, lo=20, hi=80,
                                           n_bits=8)
        assert system.settle(bounty, r_bad.reading_id, wrong_proof) == \
            "refunded"
        assert system.proofs_rejected == 1

    def test_unknown_reading_rejected(self, system):
        with pytest.raises(DomainError):
            system.request_range_proof("c", "ghost", 0, 1, 1)


class TestLedgerView:
    @pytest.fixture
    def system(self):
        system = LedgerViewSystem(["org"])
        system.rbac.assign("owner", "view_owner")
        for i in range(6):
            system.append_record({
                "record_id": f"r{i}",
                "domain": "generic",
                "subject": "batch-a" if i % 2 else "batch-b",
                "actor": f"user-{i}",
                "operation": "produce",
                "timestamp": i,
            })
        return system

    def test_filtered_view(self, system):
        system.create_view("v", "owner",
                           lambda r: r["subject"] == "batch-a")
        system.grant("v", "owner", "partner")
        rows = system.read_view("v", "partner")
        assert len(rows) == 3
        assert all(r["subject"] == "batch-a" for r in rows)

    def test_role_required_to_create(self, system):
        with pytest.raises(AccessDenied):
            system.create_view("v", "rando", lambda r: True)

    def test_revocation(self, system):
        system.create_view("v", "owner", lambda r: True)
        system.grant("v", "owner", "partner")
        system.revoke_grant("v", "owner", "partner")
        with pytest.raises(AccessDenied):
            system.read_view("v", "partner")

    def test_anonymized_sharing_masks_actors(self, system):
        system.create_view("v", "owner", lambda r: True)
        system.grant("v", "owner", "partner")
        rows = system.share_anonymized("v", "partner")
        assert all(r["actor"].startswith("anon-") for r in rows)
        plain = system.read_view("v", "partner")
        assert not any(r["actor"].startswith("anon-") for r in plain)
