"""Cross-chain mechanisms: HTLC, swaps (all-or-nothing), notary, relay,
sidechain, bridge."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.chain import Blockchain, ChainParams
from repro.clock import SimClock
from repro.crosschain import (
    AtomicSwap,
    BridgeChain,
    HTLCManager,
    NotaryScheme,
    PeggedSidechain,
    RelayChain,
    SwapParty,
)
from repro.crosschain.htlc import make_hashlock
from repro.errors import CrossChainError, TimelockExpired


def fresh_chain(chain_id, credits=()):
    chain = Blockchain(ChainParams(chain_id=chain_id))
    for account, amount in credits:
        chain.state.credit(account, amount)
    return chain


class TestHTLC:
    @pytest.fixture
    def rig(self):
        clock = SimClock()
        chain = fresh_chain("htlc", [("alice", 100)])
        return clock, chain, HTLCManager(chain, clock)

    def test_claim_with_correct_preimage(self, rig):
        clock, chain, manager = rig
        secret = b"the-secret"
        lock = manager.lock("alice", "bob", 40, make_hashlock(secret),
                            timelock=100)
        manager.claim(lock.htlc_id, secret)
        assert chain.state.balance("bob") == 40
        assert chain.state.balance("alice") == 60

    def test_wrong_preimage_rejected(self, rig):
        clock, chain, manager = rig
        lock = manager.lock("alice", "bob", 40,
                            make_hashlock(b"right"), timelock=100)
        with pytest.raises(CrossChainError):
            manager.claim(lock.htlc_id, b"wrong")
        assert chain.state.balance("bob") == 0

    def test_claim_after_expiry_rejected(self, rig):
        clock, chain, manager = rig
        secret = b"s"
        lock = manager.lock("alice", "bob", 40, make_hashlock(secret),
                            timelock=10)
        clock.advance(20)
        with pytest.raises(TimelockExpired):
            manager.claim(lock.htlc_id, secret)

    def test_refund_only_after_expiry(self, rig):
        clock, chain, manager = rig
        lock = manager.lock("alice", "bob", 40, make_hashlock(b"s"),
                            timelock=10)
        with pytest.raises(CrossChainError):
            manager.refund(lock.htlc_id)
        clock.advance(10)
        manager.refund(lock.htlc_id)
        assert chain.state.balance("alice") == 100

    def test_double_claim_rejected(self, rig):
        clock, chain, manager = rig
        secret = b"s"
        lock = manager.lock("alice", "bob", 40, make_hashlock(secret),
                            timelock=100)
        manager.claim(lock.htlc_id, secret)
        with pytest.raises(CrossChainError):
            manager.claim(lock.htlc_id, secret)

    def test_secret_revealed_on_chain(self, rig):
        clock, chain, manager = rig
        secret = b"published"
        hashlock = make_hashlock(secret)
        lock = manager.lock("alice", "bob", 10, hashlock, timelock=100)
        assert manager.secret_revealed_by(hashlock) is None
        manager.claim(lock.htlc_id, secret)
        assert manager.secret_revealed_by(hashlock) == secret

    def test_actions_recorded_on_chain(self, rig):
        clock, chain, manager = rig
        lock = manager.lock("alice", "bob", 10, make_hashlock(b"s"),
                            timelock=100)
        manager.claim(lock.htlc_id, b"s")
        actions = [
            tx.payload["action"]
            for block in chain.blocks for tx in block.transactions
        ]
        assert actions == ["htlc_lock", "htlc_claim"]

    def test_insufficient_balance_rejected(self, rig):
        clock, chain, manager = rig
        with pytest.raises(Exception):
            manager.lock("alice", "bob", 1000, make_hashlock(b"s"),
                         timelock=100)


def build_swap(n_parties=2, clock=None, seed=b"seed"):
    clock = clock or SimClock()
    parties = []
    for i in range(n_parties):
        chain = fresh_chain(f"sc-{i}", [(f"p{i}", 1000)])
        parties.append(SwapParty(
            name=f"p{i}", gives_amount=10 * (i + 1),
            on_manager=HTLCManager(chain, clock),
        ))
    return AtomicSwap(parties=parties, clock=clock, secret_seed=seed), clock


class TestAtomicSwap:
    def test_two_party_happy_path(self):
        swap, _ = build_swap(2)
        outcome = swap.execute()
        assert outcome.completed
        chain0 = swap.parties[0].on_manager.chain
        chain1 = swap.parties[1].on_manager.chain
        assert chain0.state.balance("p1") == 10    # p0 gave 10 to p1
        assert chain1.state.balance("p0") == 20    # p1 gave 20 to p0

    def test_three_party_cycle(self):
        swap, _ = build_swap(3)
        outcome = swap.execute()
        assert outcome.completed
        assert all(leg.status == "claimed" for leg in swap.legs)

    def test_abort_refunds_everyone(self):
        swap, _ = build_swap(3)
        outcome = swap.execute_with_abort(locked_legs=2)
        assert outcome.status == "refunded"
        for i, party in enumerate(swap.parties):
            assert party.on_manager.chain.state.balance(f"p{i}") == 1000

    def test_timelock_ladder_decreasing(self):
        swap, _ = build_swap(4)
        swap.lock_all()
        timelocks = [leg.timelock for leg in swap.legs]
        assert timelocks == sorted(timelocks, reverse=True)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=2, max_value=5), st.data())
    def test_property_all_or_nothing(self, n_parties, data):
        """The §2.3 atomicity claim: after any partial-lock abort, every
        party's balance is exactly restored; after a full run, every leg
        is claimed."""
        complete = data.draw(st.booleans())
        swap, _ = build_swap(n_parties,
                             seed=b"prop-%d" % data.draw(
                                 st.integers(0, 1000)))
        if complete:
            swap.execute()
            assert all(leg.status == "claimed" for leg in swap.legs)
        else:
            locked = data.draw(st.integers(min_value=0,
                                           max_value=n_parties - 1))
            swap.execute_with_abort(locked_legs=locked)
            for i, party in enumerate(swap.parties):
                balance = party.on_manager.chain.state.balance(f"p{i}")
                assert balance == 1000


class TestNotary:
    def test_committee_transfer(self):
        clock = SimClock()
        src = fresh_chain("n-src", [("u", 100)])
        dst = fresh_chain("n-dst")
        notary = NotaryScheme(src, dst, clock, n_notaries=3, threshold=2)
        outcome = notary.transfer("u", "v", 30)
        assert outcome.completed
        assert dst.state.balance("v") == 30
        assert src.state.balance("u") == 70

    def test_below_threshold_aborts_and_releases(self):
        clock = SimClock()
        src = fresh_chain("n-src2", [("u", 100)])
        dst = fresh_chain("n-dst2")
        notary = NotaryScheme(src, dst, clock, n_notaries=3, threshold=3)
        outcome = notary.transfer("u", "v", 30, honest_notaries=2)
        assert outcome.status == "aborted"
        assert src.state.balance("u") == 100
        assert dst.state.balance("v") == 0

    def test_single_notary_is_spof(self):
        clock = SimClock()
        src = fresh_chain("n-src3", [("u", 100)])
        dst = fresh_chain("n-dst3")
        notary = NotaryScheme(src, dst, clock, n_notaries=1)
        assert notary.transfer("u", "v", 1, honest_notaries=0).status == \
            "aborted"

    def test_more_notaries_more_messages(self):
        clock = SimClock()

        def messages(n):
            src = fresh_chain(f"nm-src{n}", [("u", 100)])
            dst = fresh_chain(f"nm-dst{n}")
            return NotaryScheme(src, dst, clock,
                                n_notaries=n).transfer("u", "v", 1).messages

        assert messages(5) > messages(1)


class TestRelay:
    def test_header_verified_inclusion(self):
        clock = SimClock()
        relay = RelayChain(clock)
        source = fresh_chain("r-src", [("u", 50)])
        relay.register(source)
        from .conftest import data_tx

        tx = data_tx(1)
        source.append_block(source.build_block([tx]))
        relay.sync_chain("r-src")
        block, proof = source.prove_transaction(tx.tx_id)
        assert relay.verify_inclusion("r-src", block.height, tx, proof)

    def test_transfer_via_relay(self):
        clock = SimClock()
        relay = RelayChain(clock)
        src = fresh_chain("r-a", [("u", 100)])
        dst = fresh_chain("r-b")
        relay.register(src)
        relay.register(dst)
        outcome = relay.transfer(src, dst, "u", "v", 25)
        assert outcome.completed
        assert dst.state.balance("v") == 25

    def test_missing_header_raises(self):
        clock = SimClock()
        relay = RelayChain(clock)
        relay.register(fresh_chain("r-x"))
        with pytest.raises(CrossChainError):
            relay.header_for("r-x", 99)

    def test_headers_land_on_relay_chain(self):
        clock = SimClock()
        relay = RelayChain(clock)
        source = fresh_chain("r-hdr")
        relay.register(source)
        source.append_block(source.build_block([]))
        relay.sync_chain("r-hdr")
        assert relay.chain.height == 2   # genesis + source head headers


class TestSidechain:
    def test_peg_roundtrip_conserves(self):
        clock = SimClock()
        main = fresh_chain("main", [("u", 100)])
        peg = PeggedSidechain(main, clock)
        peg.deposit("u", 60)
        assert peg.side.state.balance("u") == 60
        assert main.state.balance("u") == 40
        peg.withdraw("u", 25)
        assert peg.side.state.balance("u") == 35
        assert main.state.balance("u") == 65

    def test_audit_passes_honest_side(self):
        clock = SimClock()
        main = fresh_chain("main2", [("u", 100)])
        peg = PeggedSidechain(main, clock, checkpoint_interval=1)
        peg.deposit("u", 10)
        assert peg.audit()

    def test_audit_detects_side_rewrite(self):
        clock = SimClock()
        main = fresh_chain("main3", [("u", 100)])
        peg = PeggedSidechain(main, clock, checkpoint_interval=1)
        peg.deposit("u", 10)
        # The operator rewrites a side block after checkpointing it.
        peg.side.blocks[1].header.timestamp = 123_456
        assert not peg.audit()

    def test_checkpoints_follow_interval(self):
        clock = SimClock()
        main = fresh_chain("main4", [("u", 100)])
        peg = PeggedSidechain(main, clock, checkpoint_interval=2)
        peg.deposit("u", 5)
        peg.deposit("u", 5)
        assert peg.checkpoints_committed >= 1


class TestBridge:
    def _bridge(self, n_validators=3, unanimous=True):
        clock = SimClock()
        bridge = BridgeChain(
            clock, [f"v{i}" for i in range(n_validators)],
            unanimous=unanimous,
        )
        a = fresh_chain("b-a")
        b = fresh_chain("b-b")
        bridge.connect(a)
        bridge.connect(b)
        return bridge

    def test_unanimous_delivery(self):
        bridge = self._bridge()
        outcome = bridge.send("b-a", "b-b", "provenance", {"x": 1})
        assert outcome.completed
        assert len(bridge.delivered_messages("b-b")) == 1
        assert bridge.chain.height == 1    # committed on the bridge chain

    def test_one_dissenter_blocks_unanimous(self):
        bridge = self._bridge()
        bridge.set_validator_honesty("v1", False)
        outcome = bridge.send("b-a", "b-b", "provenance", {"x": 1})
        assert outcome.status == "aborted"
        assert len(bridge.delivered_messages("b-b")) == 0

    def test_quorum_mode_tolerates_minority(self):
        bridge = self._bridge(n_validators=4, unanimous=False)
        bridge.set_validator_honesty("v3", False)
        outcome = bridge.send("b-a", "b-b", "transfer", {"x": 1})
        assert outcome.completed

    def test_unknown_member_rejected(self):
        bridge = self._bridge()
        with pytest.raises(Exception):
            bridge.submit("b-a", "ghost-chain", "k", {})

    def test_message_filter_by_kind(self):
        bridge = self._bridge()
        bridge.send("b-a", "b-b", "provenance", {"x": 1})
        bridge.send("b-a", "b-b", "stage_sync", {"y": 2})
        assert len(bridge.delivered_messages("b-b", kind="stage_sync")) == 1
