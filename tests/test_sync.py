"""Snapshot sync: codec round trips, verified catch-up, byzantine
servers, crash-resume, and convergence under injected network faults.

The byzantine suite runs the full rejection matrix from the ISSUE: a
corrupt chunk, a truncated tail, a forged head hash, a forged state
image, a wrong-height offer, and a stale snapshot must each fail closed
with a structured :class:`~repro.errors.SyncError` — and a client given
a second, honest peer must then converge anyway.
"""

from __future__ import annotations

import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.chain import Block, ChainParams, Transaction, TxKind
from repro.chain.block import GENESIS_PREV_HASH
from repro.errors import ShardError, SyncError
from repro.network import ChainNode, LatencyModel, SimNet
from repro.persist import DurableStorage
from repro.persist.codec import decode_block, encode_block
from repro.persist.segment import CrashPoint
from repro.sharding import ShardedChain, ShardedQueryEngine
from repro.sharding.router import namespace_of
from repro.sync import (
    SnapshotManifest,
    SnapshotServer,
    chunk_digest,
    decode_image,
    encode_image,
    scan_block_frame,
    split_chunks,
)


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------
def make_records(n: int, tag: str = "r") -> list[dict]:
    return [
        {"record_id": f"{tag}{i:04d}", "subject": f"org{i % 8}/asset-{i % 5}",
         "actor": f"actor-{i % 4}", "operation": "update", "timestamp": i}
        for i in range(n)
    ]


def make_txs(n: int, tag: str = "t") -> list[Transaction]:
    return [
        Transaction(f"org{i % 8}/acct", TxKind.DATA,
                    {"key": f"{tag}{i}", "value": i}, timestamp=i).seal()
        for i in range(n)
    ]


def build_source(storage_dir=None, n_shards=2, n_records=64,
                 n_txs=96) -> tuple[ShardedChain, list[dict]]:
    sharded = ShardedChain(
        n_shards, max_block_txs=8, anchor_batch_size=16,
        storage_dir=None if storage_dir is None else str(storage_dir),
    )
    records = make_records(n_records)
    sharded.ingest_records(records)
    sharded.flush_anchors()
    report = sharded.submit_many(make_txs(n_txs))
    assert report.rejected_total == 0
    while sharded.mempool_backlog:
        sharded.seal_round(blocks_per_shard=4)
    for shard in sharded.shards:
        assert shard.chain.height > 0
        assert sharded.beacon.is_anchored(shard.shard_id,
                                          shard.chain.height)
    return sharded, records


class Env:
    """One SimNet + gateway + server around a (shared) source facade."""

    def __init__(self, sharded, seed=7, server_cls=SnapshotServer,
                 latency=None, **server_kw):
        self.sharded = sharded
        self.net = SimNet(latency=latency or LatencyModel(base=2, jitter=1),
                          seed=seed)
        self.gateway = ChainNode("gateway", self.net)
        self.server = server_cls(sharded, **server_kw)
        self.gateway.serve_sync(self.server)

    def add_peer(self, node_id, server) -> None:
        node = ChainNode(node_id, self.net)
        node.serve_sync(server)

    def replica(self, tmp_path, shard_id=0, name="rep",
                peers=("gateway",), **kw):
        return self.sharded.spawn_replica(
            shard_id, str(tmp_path / name), self.net,
            node_id=name, peers=list(peers), **kw,
        )


@pytest.fixture(scope="module")
def source(tmp_path_factory):
    root = tmp_path_factory.mktemp("sync-source")
    sharded, records = build_source(root / "store")
    yield sharded, records
    sharded.close()


# ---------------------------------------------------------------------------
# Chunk / manifest codec (hypothesis round trips)
# ---------------------------------------------------------------------------
class TestChunkCodec:
    @settings(max_examples=40, deadline=None)
    @given(st.binary(max_size=4096), st.integers(min_value=1, max_value=777))
    def test_split_reassemble_round_trip(self, data, chunk_size):
        chunks = split_chunks(data, chunk_size)
        assert b"".join(chunks) == data
        assert all(len(c) <= chunk_size for c in chunks)
        assert len(chunks) == max(1, -(-len(data) // chunk_size))

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=1, max_size=512),
           st.integers(min_value=1, max_value=64))
    def test_chunk_digest_detects_any_flip(self, data, seed):
        pos = seed % len(data)
        flipped = bytes(
            b ^ (1 if i == pos else 0) for i, b in enumerate(data)
        )
        assert chunk_digest(flipped) != chunk_digest(data)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10),
           st.binary(min_size=32, max_size=32),
           st.binary(min_size=32, max_size=32),
           st.binary(max_size=2048),
           st.integers(min_value=1, max_value=500))
    def test_manifest_mapping_round_trip(self, shard_id, block_hash,
                                         state_root, image, chunk_size):
        manifest, chunks = SnapshotManifest.for_image(
            shard_id=shard_id, chain_id="shard-x", height=17,
            block_hash=block_hash, state_root=state_root,
            image=image, chunk_size=chunk_size,
        )
        assert manifest.chunk_count == len(chunks)
        assert manifest.total_bytes == len(image)
        again = SnapshotManifest.from_mapping(manifest.to_mapping())
        assert again == manifest
        assert again.digest() == manifest.digest()
        for chunk, expected in zip(chunks, manifest.chunk_hashes):
            assert chunk_digest(chunk) == expected

    def test_manifest_rejects_garbage(self):
        with pytest.raises(SyncError) as err:
            SnapshotManifest.from_mapping({"height": 3})
        assert err.value.reason == "bad_manifest"

    record_values = st.recursive(
        st.one_of(st.none(), st.booleans(), st.integers(),
                  st.text(max_size=8), st.binary(max_size=8)),
        lambda children: st.lists(children, max_size=3)
        | st.dictionaries(st.text(max_size=4), children, max_size=3),
        max_leaves=6,
    )

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.tuples(st.text(max_size=6), st.text(max_size=6),
                           record_values), max_size=6),
        st.dictionaries(st.text(max_size=6), record_values, max_size=4),
        st.lists(st.dictionaries(st.text(min_size=1, max_size=6),
                                 record_values, max_size=4), max_size=4),
    )
    def test_image_round_trip(self, entries, anchor, records):
        image = decode_image(encode_image(entries, anchor, records))
        assert image["state"] == [(ns, k, v) for ns, k, v in entries]
        assert image["anchor"] == anchor
        assert image["records"] == records

    def test_image_rejects_non_image(self):
        from repro.serialization import canonical_encode

        with pytest.raises(SyncError) as err:
            decode_image(b"\x00garbage")
        assert err.value.reason == "corrupt_image"
        with pytest.raises(SyncError):
            decode_image(canonical_encode({"not": "an image"}))


class TestFrameScan:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=50),
           st.integers(min_value=0, max_value=6),
           st.text(max_size=12))
    def test_scan_matches_full_decode(self, height, n_txs, proposer):
        txs = [
            Transaction(f"s{j}", TxKind.DATA,
                        {"key": f"k{j}", "value": [j, {"x": j}]},
                        timestamp=j).seal()
            for j in range(n_txs)
        ]
        block = Block(height=height, prev_hash=b"\x01" * 32,
                      transactions=txs, timestamp=height,
                      proposer=proposer,
                      consensus_meta={"chain_id": "scan-test"})
        scanned = scan_block_frame(encode_block(block))
        assert scanned.height == block.height
        assert scanned.tx_count == len(txs)
        assert scanned.block_hash == block.block_hash
        assert scanned.header.prev_hash == block.header.prev_hash
        assert scanned.header.merkle_root == block.header.merkle_root

    def test_scan_rejects_truncated_frame(self):
        from repro.errors import SerializationError

        frame = encode_block(Block(1, b"\x00" * 32, [make_txs(1)[0]]))
        with pytest.raises(SerializationError):
            scan_block_frame(frame[:40])      # cut inside the header
        with pytest.raises(SerializationError):
            scan_block_frame(frame[:-2] + b"x")   # closing markers gone
        with pytest.raises(SerializationError):
            scan_block_frame(frame + b"x")
        with pytest.raises(SerializationError):
            scan_block_frame(b"l0:e")
        with pytest.raises(SerializationError):
            # A mapping with no transaction list at all.
            from repro.serialization import canonical_encode

            scan_block_frame(canonical_encode({"height": 1}))

    def test_header_tamper_changes_scanned_hash(self):
        block = Block(3, b"\x02" * 32, make_txs(2), proposer="p")
        frame = encode_block(block)
        tampered = frame.replace(b"\x02" * 32, b"\x03" * 32)
        assert scan_block_frame(tampered).block_hash != block.block_hash


# ---------------------------------------------------------------------------
# Happy-path catch-up
# ---------------------------------------------------------------------------
class TestCatchUp:
    def test_replica_reaches_source_head(self, source, tmp_path):
        sharded, _ = source
        env = Env(sharded)
        replica = env.replica(tmp_path)
        report = replica.catch_up()
        shard = sharded.shard(0)
        assert replica.chain.height == shard.chain.height
        assert replica.chain.head.block_hash == shard.chain.head.block_hash
        assert report.height == shard.chain.height
        assert report.blocks_installed == shard.chain.height + 1
        replica.close()

    def test_zero_genesis_replay(self, source, tmp_path):
        sharded, _ = source
        env = Env(sharded)
        replica = env.replica(tmp_path)
        replica.catch_up()
        # The freshly opened stack did not replay: the synced snapshot
        # covers the head.
        assert replica.chain.blocks_replayed_on_open == 0
        # And a full close/reopen of the same directory stays at zero.
        replica.shard.close()
        storage = DurableStorage(str(tmp_path / "rep"))
        from repro.chain import Blockchain

        reopened = Blockchain(
            ChainParams(chain_id="shard-0", max_block_txs=8),
            store=storage.blocks, snapshot_store=storage.state,
        )
        assert reopened.blocks_replayed_on_open == 0
        assert reopened.height == sharded.shard(0).chain.height
        storage.close()
        replica.shard = None
        replica.close()

    def test_state_and_receipts_identical(self, source, tmp_path):
        sharded, _ = source
        env = Env(sharded)
        replica = env.replica(tmp_path)
        replica.catch_up()
        shard = sharded.shard(0)
        assert replica.chain.state.state_root() == \
            shard.chain.state.state_root()
        assert replica.chain.state.dump_entries() == \
            shard.chain.state.dump_entries()
        some_tx = shard.chain.block_at(1).transactions[0]
        assert replica.chain.receipt_for(some_tx.tx_id).tx_id == \
            shard.chain.receipt_for(some_tx.tx_id).tx_id
        replica.close()

    def test_queries_byte_identical(self, source, tmp_path):
        sharded, records = source
        env = Env(sharded)
        replica = env.replica(tmp_path)
        replica.catch_up()
        shard = sharded.shard(0)
        subjects = {r["subject"] for r in records
                    if sharded.router.shard_for(
                        namespace_of(r["subject"])) == 0}
        assert subjects, "fixture must place records on shard 0"
        for subject in sorted(subjects):
            assert replica.history(subject) == \
                shard.query.history(subject)
        assert replica.query.by_actor("actor-1") == \
            shard.query.by_actor("actor-1")
        assert replica.query.time_range(5, 40) == \
            shard.query.time_range(5, 40)
        replica.close()

    def test_federated_proofs_identical_and_verify(self, source, tmp_path):
        sharded, records = source
        env = Env(sharded)
        replica = env.replica(tmp_path)
        replica.catch_up()
        engine = ShardedQueryEngine(sharded)
        checked = 0
        for record in records:
            if sharded.router.shard_for(
                    namespace_of(record["subject"])) != 0:
                continue
            if not sharded.shard(0).anchor.is_anchored(
                    record["record_id"]):
                continue
            src = engine.federated_proof(record["record_id"],
                                         subject=record["subject"])
            rep = replica.federated_proof(record["record_id"])
            assert src.shard_header.block_hash == \
                rep.shard_header.block_hash
            assert src.anchor_bundle.batch_root == \
                rep.anchor_bundle.batch_root
            assert src.anchor_bundle.record_proof == \
                rep.anchor_bundle.record_proof
            assert src.beacon_bundle.shard_proof == \
                rep.beacon_bundle.shard_proof
            header = sharded.beacon.chain.block_at(
                src.beacon_height).header
            assert rep.verify(record, header)
            checked += 1
            if checked >= 5:
                break
        assert checked >= 1
        replica.close()

    def test_replica_chain_verifies_deep(self, source, tmp_path):
        sharded, _ = source
        env = Env(sharded)
        replica = env.replica(tmp_path)
        replica.catch_up()
        replica.chain.verify(deep=True)     # raises on any forged byte
        replica.close()

    def test_every_shard_is_replicable(self, source, tmp_path):
        sharded, _ = source
        env = Env(sharded)
        for shard_id in range(sharded.n_shards):
            replica = env.replica(tmp_path, shard_id=shard_id,
                                  name=f"rep{shard_id}")
            replica.catch_up()
            assert replica.chain.head.block_hash == \
                sharded.shard(shard_id).chain.head.block_hash
            replica.close()

    def test_in_memory_source_served_via_encode_fallback(self, tmp_path):
        sharded, _ = build_source(storage_dir=None)   # memory backend
        env = Env(sharded)
        replica = env.replica(tmp_path)
        report = replica.catch_up()
        assert report.blocks_installed > 0
        assert replica.chain.head.block_hash == \
            sharded.shard(0).chain.head.block_hash

    def test_incremental_resync_fetches_only_the_delta(self, tmp_path):
        sharded, records = build_source(tmp_path / "src")
        env = Env(sharded)
        replica = env.replica(tmp_path)
        first = replica.catch_up()
        # Source advances: more records (one annotated) and more blocks.
        extra = make_records(10, tag="x")
        sharded.ingest_records(extra)
        shard0 = sharded.shard(0)
        annotated = next(
            r["record_id"] for r in records
            if sharded.router.shard_for(namespace_of(r["subject"])) == 0
        )
        shard0.database.annotate(annotated, note="amended")
        sharded.flush_anchors()
        sharded.submit_many(make_txs(40, tag="x"))
        while sharded.mempool_backlog:
            sharded.seal_round(blocks_per_shard=4)
        second = replica.catch_up()
        assert second.height > first.height
        assert second.blocks_installed == second.height - first.height
        assert replica.chain.head.block_hash == \
            shard0.chain.head.block_hash
        assert replica.shard.database.get(annotated)["note"] == "amended"
        assert replica.chain.state.state_root() == \
            shard0.chain.state.state_root()
        replica.close()
        sharded.close()

    def test_report_accounting(self, source, tmp_path):
        sharded, _ = source
        env = Env(sharded)
        replica = env.replica(tmp_path)
        report = replica.catch_up()
        assert report.chunks_downloaded >= 1
        assert report.bytes_received > 0
        assert report.requests >= report.chunks_downloaded + 1
        assert not report.resumed
        assert report.errors == []
        replica.close()


class TestSpawnValidation:
    def test_bad_shard_id(self, source, tmp_path):
        sharded, _ = source
        env = Env(sharded)
        with pytest.raises(ShardError):
            sharded.spawn_replica(99, str(tmp_path / "x"), env.net)

    def test_no_peers(self, source, tmp_path):
        sharded, _ = source
        env = Env(sharded)
        with pytest.raises(SyncError) as err:
            sharded.spawn_replica(0, str(tmp_path / "x"), env.net,
                                  node_id="x", peers=[])
        assert err.value.reason == "no_peers"

    def test_unanchored_head_is_refused(self, tmp_path):
        sharded = ShardedChain(1, max_block_txs=8)
        sharded.ingest_records(make_records(4))
        sharded.flush_anchors()    # head block exists but is unanchored
        env = Env(sharded)
        replica = env.replica(tmp_path)
        with pytest.raises(SyncError) as err:
            replica.catch_up()
        assert err.value.reason == "unanchored_head"


# ---------------------------------------------------------------------------
# Byzantine servers: the rejection matrix
# ---------------------------------------------------------------------------
class ByzantineServer(SnapshotServer):
    """A server that lies in one configurable way."""

    def __init__(self, sharded, mode: str, **kw):
        super().__init__(sharded, **kw)
        self.mode = mode

    def offer(self, shard_id):
        resp = super().offer(shard_id)
        manifest = dict(resp["manifest"])
        if self.mode == "forged_head":
            manifest["block_hash"] = b"\xEE" * 32
        elif self.mode == "wrong_height":
            manifest["height"] = manifest["height"] - 1
        elif self.mode == "forged_state_root":
            manifest["state_root"] = b"\xEE" * 32
        resp["manifest"] = manifest
        return resp

    def chunk(self, shard_id, height, index):
        resp = super().chunk(shard_id, height, index)
        if self.mode == "corrupt_chunk":
            data = bytearray(resp["data"])
            data[len(data) // 2] ^= 0xFF
            resp = dict(resp, data=bytes(data))
        return resp

    def tail(self, shard_id, start, count, upto):
        resp = super().tail(shard_id, start, count, upto)
        if self.mode == "truncated_tail" and start > 1:
            # Serve the first batch honestly, then claim there is
            # nothing more — the head stays unreached.
            resp = dict(resp, items=[])
        elif self.mode == "corrupt_tail_frame":
            # Accidental corruption: bytes flipped, CRC left as-is.
            items = [dict(i) for i in resp["items"]]
            if items:
                frame = bytearray(items[-1]["frame"])
                frame[len(frame) // 2] ^= 0xFF
                items[-1]["frame"] = bytes(frame)
            resp = dict(resp, items=items)
        elif self.mode == "forged_tail_header":
            items = [dict(i) for i in resp["items"]]
            if items:
                items[-1]["frame"] = _tamper_prev_hash(
                    items[-1]["frame"]
                )
                items[-1]["crc"] = zlib.crc32(items[-1]["frame"])
            resp = dict(resp, items=items)
        elif self.mode == "tail_overrun":
            # Serve the honest tail PLUS extra self-consistent blocks
            # past the beacon-verified head (ignoring `upto`) — these
            # chain correctly off the genuine head but are anchored
            # nowhere.
            items = [dict(i) for i in resp["items"]]
            if items and items[-1]["height"] >= upto:
                prev = scan_block_frame(items[-1]["frame"])
                from repro.persist.codec import encode_block

                rogue = Block(
                    height=prev.height + 1,
                    prev_hash=prev.block_hash,
                    transactions=make_txs(2, tag="rogue"),
                    proposer="byzantine",
                )
                frame = encode_block(rogue)
                items.append({
                    "height": rogue.height,
                    "block_hash": rogue.block_hash,
                    "frame": frame,
                    "crc": zlib.crc32(frame),
                    "tx_ids": [tx.tx_id for tx in rogue.transactions],
                    "receipts": [None, None],
                })
            resp = dict(resp, items=items)
        elif self.mode == "forged_tail_body":
            # A *deliberate* forgery recomputes the transport CRC.
            items = [dict(i) for i in resp["items"]]
            for victim in items:
                tampered = _tamper_tx_body(victim["frame"])
                if tampered is not None:
                    victim["frame"] = tampered
                    victim["crc"] = zlib.crc32(tampered)
                    break
            resp = dict(resp, items=items)
        return resp


def _tamper_prev_hash(frame: bytes) -> bytes:
    scanned = scan_block_frame(frame)
    prev = scanned.header.prev_hash
    if prev == GENESIS_PREV_HASH:
        return frame
    flipped = bytes([prev[0] ^ 0xFF]) + prev[1:]
    return frame.replace(prev, flipped, 1)


def _tamper_tx_body(frame: bytes) -> bytes | None:
    """Flip one character inside a transaction payload string, keeping
    the canonical structure (and the header bytes!) intact — the attack
    a header-only scan cannot see."""
    pos = frame.find(b"key")
    if pos < 0:
        return None
    # DATA payload values look like  s<len>:t<i>  — flip the tag letter.
    tag = frame.find(b":t", pos)
    if tag < 0:
        return None
    return frame[:tag + 1] + b"q" + frame[tag + 2:]


class TestByzantine:
    def _attempt(self, sharded, tmp_path, mode, name, **catch_kw):
        env = Env(sharded, server_cls=ByzantineServer, mode=mode)
        replica = env.replica(tmp_path, name=name)
        with pytest.raises(SyncError) as err:
            replica.catch_up(**catch_kw)
        return err.value, replica

    def test_corrupt_chunk_rejected(self, source, tmp_path):
        sharded, _ = source
        err, _ = self._attempt(sharded, tmp_path, "corrupt_chunk", "bz1")
        assert err.reason == "corrupt_chunk"
        assert err.shard_id == 0 and err.peer == "gateway"

    def test_forged_head_hash_rejected(self, source, tmp_path):
        sharded, _ = source
        err, _ = self._attempt(sharded, tmp_path, "forged_head", "bz2")
        assert err.reason == "forged_offer"

    def test_wrong_height_image_rejected(self, source, tmp_path):
        sharded, _ = source
        err, _ = self._attempt(sharded, tmp_path, "wrong_height", "bz3")
        assert err.reason == "forged_offer"

    def test_forged_state_root_rejected(self, source, tmp_path):
        sharded, _ = source
        err, _ = self._attempt(sharded, tmp_path,
                               "forged_state_root", "bz4")
        assert err.reason == "forged_offer"

    def test_truncated_tail_rejected_and_rolled_back(self, source,
                                                     tmp_path):
        sharded, _ = source
        err, replica = self._attempt(sharded, tmp_path,
                                     "truncated_tail", "bz5",
                                     tail_batch=4)
        assert err.reason == "truncated_tail"
        # Fail-closed: nothing from the aborted attempt survives.
        storage = DurableStorage(str(tmp_path / "bz5"))
        assert storage.blocks.height() == -1
        storage.close()

    def test_corrupt_tail_frame_fails_crc(self, source, tmp_path):
        sharded, _ = source
        err, _ = self._attempt(sharded, tmp_path,
                               "corrupt_tail_frame", "bz9", tail_batch=4)
        assert err.reason == "corrupt_block"

    def test_forged_tail_header_breaks_hash_chain(self, source, tmp_path):
        sharded, _ = source
        err, _ = self._attempt(sharded, tmp_path,
                               "forged_tail_header", "bz6", tail_batch=4)
        assert err.reason == "forged_tail"

    def test_blocks_beyond_verified_head_rejected(self, source, tmp_path):
        # Self-consistent blocks chained past the beacon-verified head
        # must never install — they are anchored nowhere.
        sharded, _ = source
        err, replica = self._attempt(sharded, tmp_path,
                                     "tail_overrun", "bz10")
        assert err.reason == "forged_tail"
        storage = DurableStorage(str(tmp_path / "bz10"))
        assert storage.blocks.height() == -1     # rolled back to base
        storage.close()

    def test_forged_tail_body_caught_by_deep_verify(self, source,
                                                    tmp_path):
        sharded, _ = source
        err, _ = self._attempt(sharded, tmp_path, "forged_tail_body",
                               "bz7", deep_verify=True)
        assert err.reason == "forged_tail"

    def test_forged_tail_body_fails_closed_on_read(self, source,
                                                   tmp_path):
        # Without deep verification the forged body installs (headers
        # chain correctly), but the store's read path decodes against
        # the indexed hash, so the forgery can never serve a block.
        sharded, _ = source
        env = Env(sharded, server_cls=ByzantineServer,
                  mode="forged_tail_body")
        replica = env.replica(tmp_path, name="bz8")
        from repro.errors import StorageError, TamperDetected

        try:
            replica.catch_up()
        except SyncError:
            return      # tamper already surfaced during install: fine
        with pytest.raises((StorageError, TamperDetected)):
            replica.chain.verify(deep=True)
            for height in range(replica.chain.height + 1):
                replica.chain.block_at(height)

    def test_stale_snapshot_rejected(self, source, tmp_path):
        sharded, _ = source
        env = Env(sharded)
        replica = env.replica(tmp_path, name="stale")
        head = sharded.shard(0).chain.height
        with pytest.raises(SyncError) as err:
            replica.catch_up(min_height=head + 100)
        assert err.value.reason == "stale_snapshot"

    def test_failover_to_honest_peer(self, source, tmp_path):
        sharded, _ = source
        env = Env(sharded, server_cls=ByzantineServer,
                  mode="corrupt_chunk")
        env.add_peer("honest", SnapshotServer(sharded))
        replica = env.replica(tmp_path, name="fo",
                              peers=("gateway", "honest"))
        report = replica.catch_up()
        assert report.peer == "honest"
        assert replica.chain.head.block_hash == \
            sharded.shard(0).chain.head.block_hash
        # The byzantine attempt left a structured trace.
        assert replica.last_report.peer == "honest"
        replica.close()

    def test_malformed_request_gets_error_response(self, source):
        sharded, _ = source
        env = Env(sharded)
        from repro.network import NetMessage

        got = []
        env.net.register("probe", lambda m: got.append(dict(m.body)))
        env.net.send(NetMessage("probe", "gateway", "sync/chunk",
                                {"req": True, "req_id": "p:0"}))
        env.net.run()
        assert got and got[0]["error"]["reason"] in ("bad_request",
                                                     "stale_snapshot")


# ---------------------------------------------------------------------------
# Crash-and-resume
# ---------------------------------------------------------------------------
class TestResume:
    def test_crash_mid_chunk_download_resumes(self, source, tmp_path):
        sharded, _ = source
        env = Env(sharded, chunk_size=512)   # force several chunks
        replica = env.replica(tmp_path, name="cr")
        with pytest.raises(CrashPoint):
            replica.catch_up(crash_after_chunks=2)
        report = replica.catch_up()
        assert report.resumed
        assert report.chunks_reused >= 2
        assert replica.chain.head.block_hash == \
            sharded.shard(0).chain.head.block_hash
        assert replica.chain.blocks_replayed_on_open == 0
        replica.close()

    def test_crash_mid_tail_resumes_from_installed_height(self, source,
                                                          tmp_path):
        sharded, _ = source
        env = Env(sharded)
        replica = env.replica(tmp_path, name="ct")
        calls = {"tail": 0}
        original = env.server.tail

        def crashing_tail(shard_id, start, count, upto):
            calls["tail"] += 1
            if calls["tail"] == 2:
                raise RuntimeError("simulated process death")
            return original(shard_id, start, count, upto)

        env.server.tail = crashing_tail
        with pytest.raises(RuntimeError):
            # The simulated process death propagates out of the event
            # loop; installed blocks stay (a crash, not a forgery).
            replica.catch_up(tail_batch=4, max_retries=0)
        storage = DurableStorage(str(tmp_path / "ct"))
        installed = storage.blocks.height()
        storage.close()
        assert installed >= 3      # first batch landed
        report = replica.catch_up(tail_batch=4)
        assert report.resumed
        assert report.blocks_installed == \
            sharded.shard(0).chain.height - installed
        assert replica.chain.head.block_hash == \
            sharded.shard(0).chain.head.block_hash
        replica.close()

    def test_staging_for_old_image_is_discarded(self, tmp_path):
        sharded, _ = build_source(tmp_path / "src")
        env = Env(sharded, chunk_size=512)
        replica = env.replica(tmp_path, name="st")
        with pytest.raises(CrashPoint):
            replica.catch_up(crash_after_chunks=1)
        # Source advances before the client comes back.
        sharded.submit_many(make_txs(16, tag="s"))
        while sharded.mempool_backlog:
            sharded.seal_round(blocks_per_shard=4)
        report = replica.catch_up()
        assert report.chunks_reused == 0      # stale staging discarded
        assert replica.chain.head.block_hash == \
            sharded.shard(0).chain.head.block_hash
        replica.close()
        sharded.close()


# ---------------------------------------------------------------------------
# Convergence under injected network faults
# ---------------------------------------------------------------------------
class TestFaultyNetwork:
    def test_converges_under_chunk_and_tail_loss(self, source, tmp_path):
        sharded, _ = source
        env = Env(sharded, seed=11, chunk_size=1024)
        env.net.inject_faults("sync/chunk", drop=0.3)
        env.net.inject_faults("sync/tail", drop=0.3)
        replica = env.replica(tmp_path, name="dr")
        report = replica.catch_up(tail_batch=4, max_retries=30)
        assert report.retries > 0
        assert env.net.stats.messages_dropped > 0
        assert replica.chain.head.block_hash == \
            sharded.shard(0).chain.head.block_hash
        replica.close()

    def test_converges_under_duplication_and_reorder(self, source,
                                                     tmp_path):
        sharded, _ = source
        env = Env(sharded, seed=13, chunk_size=1024)
        for topic in ("sync/offer", "sync/chunk", "sync/tail"):
            env.net.inject_faults(topic, duplicate=0.4, reorder=0.4,
                                  reorder_delay=40)
        replica = env.replica(tmp_path, name="dup")
        replica.catch_up(tail_batch=4, max_retries=30)
        assert env.net.stats.messages_duplicated > 0
        assert env.net.stats.messages_reordered > 0
        assert replica.chain.head.block_hash == \
            sharded.shard(0).chain.head.block_hash
        assert replica.chain.state.state_root() == \
            sharded.shard(0).chain.state.state_root()
        replica.close()

    def test_deterministic_given_seed(self, source, tmp_path):
        sharded, _ = source

        def run(name):
            env = Env(sharded, seed=42, chunk_size=1024)
            env.net.inject_faults("sync/chunk", drop=0.25,
                                  duplicate=0.25)
            replica = env.replica(tmp_path, name=name)
            report = replica.catch_up(tail_batch=8, max_retries=30)
            stats = env.net.stats
            replica.close()
            return (report.requests, report.retries,
                    stats.messages_dropped, stats.messages_duplicated)

        assert run("seed-a") == run("seed-b")
