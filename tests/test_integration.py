"""End-to-end integration tests spanning multiple subsystems.

Each test is one of the paper's scenarios run through the whole stack —
the FIG1 story (single entity → intra-chain collaboration → multi-chain)
expressed as executable assertions.
"""

import pytest

from repro import (
    Blockchain,
    ChainParams,
    ProvChain,
    SciLedger,
    SimClock,
    Transaction,
    TxKind,
)
from repro.consensus import PBFTCluster
from repro.network import SimNet
from repro.systems import ForensiCross, PrivChain, SynergyChain, Vassago
from repro.workloads import CloudOpsWorkload, WorkflowShape


class TestRQ1SingleEntityStory:
    """A lone cloud user audits their own files (paper §3)."""

    def test_full_audit_cycle_under_generated_workload(self):
        system = ProvChain(difficulty_bits=4, batch_size=8)
        workload = CloudOpsWorkload(n_users=3, n_objects=10, seed=11)
        applied = 0
        for op in workload.generate(60):
            try:
                if op.op == "create":
                    system.create(op.user, op.key, b"x" * op.size)
                elif op.op == "read":
                    system.read(op.user, op.key)
                elif op.op == "update":
                    system.update(op.user, op.key, b"y" * op.size)
                elif op.op == "share":
                    system.share(op.user, op.key, op.target_user)
                elif op.op == "delete":
                    system.delete(op.user, op.key)
                applied += 1
            except Exception:
                continue    # workload may race deletes; audits must still hold
        system.finalize()
        assert system.records_captured >= applied
        # Every object's audit verifies against the chain.
        for key in list(system.store.keys_owned_by("user-00"))[:3]:
            assert system.audit_object(key).verified
        system.chain.verify()


class TestRQ2CollaborationStory:
    """Institutions collaborate on one chain (paper §4)."""

    def test_workflow_collaboration_with_invalidation_storm(self):
        ledger = SciLedger(["uni-a", "uni-b", "uni-c"], batch_size=16)
        ledger.create_workflow("w", "pi")
        for spec in WorkflowShape(n_tasks=25, fanout=3, seed=7).tasks():
            ledger.design_task("w", spec["task_id"], spec["user_id"],
                               spec["inputs"], spec["outputs"])
        ledger.run_workflow("w")
        all_results = set(ledger.valid_results("w"))
        assert len(all_results) == 25
        # A root task turns out wrong: cascade, re-execute, re-verify.
        cascade = ledger.invalidate("task-0000")
        assert len(cascade) >= 1
        ledger.re_execute(cascade)
        assert set(ledger.valid_results("w")) == all_results
        for artifact in list(all_results)[:5]:
            assert ledger.provenance_of(artifact).verified

    def test_privacy_preserving_supply_chain_settlement(self):
        system = PrivChain({"acme", "globex"}, verifier="fda")
        readings = [
            system.commit_reading("acme", f"lot-{i}", "truck",
                                  value=30 + i * 7)
            for i in range(4)
        ]
        paid = refunded = 0
        for reading in readings:
            bounty = system.request_range_proof(
                "pharmacy", reading.reading_id, lo=25, hi=60, bounty=5
            )
            try:
                proof = system.produce_proof(reading.reading_id,
                                             lo=25, hi=60, n_bits=7)
                outcome = system.settle(bounty, reading.reading_id, proof)
            except Exception:
                # Out-of-band reading: prover cannot prove; verifier
                # settles against an empty/invalid proof.
                outcome = "refunded"
            if outcome == "paid":
                paid += 1
            else:
                refunded += 1
        # values 30, 37, 44, 51 are in [25, 60]: all pass.
        assert paid == 4 and refunded == 0
        system.chain.verify()


class TestRQ3MultiChainStory:
    """Organizations with separate chains collaborate (paper §5)."""

    def test_cross_chain_forensics_full_case(self):
        system = ForensiCross(["us", "eu"])
        actors = {"us": "smith", "eu": "mueller"}
        system.open_joint_case("JC", actors)
        system.sync_stage("JC", actors)         # preservation
        system.orgs["us"].collect_evidence("JC", "us-ev-1", "smith",
                                           b"disk image", "image")
        system.orgs["eu"].collect_evidence("JC", "eu-ev-1", "mueller",
                                           b"router logs", "log")
        assert system.share_evidence("JC", "us", "eu", "us-ev-1", "smith")
        for _ in range(3):                       # collection..reporting
            system.sync_stage("JC", actors)
        bundle = system.extract_cross_chain("JC", actors)
        assert bundle["all_verified"]
        assert bundle["bridge_messages"] >= 5    # 4 syncs + 1 share
        for org in ("us", "eu"):
            system.orgs[org].chain.verify()

    def test_vassago_query_over_synergychain_style_workload(self):
        system = Vassago([f"org-{i}" for i in range(4)])
        # A dependency chain weaving through all four organizations.
        tip = system.commit_tx("org-0", "u", {"op": "genesis"})
        for i in range(1, 12):
            tip = system.commit_tx(f"org-{i % 4}", "u",
                                   {"op": f"step-{i}"}, depends_on=[tip])
        hops = system.query_provenance(tip)
        assert len(hops) == 12
        assert all(h.proof_valid for h in hops)
        guided_cost = system.last_query_cost.txs_examined
        system.query_provenance_naive(tip)
        naive_cost = system.last_query_cost.txs_examined
        assert naive_cost > 5 * guided_cost

    def test_aggregation_tier_consistency_under_load(self):
        system = SynergyChain(["a", "b"])
        system.rbac.assign("admin", "admin")
        for org in ("a", "b"):
            for i in range(50):
                system.submit(org, {
                    "record_id": f"{org}-{i}",
                    "domain": "generic",
                    "subject": f"s{i % 7}",
                    "actor": "w",
                    "operation": "op",
                    "timestamp": i,
                })
        for subject in (f"s{i}" for i in range(7)):
            agg = system.query_aggregated("admin", subject)
            seq = system.query_sequential("admin", subject)
            assert len(agg) == len(seq)


class TestConsensusBackedProvenance:
    """Provenance anchoring driven by a real agreement cluster."""

    def test_pbft_committed_anchors(self):
        net = SimNet(seed=5)
        cluster = PBFTCluster(net, n_replicas=4, chain_id="prov-pbft")
        records = [
            {"record_id": f"r{i}", "subject": "s", "op": "write"}
            for i in range(6)
        ]
        from repro.crypto.merkle import MerkleTree
        from repro.provenance.records import record_digest

        tree = MerkleTree([record_digest(r) for r in records])
        tx = Transaction(
            sender="anchor", kind=TxKind.PROVENANCE,
            payload={"anchor_id": "a0", "merkle_root": tree.root,
                     "record_count": len(records)},
        )
        metrics = cluster.propose([tx])
        assert metrics.committed
        # Every replica independently holds the anchor.
        for replica in cluster.replicas:
            anchored = replica.chain.state.get("provenance", "a0")
            assert anchored is not None
            assert anchored["merkle_root"] == tree.root


class TestChainInteropSmoke:
    def test_two_chain_handoff_preserves_total_value(self):
        from repro.crosschain import HTLCManager, AtomicSwap, SwapParty

        clock = SimClock()
        a = Blockchain(ChainParams(chain_id="ia"))
        b = Blockchain(ChainParams(chain_id="ib"))
        a.state.credit("alice", 100)
        b.state.credit("bob", 100)
        swap = AtomicSwap(
            parties=[SwapParty("alice", 25, HTLCManager(a, clock)),
                     SwapParty("bob", 40, HTLCManager(b, clock))],
            clock=clock,
        )
        swap.execute()
        total_a = sum(a.state.balance(acc) for acc in ("alice", "bob"))
        total_b = sum(b.state.balance(acc) for acc in ("alice", "bob"))
        assert total_a == 100 and total_b == 100
        a.verify()
        b.verify()
