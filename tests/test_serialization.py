"""Canonical encoding: determinism, typing, and rejection of the rest."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SerializationError
from repro.serialization import canonical_encode


class TestBasicTypes:
    def test_none(self):
        assert canonical_encode(None) == b"N"

    def test_bools_distinct_from_ints(self):
        assert canonical_encode(True) != canonical_encode(1)
        assert canonical_encode(False) != canonical_encode(0)

    def test_int_vs_str_distinct(self):
        assert canonical_encode(1) != canonical_encode("1")

    def test_bytes_vs_str_distinct(self):
        assert canonical_encode(b"ab") != canonical_encode("ab")

    def test_negative_int(self):
        assert canonical_encode(-5) != canonical_encode(5)

    def test_float_roundtrip_stability(self):
        assert canonical_encode(0.1) == canonical_encode(0.1)
        assert canonical_encode(0.1) != canonical_encode(0.2)


class TestContainers:
    def test_dict_order_independence(self):
        a = canonical_encode({"x": 1, "y": [2, 3], "z": {"k": None}})
        b = canonical_encode({"z": {"k": None}, "y": [2, 3], "x": 1})
        assert a == b

    def test_list_order_matters(self):
        assert canonical_encode([1, 2]) != canonical_encode([2, 1])

    def test_tuple_encodes_like_list(self):
        assert canonical_encode((1, 2)) == canonical_encode([1, 2])

    def test_empty_containers_distinct(self):
        assert canonical_encode([]) != canonical_encode({})

    def test_nested_structure(self):
        value = {"a": [{"b": (1, 2)}, None], "c": b"\x00\xff"}
        assert canonical_encode(value) == canonical_encode(value)

    def test_non_string_keys_rejected(self):
        with pytest.raises(SerializationError):
            canonical_encode({1: "x"})


class TestRejection:
    def test_object_rejected(self):
        with pytest.raises(SerializationError):
            canonical_encode(object())

    def test_set_rejected(self):
        # Sets are unordered; silently encoding them would be a trap.
        with pytest.raises(SerializationError):
            canonical_encode({1, 2})

    def test_to_canonical_hook(self):
        class Wraps:
            def to_canonical(self):
                return {"v": 7}

        assert canonical_encode(Wraps()) == canonical_encode({"v": 7})


json_like = st.recursive(
    st.none() | st.booleans() | st.integers() | st.text() | st.binary(),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=20,
)


class TestProperties:
    @given(json_like)
    def test_deterministic(self, value):
        assert canonical_encode(value) == canonical_encode(value)

    @given(st.dictionaries(st.text(max_size=6), st.integers(), max_size=6))
    def test_dict_insertion_order_irrelevant(self, d):
        items = list(d.items())
        reversed_dict = dict(reversed(items))
        assert canonical_encode(d) == canonical_encode(reversed_dict)

    @given(st.lists(st.integers(), max_size=8),
           st.lists(st.integers(), max_size=8))
    def test_injective_on_int_lists(self, a, b):
        if a != b:
            assert canonical_encode(a) != canonical_encode(b)
