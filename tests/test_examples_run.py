"""Every example script must run cleanly — examples are part of the API
contract, not decoration."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 3, "at least three runnable examples required"
    assert any(p.name == "quickstart.py" for p in EXAMPLES)
    # The sharded cross-org handoff walkthrough ships with the sharding
    # subsystem and must stay runnable (it is picked up by the glob).
    assert any(p.name == "sharded_supply_chain.py" for p in EXAMPLES)
    # The snapshot-sync walkthrough ships with repro.sync: a new org
    # joins mid-stream, audits offline, and survives a mid-sync kill.
    assert any(p.name == "replica_catchup.py" for p in EXAMPLES)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} produced no output"
