"""Durable storage: codec, segment log, crash recovery, backend
equivalence, reorg truncation, and whole-deployment restarts.

The crash suite simulates ``kill -9`` two ways: the segment log's
fault-injection hook (stops a frame write after N bytes) and literal
``os.truncate`` of the tail segment at every byte position.  In both
cases the store must reopen to the last *committed* entry and the chain
must verify end to end.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.chain import Blockchain, ChainParams, Transaction, TxKind
from repro.errors import SerializationError, StorageError
from repro.persist import (
    CrashPoint,
    DurableStorage,
    MemoryBlockStore,
    SegmentLog,
    canonical_decode,
    decode_block,
    encode_block,
)
from repro.persist.codec import (
    decode_receipt,
    decode_record,
    encode_receipt,
    encode_record,
)
from repro.serialization import canonical_encode
from repro.sharding import ShardedChain, ShardedQueryEngine


def data_tx(i: int, sender: str = "alice", fee: int = 0) -> Transaction:
    return Transaction(sender=sender, kind=TxKind.DATA,
                       payload={"key": f"k{i}", "value": i}, fee=fee)


def grow_chain(chain: Blockchain, blocks: int, txs_per_block: int = 3,
               tag: str = "") -> None:
    for b in range(blocks):
        height = chain.height + 1
        txs = [
            Transaction("alice", TxKind.DATA,
                        {"key": f"{tag}b{height}t{j}", "value": j}).seal()
            for j in range(txs_per_block)
        ]
        chain.append_block(chain.build_block(txs, timestamp=height))


# ---------------------------------------------------------------------------
# Codec
# ---------------------------------------------------------------------------
canonical_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10 ** 30), max_value=10 ** 30),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
    st.binary(max_size=40),
)
canonical_values = st.recursive(
    canonical_scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=5),
        st.dictionaries(st.text(max_size=10), inner, max_size=5),
    ),
    max_leaves=20,
)


class TestCodec:
    @settings(max_examples=60)
    @given(canonical_values)
    def test_decode_inverts_encode(self, value):
        encoded = canonical_encode(value)
        decoded = canonical_decode(encoded)
        # Re-encoding the decoded value must be byte-identical — the
        # property every stored hash depends on.
        assert canonical_encode(decoded) == encoded

    def test_decode_rejects_trailing_garbage(self):
        with pytest.raises(SerializationError):
            canonical_decode(canonical_encode({"a": 1}) + b"x")

    def test_decode_rejects_truncation(self):
        encoded = canonical_encode(["abc", 123, {"k": b"v"}])
        for cut in range(len(encoded)):
            with pytest.raises(SerializationError):
                canonical_decode(encoded[:cut])

    def test_block_roundtrip_byte_identical(self):
        chain = Blockchain(ChainParams(chain_id="codec"))
        grow_chain(chain, 3)
        for block in chain.blocks:
            payload = encode_block(block)
            clone = decode_block(payload, expected_hash=block.block_hash)
            assert encode_block(clone) == payload
            assert clone.block_hash == block.block_hash
            assert clone.header.merkle_root == block.header.merkle_root

    def test_block_decode_detects_corruption(self):
        chain = Blockchain(ChainParams(chain_id="codec"))
        grow_chain(chain, 1)
        payload = bytearray(encode_block(chain.blocks[1]))
        # Flip a byte inside the value region of the encoding.
        payload[-2] ^= 0xFF
        with pytest.raises((StorageError, SerializationError)):
            decode_block(bytes(payload))

    def test_signed_transaction_survives(self):
        from repro.crypto.signatures import KeyPair

        pair = KeyPair.generate("persist-signer")
        tx = Transaction(pair.address, TxKind.DATA,
                         {"key": "s", "value": 1}).sign_with(pair).seal()
        chain = Blockchain(ChainParams(chain_id="sig",
                                       require_signatures=True))
        chain.append_block(chain.build_block([tx]))
        clone = decode_block(encode_block(chain.blocks[1]))
        assert clone.transactions[0].verify_signature()
        assert clone.transactions[0].is_sealed

    def test_receipt_roundtrip(self, funded_chain):
        tx = Transaction("alice", TxKind.TRANSFER,
                         {"to": "bob", "amount": 5}).seal()
        funded_chain.append_block(funded_chain.build_block([tx]))
        receipt = funded_chain.receipt_for(tx.tx_id)
        clone = decode_receipt(encode_receipt(receipt))
        assert clone == receipt
        assert clone.events == receipt.events

    def test_record_roundtrip(self):
        record = {"record_id": "r1", "subject": "s", "nested": {"a": [1, 2]},
                  "blob": b"\x00\xff"}
        assert decode_record(encode_record(record)) == record


# ---------------------------------------------------------------------------
# Segment log
# ---------------------------------------------------------------------------
class TestSegmentLog:
    def test_append_read_scan(self, tmp_path):
        log = SegmentLog(tmp_path)
        locs = [log.append(f"payload-{i}".encode()) for i in range(10)]
        for i, loc in enumerate(locs):
            assert log.read(loc.segment, loc.offset) == f"payload-{i}".encode()
        scanned = [payload for _, payload in log.scan()]
        assert scanned == [f"payload-{i}".encode() for i in range(10)]

    def test_segments_roll_and_seal(self, tmp_path):
        log = SegmentLog(tmp_path, max_segment_bytes=64)
        for i in range(20):
            log.append(b"x" * 30)
        assert log.current_segment > 0
        assert log.segments_sealed == log.current_segment
        assert len([p for _, p in log.scan()]) == 20

    def test_partial_tail_is_invalid_not_fatal(self, tmp_path):
        log = SegmentLog(tmp_path)
        keep = log.append(b"first")
        cut = log.append(b"second-entry")
        log.close()
        path = os.path.join(str(tmp_path), "seg-00000000.log")
        os.truncate(path, cut.offset + 5)  # mid-frame
        reopened = SegmentLog(tmp_path)
        assert reopened.frame_at(keep.segment, keep.offset) == b"first"
        assert reopened.frame_at(cut.segment, cut.offset) is None
        assert [p for _, p in reopened.scan()] == [b"first"]

    def test_truncate_to_drops_later_segments(self, tmp_path):
        log = SegmentLog(tmp_path, max_segment_bytes=32)
        locs = [log.append(b"y" * 20) for _ in range(6)]
        log.truncate_to(locs[2].segment, locs[2].offset)
        assert [p for _, p in log.scan()] == [b"y" * 20] * 2
        # The log stays appendable at the cut point.
        log.append(b"fresh")
        assert [p for _, p in log.scan()][-1] == b"fresh"

    def test_fault_injection_hook(self, tmp_path):
        log = SegmentLog(tmp_path)
        log.append(b"good")
        log.fail_after_bytes = 6
        with pytest.raises(CrashPoint):
            log.append(b"never-lands")
        # The victim frame is a partial write: invisible to scans.
        assert [p for _, p in log.scan()] == [b"good"]


# ---------------------------------------------------------------------------
# Crash recovery (kill mid-append)
# ---------------------------------------------------------------------------
class TestCrashRecovery:
    def _open_chain(self, directory) -> tuple[DurableStorage, Blockchain]:
        storage = DurableStorage(directory)
        chain = Blockchain(ChainParams(chain_id="crash"),
                           store=storage.blocks,
                           snapshot_store=storage.state)
        return storage, chain

    def test_injected_crash_mid_append_recovers(self, tmp_path):
        storage, chain = self._open_chain(tmp_path)
        grow_chain(chain, 5)
        head_before = chain.head.block_hash
        storage.block_log.fail_after_bytes = 17
        with pytest.raises(CrashPoint):
            grow_chain(chain, 1, tag="doomed")
        storage.close()

        storage2, chain2 = self._open_chain(tmp_path)
        assert chain2.height == 5
        assert chain2.head.block_hash == head_before
        chain2.verify(deep=True)
        # The store stays appendable after recovery.
        grow_chain(chain2, 1, tag="after")
        assert chain2.height == 6
        chain2.verify(deep=True)
        storage2.close()

    @pytest.mark.parametrize("cut_back", [1, 2, 3, 5, 8, 13, 21, 34])
    def test_truncate_tail_at_arbitrary_byte(self, tmp_path, cut_back):
        """Chop the tail segment ``cut_back`` bytes short and reopen:
        the store must recover to the last fully committed block."""
        storage, chain = self._open_chain(tmp_path)
        grow_chain(chain, 4)
        hash_at_3 = chain.block_at(3).block_hash
        chain.close()

        seg_dir = os.path.join(str(tmp_path), "blocks-log")
        seg = sorted(os.listdir(seg_dir))[-1]
        path = os.path.join(seg_dir, seg)
        os.truncate(path, os.path.getsize(path) - cut_back)

        storage2, chain2 = self._open_chain(tmp_path)
        assert storage2.recovered_blocks >= 1
        assert chain2.height == 3
        assert chain2.head.block_hash == hash_at_3
        chain2.verify(deep=True)
        storage2.close()

    def test_corrupted_tail_bytes_recover(self, tmp_path):
        """Flip bytes inside the last frame (torn write, not short)."""
        storage, chain = self._open_chain(tmp_path)
        grow_chain(chain, 4)
        chain.close()
        seg_dir = os.path.join(str(tmp_path), "blocks-log")
        path = os.path.join(seg_dir, sorted(os.listdir(seg_dir))[-1])
        size = os.path.getsize(path)
        with open(path, "rb+") as fh:
            fh.seek(size - 20)
            fh.write(b"\xde\xad\xbe\xef")
        storage2, chain2 = self._open_chain(tmp_path)
        assert chain2.height == 3
        chain2.verify(deep=True)
        storage2.close()

    def test_stale_snapshot_above_recovered_head(self, tmp_path):
        """close() checkpoints at head; if recovery then loses the head
        block, the unreachable snapshot must be discarded and the chain
        rebuilt by replay — still consistent."""
        storage, chain = self._open_chain(tmp_path)
        grow_chain(chain, 4)
        state_root = None
        chain.close()  # snapshot at height 4

        seg_dir = os.path.join(str(tmp_path), "blocks-log")
        path = os.path.join(seg_dir, sorted(os.listdir(seg_dir))[-1])
        os.truncate(path, os.path.getsize(path) - 3)  # lose block 4

        storage2, chain2 = self._open_chain(tmp_path)
        assert chain2.height == 3
        assert chain2.blocks_replayed_on_open == 3  # genesis replay fallback
        chain2.verify(deep=True)
        # State must equal a from-scratch execution of blocks 1..3.
        reference = Blockchain(ChainParams(chain_id="crash"))
        for h in range(1, 4):
            reference._commit_block(chain2.block_at(h))
        assert chain2.state.state_root() == reference.state.state_root()
        storage2.close()

    def test_contract_blocks_need_runtime_at_reopen(self, tmp_path):
        """Review regression: replaying stored contract blocks without a
        runtime would silently produce failed receipts and divergent
        state — the reopen must demand the runtime up front and, given
        it, reproduce the exact pre-crash state."""
        from repro.contracts.library.registry import ProvenanceRegistry
        from repro.contracts.runtime import (
            ContractRuntime,
            call_payload,
            deploy_payload,
        )

        def fresh_runtime() -> ContractRuntime:
            runtime = ContractRuntime()
            runtime.register(ProvenanceRegistry)
            return runtime

        storage = DurableStorage(tmp_path)
        runtime = fresh_runtime()
        chain = Blockchain(ChainParams(chain_id="contracts"),
                           store=storage.blocks,
                           snapshot_store=storage.state)
        runtime.attach(chain)
        deploy = Transaction("deployer", TxKind.CONTRACT_DEPLOY,
                             deploy_payload("ProvenanceRegistry")).seal()
        chain.append_block(chain.build_block([deploy]))
        address = chain.receipt_for(deploy.tx_id).output
        call = Transaction("alice", TxKind.CONTRACT_CALL,
                           call_payload(address, "register",
                                        record_id="a1",
                                        content_hash="deadbeef")).seal()
        chain.append_block(chain.build_block([call]))
        assert chain.receipt_for(call.tx_id).success
        state_root = chain.state.state_root()
        # No checkpoint: force a restore replay through the contract txs.
        storage.blocks.sync()
        storage.close()

        storage2 = DurableStorage(tmp_path)
        with pytest.raises(StorageError, match="contract_runtime"):
            Blockchain(ChainParams(chain_id="contracts"),
                       store=storage2.blocks,
                       snapshot_store=storage2.state)
        storage2.close()

        storage3 = DurableStorage(tmp_path)
        reopened = Blockchain(ChainParams(chain_id="contracts"),
                              store=storage3.blocks,
                              snapshot_store=storage3.state,
                              contract_runtime=fresh_runtime())
        assert reopened.blocks_replayed_on_open == 2
        assert reopened.state.state_root() == state_root
        storage3.close()

    def test_record_log_crash_recovers(self, tmp_path):
        storage = DurableStorage(tmp_path)
        from repro.storage.provdb import ProvenanceDatabase

        db = ProvenanceDatabase(store=storage.records)
        for i in range(6):
            db.insert({"record_id": f"r{i}", "subject": "s",
                       "timestamp": i})
        storage.record_log.fail_after_bytes = 9
        with pytest.raises(CrashPoint):
            db.insert({"record_id": "doomed", "subject": "s",
                       "timestamp": 99})
        storage.close()

        storage2 = DurableStorage(tmp_path)
        db2 = ProvenanceDatabase(store=storage2.records)
        assert len(db2) == 6
        assert not db2.contains("doomed")
        assert [r["record_id"] for r in db2.by_subject("s")] == \
            [f"r{i}" for i in range(6)]
        storage2.close()


# ---------------------------------------------------------------------------
# Backend equivalence (hypothesis)
# ---------------------------------------------------------------------------
payload_values = st.one_of(
    st.none(),
    st.integers(min_value=-(10 ** 12), max_value=10 ** 12),
    st.text(max_size=20),
    st.binary(max_size=20),
    st.lists(st.integers(min_value=0, max_value=99), max_size=4),
)
tx_strategy = st.builds(
    lambda key, value, fee, seal: (key, value, fee, seal),
    key=st.text(min_size=1, max_size=12),
    value=payload_values,
    fee=st.integers(min_value=0, max_value=50),
    seal=st.booleans(),
)
block_plan = st.lists(st.lists(tx_strategy, max_size=4), min_size=1,
                      max_size=6)


def _apply_plan(chain: Blockchain, plan) -> None:
    for height, block_txs in enumerate(plan, start=1):
        txs = []
        for j, (key, value, fee, seal) in enumerate(block_txs):
            tx = Transaction("hyp", TxKind.DATA,
                             {"key": f"{height}/{j}/{key}", "value": value},
                             fee=fee, timestamp=height)
            txs.append(tx.seal() if seal else tx)
        chain.append_block(chain.build_block(txs, timestamp=height))


class TestBackendEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(block_plan)
    def test_durable_equals_memory_through_reopen(self, tmp_path_factory,
                                                  plan):
        directory = tmp_path_factory.mktemp("equiv")
        memory = Blockchain(ChainParams(chain_id="eq"))
        storage = DurableStorage(directory)
        durable = Blockchain(ChainParams(chain_id="eq"),
                             store=storage.blocks,
                             snapshot_store=storage.state)
        _apply_plan(memory, plan)
        _apply_plan(durable, plan)
        assert durable.head.block_hash == memory.head.block_hash
        durable.close()

        storage2 = DurableStorage(directory)
        reopened = Blockchain(ChainParams(chain_id="eq"),
                              store=storage2.blocks,
                              snapshot_store=storage2.state)
        assert reopened.blocks_replayed_on_open == 0
        assert reopened.height == memory.height
        assert reopened.head.block_hash == memory.head.block_hash
        assert reopened.state.state_root() == memory.state.state_root()
        assert set(reopened.receipts.keys()) == set(memory.receipts.keys())
        for block_mem, block_dur in zip(memory.blocks, reopened.blocks):
            assert encode_block(block_dur) == encode_block(block_mem)
        for block in memory.blocks:
            for tx in block.transactions:
                assert reopened.store.tx_location(tx.tx_id) == \
                    memory.store.tx_location(tx.tx_id)
                assert reopened.receipt_for(tx.tx_id) == \
                    memory.receipt_for(tx.tx_id)
        reopened.verify(deep=True)
        storage2.close()

    @settings(max_examples=15, deadline=None)
    @given(st.lists(
        st.fixed_dictionaries({
            "subject": st.sampled_from(["a", "b", "c"]),
            "actor": st.sampled_from(["x", "y"]),
            "operation": st.sampled_from(["create", "update"]),
            "timestamp": st.integers(min_value=0, max_value=1000),
            "payload": payload_values,
        }),
        max_size=12,
    ))
    def test_record_store_equivalence(self, tmp_path_factory, specs):
        from repro.storage.provdb import ProvenanceDatabase

        directory = tmp_path_factory.mktemp("recs")
        storage = DurableStorage(directory)
        mem_db = ProvenanceDatabase()
        dur_db = ProvenanceDatabase(store=storage.records)
        for i, spec in enumerate(specs):
            record = dict(spec, record_id=f"r{i}")
            mem_db.insert(record)
            dur_db.insert(record)
        storage.close()

        storage2 = DurableStorage(directory)
        reopened = ProvenanceDatabase(store=storage2.records)
        assert len(reopened) == len(mem_db)
        for subject in ("a", "b", "c"):
            assert reopened.by_subject(subject) == mem_db.by_subject(subject)
        for actor in ("x", "y"):
            assert reopened.by_actor(actor) == mem_db.by_actor(actor)
        assert reopened.by_time_range(0, 1001) == mem_db.by_time_range(0, 1001)
        storage2.close()


# ---------------------------------------------------------------------------
# Reorg truncation on disk
# ---------------------------------------------------------------------------
def _fork_suffix(chain: Blockchain, fork_height: int,
                 length: int) -> list:
    from repro.chain.block import Block

    prev = chain.block_at(fork_height)
    suffix = []
    for i in range(length):
        height = fork_height + 1 + i
        txs = [Transaction("forker", TxKind.DATA,
                           {"key": f"fork{height}", "value": height}).seal()]
        block = Block(height=height, prev_hash=prev.block_hash,
                      transactions=txs, timestamp=1000 + height,
                      proposer="forker")
        suffix.append(block)
        prev = block
    return suffix


class TestDurableReorg:
    @pytest.mark.parametrize("journal_depth,fork_depth", [
        (8, 3),    # within the journal window: O(delta) undo path
        (4, 6),    # beyond the window: replay fallback
    ])
    def test_reorg_truncates_on_disk(self, tmp_path, journal_depth,
                                     fork_depth):
        params = ChainParams(chain_id="reorg",
                             reorg_journal_depth=journal_depth)
        storage = DurableStorage(tmp_path)
        chain = Blockchain(params, store=storage.blocks,
                           snapshot_store=storage.state)
        grow_chain(chain, 10)
        fork_height = chain.height - fork_depth
        orphaned = [tx.tx_id
                    for block in chain.blocks[fork_height + 1:]
                    for tx in block.transactions]
        suffix = _fork_suffix(chain, fork_height, fork_depth + 1)
        chain.reorg_to(suffix, fork_height)
        head_after = chain.head.block_hash
        height_after = chain.height
        root_after = chain.state.state_root()
        for tx_id in orphaned:
            assert chain.store.tx_location(tx_id) is None
            assert chain.receipt_for(tx_id) is None
        chain.verify(deep=True)
        chain.close()

        # On-disk truth must agree with the in-memory head after reorg.
        storage2 = DurableStorage(tmp_path)
        assert storage2.recovered_blocks == 0
        reopened = Blockchain(params, store=storage2.blocks,
                              snapshot_store=storage2.state)
        assert reopened.height == height_after
        assert reopened.head.block_hash == head_after
        assert reopened.state.state_root() == root_after
        for tx_id in orphaned:
            assert reopened.store.tx_location(tx_id) is None
        reopened.verify(deep=True)
        storage2.close()

    def test_interval_checkpoint_during_reorg_suffix_survives(self,
                                                              tmp_path):
        """Review regression: a checkpoint taken while committing the
        *winning* suffix describes the new branch and must not be wiped
        by the orphaned-branch discard."""
        params = ChainParams(chain_id="ivl", reorg_journal_depth=8)
        storage = DurableStorage(tmp_path)
        chain = Blockchain(params, store=storage.blocks,
                           snapshot_store=storage.state,
                           snapshot_interval=4)
        grow_chain(chain, 6)  # interval checkpoint landed at height 4
        suffix = _fork_suffix(chain, 3, 5)  # suffix spans height 4..8
        chain.reorg_to(suffix, 3)
        # The height-4/8 image now describes the *new* branch.
        snap_height = storage.state.snapshot_height()
        assert snap_height in (4, 8)
        assert storage.state.snapshot_block_hash() == \
            chain.block_at(snap_height).block_hash
        chain.close()
        storage2 = DurableStorage(tmp_path)
        reopened = Blockchain(params, store=storage2.blocks,
                              snapshot_store=storage2.state)
        assert reopened.blocks_replayed_on_open == 0  # close() re-snapped
        assert reopened.head.block_hash == chain.head.block_hash
        reopened.verify(deep=True)
        storage2.close()

    def test_reorg_discards_snapshot_above_new_head(self, tmp_path):
        params = ChainParams(chain_id="snapcut", reorg_journal_depth=8)
        storage = DurableStorage(tmp_path)
        chain = Blockchain(params, store=storage.blocks,
                           snapshot_store=storage.state)
        grow_chain(chain, 6)
        chain.checkpoint()  # snapshot at height 6
        assert storage.state.snapshot_height() == 6
        suffix = _fork_suffix(chain, 2, 5)  # new head at height 7 > 6...
        chain.reorg_to(suffix, 2)
        # ...but the height-6 image describes the *orphaned* branch.
        assert storage.state.snapshot_height() is None
        chain.close()
        storage2 = DurableStorage(tmp_path)
        reopened = Blockchain(params, store=storage2.blocks,
                              snapshot_store=storage2.state)
        assert reopened.head.block_hash == chain.head.block_hash
        reopened.verify(deep=True)
        storage2.close()


# ---------------------------------------------------------------------------
# Whole-deployment restart (the acceptance scenario)
# ---------------------------------------------------------------------------
class TestShardedRestart:
    def _populate(self, sc: ShardedChain, n: int = 48) -> None:
        for i in range(n):
            sc.ingest_record({
                "record_id": f"r{i:04d}",
                "subject": f"asset/{i % 7}",
                "actor": f"actor-{i % 3}",
                "operation": "update" if i % 2 else "create",
                "timestamp": i,
            })
        sc.submit_many([data_tx(i, sender=f"u{i % 5}").seal()
                        for i in range(24)])
        sc.flush_anchors()
        sc.seal_until_drained()

    def test_restart_serves_identical_results(self, tmp_path):
        sc = ShardedChain(4, storage_dir=str(tmp_path), anchor_batch_size=8)
        self._populate(sc)
        q = ShardedQueryEngine(sc)
        before = q.history_verified("asset/3")
        assert before.verified and before.records
        rid = before.records[0]["record_id"]
        proof_before = q.federated_proof(rid)
        rounds_before = sc.rounds_sealed
        heights_before = [s.chain.height for s in sc.shards]
        sc.verify_all(deep=True)
        sc.close()

        sc2 = ShardedChain(4, storage_dir=str(tmp_path), anchor_batch_size=8)
        # No genesis replay: every shard and the beacon restored from
        # its snapshot at the head.
        assert all(s.chain.blocks_replayed_on_open == 0 for s in sc2.shards)
        assert sc2.beacon.chain.blocks_replayed_on_open == 0
        assert [s.chain.height for s in sc2.shards] == heights_before
        assert sc2.rounds_sealed == rounds_before
        q2 = ShardedQueryEngine(sc2)
        after = q2.history_verified("asset/3")
        assert after.verified
        assert [r["record_id"] for r in after.records] == \
            [r["record_id"] for r in before.records]
        # Federated proof still verifies against the restored beacon.
        proof_after = q2.federated_proof(rid)
        header = sc2.beacon.chain.block_at(proof_after.beacon_height).header
        record = sc2.shard_for_subject("asset/3").database.get(rid)
        assert proof_after.verify(record, header)
        assert proof_after.beacon_height == proof_before.beacon_height
        sc2.verify_all(deep=True)
        sc2.close()

    def test_restart_keeps_working(self, tmp_path):
        sc = ShardedChain(2, storage_dir=str(tmp_path), anchor_batch_size=4)
        self._populate(sc, n=16)
        committed = sc.total_txs_committed
        sc.close()

        sc2 = ShardedChain(2, storage_dir=str(tmp_path), anchor_batch_size=4)
        assert sc2.total_txs_committed == committed
        sc2.ingest_record({"record_id": "post-restart",
                           "subject": "asset/0", "actor": "a",
                           "operation": "verify", "timestamp": 999})
        sc2.flush_anchors()
        sc2.seal_round()
        q = ShardedQueryEngine(sc2)
        answer = q.history_verified("asset/0")
        assert answer.verified
        assert any(r["record_id"] == "post-restart" for r in answer.records)
        sc2.verify_all(deep=True)
        sc2.close()

    def test_locks_presumed_abort_on_restart(self, tmp_path):
        """A lock checkpointed mid-2PC is dropped on restart (presumed
        abort): its coordinator died with the process, so restoring it
        would wedge the subject forever."""
        sc = ShardedChain(2, storage_dir=str(tmp_path))
        shard_id = sc.router.shard_for_subject("asset/locked")
        assert sc.acquire_lock(shard_id, "asset/locked", "xid-1")
        sc.close()  # facade checkpoint happens while the lock is held

        sc2 = ShardedChain(2, storage_dir=str(tmp_path))
        assert sc2.lock_owner(shard_id, "asset/locked") is None
        # The subject is writable again.
        sc2.ingest_record({"record_id": "unblocked",
                           "subject": "asset/locked", "actor": "a",
                           "operation": "create", "timestamp": 1})
        sc2.close()

    def test_shard_count_mismatch_rejected(self, tmp_path):
        sc = ShardedChain(3, storage_dir=str(tmp_path))
        sc.close()
        from repro.errors import ShardError

        with pytest.raises(ShardError):
            ShardedChain(5, storage_dir=str(tmp_path))

    def test_periodic_checkpoint_bounds_crash_loss(self, tmp_path):
        """checkpoint_every_rounds makes an *unclean* shutdown resume
        from the last checkpoint instead of genesis."""
        sc = ShardedChain(2, storage_dir=str(tmp_path),
                          checkpoint_every_rounds=1, anchor_batch_size=4)
        self._populate(sc, n=16)
        heights = [s.chain.height for s in sc.shards]
        # Simulate an unclean shutdown: no close(), just drop the object.
        for shard in sc.shards:
            shard.storage.close()
        sc._beacon_storage.close()

        sc2 = ShardedChain(2, storage_dir=str(tmp_path), anchor_batch_size=4)
        assert [s.chain.height for s in sc2.shards] == heights
        # Replay is bounded by blocks sealed after the last checkpoint.
        sc2.verify_all(deep=True)
        sc2.close()


# ---------------------------------------------------------------------------
# Durable database details
# ---------------------------------------------------------------------------
class TestDurableDatabase:
    def test_annotating_non_last_record_survives_reopen(self, tmp_path):
        """Review regression: ``replace()`` repoints an *old* position at
        the newest log frame, so recovery must truncate by log address,
        not by max position — otherwise the annotation frame is cut."""
        from repro.storage.provdb import ProvenanceDatabase

        storage = DurableStorage(tmp_path)
        db = ProvenanceDatabase(store=storage.records)
        for i in range(3):
            db.insert({"record_id": f"r{i}", "subject": "s",
                       "timestamp": i})
        db.annotate("r0", anchor_id="anchor-000")  # position 0, not last
        storage.close()

        storage2 = DurableStorage(tmp_path)
        assert storage2.recovered_records == 0
        db2 = ProvenanceDatabase(store=storage2.records)
        assert len(db2) == 3
        assert db2.get("r0")["anchor_id"] == "anchor-000"
        assert db2.get("r2")["timestamp"] == 2
        storage2.close()

    def test_crash_after_annotation_keeps_it(self, tmp_path):
        from repro.storage.provdb import ProvenanceDatabase

        storage = DurableStorage(tmp_path)
        db = ProvenanceDatabase(store=storage.records)
        for i in range(3):
            db.insert({"record_id": f"r{i}", "subject": "s",
                       "timestamp": i})
        db.annotate("r1", anchor_id="anchor-001")
        storage.record_log.fail_after_bytes = 5
        with pytest.raises(CrashPoint):
            db.insert({"record_id": "doomed", "subject": "s",
                       "timestamp": 9})
        storage.close()

        storage2 = DurableStorage(tmp_path)
        db2 = ProvenanceDatabase(store=storage2.records)
        assert len(db2) == 3
        assert db2.get("r1")["anchor_id"] == "anchor-001"
        assert not db2.contains("doomed")
        storage2.close()

    def test_annotation_survives_reopen(self, tmp_path):
        from repro.storage.provdb import ProvenanceDatabase

        storage = DurableStorage(tmp_path)
        db = ProvenanceDatabase(store=storage.records)
        db.insert({"record_id": "r1", "subject": "s", "timestamp": 1})
        db.annotate("r1", anchor_id="anchor-007")
        assert db.get("r1")["anchor_id"] == "anchor-007"
        storage.close()

        storage2 = DurableStorage(tmp_path)
        db2 = ProvenanceDatabase(store=storage2.records)
        assert db2.get("r1")["anchor_id"] == "anchor-007"
        # sqlite-level record_id → position index survives too.
        assert storage2.records.location_of_id("r1") == 0
        storage2.close()

    def test_memory_store_blocks_setter_guard(self, tmp_path):
        storage = DurableStorage(tmp_path)
        chain = Blockchain(ChainParams(chain_id="guard"),
                           store=storage.blocks)
        with pytest.raises(StorageError):
            chain.blocks = []
        storage.close()
        memory = Blockchain(ChainParams(chain_id="guard"))
        assert isinstance(memory.store, MemoryBlockStore)
        memory.blocks = list(memory.blocks)  # allowed on memory backend
