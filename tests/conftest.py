"""Shared fixtures."""

from __future__ import annotations

import pytest

from repro.chain import Blockchain, ChainParams, Transaction, TxKind
from repro.clock import SimClock
from repro.provenance.anchor import AnchorService
from repro.provenance.capture import CaptureSink
from repro.storage.provdb import ProvenanceDatabase


@pytest.fixture
def clock() -> SimClock:
    return SimClock()


@pytest.fixture
def chain() -> Blockchain:
    return Blockchain(ChainParams(chain_id="test-chain"))


@pytest.fixture
def funded_chain() -> Blockchain:
    chain = Blockchain(ChainParams(chain_id="funded"))
    for account in ("alice", "bob", "carol"):
        chain.state.credit(account, 1_000)
    return chain


@pytest.fixture
def database() -> ProvenanceDatabase:
    return ProvenanceDatabase()


@pytest.fixture
def sink(database) -> CaptureSink:
    return CaptureSink(database)


@pytest.fixture
def anchored_sink(chain, database):
    service = AnchorService(chain, batch_size=4)
    return CaptureSink(database, service), service


def data_tx(i: int = 0, sender: str = "alice") -> Transaction:
    """A small helper used across chain tests."""
    return Transaction(sender=sender, kind=TxKind.DATA,
                       payload={"key": f"k{i}", "value": i})


@pytest.fixture
def make_tx():
    return data_tx
