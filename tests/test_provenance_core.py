"""Provenance model, graph, and record schemas."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    CycleDetected,
    ProvenanceError,
    RecordValidationError,
    UnknownEntity,
)
from repro.provenance import ProvenanceGraph, RelationKind, make_record
from repro.provenance.model import NodeKind, check_relation_signature
from repro.provenance.records import (
    DOMAIN_SCHEMAS,
    record_digest,
    validate_record,
)


@pytest.fixture
def graph():
    g = ProvenanceGraph()
    g.add_agent("alice")
    g.add_entity("raw")
    g.add_activity("clean-run")
    g.add_entity("clean")
    g.relate("clean-run", RelationKind.USED, "raw")
    g.relate("clean", RelationKind.WAS_GENERATED_BY, "clean-run")
    g.relate("clean", RelationKind.WAS_DERIVED_FROM, "raw")
    g.relate("clean", RelationKind.WAS_ATTRIBUTED_TO, "alice")
    return g


class TestModelTyping:
    def test_signature_enforced(self):
        with pytest.raises(ProvenanceError):
            check_relation_signature(
                RelationKind.USED, NodeKind.ENTITY, NodeKind.ACTIVITY
            )

    def test_wrong_edge_types_rejected(self, graph):
        with pytest.raises(ProvenanceError):
            graph.relate("alice", RelationKind.USED, "raw")

    def test_unknown_node_rejected(self, graph):
        with pytest.raises(UnknownEntity):
            graph.relate("ghost", RelationKind.USED, "raw")

    def test_node_immutability(self, graph):
        with pytest.raises(ProvenanceError):
            graph.add_entity("raw", note="different content now")

    def test_idempotent_identical_add(self, graph):
        graph.add_entity("raw")     # same content — fine
        assert graph.node_count == 4


class TestAcyclicity:
    def test_direct_cycle_blocked(self, graph):
        with pytest.raises(CycleDetected):
            graph.relate("raw", RelationKind.WAS_DERIVED_FROM, "clean")

    def test_self_loop_blocked(self, graph):
        with pytest.raises(CycleDetected):
            graph.relate("raw", RelationKind.WAS_DERIVED_FROM, "raw")

    def test_long_cycle_blocked(self):
        g = ProvenanceGraph()
        for name in "abcd":
            g.add_entity(name)
        g.relate("b", RelationKind.WAS_DERIVED_FROM, "a")
        g.relate("c", RelationKind.WAS_DERIVED_FROM, "b")
        g.relate("d", RelationKind.WAS_DERIVED_FROM, "c")
        with pytest.raises(CycleDetected):
            g.relate("a", RelationKind.WAS_DERIVED_FROM, "d")


class TestTraversals:
    def test_lineage(self, graph):
        assert set(graph.lineage("clean")) == {"clean-run", "raw"}

    def test_impact(self, graph):
        assert set(graph.impact("raw")) == {"clean-run", "clean"}

    def test_lineage_excludes_agents(self, graph):
        assert "alice" not in graph.lineage("clean")

    def test_derivation_chain(self):
        g = ProvenanceGraph()
        for name in ("v1", "v2", "v3"):
            g.add_entity(name)
        g.relate("v2", RelationKind.WAS_DERIVED_FROM, "v1")
        g.relate("v3", RelationKind.WAS_DERIVED_FROM, "v2")
        assert g.derivation_chain("v3") == ["v3", "v2", "v1"]

    def test_derivation_chain_needs_entity(self, graph):
        with pytest.raises(ProvenanceError):
            graph.derivation_chain("clean-run")

    def test_generating_activity(self, graph):
        assert graph.generating_activity("clean") == "clean-run"
        assert graph.generating_activity("raw") is None

    def test_topological_order_respects_dependencies(self, graph):
        order = graph.topological_order()
        assert order.index("raw") < order.index("clean-run")
        assert order.index("clean-run") < order.index("clean")

    def test_subgraph_induced(self, graph):
        sub = graph.subgraph(["raw", "clean"])
        assert sub.node_count == 2
        assert sub.edge_count == 1    # only the derivation edge survives

    def test_lineage_subgraph(self, graph):
        sub = graph.lineage_subgraph("clean")
        assert set(n.node_id for n in sub.nodes()) == \
            {"clean", "clean-run", "raw"}

    def test_digest_changes_with_content(self, graph):
        d1 = graph.digest()
        graph.add_entity("new-thing")
        assert graph.digest() != d1


class TestGraphProperties:
    @settings(max_examples=25)
    @given(st.lists(st.tuples(st.integers(0, 14), st.integers(0, 14)),
                    max_size=40))
    def test_never_cyclic(self, edges):
        g = ProvenanceGraph()
        for i in range(15):
            g.add_entity(f"e{i}")
        for src, dst in edges:
            if src == dst:
                continue
            try:
                g.relate(f"e{src}", RelationKind.WAS_DERIVED_FROM, f"e{dst}")
            except CycleDetected:
                continue
        # Topological order exists iff acyclic — must never raise.
        order = g.topological_order()
        assert len(order) == 15

    @settings(max_examples=25)
    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)),
                    max_size=25))
    def test_lineage_impact_duality(self, edges):
        g = ProvenanceGraph()
        for i in range(10):
            g.add_entity(f"e{i}")
        for src, dst in edges:
            if src == dst:
                continue
            try:
                g.relate(f"e{src}", RelationKind.WAS_DERIVED_FROM, f"e{dst}")
            except CycleDetected:
                continue
        for i in range(10):
            node = f"e{i}"
            for ancestor in g.lineage(node):
                assert node in g.impact(ancestor)


class TestRecordSchemas:
    def test_all_five_domains_registered(self):
        assert set(DOMAIN_SCHEMAS) == {
            "supply_chain", "digital_forensics", "scientific",
            "healthcare", "machine_learning",
        }

    def test_valid_record_builds(self):
        record = make_record(
            "digital_forensics", "r1", subject="ev", actor="det",
            operation="collect", timestamp=1, case_number="C1",
            stage="collection", case_start=0, file_types=["image"],
        )
        validate_record(record)

    def test_missing_required_field(self):
        with pytest.raises(RecordValidationError):
            make_record("scientific", "r1", subject="s", actor="a",
                        operation="o", timestamp=1, task_id="t")

    def test_bad_field_type(self):
        with pytest.raises(RecordValidationError):
            make_record(
                "scientific", "r1", subject="s", actor="a", operation="o",
                timestamp=1, task_id="t", workflow_id="w",
                execution_time="not-an-int", user_id="u",
                input_data=[], output_data=["x"],
            )

    def test_unknown_field_rejected(self):
        with pytest.raises(RecordValidationError):
            make_record(
                "healthcare", "r1", subject="s", actor="a", operation="o",
                timestamp=1, patient_pseudonym="p", ehr_id="e",
                provider_id="pr", record_types=["t"], surprise_field=1,
            )

    def test_unknown_domain_rejected(self):
        with pytest.raises(RecordValidationError):
            make_record("astrology", "r1", subject="s", actor="a",
                        operation="o", timestamp=1)

    def test_ml_asset_type_enum(self):
        with pytest.raises(RecordValidationError):
            make_record(
                "machine_learning", "r1", subject="s", actor="a",
                operation="o", timestamp=1, asset_id="x",
                asset_type="spreadsheet", parent_assets=[],
                contributor_id="c",
            )

    def test_digest_excludes_anchor_annotation(self):
        record = make_record(
            "scientific", "r1", subject="s", actor="a", operation="o",
            timestamp=1, task_id="t", workflow_id="w", execution_time=1,
            user_id="u", input_data=[], output_data=["x"],
        )
        before = record_digest(record)
        annotated = dict(record)
        annotated["anchor"] = "anchor-1"
        assert record_digest(annotated) == before

    def test_digest_sensitive_to_content(self):
        base = dict(record_id="r", domain="x", subject="s", actor="a",
                    operation="o", timestamp=1)
        changed = dict(base, operation="p")
        assert record_digest(base) != record_digest(changed)
