"""Storage tiering: compaction swap, cold-block archival, compression.

Crash discipline under test (ISSUE 6): the generation swap *is* one
sqlite transaction, so a kill at any byte of the rewrite — or right
after the commit, before cleanup — reconciles to exactly one committed
generation on reopen; archival is CAS-put-then-index-flip, so a crash
between them leaves only orphan blobs that dedup reclaims.  A tiered
(pruned) deployment must still reopen with zero replay, serve verified
queries for archived heights, and serve snapshot-sync offers.
"""

from __future__ import annotations

import os
import shutil

import pytest

from repro.chain import Blockchain, ChainParams, Transaction, TxKind
from repro.network import ChainNode, LatencyModel, SimNet
from repro.persist import DurableStorage
from repro.persist.segment import CrashPoint, SegmentCodec
from repro.sharding import ShardedChain
from repro.storage.cas import FileCAS
from repro.sync import SnapshotServer


def grow(chain: Blockchain, blocks: int, txs_per_block: int = 3,
         tag: str = "") -> None:
    for _ in range(blocks):
        height = chain.height + 1
        txs = [
            Transaction("alice", TxKind.DATA,
                        {"key": f"{tag}b{height}t{j}",
                         "value": f"payload-{height}-{j}" * 4}).seal()
            for j in range(txs_per_block)
        ]
        chain.append_block(chain.build_block(txs, timestamp=height))


def fork_suffix(chain: Blockchain, fork_height: int, length: int) -> list:
    from repro.chain.block import Block

    prev = chain.block_at(fork_height)
    suffix = []
    for i in range(length):
        height = fork_height + 1 + i
        txs = [Transaction("forker", TxKind.DATA,
                           {"key": f"fork{height}",
                            "value": height}).seal()]
        block = Block(height=height, prev_hash=prev.block_hash,
                      transactions=txs, timestamp=1000 + height,
                      proposer="forker")
        suffix.append(block)
        prev = block
    return suffix


def build_store(directory: str, codec: str = "raw",
                with_reorg: bool = True) -> dict:
    """A durable chain whose log carries dead weight: a reorg's orphaned
    frames plus the pre-reorg suffix rewrites — what compaction exists
    to reclaim.  Returns the commitments reopen must reproduce."""
    params = ChainParams(chain_id="tier", reorg_journal_depth=4)
    storage = DurableStorage(directory, codec=codec)
    chain = Blockchain(params, store=storage.blocks,
                       snapshot_store=storage.state)
    grow(chain, 18)
    if with_reorg:
        suffix = fork_suffix(chain, chain.height - 3, 5)
        chain.reorg_to(suffix, chain.height - 3)
    chain.checkpoint()
    out = {
        "height": chain.height,
        "head": chain.head.block_hash,
        "root": chain.state.state_root(),
    }
    chain.close()
    return out


def reopen_and_verify(directory: str, expect: dict,
                      codec: str = "raw") -> None:
    storage = DurableStorage(directory, codec=codec)
    chain = Blockchain(ChainParams(chain_id="tier",
                                   reorg_journal_depth=4),
                       store=storage.blocks,
                       snapshot_store=storage.state)
    assert chain.blocks_replayed_on_open == 0
    assert chain.height == expect["height"]
    assert chain.head.block_hash == expect["head"]
    assert chain.state.state_root() == expect["root"]
    for height in range(1, chain.height + 1):
        assert chain.block_at(height).height == height
    chain.verify(deep=True)
    chain.close()


class TestCompactionCrash:
    @pytest.fixture(scope="class")
    def base(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("compact-base")
        expect = build_store(str(directory / "store"))
        return str(directory / "store"), expect

    @pytest.mark.parametrize("offset", [1, 2, 7, 33, 200, 1_500, 9_000])
    def test_kill_at_any_byte_of_rewrite_reconciles(self, base, tmp_path,
                                                    offset):
        source, expect = base
        work = str(tmp_path / "store")
        shutil.copytree(source, work)
        storage = DurableStorage(work)
        with pytest.raises(CrashPoint):
            storage.compact(which="blocks", fail_after_bytes=offset)
        storage.close()
        # The index never left the old generation: reopen sweeps the
        # half-written rewrite and everything reads back.
        reopen_and_verify(work, expect)
        # And the interrupted compaction can simply run again.
        storage = DurableStorage(work)
        stats = storage.compact(which="blocks")
        assert stats["blocks"]["bytes_after"] <= \
            stats["blocks"]["bytes_before"]
        storage.close()
        reopen_and_verify(work, expect)

    def test_crash_after_commit_before_cleanup(self, base, tmp_path):
        source, expect = base
        work = str(tmp_path / "store")
        shutil.copytree(source, work)
        storage = DurableStorage(work)
        with pytest.raises(CrashPoint):
            storage.compact(which="blocks", crash_before_cleanup=True)
        storage.close()
        # The swap transaction committed: the new generation is the
        # truth, the orphaned old directory is swept on reopen.
        assert os.path.isdir(os.path.join(work, "blocks-log"))
        reopen_and_verify(work, expect)
        assert not os.path.isdir(os.path.join(work, "blocks-log"))
        assert os.path.isdir(os.path.join(work, "blocks-log.g1"))

    def test_compaction_reclaims_archived_frames(self, base, tmp_path):
        # Reorg truncation is physical (no dead frames left behind);
        # the dead weight compaction reclaims comes from archival
        # repointing cold rows at the CAS.
        source, expect = base
        work = str(tmp_path / "store")
        shutil.copytree(source, work)
        storage = DurableStorage(work)
        assert storage.archive_blocks(keep_tail=6)["archived"] > 0
        stats = storage.compact(which="blocks")["blocks"]
        assert stats["bytes_after"] < stats["bytes_before"]
        storage.close()
        reopen_and_verify(work, expect)


class TestArchivalCrash:
    def test_orphan_cas_blobs_from_crashed_archival_dedup(self, tmp_path):
        """A crash between the CAS puts and the index flip leaves orphan
        blobs; the retry re-puts the same content (same CID) and the
        index transaction lands once."""
        expect = build_store(str(tmp_path / "store"), with_reorg=False)
        storage = DurableStorage(str(tmp_path / "store"))
        cas = FileCAS(os.path.join(str(tmp_path / "store"), "archive"))
        # Simulate the pre-crash half: put a few frames, never flip.
        for height in (1, 2, 3):
            loc = storage._conn.execute(
                "SELECT segment, offset FROM blocks WHERE height = ?",
                (height,)).fetchone()
            cas.put(storage.block_log.read(loc[0], loc[1]))
        archived = storage.archive_blocks(keep_tail=6, cas=cas)
        # Heights 0 (genesis) through the boundary, inclusive.
        assert archived["archived"] == expect["height"] - 6 + 1
        assert archived["boundary"] == expect["height"] - 6
        # Archived heights now serve from the CAS, tail from the log.
        for height in range(1, expect["height"] + 1):
            assert storage.blocks.block_at(height).height == height
        storage.compact(which="blocks")
        storage.close()
        reopen_and_verify(str(tmp_path / "store"), expect)

    def test_tier_is_idempotent(self, tmp_path):
        expect = build_store(str(tmp_path / "store"))
        storage = DurableStorage(str(tmp_path / "store"))
        first = storage.tier(keep_tail=6)
        again = storage.tier(keep_tail=6)
        assert first["archived"]["archived"] > 0
        assert again["archived"]["archived"] == 0
        assert again["archived"]["boundary"] == \
            first["archived"]["boundary"]
        storage.close()
        reopen_and_verify(str(tmp_path / "store"), expect)


class TestPrunedDeployment:
    def test_pruned_replica_reopens_queries_and_serves_sync(
            self, tmp_path):
        store_dir = str(tmp_path / "sharded")
        sc = ShardedChain(2, storage_dir=store_dir, reorg_journal_depth=4)
        n = 0
        for r in range(12):
            for _ in range(6):
                sc.submit(Transaction(
                    sender=f"acct-{n % 5}", kind=TxKind.DATA,
                    payload={"key": f"k{n}", "value": f"v{n}" * 8},
                    nonce=n, timestamp=100 + n).seal())
                n += 1
            sc.seal_round(timestamp=10_000 + r)
        sc.checkpoint()
        stats = sc.tier_storage(keep_tail=4)
        assert all(st["archived"]["archived"] > 0
                   for st in stats.values())
        heights = [sc.shard(s).chain.height for s in range(2)]
        roots = [sc.shard(s).chain.state.state_root() for s in range(2)]
        head = sc.shard(0).chain.head.block_hash
        sc.close()

        pruned = ShardedChain(2, storage_dir=store_dir,
                              reorg_journal_depth=4)
        for s in range(2):
            chain = pruned.shard(s).chain
            assert chain.blocks_replayed_on_open == 0
            assert chain.height == heights[s]
            assert chain.state.state_root() == roots[s]
            # Archived heights still serve — verified — via the CAS.
            for height in range(1, chain.height + 1):
                assert chain.block_at(height).height == height
            chain.verify()

        # The pruned source still serves snapshot-sync offers (a
        # replica starts from the state image) and raw frames for the
        # hot tail; cold history is CAS-only, refused over sync.
        net = SimNet(LatencyModel(base=1, jitter=0), seed=9)
        gateway = ChainNode("gateway", net)
        server = SnapshotServer(pruned)
        gateway.serve_sync(server)
        offer = server.offer(0)
        assert offer["manifest"]["height"] == heights[0]
        assert offer["manifest"]["block_hash"] == head
        boundary = pruned.shard(0).storage.blocks.archived_boundary()
        assert boundary is not None
        tail = server.tail(0, boundary + 1, 64, heights[0])
        assert len(tail["items"]) == heights[0] - boundary
        from repro.errors import StorageError

        with pytest.raises(StorageError, match="archived"):
            server.tail(0, 1, 64, heights[0])
        pruned.close()


class TestCompressedCodec:
    def test_zlib_round_trip_and_zero_replay_reopen(self, tmp_path):
        expect = build_store(str(tmp_path / "store"), codec="zlib")
        reopen_and_verify(str(tmp_path / "store"), expect, codec="zlib")
        # Per-frame flags, not store-wide state: a reopen with the raw
        # write codec still reads every zlib frame.
        reopen_and_verify(str(tmp_path / "store"), expect, codec="raw")

    def test_zlib_shrinks_compressible_frames(self, tmp_path):
        raw = build_store(str(tmp_path / "raw"), codec="raw",
                          with_reorg=False)
        zlib_ = build_store(str(tmp_path / "zlib"), codec="zlib",
                            with_reorg=False)
        assert raw["head"] == zlib_["head"]  # codec is a frame detail
        def log_bytes(directory: str) -> int:
            log_dir = os.path.join(directory, "blocks-log")
            return sum(
                os.path.getsize(os.path.join(log_dir, name))
                for name in os.listdir(log_dir)
            )

        # Compare the frame logs themselves; the sqlite index (same
        # row count either way) would drown the signal at this size.
        assert log_bytes(str(tmp_path / "zlib")) < \
            log_bytes(str(tmp_path / "raw"))

    def test_crash_recovery_under_compression(self, tmp_path):
        storage = DurableStorage(str(tmp_path / "store"), codec="zlib")
        chain = Blockchain(ChainParams(chain_id="tier",
                                       reorg_journal_depth=4),
                           store=storage.blocks,
                           snapshot_store=storage.state)
        grow(chain, 6)
        head = chain.head.block_hash
        storage.block_log.fail_after_bytes = 5
        with pytest.raises(CrashPoint):
            grow(chain, 1)
        storage.close()

        storage2 = DurableStorage(str(tmp_path / "store"), codec="zlib")
        reopened = Blockchain(ChainParams(chain_id="tier",
                                          reorg_journal_depth=4),
                              store=storage2.blocks,
                              snapshot_store=storage2.state)
        assert reopened.height == 6
        assert reopened.head.block_hash == head
        reopened.verify(deep=True)
        storage2.close()

    def test_compaction_under_compression(self, tmp_path):
        expect = build_store(str(tmp_path / "store"), codec="zlib")
        storage = DurableStorage(str(tmp_path / "store"), codec="zlib")
        assert storage.archive_blocks(keep_tail=6)["archived"] > 0
        stats = storage.compact(which="blocks")["blocks"]
        assert stats["bytes_after"] < stats["bytes_before"]
        storage.close()
        reopen_and_verify(str(tmp_path / "store"), expect, codec="zlib")

    def test_codec_rejects_unknown_name(self, tmp_path):
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            SegmentCodec("lz77")
