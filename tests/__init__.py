"""Test package marker.

The test modules import shared helpers with ``from .conftest import …``,
which requires ``tests`` to be a real package so pytest's rootdir-based
import mode can resolve the relative import.
"""
