"""RQ3 reference systems: SynergyChain, Vassago, ForensiCross."""

import pytest

from repro.errors import AccessDenied, BridgeError, QueryError
from repro.systems import ForensiCross, SynergyChain, TrustedQueryEnclave, Vassago


class TestSynergyChain:
    @pytest.fixture
    def system(self):
        system = SynergyChain(["org-1", "org-2", "org-3"])
        system.rbac.assign("guest-u", "guest")
        system.rbac.assign("res-u", "researcher")
        system.rbac.assign("adm-u", "admin")
        for org in ("org-1", "org-2", "org-3"):
            for i in range(10):
                sensitivity = ("shared", "research", "restricted")[i % 3]
                system.submit(org, {
                    "record_id": f"{org}-r{i}",
                    "domain": "generic",
                    "subject": f"subj-{i % 5}",
                    "actor": "writer",
                    "operation": "op",
                    "timestamp": i,
                }, sensitivity=sensitivity)
        return system

    def test_aggregated_equals_sequential(self, system):
        agg = system.query_aggregated("adm-u", "subj-2")
        seq = system.query_sequential("adm-u", "subj-2")
        assert sorted(r["record_id"].split(":")[-1] for r in agg) == \
            sorted(r["record_id"] for r in seq)

    def test_hierarchical_visibility(self, system):
        guest = system.query_aggregated("guest-u", "subj-0")
        researcher = system.query_aggregated("res-u", "subj-0")
        admin = system.query_aggregated("adm-u", "subj-0")
        assert len(guest) <= len(researcher) <= len(admin)
        assert all(r["sensitivity"] == "shared" for r in guest)

    def test_unknown_user_denied(self, system):
        with pytest.raises(AccessDenied):
            system.query_aggregated("stranger", "subj-0")

    def test_sequential_touches_every_member(self, system):
        before = system.sequential_scans
        system.query_sequential("adm-u", "subj-1")
        assert system.sequential_scans - before == 3

    def test_writes_isolated_per_org_chain(self, system):
        heights = system.member_heights()
        assert all(h == 0 for h in heights.values())   # not yet flushed
        system.finalize()
        heights = system.member_heights()
        assert all(h >= 1 for h in heights.values())


class TestVassago:
    @pytest.fixture
    def system(self):
        system = Vassago(["org-a", "org-b", "org-c"])
        self.t1 = system.commit_tx("org-a", "u1", {"op": "create"})
        self.t2 = system.commit_tx("org-b", "u2", {"op": "xform"},
                                   depends_on=[self.t1])
        self.t3 = system.commit_tx("org-a", "u1", {"op": "enrich"},
                                   depends_on=[self.t1])
        self.t4 = system.commit_tx("org-c", "u3", {"op": "merge"},
                                   depends_on=[self.t2, self.t3])
        return system

    def test_dependency_guided_walk_complete(self, system):
        hops = system.query_provenance(self.t4)
        assert {h.tx_id for h in hops} == {self.t1, self.t2, self.t3,
                                           self.t4}
        assert all(h.proof_valid for h in hops)

    def test_guided_beats_naive_cost(self, system):
        system.query_provenance(self.t4)
        guided = system.last_query_cost.txs_examined
        system.query_provenance_naive(self.t4)
        naive = system.last_query_cost.txs_examined
        assert guided < naive

    def test_guided_touches_only_relevant_chains(self, system):
        t5 = system.commit_tx("org-b", "u2", {"op": "solo"})
        system.query_provenance(t5)
        assert system.last_query_cost.chains_touched == {"org-b"}

    def test_naive_finds_same_set(self, system):
        guided = {h.tx_id for h in system.query_provenance(self.t4)}
        naive = {h.tx_id for h in system.query_provenance_naive(self.t4)}
        assert guided == naive

    def test_unknown_tx_rejected(self, system):
        with pytest.raises(QueryError):
            system.query_provenance("nonexistent")

    def test_unknown_parent_rejected(self, system):
        from repro.errors import CrossChainError

        with pytest.raises(CrossChainError):
            system.commit_tx("org-a", "u", {}, depends_on=["ghost"])

    def test_dependency_chain_records_everything(self, system):
        # One dependency-chain block per committed tx (+ genesis).
        assert system.dependency_chain.height == 4

    def test_tee_attestation_roundtrip(self, system):
        enclave = TrustedQueryEnclave(system)
        hops, attestation = enclave.attested_query(self.t4)
        assert enclave.verify_attestation(hops, attestation)

    def test_tee_attestation_binds_result(self, system):
        enclave = TrustedQueryEnclave(system)
        hops, attestation = enclave.attested_query(self.t4)
        import dataclasses

        tampered = [dataclasses.replace(hops[0], proof_valid=False),
                    *hops[1:]]
        assert not enclave.verify_attestation(tampered, attestation)


class TestForensiCross:
    @pytest.fixture
    def system(self):
        system = ForensiCross(["us", "eu"])
        system.open_joint_case("JC", {"us": "smith", "eu": "mueller"})
        return system

    def test_stage_sync_advances_everywhere(self, system):
        stage = system.sync_stage("JC", {"us": "smith", "eu": "mueller"})
        assert stage == "preservation"
        for org in ("us", "eu"):
            assert system.orgs[org].cases.cases["JC"].stage.value == \
                "preservation"

    def test_unanimity_blocks_on_offline_org(self, system):
        system.block_org("eu")
        with pytest.raises(BridgeError):
            system.sync_stage("JC", {"us": "smith", "eu": "mueller"})
        # Neither org advanced.
        for org in ("us", "eu"):
            assert system.orgs[org].cases.cases["JC"].stage.value == \
                "identification"

    def test_evidence_share_verified_on_receipt(self, system):
        system.sync_stage("JC", {"us": "smith", "eu": "mueller"})
        system.orgs["us"].collect_evidence("JC", "ev", "smith",
                                           b"payload", "image")
        assert system.share_evidence("JC", "us", "eu", "ev", "smith")
        delivered = system.bridge.delivered_messages(
            system.orgs["eu"].chain.chain_id, kind="evidence_share"
        )
        assert len(delivered) == 1
        assert delivered[0]["body"]["evidence_id"] == "ev"

    def test_cross_chain_extraction_verifies_both(self, system):
        system.sync_stage("JC", {"us": "smith", "eu": "mueller"})
        system.orgs["us"].collect_evidence("JC", "ev", "smith", b"x",
                                           "image")
        bundle = system.extract_cross_chain(
            "JC", {"us": "smith", "eu": "mueller"}
        )
        assert bundle["all_verified"]
        assert set(bundle["organizations"]) == {"us", "eu"}

    def test_unblock_restores_progress(self, system):
        system.block_org("eu")
        with pytest.raises(BridgeError):
            system.sync_stage("JC", {"us": "smith", "eu": "mueller"})
        system.unblock_org("eu")
        assert system.sync_stage("JC", {"us": "smith", "eu": "mueller"}) \
            == "preservation"

    def test_needs_two_orgs(self):
        with pytest.raises(ValueError):
            ForensiCross(["solo"])
