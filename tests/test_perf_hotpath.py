"""Hot-path caching invariants: incremental Merkle trees, the
transaction seal discipline, and the incremental state root.

These tests pin the contracts the perf layer relies on:

* incremental append/extend produce *exactly* the tree a from-scratch
  build produces, across every size 0–65 (odd-promotion edge cases);
* sealed transactions are immutable and their caches can never go stale;
* unsealed transactions invalidate their hash caches on assignment, so
  tamper detection is unchanged;
* the incremental state root is content-determined and rollback-safe.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.chain import Block, Blockchain, ChainParams, Transaction, TxKind
from repro.chain.state import StateStore
from repro.crypto.merkle import MerkleTree, verify_proof
from repro.errors import SealedMutation


def fresh_tree(leaves):
    """From-scratch reference build (the seed's construction path)."""
    return MerkleTree(leaves)


class TestIncrementalMerkle:
    def test_incremental_equals_rebuild_all_sizes(self):
        """Sizes 0–65 cover every odd-promotion shape up to depth 7."""
        incremental = MerkleTree()
        for n in range(66):
            reference = fresh_tree(list(range(n)))
            assert incremental.root == reference.root, f"size {n}"
            assert incremental._levels == reference._levels, f"size {n}"
            incremental.append(n)

    def test_extend_equals_rebuild(self):
        tree = MerkleTree(["a", "b", "c"])
        tree.extend(["d", "e", "f", "g"])
        assert tree.root == fresh_tree(["a", "b", "c", "d", "e", "f", "g"]).root

    def test_incremental_proofs_verify(self):
        tree = MerkleTree()
        values = [f"v{i}" for i in range(33)]
        for v in values:
            tree.append(v)
        for i, v in enumerate(values):
            assert verify_proof(tree.root, v, tree.prove(i))

    @settings(max_examples=40)
    @given(st.lists(st.binary(max_size=8), max_size=48))
    def test_incremental_equals_rebuild_property(self, values):
        incremental = MerkleTree()
        for v in values:
            incremental.append(v)
        assert incremental.root == fresh_tree(values).root

    def test_append_after_bulk_construction(self):
        tree = MerkleTree(list("abcde"))
        tree.append("f")
        assert tree.root == fresh_tree(list("abcdef")).root

    def test_prefix_root_still_consistent_after_incremental_growth(self):
        tree = MerkleTree(["a", "b", "c"])
        old_root = tree.root
        for v in ["d", "e", "f"]:
            tree.append(v)
        assert tree.is_append_of(old_root, 3)


class TestSealDiscipline:
    def _tx(self):
        return Transaction(sender="alice", kind=TxKind.DATA,
                           payload={"key": "k", "value": 1})

    def test_mutating_sealed_transaction_raises(self):
        tx = self._tx().seal()
        with pytest.raises(SealedMutation):
            tx.payload = {"key": "evil"}
        with pytest.raises(SealedMutation):
            tx.fee = 99

    def test_sealed_payload_is_read_only(self):
        tx = self._tx().seal()
        with pytest.raises(TypeError):
            tx.payload["key"] = "evil"

    def test_seal_is_idempotent_and_hash_stable(self):
        tx = self._tx()
        before = tx.tx_hash
        assert tx.seal() is tx
        assert tx.seal().tx_hash == before
        assert tx.is_sealed

    def test_seal_does_not_change_identity(self):
        assert self._tx().seal().tx_hash == self._tx().tx_hash

    def test_seal_snapshots_caller_dict(self):
        payload = {"key": "k", "value": 1}
        tx = Transaction(sender="alice", kind=TxKind.DATA, payload=payload)
        tx.seal()
        h = tx.tx_hash
        payload["value"] = 999  # caller's reference must not reach the tx
        assert tx.tx_hash == h
        assert tx.compute_tx_hash() == h

    def test_unsealed_assignment_invalidates_cache(self):
        tx = self._tx()
        h = tx.tx_hash
        tx.payload = {"key": "k", "value": 2}
        assert tx.tx_hash != h
        assert tx.tx_hash == tx.compute_tx_hash()

    def test_sealed_transaction_commits_and_verifies(self):
        chain = Blockchain(ChainParams(chain_id="seal"))
        tx = self._tx().seal()
        chain.append_block(chain.build_block([tx]))
        chain.verify()
        chain.verify(deep=True)
        assert chain.find_transaction(tx.tx_id) is not None

    def test_tamper_on_committed_tx_still_detected(self):
        """The acceptance-criterion scenario: caches must not mask the
        Figure-2 mutation."""
        chain = Blockchain(ChainParams(chain_id="tamper"))
        for i in range(5):
            tx = Transaction(sender="alice", kind=TxKind.DATA,
                             payload={"key": f"k{i}", "value": i})
            chain.append_block(chain.build_block([tx]))
        victim = chain.blocks[3].transactions[0]
        _ = victim.tx_hash  # populate the cache first
        victim.payload = {"key": "evil", "value": -1}
        assert not chain.is_intact()
        assert chain.first_broken_height() == 3
        assert chain.first_broken_height(deep=True) == 3


class TestIncrementalStateRoot:
    def test_root_is_content_determined(self):
        a, b = StateStore(), StateStore()
        a.set("ns", "x", 1)
        a.set("ns", "y", 2)
        b.set("ns", "y", 2)
        b.set("ns", "x", 0)
        b.set("ns", "x", 1)  # overwrite converges to the same content
        assert a.state_root() == b.state_root()

    def test_root_tracks_deletes(self):
        s = StateStore()
        empty = s.state_root()
        s.set("ns", "x", 1)
        assert s.state_root() != empty
        s.delete("ns", "x")
        assert s.state_root() == empty

    def test_root_survives_rollback(self):
        s = StateStore()
        s.set("ns", "x", 1)
        before = s.state_root()
        snap = s.snapshot()
        s.set("ns", "x", 2)
        s.set("ns", "y", 3)
        s.rollback(snap)
        assert s.state_root() == before

    def test_namespace_index_matches_scan(self):
        s = StateStore()
        for i in range(10):
            s.set("even" if i % 2 == 0 else "odd", f"k{i}", i)
        s.delete("even", "k4")
        assert [k for k, _ in s.items("even")] == ["k0", "k2", "k6", "k8"]
        assert [v for _, v in s.items("odd")] == [1, 3, 5, 7, 9]
        assert list(s.items("missing")) == []

    def test_prune_keeps_later_handles_valid(self):
        s = StateStore()
        h1 = s.snapshot()
        s.set("ns", "a", 1)
        h2 = s.snapshot()
        s.set("ns", "b", 2)
        s.prune_oldest_snapshot()  # h1's undo info is abandoned
        s.rollback(h2)
        assert s.get("ns", "a") == 1
        assert s.get("ns", "b") is None
        assert s.open_snapshots == 0
        _ = h1  # handle is dead; only nesting errors would reuse it


class TestDeepReorgReplayFallback:
    """Forks deeper than ``reorg_journal_depth`` must fall back to the
    replay path and still converge to exactly the state a fresh replay
    produces (PR 1's one untested branch)."""

    JOURNAL_DEPTH = 4
    CHAIN_LEN = 16
    FORK_DEPTH = 10       # > JOURNAL_DEPTH -> replay fallback

    def _tx(self, i: int, sender: str = "alice") -> Transaction:
        # Executed-transaction state only: the replay fallback rebuilds
        # from a fresh StateStore, so out-of-band writes (a test-fixture
        # convenience) are deliberately absent here.
        return Transaction(sender=sender, kind=TxKind.DATA,
                           payload={"key": f"k{i % 7}", "value": i},
                           timestamp=i)

    def _build(self, depth: int) -> Blockchain:
        chain = Blockchain(ChainParams(chain_id="deep-reorg",
                                       reorg_journal_depth=depth))
        for i in range(self.CHAIN_LEN):
            chain.append_block(chain.build_block(
                [self._tx(i * 3 + j) for j in range(3)], timestamp=i))
        return chain

    def _fork_suffix(self, chain: Blockchain, fork_height: int) -> list[Block]:
        suffix = []
        prev = chain.blocks[fork_height].block_hash
        for i in range(self.FORK_DEPTH + 1):
            height = fork_height + 1 + i
            txs = [self._tx(10_000 + height * 3 + j, sender="forker")
                   for j in range(3)]
            block = Block(height, prev, txs, timestamp=height,
                          proposer="forker")
            suffix.append(block)
            prev = block.block_hash
        return suffix

    def test_deep_fork_converges_and_matches_fresh_replay(self):
        chain = self._build(self.JOURNAL_DEPTH)
        fork_height = chain.height - self.FORK_DEPTH
        suffix = self._fork_suffix(chain, fork_height)
        orphaned = [tx.tx_id for block in chain.blocks[fork_height + 1:]
                    for tx in block.transactions]
        assert self.FORK_DEPTH > self.JOURNAL_DEPTH
        chain.reorg_to(suffix, fork_height)

        # Reference: replay the winning chain on a fresh instance.
        fresh = Blockchain(ChainParams(chain_id="deep-reorg"))
        fresh.blocks = [chain.blocks[0]]
        for block in chain.blocks[1:]:
            fresh._commit_block(block)

        assert chain.head.block_hash == fresh.head.block_hash
        assert chain.height == fork_height + self.FORK_DEPTH + 1
        assert chain.state.state_root() == fresh.state.state_root()
        chain.verify(deep=True)
        for tx_id in orphaned:
            assert chain.find_transaction(tx_id) is None
            assert chain.receipt_for(tx_id) is None
        for block in suffix:
            for tx in block.transactions:
                assert chain.find_transaction(tx.tx_id) is not None
                assert chain.receipt_for(tx.tx_id).block_height == block.height

    def test_replay_fallback_matches_journaled_rollback(self):
        """Both reorg strategies must land on identical head and state."""
        shallow = self._build(self.JOURNAL_DEPTH)     # replay path
        journaled = self._build(64)                   # O(delta) path
        fork_height = shallow.height - self.FORK_DEPTH
        shallow.reorg_to(self._fork_suffix(shallow, fork_height),
                         fork_height)
        journaled.reorg_to(self._fork_suffix(journaled, fork_height),
                           fork_height)
        assert shallow.head.block_hash == journaled.head.block_hash
        assert shallow.state.state_root() == journaled.state.state_root()
        assert shallow.receipts.keys() == journaled.receipts.keys()

    def test_deep_reorg_journal_rebuilds_for_future_reorgs(self):
        """After a replay-fallback reorg, the journal must cover the new
        tail so the *next* shallow fork takes the O(delta) path."""
        chain = self._build(self.JOURNAL_DEPTH)
        fork_height = chain.height - self.FORK_DEPTH
        chain.reorg_to(self._fork_suffix(chain, fork_height), fork_height)
        assert len(chain._block_snaps) == self.JOURNAL_DEPTH
        # A shallow fork now succeeds via the journal (depth 2 <= 4).
        shallow_fork = chain.height - 2
        suffix = []
        prev = chain.blocks[shallow_fork].block_hash
        for i in range(3):
            height = shallow_fork + 1 + i
            block = Block(height, prev,
                          [self._tx(50_000 + height, sender="again")],
                          timestamp=height, proposer="again")
            suffix.append(block)
            prev = block.block_hash
        chain.reorg_to(suffix, shallow_fork)
        assert chain.head.block_hash == suffix[-1].block_hash
        chain.verify(deep=True)
