"""Blockchain substrate: blocks, linkage, tamper detection, reorgs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.chain import Block, Blockchain, ChainParams, Transaction, TxKind
from repro.chain.block import GENESIS_PREV_HASH
from repro.crypto.signatures import KeyPair
from repro.errors import (
    ChainError,
    ForkError,
    InvalidBlock,
    InvalidTransaction,
    TamperDetected,
)
from .conftest import data_tx


class TestTransaction:
    def test_id_depends_on_payload(self):
        assert data_tx(1).tx_id != data_tx(2).tx_id

    def test_id_stable(self):
        assert data_tx(1).tx_id == data_tx(1).tx_id

    def test_sign_and_verify(self):
        kp = KeyPair.generate("signer")
        tx = Transaction(sender=kp.address, kind=TxKind.DATA,
                         payload={"k": "v"})
        tx.sign_with(kp)
        assert tx.verify_signature()

    def test_sign_with_wrong_key_rejected(self):
        kp = KeyPair.generate("signer2")
        tx = Transaction(sender="not-the-key", kind=TxKind.DATA, payload={})
        with pytest.raises(InvalidTransaction):
            tx.sign_with(kp)

    def test_tampered_payload_breaks_signature(self):
        kp = KeyPair.generate("signer3")
        tx = Transaction(sender=kp.address, kind=TxKind.DATA,
                         payload={"k": 1})
        tx.sign_with(kp)
        tx.payload = {"k": 2}
        assert not tx.verify_signature()

    def test_validate_rejects_negative_fee(self):
        tx = Transaction(sender="a", kind=TxKind.DATA, payload={}, fee=-1)
        with pytest.raises(InvalidTransaction):
            tx.validate()

    def test_validate_requires_signature_when_asked(self):
        tx = Transaction(sender="a", kind=TxKind.DATA, payload={})
        with pytest.raises(InvalidTransaction):
            tx.validate(require_signature=True)


class TestBlockStructure:
    def test_genesis_linkage(self, chain):
        assert chain.height == 0
        assert chain.head.header.prev_hash == GENESIS_PREV_HASH

    def test_merkle_root_commits_transactions(self):
        b1 = Block(1, b"\x00" * 32, [data_tx(1)])
        b2 = Block(1, b"\x00" * 32, [data_tx(2)])
        assert b1.header.merkle_root != b2.header.merkle_root

    def test_verify_structure_detects_mutation(self):
        block = Block(1, b"\x00" * 32, [data_tx(1), data_tx(2)])
        block.verify_structure()
        block.transactions[0].payload = {"key": "k1", "value": 999}
        with pytest.raises(InvalidBlock):
            block.verify_structure()

    def test_inclusion_proof(self):
        txs = [data_tx(i) for i in range(7)]
        block = Block(1, b"\x00" * 32, txs)
        proof = block.prove_inclusion(4)
        assert Blockchain.verify_transaction_proof(
            block.header.merkle_root, txs[4], proof
        )
        assert not Blockchain.verify_transaction_proof(
            block.header.merkle_root, txs[5], proof
        )


class TestAppendAndExecute:
    def test_append_advances_height(self, chain):
        chain.append_block(chain.build_block([data_tx(1)]))
        assert chain.height == 1

    def test_wrong_prev_hash_rejected(self, chain):
        orphan = Block(1, b"\xff" * 32, [])
        with pytest.raises(InvalidBlock):
            chain.append_block(orphan)

    def test_wrong_height_rejected(self, chain):
        block = Block(5, chain.head.block_hash, [])
        with pytest.raises(InvalidBlock):
            chain.append_block(block)

    def test_transfer_executes(self, funded_chain):
        tx = Transaction(sender="alice", kind=TxKind.TRANSFER,
                         payload={"to": "bob", "amount": 100})
        receipts = funded_chain.append_block(funded_chain.build_block([tx]))
        assert receipts[0].success
        assert funded_chain.state.balance("bob") == 1_100
        assert funded_chain.state.balance("alice") == 900

    def test_failed_transfer_reports_error(self, funded_chain):
        tx = Transaction(sender="alice", kind=TxKind.TRANSFER,
                         payload={"to": "bob", "amount": 10_000})
        receipts = funded_chain.append_block(funded_chain.build_block([tx]))
        assert not receipts[0].success
        assert "insufficient" in receipts[0].error

    def test_tx_index_lookup(self, chain):
        tx = data_tx(9)
        chain.append_block(chain.build_block([tx]))
        found = chain.find_transaction(tx.tx_id)
        assert found is not None
        block, located = found
        assert block.height == 1 and located.tx_id == tx.tx_id

    def test_block_size_limit(self):
        chain = Blockchain(ChainParams(max_block_txs=2))
        with pytest.raises(InvalidBlock):
            chain.build_block([data_tx(i) for i in range(3)])

    def test_subscriber_called_per_block(self, chain):
        seen = []
        chain.subscribe(lambda block, receipts: seen.append(block.height))
        chain.append_block(chain.build_block([data_tx(0)]))
        chain.append_block(chain.build_block([data_tx(1)]))
        assert seen == [1, 2]


class TestTamperDetection:
    """The Figure-2 scenario: any mutation breaks the chain downstream."""

    def _grow(self, chain, blocks=5):
        for i in range(blocks):
            chain.append_block(chain.build_block([data_tx(i)]))

    def test_intact_chain_verifies(self, chain):
        self._grow(chain)
        chain.verify()
        assert chain.is_intact()
        assert chain.first_broken_height() is None

    def test_mutated_tx_detected_at_its_height(self, chain):
        self._grow(chain)
        chain.blocks[3].transactions[0].payload = {"key": "evil", "value": 1}
        assert not chain.is_intact()
        assert chain.first_broken_height() == 3

    def test_mutated_header_breaks_next_link(self, chain):
        self._grow(chain)
        chain.blocks[2].header.timestamp = 999_999
        # Block 2's hash changed, so block 3 no longer links to it.
        assert chain.first_broken_height() == 3
        with pytest.raises(TamperDetected):
            chain.verify()

    def test_swapped_blocks_detected(self, chain):
        self._grow(chain)
        chain.blocks[2], chain.blocks[3] = chain.blocks[3], chain.blocks[2]
        assert not chain.is_intact()


class TestReorg:
    def _fork(self, chain, at_height: int, new_len: int) -> list:
        suffix = []
        prev = chain.blocks[at_height].block_hash
        for i in range(new_len):
            block = Block(at_height + 1 + i, prev,
                          [data_tx(100 + i, sender="forker")])
            suffix.append(block)
            prev = block.block_hash
        return suffix

    def test_longer_fork_accepted(self, chain):
        for i in range(3):
            chain.append_block(chain.build_block([data_tx(i)]))
        suffix = self._fork(chain, at_height=1, new_len=4)
        chain.reorg_to(suffix, fork_height=1)
        assert chain.height == 5
        assert chain.is_intact()

    def test_equal_length_fork_rejected(self, chain):
        for i in range(3):
            chain.append_block(chain.build_block([data_tx(i)]))
        suffix = self._fork(chain, at_height=1, new_len=2)
        with pytest.raises(ForkError):
            chain.reorg_to(suffix, fork_height=1)

    def test_state_rebuilt_after_reorg(self, funded_chain):
        tx = Transaction(sender="alice", kind=TxKind.TRANSFER,
                         payload={"to": "bob", "amount": 500})
        funded_chain.append_block(funded_chain.build_block([tx]))
        assert funded_chain.state.balance("bob") == 1_500
        # Reorg to a fork where the transfer never happened: the undo
        # journal rewinds to the exact fork-point state, so the transfer
        # is undone while the fixture's pre-chain credits survive.
        suffix = self._fork(funded_chain, at_height=0, new_len=2)
        funded_chain.reorg_to(suffix, fork_height=0)
        assert funded_chain.state.balance("bob") == 1_000
        assert funded_chain.state.balance("alice") == 1_000

    def test_journal_and_replay_reorgs_agree(self):
        """O(delta) journal rollback and full replay must land on the
        same chain and the same state root."""
        def build(depth: int) -> Blockchain:
            c = Blockchain(ChainParams(chain_id="agree",
                                       reorg_journal_depth=depth))
            for i in range(6):
                c.append_block(c.build_block([data_tx(i), data_tx(100 + i)],
                                             timestamp=i))
            return c

        journaled, replayed = build(depth=64), build(depth=0)
        assert journaled.head.block_hash == replayed.head.block_hash
        for chain in (journaled, replayed):
            suffix = self._fork(chain, at_height=3, new_len=4)
            chain.reorg_to(suffix, fork_height=3)
        assert journaled.head.block_hash == replayed.head.block_hash
        assert journaled.state.state_root() == replayed.state.state_root()
        assert journaled.is_intact() and replayed.is_intact()


class TestStateStore:
    def test_nested_snapshots(self, chain):
        state = chain.state
        state.credit("a", 100)
        outer = state.snapshot()
        state.debit("a", 10)
        inner = state.snapshot()
        state.debit("a", 20)
        state.rollback(inner)
        assert state.balance("a") == 90
        state.rollback(outer)
        assert state.balance("a") == 100

    def test_commit_folds_into_parent(self, chain):
        state = chain.state
        state.credit("a", 100)
        outer = state.snapshot()
        inner = state.snapshot()
        state.debit("a", 30)
        state.commit_snapshot(inner)
        state.rollback(outer)     # must undo the committed inner change
        assert state.balance("a") == 100

    def test_out_of_order_rollback_rejected(self, chain):
        state = chain.state
        outer = state.snapshot()
        state.snapshot()
        with pytest.raises(ChainError):
            state.rollback(outer)

    def test_debit_over_balance(self, chain):
        with pytest.raises(ChainError):
            chain.state.debit("nobody", 1)

    def test_state_root_changes(self, chain):
        r0 = chain.state.state_root()
        chain.state.set("ns", "k", "v")
        assert chain.state.state_root() != r0

    @settings(max_examples=25)
    @given(st.lists(st.tuples(st.sampled_from(["a", "b"]),
                              st.integers(min_value=1, max_value=50)),
                    max_size=20))
    def test_total_balance_conserved_by_transfers(self, moves):
        chain = Blockchain()
        chain.state.credit("a", 1_000)
        chain.state.credit("b", 1_000)
        for dst, amount in moves:
            src = "b" if dst == "a" else "a"
            try:
                chain.state.transfer(src, dst, amount)
            except ChainError:
                pass
        assert chain.state.balance("a") + chain.state.balance("b") == 2_000


class TestMempool:
    def test_dedup(self, make_tx):
        from repro.chain import Mempool

        pool = Mempool()
        assert pool.add(make_tx(1))
        assert not pool.add(make_tx(1))
        assert len(pool) == 1

    def test_fee_priority_then_fifo(self):
        from repro.chain import Mempool

        pool = Mempool()
        low = Transaction(sender="a", kind=TxKind.DATA,
                          payload={"v": 1}, fee=1)
        high = Transaction(sender="a", kind=TxKind.DATA,
                           payload={"v": 2}, fee=10)
        mid1 = Transaction(sender="a", kind=TxKind.DATA,
                           payload={"v": 3}, fee=5)
        mid2 = Transaction(sender="a", kind=TxKind.DATA,
                           payload={"v": 4}, fee=5)
        for tx in (low, mid1, mid2, high):
            pool.add(tx)
        batch = pool.pop_batch(4)
        assert [tx.payload["v"] for tx in batch] == [2, 3, 4, 1]

    def test_capacity_enforced(self, make_tx):
        from repro.chain import Mempool

        pool = Mempool(capacity=2)
        pool.add(make_tx(1))
        pool.add(make_tx(2))
        with pytest.raises(InvalidTransaction):
            pool.add(make_tx(3))

    def test_remove_then_pop_skips_stale(self, make_tx):
        from repro.chain import Mempool

        pool = Mempool()
        tx1, tx2 = make_tx(1), make_tx(2)
        pool.add(tx1)
        pool.add(tx2)
        pool.remove([tx1.tx_id])
        batch = pool.pop_batch(5)
        assert [t.tx_id for t in batch] == [tx2.tx_id]

    def test_peek_does_not_remove(self, make_tx):
        from repro.chain import Mempool

        pool = Mempool()
        pool.add(make_tx(1))
        assert len(pool.peek_batch(5)) == 1
        assert len(pool) == 1
