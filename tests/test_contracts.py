"""Contract runtime: gas, revert atomicity, and the library contracts."""

import pytest

from repro.chain import Blockchain, Transaction, TxKind
from repro.contracts import (
    AccessControlContract,
    Contract,
    ContractRuntime,
    EventLog,
    IncentiveEscrow,
    ProvenanceRegistry,
    SimpleToken,
    ThresholdVoting,
    call_payload,
    deploy_payload,
    method,
    view,
)
from repro.errors import ContractReverted


class Counter(Contract):
    """A test contract exercising gas + revert behaviour."""

    def setup(self, start: int = 0) -> None:
        self.storage.set("count", int(start))

    @method
    def bump(self, by: int = 1) -> int:
        self.charge(1)
        value = int(self.storage.get("count", 0)) + by
        self.storage.set("count", value)
        self.emit("bumped", value=value)
        return value

    @method
    def bump_then_fail(self) -> None:
        self.charge(1)
        self.storage.set("count", 10_000)
        self.require(False, "deliberate failure")

    @method
    def burn_gas(self) -> None:
        while True:
            self.charge(100)

    @view
    def current(self) -> int:
        self.charge(1)
        return int(self.storage.get("count", 0))

    @view
    def sneaky_write(self) -> None:
        self.storage.set("count", -1)


@pytest.fixture
def rig():
    runtime = ContractRuntime()
    for cls in (Counter, ProvenanceRegistry, ThresholdVoting,
                AccessControlContract, IncentiveEscrow, SimpleToken):
        runtime.register(cls)
    chain = Blockchain()
    runtime.attach(chain)
    return runtime, chain


def deploy(chain, name, sender="deployer", **args):
    tx = Transaction(sender=sender, kind=TxKind.CONTRACT_DEPLOY,
                     payload=deploy_payload(name, **args))
    receipts = chain.append_block(chain.build_block([tx]))
    assert receipts[0].success, receipts[0].error
    return receipts[0].output


def call(chain, address, entry, sender="caller", **args):
    tx = Transaction(sender=sender, kind=TxKind.CONTRACT_CALL,
                     payload=call_payload(address, entry, **args))
    receipts = chain.append_block(chain.build_block([tx]))
    return receipts[0]


class TestRuntime:
    def test_deploy_and_call(self, rig):
        runtime, chain = rig
        addr = deploy(chain, "Counter", start=5)
        receipt = call(chain, addr, "bump", by=3)
        assert receipt.success and receipt.output == 8
        assert runtime.query(chain, addr, "current") == 8

    def test_unknown_contract_class(self, rig):
        _, chain = rig
        tx = Transaction(sender="d", kind=TxKind.CONTRACT_DEPLOY,
                         payload=deploy_payload("Nope"))
        receipts = chain.append_block(chain.build_block([tx]))
        assert not receipts[0].success

    def test_unknown_entry_point(self, rig):
        _, chain = rig
        addr = deploy(chain, "Counter")
        receipt = call(chain, addr, "no_such_method")
        assert not receipt.success

    def test_revert_rolls_back_state(self, rig):
        runtime, chain = rig
        addr = deploy(chain, "Counter", start=1)
        receipt = call(chain, addr, "bump_then_fail")
        assert not receipt.success
        assert runtime.query(chain, addr, "current") == 1

    def test_out_of_gas_reverts(self, rig):
        runtime, chain = rig
        addr = deploy(chain, "Counter", start=1)
        receipt = call(chain, addr, "burn_gas")
        assert not receipt.success
        assert runtime.query(chain, addr, "current") == 1

    def test_view_cannot_write(self, rig):
        runtime, chain = rig
        addr = deploy(chain, "Counter", start=3)
        with pytest.raises(ContractReverted):
            runtime.query(chain, addr, "sneaky_write")
        assert runtime.query(chain, addr, "current") == 3

    def test_events_reach_receipts_and_log(self, rig):
        _, chain = rig
        log = EventLog(chain)
        addr = deploy(chain, "Counter")
        call(chain, addr, "bump")
        events = log.by_name("bumped")
        assert len(events) == 1
        assert events[0].event.data["value"] == 1

    def test_two_instances_isolated(self, rig):
        runtime, chain = rig
        a1 = deploy(chain, "Counter", start=1)
        a2 = deploy(chain, "Counter", start=100)
        call(chain, a1, "bump")
        assert runtime.query(chain, a1, "current") == 2
        assert runtime.query(chain, a2, "current") == 100


class TestProvenanceRegistry:
    def test_register_and_verify(self, rig):
        runtime, chain = rig
        addr = deploy(chain, "ProvenanceRegistry")
        call(chain, addr, "register", sender="alice",
             record_id="r1", content_hash="aa")
        assert runtime.query(chain, addr, "verify",
                             record_id="r1", content_hash="aa")
        assert not runtime.query(chain, addr, "verify",
                                 record_id="r1", content_hash="bb")

    def test_duplicate_rejected(self, rig):
        _, chain = rig
        addr = deploy(chain, "ProvenanceRegistry")
        call(chain, addr, "register", record_id="r1", content_hash="aa")
        receipt = call(chain, addr, "register", record_id="r1",
                       content_hash="cc")
        assert not receipt.success

    def test_history_follows_prev_links(self, rig):
        runtime, chain = rig
        addr = deploy(chain, "ProvenanceRegistry")
        call(chain, addr, "register", record_id="v1", content_hash="a")
        call(chain, addr, "register", record_id="v2", content_hash="b",
             prev_record_id="v1")
        call(chain, addr, "register", record_id="v3", content_hash="c",
             prev_record_id="v2")
        history = runtime.query(chain, addr, "history", record_id="v3")
        assert [h["record_id"] for h in history] == ["v3", "v2", "v1"]

    def test_only_owner_transfers(self, rig):
        _, chain = rig
        addr = deploy(chain, "ProvenanceRegistry")
        call(chain, addr, "register", sender="alice",
             record_id="r1", content_hash="aa")
        bad = call(chain, addr, "transfer_ownership", sender="mallory",
                   record_id="r1", new_owner="mallory")
        assert not bad.success
        good = call(chain, addr, "transfer_ownership", sender="alice",
                    record_id="r1", new_owner="bob")
        assert good.success


class TestThresholdVoting:
    def test_threshold_acceptance(self, rig):
        runtime, chain = rig
        addr = deploy(chain, "ThresholdVoting",
                      voters=["a", "b", "c"], threshold=2)
        call(chain, addr, "propose", sender="a", item_id="x")
        call(chain, addr, "vote", sender="a", item_id="x")
        assert runtime.query(chain, addr, "status", item_id="x") == "open"
        call(chain, addr, "vote", sender="b", item_id="x")
        assert runtime.query(chain, addr, "status", item_id="x") == "accepted"

    def test_double_vote_rejected(self, rig):
        _, chain = rig
        addr = deploy(chain, "ThresholdVoting", voters=["a", "b"],
                      threshold=2)
        call(chain, addr, "propose", sender="a", item_id="x")
        call(chain, addr, "vote", sender="a", item_id="x")
        again = call(chain, addr, "vote", sender="a", item_id="x")
        assert not again.success

    def test_non_voter_rejected(self, rig):
        _, chain = rig
        addr = deploy(chain, "ThresholdVoting", voters=["a"], threshold=1)
        call(chain, addr, "propose", sender="a", item_id="x")
        receipt = call(chain, addr, "vote", sender="stranger", item_id="x")
        assert not receipt.success

    def test_unanimous_mode_single_rejection_sinks(self, rig):
        runtime, chain = rig
        addr = deploy(chain, "ThresholdVoting",
                      voters=["a", "b", "c"], unanimous=True)
        call(chain, addr, "propose", sender="a", item_id="x")
        call(chain, addr, "vote", sender="a", item_id="x")
        call(chain, addr, "vote", sender="b", item_id="x", approve=False)
        assert runtime.query(chain, addr, "status", item_id="x") == "rejected"


class TestAccessControlContract:
    def test_grant_check_revoke(self, rig):
        runtime, chain = rig
        addr = deploy(chain, "AccessControlContract", sender="admin")
        call(chain, addr, "grant", sender="admin",
             subject="alice", resource="doc", action="read")
        assert runtime.query(chain, addr, "check",
                             subject="alice", resource="doc", action="read")
        call(chain, addr, "revoke", sender="admin",
             subject="alice", resource="doc", action="read")
        assert not runtime.query(chain, addr, "check",
                                 subject="alice", resource="doc",
                                 action="read")

    def test_non_admin_cannot_grant(self, rig):
        _, chain = rig
        addr = deploy(chain, "AccessControlContract", sender="admin")
        receipt = call(chain, addr, "grant", sender="mallory",
                       subject="mallory", resource="*", action="read")
        assert not receipt.success

    def test_expiring_grant(self, rig):
        runtime, chain = rig
        addr = deploy(chain, "AccessControlContract", sender="admin")
        call(chain, addr, "grant", sender="admin", subject="bob",
             resource="doc", action="read", expires_at=100)
        assert runtime.query(chain, addr, "check", subject="bob",
                             resource="doc", action="read", at_time=50)
        assert not runtime.query(chain, addr, "check", subject="bob",
                                 resource="doc", action="read", at_time=150)


class TestEscrowAndToken:
    def test_bounty_paid_on_valid_proof(self, rig):
        runtime, chain = rig
        addr = deploy(chain, "IncentiveEscrow", sender="verifier")
        call(chain, addr, "open_bounty", sender="consumer",
             bounty_id="b1", amount=10, prover="farmer")
        receipt = call(chain, addr, "submit_result", sender="verifier",
                       bounty_id="b1", proof_valid=True)
        assert receipt.output == "paid"
        assert runtime.query(chain, addr, "payable_to",
                             account="farmer") == 10

    def test_bounty_refunded_on_invalid_proof(self, rig):
        runtime, chain = rig
        addr = deploy(chain, "IncentiveEscrow", sender="verifier")
        call(chain, addr, "open_bounty", sender="consumer",
             bounty_id="b1", amount=10, prover="farmer")
        call(chain, addr, "submit_result", sender="verifier",
             bounty_id="b1", proof_valid=False)
        assert runtime.query(chain, addr, "payable_to",
                             account="consumer") == 10

    def test_only_verifier_settles(self, rig):
        _, chain = rig
        addr = deploy(chain, "IncentiveEscrow", sender="verifier")
        call(chain, addr, "open_bounty", sender="c",
             bounty_id="b1", amount=5, prover="p")
        receipt = call(chain, addr, "submit_result", sender="impostor",
                       bounty_id="b1", proof_valid=True)
        assert not receipt.success

    def test_token_conservation(self, rig):
        runtime, chain = rig
        addr = deploy(chain, "SimpleToken", sender="mint",
                      initial_supply=100)
        call(chain, addr, "transfer", sender="mint", to="a", amount=30)
        call(chain, addr, "transfer", sender="a", to="b", amount=10)
        balances = [
            runtime.query(chain, addr, "balance_of", account=acc)
            for acc in ("mint", "a", "b")
        ]
        assert balances == [70, 20, 10]
        assert runtime.query(chain, addr, "total_supply") == 100

    def test_token_overdraft_rejected(self, rig):
        _, chain = rig
        addr = deploy(chain, "SimpleToken", sender="mint",
                      initial_supply=5)
        receipt = call(chain, addr, "transfer", sender="mint",
                       to="a", amount=50)
        assert not receipt.success
