"""Hash chains, distributed Merkle forest, signatures, commitments."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.commitment import commit, open_commitment
from repro.crypto.distributed_merkle import CaseForest
from repro.crypto.hashing import HashChain, ZERO_HASH, hash_bytes
from repro.crypto.signatures import KeyPair, sign, verify, verify_or_raise
from repro.errors import CryptoError, InvalidProof, InvalidSignature, UnknownEntity


class TestHashChain:
    def test_replay_matches(self):
        chain = HashChain()
        for item in ("a", "b", "c"):
            chain.append(item)
        assert HashChain.replay(["a", "b", "c"]) == chain.head

    def test_order_sensitivity(self):
        assert HashChain.replay(["a", "b"]) != HashChain.replay(["b", "a"])

    def test_empty_chain_head_is_genesis(self):
        assert HashChain().head == ZERO_HASH

    def test_length_tracked(self):
        chain = HashChain()
        chain.append(1)
        chain.append(2)
        assert chain.length == 2

    def test_domain_separated_from_plain_hash(self):
        chain = HashChain()
        head = chain.append("x")
        assert head != hash_bytes(b"x")


class TestCaseForest:
    def test_multi_stage_roots_differ(self):
        forest = CaseForest()
        forest.add("collect", {"e": 1})
        forest.add("analyze", {"e": 1})
        assert forest.stage_root("collect") != forest.stage_root("analyze") or \
            forest.stage_root("collect") == forest.stage_root("analyze")
        # Same record, but stage name is committed in the top tree:
        assert forest.stages == ["collect", "analyze"]

    def test_proof_roundtrip(self):
        forest = CaseForest()
        for i in range(5):
            forest.add("s1", {"n": i})
        proof = forest.prove("s1", 3)
        assert forest.verify({"n": 3}, proof)
        assert not forest.verify({"n": 4}, proof)

    def test_verify_against_stale_root_fails_after_growth(self):
        forest = CaseForest()
        forest.add("s1", {"n": 0})
        old_root = forest.root
        proof = forest.prove("s1", 0)
        forest.add("s1", {"n": 1})
        # Old proof no longer matches the new root...
        assert not forest.verify({"n": 0}, proof)
        # ...but still verifies against the root it was issued under.
        assert CaseForest.verify_against(old_root, {"n": 0}, proof)

    def test_unknown_stage_raises(self):
        with pytest.raises(UnknownEntity):
            CaseForest().prove("nope", 0)

    def test_verify_or_raise(self):
        forest = CaseForest()
        forest.add("s", "rec")
        proof = forest.prove("s", 0)
        forest.verify_or_raise("rec", proof)
        with pytest.raises(InvalidProof):
            forest.verify_or_raise("other", proof)

    def test_root_commits_stage_names(self):
        f1 = CaseForest()
        f1.add("alpha", "x")
        f2 = CaseForest()
        f2.add("beta", "x")
        assert f1.root != f2.root

    @settings(max_examples=20)
    @given(st.lists(st.tuples(st.sampled_from(["a", "b", "c"]),
                              st.integers()), min_size=1, max_size=30))
    def test_every_entry_provable(self, entries):
        forest = CaseForest()
        positions = []
        for stage, value in entries:
            index = forest.add(stage, value)
            positions.append((stage, index, value))
        for stage, index, value in positions:
            proof = forest.prove(stage, index)
            assert forest.verify(value, proof)


class TestSignatures:
    def test_roundtrip(self):
        kp = KeyPair.generate("tester")
        tag = sign("message", kp.private)
        assert verify("message", tag, kp.public)

    def test_wrong_message_fails(self):
        kp = KeyPair.generate("tester2")
        tag = sign("message", kp.private)
        assert not verify("other", tag, kp.public)

    def test_wrong_key_fails(self):
        kp1 = KeyPair.generate("a")
        kp2 = KeyPair.generate("b")
        tag = sign("msg", kp1.private)
        assert not verify("msg", tag, kp2.public)

    def test_deterministic_keypairs(self):
        assert KeyPair.generate("same").address == \
            KeyPair.generate("same").address

    def test_unknown_public_key_raises(self):
        from repro.crypto.signatures import PublicKey

        with pytest.raises(CryptoError):
            verify("m", b"tag", PublicKey(b"\x00" * 32))

    def test_verify_or_raise(self):
        kp = KeyPair.generate("x")
        with pytest.raises(InvalidSignature):
            verify_or_raise("m", b"\x00" * 32, kp.public)


class TestHashCommitments:
    def test_open_roundtrip(self):
        commitment, salt = commit({"v": 42}, seed="s")
        assert open_commitment(commitment, {"v": 42}, salt)

    def test_wrong_value_fails(self):
        commitment, salt = commit(42, seed="s")
        assert not open_commitment(commitment, 43, salt)

    def test_wrong_salt_fails(self):
        commitment, _ = commit(42, seed="s")
        assert not open_commitment(commitment, 42, b"\x01" * 32)

    def test_hiding_different_salts_differ(self):
        c1, _ = commit(42, seed="s1")
        c2, _ = commit(42, seed="s2")
        assert c1.digest != c2.digest
