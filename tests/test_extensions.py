"""Extension features: EO chain, light client, multi-modal tokenization,
PoW retargeting, partition failure injection."""

import pytest

from repro.chain import Blockchain, ChainParams, LightClient, Transaction, TxKind
from repro.consensus import PBFTCluster, ProofOfWork
from repro.errors import ChainError, DomainError, ProvenanceError, TamperDetected, UnknownEntity
from repro.network import SimNet
from repro.provenance import MultiModalTokenizer
from repro.provenance.anchor import AnchorService
from repro.provenance.capture import CaptureSink
from repro.storage.provdb import ProvenanceDatabase
from repro.systems import EOChain
from .conftest import data_tx


class TestEOChain:
    @pytest.fixture
    def eo(self):
        return EOChain(["esa", "nasa", "jaxa"])

    def test_upload_and_verified_fetch(self, eo):
        eo.upload("esa", "S2-001", b"sentinel tile bytes")
        assert eo.fetch("S2-001") == b"sentinel tile bytes"

    def test_derived_dag_traceability(self, eo):
        eo.upload("esa", "raw-a", b"a" * 100)
        eo.upload("nasa", "raw-b", b"b" * 100)
        eo.derive("jaxa", "mosaic", b"m" * 50, parents=["raw-a", "raw-b"])
        eo.derive("esa", "ndvi", b"n" * 25, parents=["mosaic"])
        trace = eo.trace("ndvi")
        ids = [g.granule_id for g in trace]
        assert ids[0] == "ndvi"
        assert set(ids) == {"ndvi", "mosaic", "raw-a", "raw-b"}
        # Raw acquisitions end the walk.
        assert all(g.kind == "acquisition" for g in trace
                   if not g.parents)

    def test_derivation_requires_known_parents(self, eo):
        with pytest.raises(UnknownEntity):
            eo.derive("esa", "x", b"x", parents=["ghost"])

    def test_essential_info_on_chain_for_every_granule(self, eo):
        eo.upload("esa", "g1", b"data")
        registered = eo.runtime.query(
            eo._leader_chain(), eo.registry_address, "lookup",
            record_id="g1",
        )
        assert registered is not None
        assert registered["meta"]["center"] == "esa"

    def test_consortium_replicas_consistent(self, eo):
        for i in range(4):
            eo.upload("esa", f"g{i}", b"d%d" % i)
        assert eo.replicated_consistently()
        assert eo.consortium_height >= 5   # deploy + 4 registrations

    def test_missing_ancestor_breaks_trace(self, eo):
        eo.upload("esa", "raw", b"r" * 10)
        eo.derive("nasa", "prod", b"p", parents=["raw"])
        # The raw granule's store loses the data.
        granule = eo.granules["raw"]
        eo.centers["esa"].unpin(granule.cid)
        eo.centers["esa"].collect_garbage()
        with pytest.raises(DomainError):
            eo.trace("prod")

    def test_needs_three_centers(self):
        with pytest.raises(DomainError):
            EOChain(["solo", "duo"])


class TestLightClient:
    @pytest.fixture
    def rig(self):
        chain = Blockchain(ChainParams(chain_id="lc"))
        database = ProvenanceDatabase()
        service = AnchorService(chain, batch_size=4)
        sink = CaptureSink(database, service)
        for i in range(8):
            sink.deliver({"record_id": f"r{i}", "domain": "generic",
                          "subject": "s", "actor": "a", "operation": "w",
                          "timestamp": i})
        service.flush()
        client = LightClient("lc")
        client.sync_from(chain)
        return chain, database, service, client

    def test_sync_tracks_height(self, rig):
        chain, _, _, client = rig
        assert client.height == chain.height

    def test_tx_verification_with_headers_only(self, rig):
        chain, _, _, client = rig
        tx = chain.blocks[1].transactions[0]
        _, proof = chain.prove_transaction(tx.tx_id)
        assert client.verify_transaction(tx, proof, height=1)

    def test_anchored_record_verification(self, rig):
        chain, database, service, client = rig
        record = database.get("r2")
        bundle = service.prove_for_light_client("r2")
        assert client.verify_anchored_record(record, bundle)

    def test_forged_record_rejected(self, rig):
        _, database, service, client = rig
        bundle = service.prove_for_light_client("r2")
        forged = dict(database.get("r2"), operation="evil")
        assert not client.verify_anchored_record(forged, bundle)

    def test_bundle_against_wrong_height_rejected(self, rig):
        chain, database, service, client = rig
        bundle = service.prove_for_light_client("r2")
        import dataclasses

        moved = dataclasses.replace(bundle,
                                    block_height=bundle.block_height - 1)
        assert not client.verify_anchored_record(database.get("r2"), moved)

    def test_header_linkage_enforced(self, rig):
        chain, _, _, _ = rig
        client = LightClient("lc")
        client.submit_header(chain.blocks[0].header)
        with pytest.raises(TamperDetected):
            forged = Blockchain(ChainParams(chain_id="other"))
            forged.append_block(forged.build_block([data_tx(1)]))
            client.submit_header(forged.blocks[1].header)

    def test_cannot_skip_headers(self, rig):
        chain, _, _, _ = rig
        client = LightClient("lc")
        client.submit_header(chain.blocks[0].header)
        with pytest.raises(ChainError):
            client.submit_header(chain.blocks[2].header)

    def test_incremental_sync(self, rig):
        chain, _, service, client = rig
        before = client.height
        chain.append_block(chain.build_block([data_tx(99)]))
        assert client.sync_from(chain) == 1
        assert client.height == before + 1


class TestMultiModal:
    @pytest.fixture
    def tokenizer(self):
        return MultiModalTokenizer()

    def test_text_format_invariance(self, tokenizer):
        a = tokenizer.tokenize("text", b"The Quick  Brown Fox")
        b = tokenizer.tokenize("text", b"the quick brown fox")
        assert a.digest == b.digest

    def test_text_edit_detected_but_similar(self, tokenizer):
        original = b"alpha beta gamma delta epsilon zeta eta theta"
        edited = b"alpha beta gamma delta epsilon zeta eta IOTA"
        similarity = tokenizer.match("text", original, edited)
        assert 0.0 < similarity < 1.0

    def test_unrelated_texts_dissimilar(self, tokenizer):
        similarity = tokenizer.match(
            "text", b"one two three four five six",
            b"seven eight nine ten eleven twelve",
        )
        assert similarity == 0.0

    def test_image_identity_stable(self, tokenizer):
        image = bytes(range(256)) * 8
        assert tokenizer.tokenize("image", image).digest == \
            tokenizer.tokenize("image", image).digest

    def test_video_clip_shares_segments(self, tokenizer):
        source = bytes(i % 251 for i in range(8192))
        clip = source[1024:3072]            # segment-aligned excerpt
        full = tokenizer.tokenize("video", source)
        part = tokenizer.tokenize("video", clip)
        shared = set(full.feature_digests) & set(part.feature_digests)
        assert shared, "an excised clip must share segment features"

    def test_modalities_never_match(self, tokenizer):
        text = tokenizer.tokenize("text", b"hello world")
        binary = tokenizer.tokenize("binary", b"hello world")
        assert text.similarity(binary) == 0.0

    def test_unknown_modality_rejected(self, tokenizer):
        with pytest.raises(ProvenanceError):
            tokenizer.tokenize("hologram", b"x")

    def test_invalid_text_rejected(self, tokenizer):
        with pytest.raises(ProvenanceError):
            tokenizer.tokenize("text", b"\xff\xfe\xfd")

    def test_record_fields(self, tokenizer):
        fields = tokenizer.to_record_fields("text", b"a b c d e")
        assert fields["modality"] == "text"
        assert fields["token_id"].startswith("text:")

    def test_custom_tokenizer_registration(self, tokenizer):
        from repro.provenance.multimodal import ModalToken, tokenize_binary

        tokenizer.register("pointcloud",
                           lambda b: ModalToken("pointcloud",
                                                tokenize_binary(b).digest))
        token = tokenizer.tokenize("pointcloud", b"xyz")
        assert token.modality == "pointcloud"


class TestPoWRetarget:
    def _mine(self, engine, chain, timestamp):
        block, _ = engine.seal(chain, [data_tx(timestamp)],
                               timestamp=timestamp)
        chain.append_block(block)

    def test_fast_blocks_raise_difficulty(self):
        engine = ProofOfWork(difficulty_bits=4)
        chain = Blockchain(ChainParams(chain_id="rt1"))
        for t in range(0, 9):                 # spacing 1 << target 10
            self._mine(engine, chain, t)
        assert engine.retarget(chain, window=8, target_spacing=10) == 5

    def test_slow_blocks_lower_difficulty(self):
        engine = ProofOfWork(difficulty_bits=4)
        chain = Blockchain(ChainParams(chain_id="rt2"))
        for t in range(0, 9 * 50, 50):        # spacing 50 >> target 10
            self._mine(engine, chain, t)
        assert engine.retarget(chain, window=8, target_spacing=10) == 3

    def test_on_target_unchanged(self):
        engine = ProofOfWork(difficulty_bits=4)
        chain = Blockchain(ChainParams(chain_id="rt3"))
        for t in range(0, 9 * 10, 10):        # spacing == target
            self._mine(engine, chain, t)
        assert engine.retarget(chain, window=8, target_spacing=10) == 4

    def test_short_chain_unchanged(self):
        engine = ProofOfWork(difficulty_bits=4)
        chain = Blockchain(ChainParams(chain_id="rt4"))
        self._mine(engine, chain, 0)
        assert engine.retarget(chain, window=8) == 4


class TestPartitionFaults:
    """Safety under partitions: a minority partition cannot commit."""

    def test_pbft_minority_partition_stalls_not_forks(self):
        net = SimNet(seed=3)
        cluster = PBFTCluster(net, n_replicas=4)
        cluster.propose([data_tx(1)])
        # Cut the view-1 primary's side into a minority.
        net.partition({"pbft-0", "pbft-1"}, {"pbft-2", "pbft-3"})
        import pytest as _pytest

        from repro.errors import ConsensusError

        with _pytest.raises(ConsensusError):
            cluster.propose([data_tx(2)], max_view_changes=2)
        # Safety: no replica committed a second block.
        assert all(h == 1 for h in cluster.heights().values())
        # Heal and progress resumes for everyone.
        net.heal()
        cluster.propose([data_tx(3)])
        assert all(h == 2 for h in cluster.heights().values())

    def test_raft_partitioned_majority_continues(self):
        from repro.consensus import RaftCluster

        net = SimNet(seed=4)
        cluster = RaftCluster(net, n_nodes=5)
        cluster.propose([data_tx(1)])
        leader = cluster.leader_id
        majority = {n.node_id for n in cluster.nodes[:3]}
        minority = {n.node_id for n in cluster.nodes[3:]}
        if leader not in majority:
            majority, minority = minority, majority
            if len(majority) < 3:
                majority, minority = minority, majority
        net.partition(majority, minority)
        if leader in majority and len(majority) >= 3:
            metrics = cluster.propose([data_tx(2)])
            assert metrics.committed
            # The cut-off nodes are behind, not forked.
            for node in cluster.nodes:
                if node.node_id in minority:
                    assert node.chain.height <= 2
        net.heal()
