"""RQ1 reference systems: ProvChain, BlockCloud, IPFSProvenance."""

import pytest

from repro.errors import StorageError
from repro.systems import BlockCloud, IPFSProvenance, ProvChain


class TestProvChain:
    @pytest.fixture
    def system(self):
        return ProvChain(difficulty_bits=4, batch_size=4)

    def test_operations_audited_and_verified(self, system):
        system.create("alice", "doc", b"v1")
        system.update("alice", "doc", b"v2")
        system.read("alice", "doc")
        answer = system.audit_object("doc")
        assert answer.verified
        assert [r["operation"] for r in answer.records] == \
            ["create", "update", "read"]

    def test_audit_covers_shares(self, system):
        system.create("alice", "doc", b"v1")
        system.share("alice", "doc", "bob")
        answer = system.audit_object("doc")
        assert any(r["operation"] == "share" for r in answer.records)

    def test_pseudonymized_actors(self, system):
        system.create("alice", "doc", b"v1")
        answer = system.audit_object("doc")
        actor = answer.records[0]["actor"]
        assert actor.startswith("anon-")
        assert system.reidentify(actor) == "alice"

    def test_tampering_database_detected_by_audit(self, system):
        system.create("alice", "doc", b"v1")
        system.finalize()
        # An attacker with database access rewrites history...
        system.database.annotate(
            system.database.by_subject("doc")[0]["record_id"],
            operation="never-happened",
        )
        answer = system.audit_object("doc")
        # ...but the anchored Merkle proof no longer matches.
        assert not answer.verified

    def test_chain_grows_with_batches(self, system):
        for i in range(9):
            system.create("alice", f"f{i}", b"x")
        system.finalize()
        assert system.blocks_sealed >= 2
        assert system.records_captured == 9

    def test_pow_work_performed(self, system):
        system.create("alice", "doc", b"v1")
        system.finalize()
        meta = system.chain.head.header.consensus_meta
        assert meta["algo"] == "pow"
        system.engine.validate_called = True
        # Sealed block actually meets the declared target.
        assert int.from_bytes(system.chain.head.block_hash, "big") < \
            system.engine.target


class TestBlockCloud:
    def test_same_pipeline_pos_sealing(self):
        system = BlockCloud(batch_size=2)
        system.create("bob", "f", b"1")
        system.update("bob", "f", b"2")
        answer = system.audit_object("f")
        assert answer.verified
        meta = system.chain.head.header.consensus_meta
        assert meta["algo"] == "pos"

    def test_pos_cheaper_than_pow(self):
        # The BlockCloud claim: far less sealing work than ProvChain.
        pow_system = ProvChain(difficulty_bits=8, batch_size=1)
        pos_system = BlockCloud(batch_size=1)
        pow_system.create("u", "f", b"x")
        pos_system.create("u", "f", b"x")
        pow_system.finalize()
        pos_system.finalize()
        # PoW expected ~2^8 hash attempts; PoS exactly one selection.
        assert pow_system.engine.estimated_hashes() >= 256

    def test_proposers_are_registered_validators(self):
        system = BlockCloud(batch_size=1)
        for i in range(4):
            system.create("u", f"f{i}", b"x")
        system.finalize()
        validator_ids = {v.validator_id for v in system.validators}
        for block in system.chain.blocks[1:]:
            assert block.header.proposer in validator_ids


class TestIPFSProvenance:
    @pytest.fixture
    def system(self):
        return IPFSProvenance(batch_size=2, chunk_size=64)

    def test_add_get_verify(self, system):
        blob = b"X" * 500
        system.add_file("alice", "data", blob)
        assert system.get_file("alice", "data") == blob
        assert system.verify_file("data", blob)
        assert not system.verify_file("data", blob + b"!")

    def test_versioning(self, system):
        system.add_file("alice", "f", b"v0")
        system.update_file("alice", "f", b"v1")
        assert system.get_file("alice", "f", version=0) == b"v0"
        assert system.get_file("alice", "f") == b"v1"

    def test_duplicate_add_rejected(self, system):
        system.add_file("alice", "f", b"x")
        with pytest.raises(StorageError):
            system.add_file("alice", "f", b"y")

    def test_audit_history_verified(self, system):
        system.add_file("alice", "f", b"v0")
        system.update_file("alice", "f", b"v1")
        system.get_file("alice", "f")
        answer = system.audit_history("f")
        assert answer.verified
        assert len(answer.records) == 3

    def test_availability_audit_detects_dangling_cid(self, system):
        system.add_file("alice", "f", b"data")
        # The CAS operator unpins and collects the content...
        latest_cid = system._cids["f"][-1]
        system.cas.unpin(latest_cid)
        system.cas.collect_garbage()
        # ...the on-chain record still exists, and the audit flags it.
        assert system.availability_audit() == ["f"]

    def test_storage_split_hash_on_chain_bytes_off_chain(self, system):
        # Distinct counters in every chunk so dedup cannot shrink it.
        blob = b"".join(i.to_bytes(4, "big") for i in range(1000))
        system.add_file("alice", "big", blob)
        system.anchors.flush()
        assert system.stored_bytes_off_chain >= 4000
        # On-chain cost is a constant-size anchor, far below payload.
        assert system.bytes_on_chain < 1000
