"""The pandemic diagnostic platform (Abouyoussef et al., §4.3)."""

import pytest

from repro.errors import DomainError, PrivacyError
from repro.systems import PandemicPlatform


@pytest.fixture
def platform():
    platform = PandemicPlatform(["cdc", "ecdc"])
    for patient in ("alice", "bob", "carol"):
        platform.enroll_patient(patient)
    return platform


class TestSubmissions:
    def test_positive_diagnosis(self, platform):
        receipt = platform.submit_symptoms(
            "alice", {"fever": 3, "anosmia": 3, "dyspnea": 2}
        )
        assert receipt.positive
        assert receipt.confidence_pct > 50

    def test_negative_diagnosis(self, platform):
        receipt = platform.submit_symptoms("bob", {"cough": 1})
        assert not receipt.positive

    def test_unenrolled_patient_rejected(self, platform):
        with pytest.raises(PrivacyError):
            platform.submit_symptoms("stranger", {"fever": 3})

    def test_severity_bounds(self, platform):
        with pytest.raises(DomainError):
            platform.submit_symptoms("alice", {"fever": 9})

    def test_submissions_land_on_chain(self, platform):
        platform.submit_symptoms("alice", {"fever": 2})
        platform.submit_symptoms("bob", {"cough": 3, "fatigue": 3})
        # deploy block + 2 submission blocks
        assert platform.chain.height == 3
        platform.chain.verify()


class TestAnonymity:
    def test_no_identities_on_chain(self, platform):
        platform.submit_symptoms("alice", {"fever": 3})
        platform.submit_symptoms("alice", {"fever": 1})
        assert platform.submitters_are_anonymous()

    def test_repeat_submissions_unlinkable(self, platform):
        platform.submit_symptoms("alice", {"fever": 3})
        platform.submit_symptoms("alice", {"fever": 3})
        senders = [
            tx.sender
            for block in platform.chain.blocks
            for tx in block.transactions
            if tx.sender.startswith("anon-")
        ]
        assert len(senders) == 2
        assert senders[0] != senders[1]

    def test_manager_can_open_under_due_process(self, platform):
        signature = platform.group.sign("carol", {"symptoms": [1, 0, 0, 0, 0]})
        assert platform.open_submission(signature) == "carol"


class TestAuthorityAccess:
    def test_statistics_aggregate_only(self, platform):
        platform.submit_symptoms("alice", {"fever": 3, "anosmia": 3})
        platform.submit_symptoms("bob", {"cough": 1})
        platform.submit_symptoms("carol", {"dyspnea": 3, "fever": 2})
        tally = platform.statistics()
        assert tally["positive"] + tally["negative"] == 3
        assert tally["positive"] == 2

    def test_detector_is_deterministic_and_auditable(self, platform):
        a = platform.submit_symptoms("alice", {"fever": 2, "cough": 2})
        b = platform.submit_symptoms("bob", {"fever": 2, "cough": 2})
        assert a.positive == b.positive
        assert a.confidence_pct == b.confidence_pct
