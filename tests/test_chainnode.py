"""ChainNode: gossiped transactions and block propagation between nodes."""

import pytest

from repro.chain import ChainParams
from repro.consensus import ProofOfAuthority
from repro.network import ChainNode, GossipProtocol, SimNet
from .conftest import data_tx


@pytest.fixture
def mesh():
    net = SimNet(seed=9)
    gossip = GossipProtocol(net, fanout=3, seed=9)
    nodes = [
        ChainNode(f"node-{i}", net, ChainParams(chain_id="mesh"))
        for i in range(5)
    ]
    for node in nodes:
        node.join_gossip(gossip)
    return net, nodes


class TestTransactionPropagation:
    def test_gossiped_tx_reaches_all_mempools(self, mesh):
        net, nodes = mesh
        nodes[0].submit_transaction(data_tx(1), gossip=True)
        net.run()
        assert all(len(node.mempool) == 1 for node in nodes)

    def test_local_submit_stays_local(self, mesh):
        net, nodes = mesh
        nodes[0].submit_transaction(data_tx(1), gossip=False)
        net.run()
        assert len(nodes[0].mempool) == 1
        assert all(len(node.mempool) == 0 for node in nodes[1:])

    def test_duplicate_gossip_not_duplicated_in_mempool(self, mesh):
        net, nodes = mesh
        tx = data_tx(1)
        nodes[0].submit_transaction(tx, gossip=True)
        nodes[1].submit_transaction(tx, gossip=True)
        net.run()
        assert all(len(node.mempool) == 1 for node in nodes)


class TestBlockPropagation:
    def test_pushed_block_adopted_and_mempool_cleared(self, mesh):
        net, nodes = mesh
        engine = ProofOfAuthority([node.node_id for node in nodes])
        tx = data_tx(1)
        nodes[0].submit_transaction(tx, gossip=True)
        net.run()
        proposer = nodes[1]    # node-1 owns height 1 in round-robin
        batch = proposer.mempool.pop_batch(10)
        block, _ = engine.seal(proposer.chain, batch)
        proposer.chain.append_block(block)
        proposer.push_block(block)
        net.run()
        assert all(node.chain.height == 1 for node in nodes)
        assert all(len(node.mempool) == 0 for node in nodes)
        heads = {node.chain.head.block_id for node in nodes}
        assert len(heads) == 1

    def test_stale_block_ignored(self, mesh):
        net, nodes = mesh
        engine = ProofOfAuthority([node.node_id for node in nodes])
        # Advance everyone to height 1.
        block, _ = engine.seal(nodes[1].chain, [data_tx(1)])
        for node in nodes:
            node.chain.append_block(block)
        # Re-push the same (now stale) block: heights must not change.
        nodes[1].push_block(block)
        net.run()
        assert all(node.chain.height == 1 for node in nodes)

    def test_multi_round_consensus_over_network(self, mesh):
        net, nodes = mesh
        engine = ProofOfAuthority([node.node_id for node in nodes])
        for round_number in range(4):
            origin = nodes[round_number % len(nodes)]
            origin.submit_transaction(data_tx(round_number), gossip=True)
            net.run()
            height = nodes[0].chain.height + 1
            proposer = next(n for n in nodes if n.node_id ==
                            engine.scheduled_authority(height))
            batch = proposer.mempool.pop_batch(10)
            block, _ = engine.seal(proposer.chain, batch)
            proposer.chain.append_block(block)
            proposer.push_block(block)
            net.run()
        assert all(node.chain.height == 4 for node in nodes)
        for node in nodes:
            node.chain.verify()


class TestTopicRegistration:
    """on_topic duplicate-handler guard (silent replacement used to
    lose whichever server registered first)."""

    def test_different_handler_on_occupied_topic_raises(self):
        from repro.errors import ChainError
        net = SimNet(seed=1)
        node = ChainNode("n0", net, ChainParams(chain_id="dup"))
        node.on_topic("custom", lambda m: None)
        with pytest.raises(ChainError):
            node.on_topic("custom", lambda m: None)

    def test_same_handler_is_idempotent(self):
        net = SimNet(seed=1)
        node = ChainNode("n0", net, ChainParams(chain_id="dup"))

        def handler(msg):
            pass

        node.on_topic("custom", handler)
        node.on_topic("custom", handler)  # no-op, no raise

    def test_replace_true_takes_over_deliberately(self):
        net = SimNet(seed=1)
        node = ChainNode("n0", net, ChainParams(chain_id="dup"))
        seen = []
        node.on_topic("custom", lambda m: seen.append("old"))
        node.on_topic("custom", lambda m: seen.append("new"),
                      replace=True)
        from repro.network import NetMessage
        net.register("peer", lambda m: None)
        net.send(NetMessage("peer", "n0", "custom", {}))
        net.run()
        assert seen == ["new"]

    def test_builtin_topics_collide_with_user_handlers(self):
        from repro.errors import ChainError
        net = SimNet(seed=1)
        node = ChainNode("n0", net, ChainParams(chain_id="dup"))
        # "tx"/"block"/"ops/metrics" are claimed in __init__.
        with pytest.raises(ChainError):
            node.on_topic("tx", lambda m: None)

    def test_serve_shards_and_sync_are_reentrant(self):
        # Bound-method equality makes re-serving the same facade an
        # idempotent no-op (facade reopen path), not a collision.
        from repro.sharding import ShardedChain
        from repro.sync import SnapshotServer

        net = SimNet(seed=1)
        node = ChainNode("n0", net, ChainParams(chain_id="dup"))
        sharded = ShardedChain(n_shards=2)
        node.serve_shards(sharded)
        node.serve_shards(sharded)
        server = SnapshotServer(sharded)
        node.serve_sync(server)
        node.serve_sync(server)
