"""Merkle tree invariants: proofs verify, forgeries fail."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.merkle import (
    EMPTY_ROOT,
    MerkleTree,
    root_of,
    verify_proof,
    verify_proof_or_raise,
)
from repro.errors import InvalidProof


class TestConstruction:
    def test_empty_tree_root(self):
        assert MerkleTree().root == EMPTY_ROOT

    def test_single_leaf(self):
        tree = MerkleTree(["only"])
        proof = tree.prove(0)
        assert proof.path == ()
        assert verify_proof(tree.root, "only", proof)

    def test_root_changes_with_content(self):
        assert MerkleTree(["a", "b"]).root != MerkleTree(["a", "c"]).root

    def test_root_changes_with_order(self):
        assert MerkleTree(["a", "b"]).root != MerkleTree(["b", "a"]).root

    def test_odd_leaf_promotion_no_duplicate_ambiguity(self):
        # [a, b, c] must differ from [a, b, c, c] (Bitcoin's CVE trap).
        assert MerkleTree(["a", "b", "c"]).root != \
            MerkleTree(["a", "b", "c", "c"]).root

    def test_append_returns_index_and_changes_root(self):
        tree = MerkleTree(["a"])
        old_root = tree.root
        index = tree.append("b")
        assert index == 1
        assert tree.root != old_root

    def test_root_of_one_shot(self):
        assert root_of(["x", "y"]) == MerkleTree(["x", "y"]).root

    def test_prove_out_of_range(self):
        with pytest.raises(IndexError):
            MerkleTree(["a"]).prove(5)


class TestVerification:
    def test_wrong_value_fails(self):
        tree = MerkleTree(["a", "b", "c", "d"])
        proof = tree.prove(2)
        assert verify_proof(tree.root, "c", proof)
        assert not verify_proof(tree.root, "x", proof)

    def test_wrong_root_fails(self):
        tree = MerkleTree(["a", "b", "c", "d"])
        other = MerkleTree(["w", "x", "y", "z"])
        proof = tree.prove(1)
        assert not verify_proof(other.root, "b", proof)

    def test_proof_for_wrong_position_fails(self):
        tree = MerkleTree(["a", "b", "c", "d"])
        proof_for_a = tree.prove(0)
        assert not verify_proof(tree.root, "b", proof_for_a)

    def test_verify_or_raise(self):
        tree = MerkleTree(["a", "b"])
        proof = tree.prove(0)
        verify_proof_or_raise(tree.root, "a", proof)
        with pytest.raises(InvalidProof):
            verify_proof_or_raise(tree.root, "b", proof)

    def test_proof_size_grows_logarithmically(self):
        small = MerkleTree(range(8)).prove(0)
        large = MerkleTree(range(1024)).prove(0)
        assert len(small.path) == 3
        assert len(large.path) == 10


class TestProperties:
    @settings(max_examples=40)
    @given(st.lists(st.integers(), min_size=1, max_size=64))
    def test_all_leaves_provable(self, values):
        tree = MerkleTree(values)
        for i, value in enumerate(values):
            assert verify_proof(tree.root, value, tree.prove(i))

    @settings(max_examples=40)
    @given(st.lists(st.text(max_size=10), min_size=2, max_size=32),
           st.data())
    def test_cross_leaf_forgery_fails(self, values, data):
        tree = MerkleTree(values)
        i = data.draw(st.integers(min_value=0, max_value=len(values) - 1))
        j = data.draw(st.integers(min_value=0, max_value=len(values) - 1))
        proof_i = tree.prove(i)
        if values[j] != values[i]:
            assert not verify_proof(tree.root, values[j], proof_i)

    @settings(max_examples=30)
    @given(st.lists(st.binary(max_size=16), min_size=1, max_size=32))
    def test_rebuild_determinism(self, values):
        assert MerkleTree(values).root == MerkleTree(values).root

    @settings(max_examples=30)
    @given(st.lists(st.integers(), min_size=1, max_size=24),
           st.integers())
    def test_append_preserves_previous_leaf_proofs(self, values, extra):
        tree = MerkleTree(values)
        tree.append(extra)
        # Proofs must be regenerated against the new root — and work.
        for i, value in enumerate(values):
            assert verify_proof(tree.root, value, tree.prove(i))


class TestAppendOnlyAudit:
    def test_prefix_root_matches_historical_root(self):
        values = list(range(10))
        old = MerkleTree(values[:6])
        grown = MerkleTree(values)
        assert grown.prefix_root(6) == old.root
        assert grown.is_append_of(old.root, 6)

    def test_rewritten_history_detected(self):
        old = MerkleTree(["a", "b", "c"])
        tampered = MerkleTree(["a", "X", "c", "d"])
        assert not tampered.is_append_of(old.root, 3)

    def test_shrunk_log_detected(self):
        old = MerkleTree(["a", "b", "c", "d"])
        shrunk = MerkleTree(["a", "b"])
        assert not shrunk.is_append_of(old.root, 4)

    def test_prefix_bounds(self):
        tree = MerkleTree(["a"])
        with pytest.raises(IndexError):
            tree.prefix_root(5)

    @settings(max_examples=25)
    @given(st.lists(st.integers(), min_size=1, max_size=30),
           st.lists(st.integers(), max_size=10))
    def test_property_every_extension_audits_clean(self, base, extra):
        old = MerkleTree(base)
        grown = MerkleTree(base + extra)
        assert grown.is_append_of(old.root, len(base))
