"""Workload generators and the analysis/measurement layer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    LatencyRecorder,
    StorageAccounting,
    Sweep,
    format_table,
)
from repro.analysis.figures import ascii_series, multi_series_to_csv, series_to_csv
from repro.analysis.tables import (
    PUBLISHED_TABLE1,
    render_table1,
    render_table2,
    table1_data,
    table1_matches_paper,
    table2_data,
)
from repro.workloads import (
    ArrivalProcess,
    CloudOpsWorkload,
    ForensicCaseWorkload,
    QueryWorkload,
    SupplyChainWorkload,
    WorkflowShape,
    ZipfSampler,
)


class TestZipf:
    def test_skew_favours_head(self):
        sampler = ZipfSampler(100, s=1.2, seed=1)
        samples = sampler.sample_many(2000)
        head = sum(1 for s in samples if s == 0)
        tail = sum(1 for s in samples if s == 99)
        assert head > 10 * max(tail, 1)

    def test_zero_skew_roughly_uniform(self):
        sampler = ZipfSampler(10, s=0.0, seed=1)
        samples = sampler.sample_many(5000)
        counts = [samples.count(i) for i in range(10)]
        assert max(counts) < 2 * min(counts)

    def test_deterministic(self):
        a = ZipfSampler(50, seed=9).sample_many(100)
        b = ZipfSampler(50, seed=9).sample_many(100)
        assert a == b

    @settings(max_examples=20)
    @given(st.integers(min_value=1, max_value=200))
    def test_samples_in_range(self, n):
        sampler = ZipfSampler(n, seed=0)
        assert all(0 <= s < n for s in sampler.sample_many(50))


class TestArrivals:
    def test_constant(self):
        assert ArrivalProcess("constant", mean=5).timestamps(3) == [5, 10, 15]

    def test_bursty_has_zero_gaps(self):
        process = ArrivalProcess("bursty", mean=2, burst_size=5, seed=1)
        gaps = [process.next_gap() for _ in range(20)]
        assert 0 in gaps
        assert max(gaps) >= 10

    def test_timestamps_monotone(self):
        process = ArrivalProcess("uniform", mean=3, seed=2)
        ts = process.timestamps(50)
        assert all(a <= b for a, b in zip(ts, ts[1:]))


class TestGenerators:
    def test_cloud_ops_replayable(self):
        a = CloudOpsWorkload(seed=4).generate(100)
        b = CloudOpsWorkload(seed=4).generate(100)
        assert a == b

    def test_cloud_ops_create_before_use(self):
        ops = CloudOpsWorkload(seed=5).generate(200)
        created = set()
        for op in ops:
            if op.op == "create":
                created.add(op.key)
            else:
                assert op.key in created

    def test_workflow_shape_is_dag(self):
        specs = WorkflowShape(n_tasks=30, fanout=3, seed=2).tasks()
        produced = {"external-input"}
        for spec in specs:
            assert all(i in produced for i in spec["inputs"])
            produced.update(spec["outputs"])

    def test_forensic_plan_dependencies_exist(self):
        plan = ForensicCaseWorkload(n_evidence=15, seed=3).plan()
        seen = set()
        for item in plan["evidence"]:
            for dep in item["depends_on"]:
                assert dep in seen
            seen.add(item["evidence_id"])

    def test_supply_chain_journeys_no_self_hops(self):
        plans = SupplyChainWorkload(seed=1).plan()
        for plan in plans:
            journey = plan["journey"]
            assert all(a != b for a, b in zip(journey, journey[1:]))

    def test_query_workload_repeats_under_zipf(self):
        workload = QueryWorkload(subjects=[f"s{i}" for i in range(50)],
                                 zipf_s=1.3, seed=2)
        queries = workload.queries(500)
        # Skew: the hottest subject dominates — that is what makes the
        # repeated-query cache (paper §6.2) pay off.
        head_share = queries.count(max(set(queries), key=queries.count))
        assert head_share > 50          # >10% of 500 queries hit one subject
        assert len(set(queries)) < len(queries)


class TestMetrics:
    def test_latency_percentiles(self):
        recorder = LatencyRecorder()
        for v in range(1, 101):
            recorder.record(v)
        assert recorder.percentile(50) == 50
        assert recorder.percentile(99) == 99
        assert recorder.percentile(100) == 100
        assert recorder.mean() == pytest.approx(50.5)

    def test_empty_recorder_raises(self):
        with pytest.raises(ValueError):
            LatencyRecorder().percentile(50)

    def test_time_block_records(self):
        recorder = LatencyRecorder()
        with recorder.time_block():
            sum(range(1000))
        assert recorder.count == 1
        assert recorder.percentile(100) >= 0

    def test_storage_accounting(self):
        acct = StorageAccounting()
        acct.add_on_chain(100, label="anchor")
        acct.add_off_chain(900, label="payload")
        assert acct.total == 1000
        assert acct.on_chain_fraction() == pytest.approx(0.1)
        assert acct.expansion_factor(500) == pytest.approx(2.0)


class TestSweepAndTables:
    def test_sweep_rows(self):
        result = Sweep("x", [1, 2, 3], lambda x: {"y": x * 2}).run()
        assert result.column("y") == [2, 4, 6]
        assert result.is_monotonic("y")
        assert not result.is_monotonic("y", increasing=False)

    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": "xy"}], ["a", "b"])
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("a")

    def test_table1_regenerates_published_table(self):
        assert table1_matches_paper()
        assert table1_data() == PUBLISHED_TABLE1

    def test_render_table1_contains_all_fields(self):
        text = render_table1()
        for fields in PUBLISHED_TABLE1.values():
            for field in fields:
                assert field in text

    def test_table2_covers_all_five_domains(self):
        data = table2_data()
        assert set(data) == {"scientific", "digital_forensics",
                             "machine_learning", "supply_chain",
                             "healthcare"}
        text = render_table2()
        assert "Illegitimate product registration" in text

    def test_every_table2_claim_names_real_module(self):
        import importlib

        for considerations in table2_data().values():
            for _, implementation in considerations:
                module_path = implementation.split()[0]
                parts = module_path.split(".")
                # Walk as deep as the module goes, then check attributes.
                module = None
                for depth in range(len(parts), 0, -1):
                    try:
                        module = importlib.import_module(
                            "repro." + ".".join(parts[:depth])
                        )
                        remainder = parts[depth:]
                        break
                    except ModuleNotFoundError:
                        continue
                assert module is not None, module_path
                target = module
                for attr in remainder:
                    target = getattr(target, attr)


class TestFigureHelpers:
    def test_sparkline_length(self):
        assert len(ascii_series([1, 2, 3])) == 3

    def test_sparkline_downsamples(self):
        assert len(ascii_series(list(range(1000)), width=60)) == 60

    def test_flat_series(self):
        spark = ascii_series([5, 5, 5])
        assert len(set(spark)) == 1

    def test_csv_output(self):
        csv = series_to_csv([1, 2], [10, 20], "n", "cost")
        assert csv.splitlines() == ["n,cost", "1,10", "2,20"]

    def test_multi_series_csv(self):
        csv = multi_series_to_csv([1, 2], {"a": [3, 4], "b": [5, 6]})
        assert csv.splitlines()[0] == "x,a,b"
        assert csv.splitlines()[2] == "2,4,6"
