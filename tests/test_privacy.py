"""Privacy layer: commitments, range proofs, group signatures, encryption."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DecryptionError, PrivacyError
from repro.privacy import (
    ABEAuthority,
    GroupManager,
    PseudonymManager,
    SearchableIndex,
    SymmetricKey,
    decrypt,
    encrypt,
)
from repro.privacy.commitment import PedersenCommitment
from repro.privacy.rangeproof import prove_range, verify_range


class TestPedersen:
    def test_open_roundtrip(self):
        c, r = PedersenCommitment.commit(123, seed=b"a")
        assert c.open(123, r)
        assert not c.open(124, r)

    def test_hiding_across_seeds(self):
        c1, _ = PedersenCommitment.commit(5, seed=b"x")
        c2, _ = PedersenCommitment.commit(5, seed=b"y")
        assert c1.value != c2.value

    def test_additive_homomorphism(self):
        c1, r1 = PedersenCommitment.commit(10, seed=b"a")
        c2, r2 = PedersenCommitment.commit(32, seed=b"b")
        assert (c1 * c2).open(42, r1 + r2)

    def test_subtractive_homomorphism(self):
        c1, r1 = PedersenCommitment.commit(50, seed=b"a")
        c2, r2 = PedersenCommitment.commit(8, seed=b"b")
        assert (c1 / c2).open(42, r1 - r2)

    def test_scalar_multiplication(self):
        c, r = PedersenCommitment.commit(7, seed=b"a")
        assert (c ** 3).open(21, 3 * r)

    def test_shift(self):
        c, r = PedersenCommitment.commit(7, seed=b"a")
        assert c.shift(5).open(12, r)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=2**30),
           st.integers(min_value=0, max_value=2**30))
    def test_property_homomorphism(self, a, b):
        ca, ra = PedersenCommitment.commit(a, seed=b"pa")
        cb, rb = PedersenCommitment.commit(b, seed=b"pb")
        assert (ca * cb).open(a + b, ra + rb)


class TestRangeProof:
    def test_valid_proof_verifies(self):
        c, r = PedersenCommitment.commit(42, seed=b"v")
        proof = prove_range(42, r, lo=0, hi=100, n_bits=8)
        assert verify_range(c, proof)

    def test_boundary_values(self):
        for value in (20, 80):
            c, r = PedersenCommitment.commit(value, seed=b"b%d" % value)
            proof = prove_range(value, r, lo=20, hi=80, n_bits=8)
            assert verify_range(c, proof)

    def test_false_statement_unprovable(self):
        _, r = PedersenCommitment.commit(150, seed=b"v")
        with pytest.raises(PrivacyError):
            prove_range(150, r, lo=0, hi=100, n_bits=8)

    def test_proof_bound_to_commitment(self):
        c, r = PedersenCommitment.commit(42, seed=b"v")
        proof = prove_range(42, r, lo=0, hi=100, n_bits=8)
        other, _ = PedersenCommitment.commit(42, seed=b"other")
        # Same value, different randomness: proof must not transfer.
        assert not verify_range(other, proof)

    def test_tampered_proof_fails(self):
        c, r = PedersenCommitment.commit(42, seed=b"v")
        proof = prove_range(42, r, lo=0, hi=100, n_bits=8)
        import dataclasses

        bad_bit = dataclasses.replace(proof.lower_bits[0],
                                      z0=proof.lower_bits[0].z0 + 1)
        bad = dataclasses.replace(
            proof, lower_bits=(bad_bit, *proof.lower_bits[1:])
        )
        assert not verify_range(c, bad)

    def test_range_too_wide_rejected(self):
        _, r = PedersenCommitment.commit(1, seed=b"v")
        with pytest.raises(PrivacyError):
            prove_range(1, r, lo=0, hi=10**9, n_bits=8)

    def test_empty_range_rejected(self):
        _, r = PedersenCommitment.commit(1, seed=b"v")
        with pytest.raises(PrivacyError):
            prove_range(1, r, lo=10, hi=5)

    def test_proof_size_linear_in_bits(self):
        c, r = PedersenCommitment.commit(3, seed=b"v")
        p8 = prove_range(3, r, lo=0, hi=200, n_bits=8)
        p16 = prove_range(3, r, lo=0, hi=200, n_bits=16)
        assert p16.size_bytes == pytest.approx(2 * p8.size_bytes, rel=0.1)

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=255))
    def test_property_all_in_range_values_provable(self, value):
        c, r = PedersenCommitment.commit(value, seed=b"pv")
        proof = prove_range(value, r, lo=0, hi=255, n_bits=8)
        assert verify_range(c, proof)


class TestGroupSignatures:
    @pytest.fixture
    def group(self):
        manager = GroupManager("hospital")
        for member in ("dr-a", "dr-b"):
            manager.enroll(member)
        return manager

    def test_member_signature_verifies(self, group):
        sig = group.sign("dr-a", "diagnosis-1")
        assert group.verify("diagnosis-1", sig)

    def test_non_member_cannot_sign(self, group):
        with pytest.raises(PrivacyError):
            group.sign("outsider", "msg")

    def test_message_binding(self, group):
        sig = group.sign("dr-a", "msg-1")
        assert not group.verify("msg-2", sig)

    def test_unlinkability(self, group):
        sig1 = group.sign("dr-a", "m1")
        sig2 = group.sign("dr-a", "m2")
        assert not group.are_linkable(sig1, sig2)

    def test_manager_opens_to_signer(self, group):
        sig = group.sign("dr-b", "m")
        assert group.open(sig) == "dr-b"

    def test_double_enrollment_rejected(self, group):
        with pytest.raises(PrivacyError):
            group.enroll("dr-a")

    def test_wrong_group_rejected(self, group):
        other = GroupManager("clinic")
        other.enroll("dr-a")
        sig = other.sign("dr-a", "m")
        assert not group.verify("m", sig)


class TestSymmetricEncryption:
    def test_roundtrip(self):
        key = SymmetricKey.derive("k")
        assert decrypt(key, encrypt(key, b"secret")) == b"secret"

    def test_wrong_key_fails(self):
        blob = encrypt(SymmetricKey.derive("k1"), b"secret")
        with pytest.raises(DecryptionError):
            decrypt(SymmetricKey.derive("k2"), blob)

    def test_tamper_detected(self):
        key = SymmetricKey.derive("k")
        blob = bytearray(encrypt(key, b"secret data here"))
        blob[20] ^= 0xFF
        with pytest.raises(DecryptionError):
            decrypt(key, bytes(blob))

    def test_empty_plaintext(self):
        key = SymmetricKey.derive("k")
        assert decrypt(key, encrypt(key, b"")) == b""

    @settings(max_examples=25)
    @given(st.binary(max_size=2000))
    def test_property_roundtrip(self, plaintext):
        key = SymmetricKey.derive("prop")
        assert decrypt(key, encrypt(key, plaintext)) == plaintext


class TestABE:
    @pytest.fixture
    def authority(self):
        authority = ABEAuthority()
        authority.issue_key("cardio-doc", ["doctor", "cardiology"])
        authority.issue_key("nurse", ["nurse"])
        return authority

    def test_satisfying_attributes_decrypt(self, authority):
        ct = authority.encrypt(b"ehr", ["doctor"])
        assert authority.decrypt("cardio-doc", ct) == b"ehr"

    def test_missing_attribute_fails(self, authority):
        ct = authority.encrypt(b"ehr", ["doctor", "oncology"])
        with pytest.raises(DecryptionError):
            authority.decrypt("cardio-doc", ct)

    def test_no_key_fails(self, authority):
        ct = authority.encrypt(b"ehr", ["doctor"])
        with pytest.raises(DecryptionError):
            authority.decrypt("stranger", ct)

    def test_revoked_key_fails(self, authority):
        ct = authority.encrypt(b"ehr", ["doctor"])
        authority.revoke_key("cardio-doc")
        with pytest.raises(DecryptionError):
            authority.decrypt("cardio-doc", ct)

    def test_empty_policy_rejected(self, authority):
        with pytest.raises(PrivacyError):
            authority.encrypt(b"x", [])


class TestSearchableEncryption:
    def test_search_matches_indexed(self):
        index = SearchableIndex(SymmetricKey.derive("s"))
        index.index_document("d1", ["covid", "xray"])
        index.index_document("d2", ["covid"])
        index.index_document("d3", ["mri"])
        assert index.search_keyword("covid") == {"d1", "d2"}
        assert index.search_keyword("mri") == {"d3"}
        assert index.search_keyword("absent") == set()

    def test_server_sees_only_tokens(self):
        index = SearchableIndex(SymmetricKey.derive("s"))
        index.index_document("d1", ["secret-term"])
        token = index.trapdoor("secret-term")
        assert b"secret-term" not in token
        assert index.search(token) == {"d1"}

    def test_different_keys_incompatible(self):
        index1 = SearchableIndex(SymmetricKey.derive("k1"))
        index2 = SearchableIndex(SymmetricKey.derive("k2"))
        index1.index_document("d1", ["kw"])
        assert index1.search(index2.trapdoor("kw")) == set()


class TestPseudonyms:
    def test_deterministic_per_epoch(self):
        pm = PseudonymManager()
        assert pm.pseudonym("alice", 3) == pm.pseudonym("alice", 3)

    def test_unlinkable_across_epochs(self):
        pm = PseudonymManager()
        assert pm.pseudonym("alice", 0) != pm.pseudonym("alice", 1)

    def test_reidentification(self):
        pm = PseudonymManager()
        name = pm.pseudonym("alice", 5)
        assert pm.reidentify(name) == ("alice", 5)

    def test_unknown_pseudonym_raises(self):
        with pytest.raises(PrivacyError):
            PseudonymManager().reidentify("anon-nope")

    def test_pseudonymize_record(self):
        pm = PseudonymManager()
        record = {"record_id": "r", "actor": "alice", "subject": "s"}
        masked = pm.pseudonymize_record(record)
        assert masked["actor"].startswith("anon-")
        assert masked["subject"] == "s"
        assert record["actor"] == "alice"   # original untouched
