"""Domain modules: scientific workflows, forensics, supply chain,
healthcare, ML."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.clock import SimClock
from repro.domains import (
    AssetGraph,
    CaseManager,
    ColdChainMonitor,
    ConsentRegistry,
    EHRSystem,
    FLConfig,
    FederatedLearning,
    InvestigationStage,
    PUFDevice,
    SupplyChainRegistry,
    TaskStatus,
    WorkflowManager,
)
from repro.errors import (
    AccessDenied,
    ConsentError,
    CustodyError,
    DomainError,
    WorkflowError,
)
from repro.provenance.capture import CaptureSink


# ---------------------------------------------------------------------------
# Scientific workflows (Figure 4)
# ---------------------------------------------------------------------------
class TestWorkflows:
    @pytest.fixture
    def manager(self, sink):
        manager = WorkflowManager(sink, SimClock())
        manager.create_workflow("w", "alice")
        return manager

    def _diamond(self, manager):
        """t1 -> (t2, t3) -> t4: branching then merging."""
        manager.design_task("w", "t1", "alice", ["src"], ["a"])
        manager.design_task("w", "t2", "alice", ["a"], ["b"])
        manager.design_task("w", "t3", "bob", ["a"], ["c"])
        manager.design_task("w", "t4", "bob", ["b", "c"], ["result"])

    def test_schedule_respects_dependencies(self, manager):
        self._diamond(manager)
        order = manager.execution_schedule("w")
        assert order.index("t1") < order.index("t2")
        assert order.index("t2") < order.index("t4")
        assert order.index("t3") < order.index("t4")

    def test_execute_out_of_order_rejected(self, manager):
        self._diamond(manager)
        with pytest.raises(WorkflowError):
            manager.execute_task("t4")

    def test_duplicate_output_producer_rejected(self, manager):
        manager.design_task("w", "t1", "alice", ["src"], ["a"])
        with pytest.raises(WorkflowError):
            manager.design_task("w", "tX", "alice", ["src"], ["a"])

    def test_input_output_overlap_rejected(self, manager):
        with pytest.raises(WorkflowError):
            manager.design_task("w", "t", "alice", ["x"], ["x"])

    def test_invalidation_cascades_through_diamond(self, manager):
        self._diamond(manager)
        for task in manager.execution_schedule("w"):
            manager.execute_task(task)
        cascade = manager.invalidate_task("t1")
        assert set(cascade) == {"t1", "t2", "t3", "t4"}
        assert manager.tasks["t4"].status == TaskStatus.INVALIDATED

    def test_partial_cascade(self, manager):
        self._diamond(manager)
        for task in manager.execution_schedule("w"):
            manager.execute_task(task)
        cascade = manager.invalidate_task("t2")
        assert set(cascade) == {"t2", "t4"}
        assert manager.tasks["t3"].status == TaskStatus.COMPLETED

    def test_reexecution_restores_validity(self, manager):
        self._diamond(manager)
        for task in manager.execution_schedule("w"):
            manager.execute_task(task)
        cascade = manager.invalidate_task("t1")
        for task in manager.execution_schedule("w"):
            if task in cascade:
                manager.re_execute(task)
        assert manager.valid_results("w") == ["a", "b", "c", "result"]
        assert manager.tasks["t1"].execution_count == 2

    def test_reexecute_requires_invalidation(self, manager):
        manager.design_task("w", "t1", "alice", ["src"], ["a"])
        manager.execute_task("t1")
        with pytest.raises(WorkflowError):
            manager.re_execute("t1")

    def test_records_emitted_per_lifecycle_step(self, manager, database):
        manager.design_task("w", "t1", "alice", ["src"], ["a"])
        manager.execute_task("t1")
        manager.invalidate_task("t1")
        ops = [r["operation"] for r in database.records()]
        assert ops == ["execute", "invalidate"]

    def test_provenance_graph_versions_outputs(self, manager):
        manager.design_task("w", "t1", "alice", ["src"], ["a"])
        manager.execute_task("t1")
        assert manager.graph.has_node("a@1")
        assert manager.graph.generating_activity("a@1") == "t1#run1"

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=2, max_value=12), st.integers(0, 100))
    def test_property_cascade_is_impact_closed(self, n_tasks, seed):
        """Everything downstream of an invalidated task must be
        invalidated too — no stale results survive."""
        from repro.workloads import WorkflowShape

        sink = CaptureSink()
        manager = WorkflowManager(sink, SimClock())
        manager.create_workflow("w", "owner")
        for spec in WorkflowShape(n_tasks=n_tasks, seed=seed).tasks():
            manager.design_task("w", spec["task_id"], spec["user_id"],
                                spec["inputs"], spec["outputs"])
        for task in manager.execution_schedule("w"):
            manager.execute_task(task)
        manager.invalidate_task("task-0000")
        for task in manager.tasks.values():
            if task.status == TaskStatus.COMPLETED:
                upstream_invalid = any(
                    manager.tasks.get(dep) is not None
                    and manager.tasks[dep].status == TaskStatus.INVALIDATED
                    for dep in manager.execution_schedule("w")
                    if set(manager.tasks[dep].outputs) & set(task.inputs)
                )
                assert not upstream_invalid


# ---------------------------------------------------------------------------
# Forensics (Figure 5)
# ---------------------------------------------------------------------------
class TestForensics:
    @pytest.fixture
    def cases(self, sink):
        return CaseManager(sink, SimClock())

    def test_stage_order_enforced(self, cases):
        cases.open_case("C", "lead")
        stages = []
        for _ in range(4):
            stages.append(cases.advance_stage("C", "lead").value)
        assert stages == ["preservation", "collection", "analysis",
                          "reporting"]
        with pytest.raises(CustodyError):
            cases.advance_stage("C", "lead")

    def test_collect_requires_right_stage(self, cases):
        cases.open_case("C", "lead")
        with pytest.raises(CustodyError):
            cases.collect_evidence("C", "e", "lead", b"x", "image")

    def test_access_requires_collection_or_later(self, cases):
        cases.open_case("C", "lead")
        cases.advance_stage("C", "lead")
        cases.collect_evidence("C", "e", "lead", b"x", "image")
        with pytest.raises(CustodyError):
            cases.access_evidence("C", "e", "analyst")

    def test_close_requires_reporting(self, cases):
        cases.open_case("C", "lead")
        cases.advance_stage("C", "lead")
        with pytest.raises(CustodyError):
            cases.close_case("C", "lead")

    def test_closed_case_frozen(self, cases):
        cases.open_case("C", "lead")
        for _ in range(4):
            cases.advance_stage("C", "lead")
        cases.close_case("C", "lead")
        with pytest.raises(CustodyError):
            cases.advance_stage("C", "lead")

    def test_unknown_dependency_rejected(self, cases):
        cases.open_case("C", "lead")
        cases.advance_stage("C", "lead")
        with pytest.raises(CustodyError):
            cases.collect_evidence("C", "e", "lead", b"x", "image",
                                   depends_on=["ghost"])

    def test_chain_of_custody_grows(self, cases):
        cases.open_case("C", "lead")
        cases.advance_stage("C", "lead")
        cases.collect_evidence("C", "e", "lead", b"x", "image")
        cases.advance_stage("C", "lead")
        cases.advance_stage("C", "lead")
        cases.access_evidence("C", "e", "analyst-1")
        cases.access_evidence("C", "e", "analyst-2")
        custody = cases.chain_of_custody("C", "e")
        assert [c.actor for c in custody] == ["lead", "analyst-1",
                                              "analyst-2"]
        assert cases.custody_intact("C")

    def test_forest_proofs_per_stage(self, cases):
        cases.open_case("C", "lead")
        cases.advance_stage("C", "lead")
        item = cases.collect_evidence("C", "e", "lead", b"x", "image")
        proof = cases.prove_case_entry(
            "C", InvestigationStage.PRESERVATION, 0
        )
        record = {"evidence_id": "e", "content_hash": item.content_hash,
                  "actor": "lead", "timestamp": item.collected_at}
        assert cases.cases["C"].forest.verify(record, proof)


# ---------------------------------------------------------------------------
# Supply chain
# ---------------------------------------------------------------------------
class TestSupplyChain:
    @pytest.fixture
    def registry(self, sink):
        return SupplyChainRegistry(
            sink, {"acme"}, SimClock(), ColdChainMonitor(20, 80)
        )

    def test_unauthorized_registration_blocked(self, registry):
        with pytest.raises(CustodyError):
            registry.register_product("counterfeiter", "p", "b", "t", 100)
        assert registry.rejected_registrations == 1

    def test_two_phase_transfer(self, registry):
        registry.register_product("acme", "p", "b", "t", 100)
        registry.initiate_transfer("p", "acme", "dist")
        # Ownership does NOT change until confirmation.
        assert registry.products["p"].owner == "acme"
        registry.confirm_transfer("p", "dist")
        assert registry.products["p"].owner == "dist"
        assert registry.trace("p") == ["acme", "dist"]

    def test_non_owner_cannot_initiate(self, registry):
        registry.register_product("acme", "p", "b", "t", 100)
        with pytest.raises(CustodyError):
            registry.initiate_transfer("p", "thief", "thief-warehouse")

    def test_unconfirmed_party_cannot_take(self, registry):
        registry.register_product("acme", "p", "b", "t", 100)
        registry.initiate_transfer("p", "acme", "dist")
        with pytest.raises(CustodyError):
            registry.confirm_transfer("p", "someone-else")

    def test_cancel_pending_transfer(self, registry):
        registry.register_product("acme", "p", "b", "t", 100)
        registry.initiate_transfer("p", "acme", "dist")
        registry.cancel_transfer("p", "acme")
        with pytest.raises(CustodyError):
            registry.confirm_transfer("p", "dist")

    def test_puf_authentication(self, registry):
        product = registry.register_product("acme", "p", "b", "t", 100,
                                            with_puf=True)
        assert registry.authenticate_device("p", product.device)
        clone = PUFDevice.manufacture("p", seed=1234)   # different silicon
        assert not registry.authenticate_device("p", clone)

    def test_cold_chain_excursions(self, registry):
        registry.register_product("acme", "p", "b", "vaccine", 100)
        assert registry.record_temperature("p", "warehouse", 50)
        assert not registry.record_temperature("p", "truck", 95)
        assert len(registry.cold_chain.excursions_for("p")) == 1

    def test_records_schema_valid(self, registry, database):
        registry.register_product("acme", "p", "b", "t", 100)
        from repro.provenance.records import validate_record

        for record in database.records():
            validate_record(record)


# ---------------------------------------------------------------------------
# Healthcare
# ---------------------------------------------------------------------------
class TestHealthcare:
    @pytest.fixture
    def ehr(self, sink):
        system = EHRSystem(sink, SimClock())
        system.credential_staff("dr-a", ["doctor"])
        system.consents.grant("pat-1", "dr-a")
        return system

    def test_consented_write_and_read(self, ehr):
        record = ehr.add_record("pat-1", "dr-a", ["note"], b"body",
                                ["doctor"])
        assert ehr.read_record(record.ehr_id, "dr-a") == b"body"

    def test_unconsented_write_blocked(self, ehr):
        ehr.credential_staff("dr-b", ["doctor"])
        with pytest.raises(ConsentError):
            ehr.add_record("pat-1", "dr-b", ["note"], b"x", ["doctor"])

    def test_revoked_consent_blocks_reads(self, ehr):
        record = ehr.add_record("pat-1", "dr-a", ["note"], b"x", ["doctor"])
        ehr.consents.revoke("pat-1", "dr-a")
        with pytest.raises(AccessDenied):
            ehr.read_record(record.ehr_id, "dr-a")

    def test_break_glass_bypasses_consent_not_audit(self, ehr):
        record = ehr.add_record("pat-1", "dr-a", ["note"], b"x", ["doctor"])
        ehr.credential_staff("dr-er", ["doctor"])
        body = ehr.emergency_access(record.ehr_id, "dr-er", "cardiac arrest")
        assert body == b"x"
        assert len(ehr.emergency_report()) == 1
        disclosures = ehr.disclosures_for("pat-1")
        assert any(d["action"] == "emergency_read" for d in disclosures)

    def test_denied_attempts_appear_in_disclosures(self, ehr):
        record = ehr.add_record("pat-1", "dr-a", ["note"], b"x", ["doctor"])
        ehr.credential_staff("dr-b", ["doctor"])
        with pytest.raises(AccessDenied):
            ehr.read_record(record.ehr_id, "dr-b")
        disclosures = ehr.disclosures_for("pat-1")
        assert any(not d["allowed"] for d in disclosures)

    def test_provenance_carries_pseudonym_not_identity(self, ehr, database):
        ehr.add_record("pat-1", "dr-a", ["note"], b"x", ["doctor"])
        for record in database.records():
            assert record["patient_pseudonym"].startswith("anon-")
            assert "pat-1" not in str(record.values())

    def test_audit_log_tamper_evident(self, ehr):
        ehr.add_record("pat-1", "dr-a", ["note"], b"x", ["doctor"])
        assert ehr.audit.verify()


# ---------------------------------------------------------------------------
# Machine learning
# ---------------------------------------------------------------------------
class TestMLAssets:
    def test_lineage_and_usage(self):
        graph = AssetGraph()
        graph.register("d1", "dataset", "alice")
        graph.register("d2", "dataset", "bob")
        graph.register("op", "operation", "carol", parents=("d1", "d2"))
        graph.register("model", "model", "carol", parents=("op",))
        assert set(graph.lineage("model")) == {"op", "d1", "d2"}
        assert graph.usage_counts() == {"d1": 2, "d2": 2}

    def test_unknown_parent_rejected(self):
        graph = AssetGraph()
        with pytest.raises(DomainError):
            graph.register("m", "model", "x", parents=("ghost",))

    def test_bad_asset_type_rejected(self):
        with pytest.raises(DomainError):
            AssetGraph().register("x", "spreadsheet", "a")


class TestFederatedLearning:
    def test_honest_training_converges(self):
        fl = FederatedLearning(FLConfig(seed=3))
        errors = fl.run(20)
        assert errors[-1] < 0.2
        assert errors[-1] < errors[0]

    def test_poisoning_without_defense_diverges(self):
        fl = FederatedLearning(FLConfig(attacker_fraction=0.4,
                                        defense="none", seed=3))
        errors = fl.run(20)
        assert errors[-1] > errors[0]     # pushed away from the target

    def test_defense_survives_minority_attack(self):
        fl = FederatedLearning(FLConfig(attacker_fraction=0.4,
                                        defense="reputation", seed=3))
        errors = fl.run(20)
        assert errors[-1] < 0.5

    def test_attackers_lose_reputation(self):
        fl = FederatedLearning(FLConfig(attacker_fraction=0.3, seed=3))
        fl.run(10)
        attackers = [p for p in fl.participants if not p.honest]
        honest = [p for p in fl.participants if p.honest]
        assert max(p.reputation for p in attackers) < \
            min(p.reputation for p in honest)

    def test_freeriders_rejected(self):
        fl = FederatedLearning(FLConfig(attacker_fraction=0.3,
                                        attack_kind="freeride", seed=4))
        stats = fl.run_round()
        assert stats["rejected"] == 3

    def test_round_records_emitted(self, sink, database):
        fl = FederatedLearning(FLConfig(seed=1, n_participants=4), sink)
        fl.run_round()
        ops = [r["operation"] for r in database.records()]
        assert ops.count("submit_update") == 4
        assert ops.count("aggregate") == 1

    def test_aggregate_record_links_updates(self, sink, database):
        fl = FederatedLearning(FLConfig(seed=1, n_participants=3), sink)
        fl.run_round()
        aggregates = database.by_operation("aggregate")
        assert len(aggregates[0]["parent_assets"]) == 3
