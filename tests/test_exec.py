"""Process-pool execution engine: determinism, fault handling, guards.

The engine's admission bar (ISSUE 6): commitments — beacon state,
per-shard state roots, federated proofs — must be byte-identical no
matter which executor sealed the rounds, a worker killed mid-round must
degrade to in-process execution without losing a transaction, and no
durable handle may ever cross into a worker.
"""

from __future__ import annotations

import os

import pytest

from repro.chain import Transaction, TxKind
from repro.contracts.contract import Contract, method
from repro.contracts.runtime import ContractRuntime
from repro.crypto.hashing import hash_hex
from repro.crypto.signatures import KeyPair
from repro.errors import ShardError, StorageError
from repro.exec.pool import ProcessExecPool
from repro.persist import DurableStorage
from repro.persist.codec import canonical_decode
from repro.serialization import canonical_encode
from repro.sharding import ShardedChain, ShardedQueryEngine

N_SHARDS = 4


class Tally(Contract):
    """Small stateful contract: every call mutates two keys, so a lost
    or re-ordered call shows up in the state root immediately."""

    def setup(self) -> None:
        self.storage.set("calls", 0)

    @method
    def bump(self, key: str = "", value: int = 0) -> dict:
        self.charge(1)
        self.storage.set(key, value)
        calls = int(self.storage.get("calls", 0)) + 1
        self.storage.set("calls", calls)
        return {"calls": calls}


def runtime_factory() -> ContractRuntime:
    rt = ContractRuntime()
    rt.register(Tally)
    return rt


RECORDS = [
    {"record_id": f"r{i:03d}", "subject": f"exec/asset-{i % 7}",
     "actor": f"actor-{i % 3}", "operation": "update", "timestamp": i}
    for i in range(24)
]


def run_deployment(executor: str, workers: int | None, store_dir: str,
                   kill_round: int | None = None) -> dict:
    """One full deployment: contract deploy + records + mixed rounds,
    returning every commitment an executor could possibly disturb."""
    sc = ShardedChain(
        N_SHARDS, storage_dir=store_dir,
        executor=executor, exec_workers=workers,
        contract_runtime_factory=runtime_factory,
    )
    deploy = Transaction(
        sender="deployer", kind=TxKind.CONTRACT_DEPLOY,
        payload={"contract": "Tally", "args": {}},
        nonce=999, timestamp=1).seal()
    sc.submit(deploy)
    address = "ct-" + hash_hex({"deploy": deploy.tx_id})[:16]
    sc.ingest_records(RECORDS)
    sc.flush_anchors()
    sc.seal_round(timestamp=10)

    n = 0
    for r in range(3):
        for _ in range(8 * N_SHARDS):
            if n % 3 == 0:
                tx = Transaction(
                    sender=f"acct-{n % 9}", kind=TxKind.CONTRACT_CALL,
                    payload={"address": address, "entry": "bump",
                             "args": {"key": f"k{n}", "value": n}},
                    nonce=n, timestamp=100 + n)
            else:
                tx = Transaction(
                    sender=f"acct-{n % 9}", kind=TxKind.DATA,
                    payload={"key": f"d{n}", "value": n},
                    nonce=n, timestamp=100 + n)
            sc.submit(tx.seal())
            n += 1
        if kill_round == r and sc.exec_pool is not None:
            sc.exec_pool.kill_worker(0)
        sc.seal_round(timestamp=1_000 + r)

    rid = next(r["record_id"] for r in RECORDS
               if sc.shard_for_subject(r["subject"])
               .anchor.is_anchored(r["record_id"]))
    record = next(r for r in RECORDS if r["record_id"] == rid)
    proof = ShardedQueryEngine(sc).federated_proof(
        rid, subject=record["subject"])
    header = sc.beacon.chain.block_at(proof.beacon_height).header
    assert proof.verify(record, header)

    out = {
        "beacon": sc.beacon.dump_state(),
        "roots": [sc.shard(s).chain.state.state_root()
                  for s in range(N_SHARDS)],
        "heights": [sc.shard(s).chain.height for s in range(N_SHARDS)],
        "txs_committed": sc.total_txs_committed,
        "proof_shard_header": proof.shard_header.block_hash,
        "proof_beacon_height": proof.beacon_height,
        "respawns": (sc.exec_pool.respawns
                     if sc.exec_pool is not None else 0),
    }
    sc.close()
    return out


COMMITMENT_KEYS = ("beacon", "roots", "heights", "txs_committed",
                   "proof_shard_header", "proof_beacon_height")


@pytest.fixture(scope="module")
def serial_commitments(tmp_path_factory):
    root = tmp_path_factory.mktemp("exec-serial")
    return run_deployment("serial", None, str(root / "store"))


class TestExecutorParity:
    @pytest.mark.parametrize("executor,workers", [
        ("thread", N_SHARDS),
        ("process", 1),
        ("process", 2),
    ])
    def test_commitments_identical_across_executors(
            self, tmp_path, serial_commitments, executor, workers):
        run = run_deployment(executor, workers, str(tmp_path / "store"))
        for key in COMMITMENT_KEYS:
            assert run[key] == serial_commitments[key], key

    def test_worker_killed_mid_round_falls_back_and_respawns(
            self, tmp_path, serial_commitments):
        run = run_deployment("process", 2, str(tmp_path / "store"),
                             kill_round=1)
        # Every commitment — including the round the worker died in —
        # matches serial: the in-process fallback lost nothing and the
        # survivors' blocks were anchored in the same beacon round.
        for key in COMMITMENT_KEYS:
            assert run[key] == serial_commitments[key], key
        # The killed slot respawned (fresh epoch) for the next round.
        assert run["respawns"] >= 1

    def test_signed_workload_verified_in_workers(self, tmp_path):
        keys = [KeyPair.generate(f"exec-signer-{k}") for k in range(4)]

        def run(executor, workers, store_dir):
            sc = ShardedChain(N_SHARDS, storage_dir=store_dir,
                              executor=executor, exec_workers=workers)
            for s in range(N_SHARDS):
                sc.shard(s).chain.params.require_signatures = True
            for i in range(32):
                tx = Transaction(
                    sender=keys[i % 4].address, kind=TxKind.DATA,
                    payload={"key": f"k{i}", "value": i},
                    nonce=i, timestamp=10 + i,
                ).seal().sign_with(keys[i % 4])
                sc.submit(tx)
            sc.seal_round(timestamp=100)
            out = {
                "beacon": sc.beacon.dump_state(),
                "roots": [sc.shard(s).chain.state.state_root()
                          for s in range(N_SHARDS)],
                "committed": sc.total_txs_committed,
            }
            sc.close()
            return out

        serial = run("serial", None, str(tmp_path / "ser"))
        process = run("process", 2, str(tmp_path / "proc"))
        assert process == serial
        assert process["committed"] == 32

    def test_unknown_executor_rejected(self):
        sc = ShardedChain(1)
        with pytest.raises(ShardError):
            sc.seal_round(executor="rayon")
        sc.close()


class TestPoolMechanics:
    def test_as_completed_dispatch_covers_all_jobs(self):
        pool = ProcessExecPool(2)
        try:
            jobs = [
                (i % 2, canonical_encode({
                    "kind": "verify", "items": []}))
                for i in range(6)
            ]
            seen = sorted(index for index, response in pool.run(jobs)
                          if response is not None)
            assert seen == list(range(6))
        finally:
            pool.shutdown()

    def test_verify_batch_survives_dead_worker(self):
        import hashlib
        import hmac as hmac_mod

        pool = ProcessExecPool(2)
        try:
            items = []
            for i in range(8):
                key = f"key-{i}".encode()
                digest = hashlib.sha256(f"msg-{i}".encode()).digest()
                tag = hmac_mod.new(key, digest, hashlib.sha256).digest()
                if i == 3:
                    tag = b"\x00" * len(tag)  # one genuine mismatch
                items.append((digest, key, tag))
            pool.kill_worker(0)
            verdicts = pool.verify_batch(items)
            assert len(verdicts) == 8
            assert verdicts == [i != 3 for i in range(8)]
        finally:
            pool.shutdown()

    def test_pool_rejects_zero_workers(self):
        with pytest.raises(ShardError):
            ProcessExecPool(0)


class TestForkGuards:
    def test_durable_storage_refuses_to_open_inside_worker(self, tmp_path):
        """Not a simulation: a real exec worker tries to open a
        DurableStorage and must be refused by the in-worker guard."""
        pool = ProcessExecPool(1)
        try:
            response = pool.call(0, canonical_encode({
                "kind": "probe_storage",
                "directory": str(tmp_path / "probe"),
            }))
            assert response is not None
            reply = canonical_decode(response)
            assert reply["status"] == "ok"
            assert "StorageError" in reply["raised"]
        finally:
            pool.shutdown()
        # The refused open left nothing behind for the parent to trip on.
        storage = DurableStorage(str(tmp_path / "probe"))
        storage.close()

    def test_pid_guard_blocks_commits_across_fork(self, tmp_path):
        storage = DurableStorage(str(tmp_path / "store"))
        try:
            storage.put_meta("k", 1)  # parent: fine
            storage._owner_pid = os.getpid() + 1  # what a fork sees
            with pytest.raises(StorageError):
                storage.put_meta("k", 2)
        finally:
            storage._owner_pid = os.getpid()
            storage.close()

    def test_spawned_workers_hold_no_parent_fds(self, tmp_path):
        """``fork`` children inherit fds (the pid guard makes any use
        loud — tests above); ``spawn`` children must not even hold
        them.  Open durable storage first, spawn a worker, then audit
        its /proc fd table for anything under the storage directory."""
        import multiprocessing as mp

        if "spawn" not in mp.get_all_start_methods():  # pragma: no cover
            pytest.skip("spawn unavailable")
        storage = DurableStorage(str(tmp_path / "store"))
        pool = ProcessExecPool(1, start_method="spawn")
        try:
            assert pool.call(0, canonical_encode(
                {"kind": "verify", "items": []})) is not None
            worker = pool._workers[0]
            fd_dir = f"/proc/{worker.process.pid}/fd"
            if not os.path.isdir(fd_dir):  # pragma: no cover - no procfs
                pytest.skip("procfs unavailable")
            offenders = []
            for fd in os.listdir(fd_dir):
                try:
                    target = os.readlink(os.path.join(fd_dir, fd))
                except OSError:
                    continue
                if str(tmp_path) in target:
                    offenders.append(target)
            assert offenders == []
        finally:
            pool.shutdown()
            storage.close()
