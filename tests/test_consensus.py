"""Consensus engines: PoW/PoS/PoA selection and validation rules."""

import pytest

from repro.chain import Blockchain, ChainParams
from repro.consensus import (
    ProofOfAuthority,
    ProofOfStake,
    ProofOfWork,
    Validator,
)
from repro.errors import ConsensusError
from .conftest import data_tx


class TestProofOfWork:
    def test_seal_meets_target(self, chain):
        engine = ProofOfWork(difficulty_bits=8)
        block, metrics = engine.seal(chain, [data_tx(1)])
        assert int.from_bytes(block.block_hash, "big") < engine.target
        assert metrics.work >= 1
        engine.validate(chain, block)

    def test_higher_difficulty_costs_more_work(self, chain):
        # Expected work doubles per bit; compare averages over sealing
        # several blocks to smooth variance.
        def average_work(bits: int) -> float:
            test_chain = Blockchain(ChainParams(chain_id=f"pow-{bits}"))
            engine = ProofOfWork(difficulty_bits=bits)
            total = 0
            for i in range(5):
                block, metrics = engine.seal(test_chain, [data_tx(i)])
                test_chain.append_block(block)
                total += metrics.work
            return total / 5

        assert average_work(10) > average_work(4)

    def test_validate_rejects_wrong_difficulty_declaration(self, chain):
        engine = ProofOfWork(difficulty_bits=8)
        block, _ = engine.seal(chain, [])
        other = ProofOfWork(difficulty_bits=12)
        with pytest.raises(ConsensusError):
            other.validate(chain, block)

    def test_validate_rejects_unmined_block(self, chain):
        engine = ProofOfWork(difficulty_bits=16)
        block = chain.build_block(
            [], consensus_meta={"difficulty_bits": 16, "algo": "pow"}
        )
        # Overwhelmingly likely not to meet a 16-bit target by luck.
        with pytest.raises(ConsensusError):
            engine.validate(chain, block)

    def test_estimated_hashes(self):
        assert ProofOfWork(difficulty_bits=10).estimated_hashes() == 1024


class TestProofOfStake:
    def test_proposer_is_deterministic(self, chain):
        engine = ProofOfStake([Validator("v1", 10), Validator("v2", 20)])
        first = engine.select_proposer(chain, 1)
        assert engine.select_proposer(chain, 1) == first

    def test_stake_weighting_over_many_heights(self):
        engine = ProofOfStake([Validator("small", 1), Validator("big", 9)])
        chain = Blockchain(ChainParams(chain_id="pos-weight"))
        winners = {"small": 0, "big": 0}
        for i in range(60):
            block, metrics = engine.seal(chain, [data_tx(i)])
            chain.append_block(block)
            winners[metrics.proposer] += 1
        assert winners["big"] > winners["small"]

    def test_validate_rejects_wrong_proposer(self, chain):
        engine = ProofOfStake([Validator("v1", 10), Validator("v2", 20)])
        expected = engine.select_proposer(chain, 1).validator_id
        wrong = "v1" if expected == "v2" else "v2"
        block = chain.build_block([], proposer=wrong)
        with pytest.raises(ConsensusError):
            engine.validate(chain, block)

    def test_rejects_empty_validator_set(self):
        with pytest.raises(ValueError):
            ProofOfStake([])

    def test_rejects_duplicate_validators(self):
        with pytest.raises(ValueError):
            ProofOfStake([Validator("v", 1), Validator("v", 2)])

    def test_rejects_non_positive_stake(self):
        with pytest.raises(ValueError):
            Validator("v", 0)


class TestProofOfAuthority:
    def test_round_robin(self, chain):
        engine = ProofOfAuthority(["a", "b", "c"])
        proposers = []
        for i in range(6):
            metrics = engine.seal_and_append(chain, [data_tx(i)])
            proposers.append(metrics.proposer)
        assert proposers == ["b", "c", "a", "b", "c", "a"]

    def test_out_of_turn_rejected(self, chain):
        engine = ProofOfAuthority(["a", "b"])
        block = chain.build_block([], proposer="a")   # height 1 is b's slot
        with pytest.raises(ConsensusError):
            engine.validate(chain, block)

    def test_duplicate_authorities_rejected(self):
        with pytest.raises(ValueError):
            ProofOfAuthority(["a", "a"])


class TestSealAndAppend:
    def test_full_cycle_keeps_chain_intact(self, chain):
        engine = ProofOfAuthority(["only"])
        for i in range(5):
            engine.seal_and_append(chain, [data_tx(i)])
        assert chain.height == 5
        chain.verify()
