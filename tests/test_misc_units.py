"""Utility modules: clocks, id factories, event log, metrics, plus a
stateful property test of StateStore snapshot semantics."""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.analysis.metrics import ThroughputMeter
from repro.chain import Blockchain, Transaction, TxKind
from repro.chain.state import StateStore
from repro.clock import SimClock, SteppingClock
from repro.contracts import EventLog
from repro.ids import IdFactory


class TestClocks:
    def test_simclock_monotone(self):
        clock = SimClock()
        clock.advance(5)
        with pytest.raises(ValueError):
            clock.advance(-1)

    def test_advance_to_never_goes_back(self):
        clock = SimClock(start=10)
        clock.advance_to(5)
        assert clock.now() == 10

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start=-1)

    def test_stepping_clock_auto_advances(self):
        clock = SteppingClock(step=3)
        assert [clock.now() for _ in range(3)] == [0, 3, 6]

    def test_stepping_clock_rejects_zero_step(self):
        with pytest.raises(ValueError):
            SteppingClock(step=0)


class TestIdFactory:
    def test_sequential_per_prefix(self):
        ids = IdFactory()
        assert ids.next("tx") == "tx-000000"
        assert ids.next("tx") == "tx-000001"
        assert ids.next("block") == "block-000000"

    def test_issued_counts(self):
        ids = IdFactory()
        ids.next("a")
        ids.next("a")
        assert ids.issued("a") == 2
        assert ids.issued("never") == 0

    def test_hashed_ids_deterministic_per_seed(self):
        a = IdFactory(seed=5).next("tx", hashed=True)
        b = IdFactory(seed=5).next("tx", hashed=True)
        c = IdFactory(seed=6).next("tx", hashed=True)
        assert a == b
        assert a != c


class TestEventLog:
    def _chain_with_events(self):
        chain = Blockchain()
        log = EventLog(chain)
        chain.state.credit("a", 100)
        for i in range(3):
            tx = Transaction(sender="a", kind=TxKind.TRANSFER,
                             payload={"to": "b", "amount": 10 + i})
            chain.append_block(chain.build_block([tx]))
        return chain, log

    def test_events_collected_from_blocks(self):
        _, log = self._chain_with_events()
        assert len(log.by_name("transfer")) == 3

    def test_filter_since_height(self):
        _, log = self._chain_with_events()
        late = list(log.filter(name="transfer", since_height=3))
        assert len(late) == 1

    def test_filter_with_predicate(self):
        _, log = self._chain_with_events()
        big = list(log.filter(
            name="transfer",
            where=lambda e: e.event.data["amount"] >= 11,
        ))
        assert len(big) == 2

    def test_live_listener(self):
        chain = Blockchain()
        log = EventLog(chain)
        seen = []
        log.on("transfer", lambda entry: seen.append(
            entry.event.data["amount"]))
        chain.state.credit("a", 100)
        tx = Transaction(sender="a", kind=TxKind.TRANSFER,
                         payload={"to": "b", "amount": 42})
        chain.append_block(chain.build_block([tx]))
        assert seen == [42]

    def test_wildcard_listener(self):
        chain = Blockchain()
        log = EventLog(chain)
        seen = []
        log.on(None, lambda entry: seen.append(entry.event.name))
        chain.state.credit("a", 10)
        tx = Transaction(sender="a", kind=TxKind.TRANSFER,
                         payload={"to": "b", "amount": 1})
        chain.append_block(chain.build_block([tx]))
        assert seen == ["transfer"]


class TestThroughputMeter:
    def test_measures_ops_per_second(self):
        meter = ThroughputMeter()
        meter.start()
        for _ in range(1000):
            meter.add_ops()
        meter.stop()
        assert meter.ops == 1000
        assert meter.per_second() > 0

    def test_unstarted_stop_rejected(self):
        with pytest.raises(ValueError):
            ThroughputMeter().stop()

    def test_no_window_rejected(self):
        with pytest.raises(ValueError):
            ThroughputMeter().per_second()


class StateStoreMachine(RuleBasedStateMachine):
    """Stateful property test: the StateStore under arbitrary interleaved
    writes, snapshots, commits, and rollbacks always matches a model
    implemented with plain dict copies."""

    def __init__(self):
        super().__init__()
        self.store = StateStore()
        self.model: dict = {}
        self.model_stack: list[dict] = []   # snapshots of the model
        self.handles: list[int] = []

    keys = st.sampled_from(["k1", "k2", "k3", "k4"])
    values = st.integers(min_value=0, max_value=999)

    @rule(key=keys, value=values)
    def set_value(self, key, value):
        self.store.set("ns", key, value)
        self.model[key] = value

    @rule(key=keys)
    def delete_value(self, key):
        self.store.delete("ns", key)
        self.model.pop(key, None)

    @rule()
    def snapshot(self):
        self.handles.append(self.store.snapshot())
        self.model_stack.append(dict(self.model))

    @precondition(lambda self: self.handles)
    @rule()
    def rollback(self):
        handle = self.handles.pop()
        self.store.rollback(handle)
        self.model = self.model_stack.pop()

    @precondition(lambda self: self.handles)
    @rule()
    def commit(self):
        handle = self.handles.pop()
        self.store.commit_snapshot(handle)
        # Committed changes survive, but remain revertible by the parent
        # snapshot, whose model copy is untouched.
        self.model_stack.pop()

    @invariant()
    def store_matches_model(self):
        for key in ("k1", "k2", "k3", "k4"):
            assert self.store.get("ns", key) == self.model.get(key)


StateStoreMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestStateStoreStateful = StateStoreMachine.TestCase
