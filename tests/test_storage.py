"""Off-chain storage: CAS, cloud store, provenance database."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AccessDenied, ObjectNotFound, QueryError, UnknownEntity
from repro.storage import CloudObjectStore, ContentAddressedStore, ProvenanceDatabase


class TestCAS:
    def test_roundtrip_small(self):
        cas = ContentAddressedStore()
        cid = cas.put(b"hello")
        assert cas.get(cid) == b"hello"

    def test_roundtrip_chunked(self):
        cas = ContentAddressedStore(chunk_size=16)
        blob = bytes(range(256)) * 4
        cid = cas.put(blob)
        assert cid.kind == "manifest"
        assert cas.get(cid) == blob

    def test_content_addressing_same_content_same_cid(self):
        cas = ContentAddressedStore()
        assert cas.put(b"x").digest == cas.put(b"x").digest

    def test_chunk_dedup(self):
        cas = ContentAddressedStore(chunk_size=8)
        cas.put(b"AAAAAAAA" * 10)      # 10 identical chunks
        assert cas.dedup_hits >= 9

    def test_verify_against_cid(self):
        cas = ContentAddressedStore(chunk_size=8)
        blob = b"0123456789abcdef" * 3
        cid = cas.put(blob)
        assert cas.verify(cid, blob)
        assert not cas.verify(cid, blob + b"!")

    def test_missing_object(self):
        cas = ContentAddressedStore()
        cid = cas.put(b"x")
        empty = ContentAddressedStore()
        with pytest.raises(ObjectNotFound):
            empty.get(cid)

    def test_gc_keeps_pinned(self):
        cas = ContentAddressedStore(chunk_size=8)
        keep = cas.put(b"keep me around please!", pin=True)
        drop = cas.put(b"drop me entirely now!!", pin=False)
        removed = cas.collect_garbage()
        assert removed > 0
        assert cas.has(keep)
        assert not cas.has(drop)
        assert cas.get(keep) == b"keep me around please!"

    def test_unpin_then_gc(self):
        cas = ContentAddressedStore()
        cid = cas.put(b"data")
        cas.unpin(cid)
        cas.collect_garbage()
        assert not cas.has(cid)

    @settings(max_examples=30)
    @given(st.binary(min_size=0, max_size=5000))
    def test_property_roundtrip(self, blob):
        cas = ContentAddressedStore(chunk_size=64)
        cid = cas.put(blob)
        assert cas.get(cid) == blob
        assert cas.verify(cid, blob)

    # -- empty / boundary-size regression suite (ISSUE 3 satellite) ----
    def test_empty_blob_full_lifecycle(self):
        """``put(b"")`` must behave like any other blob: retrievable,
        verifiable, pinnable, and GC-safe — the falsy payload must never
        be confused with "missing"."""
        cas = ContentAddressedStore(chunk_size=8)
        cid = cas.put(b"")
        assert cid.kind == "raw"
        assert cas.has(cid)
        assert cas.get(cid) == b""
        assert cas.verify(cid, b"")
        assert not cas.verify(cid, b"\x00")
        # Pinned by default: survives garbage collection.
        cas.collect_garbage()
        assert cas.get(cid) == b""
        # Dedup works for the empty blob too.
        again = cas.put(b"")
        assert again.digest == cid.digest
        assert cas.dedup_hits == 1
        # Unpinned, it is collected like anything else.
        cas.unpin(cid)
        assert cas.collect_garbage() == 1
        assert not cas.has(cid)

    @pytest.mark.parametrize("size", [0, 1, 7, 8, 9, 15, 16, 17])
    def test_boundary_sizes_roundtrip(self, size):
        """Empty, 1-byte, and every chunk-boundary neighbour round-trip
        (chunk_size=8: raw at <=8, manifest above)."""
        cas = ContentAddressedStore(chunk_size=8)
        blob = bytes(range(size))
        cid = cas.put(blob)
        assert cid.kind == ("raw" if size <= 8 else "manifest")
        assert cas.get(cid) == blob
        assert cas.verify(cid, blob)
        assert not cas.verify(cid, blob + b"!")
        cas.collect_garbage()
        assert cas.get(cid) == blob

    def test_corrupted_manifest_chunk_detected(self):
        """Latent-bug regression: multi-chunk ``get`` must integrity-check
        every chunk the way the single-chunk path always did, instead of
        silently returning corrupted bytes."""
        from repro.errors import StorageError

        cas = ContentAddressedStore(chunk_size=4)
        blob = b"0123456789abcdef"
        cid = cas.put(blob)
        assert cid.kind == "manifest"
        victim = cas._manifests[cid.digest][1]
        cas._blobs[victim] = b"EVIL"
        with pytest.raises(StorageError):
            cas.get(cid)
        # The raw path keeps raising as before.
        raw = cas.put(b"tiny")
        cas._blobs[raw.digest] = b"BAD!"
        with pytest.raises(StorageError):
            cas.get(raw)


class TestCloudStore:
    def test_create_read_update_versions(self, clock):
        store = CloudObjectStore(clock)
        store.create("alice", "f", b"v0")
        store.update("alice", "f", b"v1")
        latest, _ = store.read("alice", "f")
        assert latest == b"v1"
        old, _ = store.read("alice", "f", version=0)
        assert old == b"v0"

    def test_ops_observed_in_order(self, clock):
        store = CloudObjectStore(clock)
        seen = []
        store.add_observer(lambda op: seen.append(op.op))
        store.create("alice", "f", b"x")
        store.read("alice", "f")
        store.delete("alice", "f")
        assert seen == ["create", "read", "delete"]

    def test_unshared_read_denied(self, clock):
        store = CloudObjectStore(clock)
        store.create("alice", "f", b"x")
        with pytest.raises(AccessDenied):
            store.read("bob", "f")

    def test_share_grants_then_unshare_revokes(self, clock):
        store = CloudObjectStore(clock)
        store.create("alice", "f", b"x")
        store.share("alice", "f", "bob")
        content, _ = store.read("bob", "f")
        assert content == b"x"
        store.unshare("alice", "f", "bob")
        with pytest.raises(AccessDenied):
            store.read("bob", "f")

    def test_only_owner_deletes(self, clock):
        store = CloudObjectStore(clock)
        store.create("alice", "f", b"x")
        store.share("alice", "f", "bob")
        with pytest.raises(AccessDenied):
            store.delete("bob", "f")

    def test_deleted_object_gone(self, clock):
        store = CloudObjectStore(clock)
        store.create("alice", "f", b"x")
        store.delete("alice", "f")
        with pytest.raises(ObjectNotFound):
            store.read("alice", "f")

    def test_user_log_chain_verifies(self, clock):
        store = CloudObjectStore(clock)
        store.create("alice", "f", b"x")
        store.update("alice", "f", b"y")
        assert store.verify_user_log("alice")

    def test_duplicate_create_rejected(self, clock):
        store = CloudObjectStore(clock)
        store.create("alice", "f", b"x")
        with pytest.raises(AccessDenied):
            store.create("bob", "f", b"y")

    def test_operations_on_object(self, clock):
        store = CloudObjectStore(clock)
        store.create("alice", "f", b"x")
        store.create("alice", "g", b"y")
        store.read("alice", "f")
        assert len(store.operations_on("f")) == 2


class TestProvenanceDatabase:
    def _record(self, i, subject="s", actor="a", op="read", ts=None):
        return {
            "record_id": f"r{i}",
            "subject": subject,
            "actor": actor,
            "operation": op,
            "timestamp": ts if ts is not None else i,
        }

    def test_insert_and_get(self, database):
        database.insert(self._record(1))
        assert database.get("r1")["subject"] == "s"

    def test_duplicate_id_rejected(self, database):
        database.insert(self._record(1))
        with pytest.raises(QueryError):
            database.insert(self._record(1))

    def test_missing_record(self, database):
        with pytest.raises(UnknownEntity):
            database.get("nope")

    def test_subject_index_matches_scan(self, database):
        for i in range(30):
            database.insert(self._record(i, subject=f"s{i % 3}"))
        indexed = database.by_subject("s1")
        scanned = database.scan_subject("s1")
        assert sorted(r["record_id"] for r in indexed) == \
            sorted(r["record_id"] for r in scanned)
        assert len(indexed) == 10

    def test_time_range_query(self, database):
        for i in range(20):
            database.insert(self._record(i, ts=i * 10))
        rows = database.by_time_range(50, 100)
        assert [r["timestamp"] for r in rows] == [50, 60, 70, 80, 90]

    def test_actor_and_operation_indexes(self, database):
        database.insert(self._record(1, actor="alice", op="write"))
        database.insert(self._record(2, actor="bob", op="read"))
        assert len(database.by_actor("alice")) == 1
        assert len(database.by_operation("read")) == 1

    def test_annotate_preserves_indexes(self, database):
        database.insert(self._record(1))
        database.annotate("r1", anchor="anchor-1")
        assert database.get("r1")["anchor"] == "anchor-1"
        assert len(database.by_subject("s")) == 1

    def test_record_without_id_rejected(self, database):
        with pytest.raises(QueryError):
            database.insert({"subject": "x"})

    def test_returned_records_are_copies(self, database):
        database.insert(self._record(1))
        fetched = database.get("r1")
        fetched["subject"] = "mutated"
        assert database.get("r1")["subject"] == "s"

    @settings(max_examples=25)
    @given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 100)),
                    min_size=1, max_size=40))
    def test_property_time_range_equals_filter(self, items):
        database = ProvenanceDatabase()
        for i, (subj, ts) in enumerate(items):
            database.insert(self._record(i, subject=f"s{subj}", ts=ts))
        lo, hi = 20, 80
        via_index = {r["record_id"] for r in database.by_time_range(lo, hi)}
        via_scan = {
            r["record_id"]
            for r in database.scan(lambda r: lo <= r["timestamp"] < hi)
        }
        assert via_index == via_scan
