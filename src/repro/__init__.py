"""repro — blockchain-based data provenance.

A canonical library reproducing the design space of *SOK: Blockchain for
Provenance* (Akbarfam & Maleki, VLDB 2024): a blockchain substrate with
pluggable consensus, a PROV-style provenance core with four capture
pathways and Merkle-anchored verified queries, five application domains,
the surveyed reference systems, and the full §2.3 cross-chain mechanism
zoo.

Quickstart::

    from repro import ProvChain

    system = ProvChain(difficulty_bits=8)
    system.create("alice", "report.pdf", b"draft 1")
    system.update("alice", "report.pdf", b"draft 2")
    answer = system.audit_object("report.pdf")
    assert answer.verified          # every record proven against the chain

See README.md for the architecture tour and DESIGN.md for the
paper-to-module map.
"""

__version__ = "1.0.0"

from .clock import SimClock, SteppingClock
from .ids import IdFactory
from .errors import QueueFull, ReproError

from .chain import (
    Block,
    Blockchain,
    ChainParams,
    Mempool,
    StateStore,
    Transaction,
    TxKind,
)
from .consensus import (
    PBFTCluster,
    ProofOfAuthority,
    ProofOfStake,
    ProofOfWork,
    RaftCluster,
    Validator,
)
from .crypto import CaseForest, KeyPair, MerkleTree, verify_proof
from .network import ChainNode, GossipProtocol, LatencyModel, SimNet
from .provenance import (
    AnchorService,
    CaptureSink,
    DirectCapture,
    MultiSourceCapture,
    ProvenanceGraph,
    ProvenanceQueryEngine,
    QueryCache,
    RelationKind,
    StoreMediatedCapture,
    ThirdPartyCapture,
    make_record,
)
from .persist import (
    BlockStore,
    DurableStorage,
    MemoryBlockStore,
    RecordStore,
    SegmentLog,
    StateSnapshotStore,
)
from .storage import CloudObjectStore, ContentAddressedStore, ProvenanceDatabase
from .systems import (
    BlockCloud,
    ForensiBlock,
    ForensiCross,
    IPFSProvenance,
    LedgerViewSystem,
    PrivChain,
    ProvChain,
    SciLedger,
    SynergyChain,
    Vassago,
)
from .crosschain import (
    AtomicSwap,
    BridgeChain,
    HTLCManager,
    NotaryScheme,
    PeggedSidechain,
    RelayChain,
    SwapParty,
)
from .sharding import (
    BeaconChain,
    CrossShardCoordinator,
    ShardedChain,
    ShardedQueryEngine,
    ShardRouter,
)
from .ingest import IngestPipeline, IngestStats, QueueStats
from .sync import (
    ShardReplica,
    SnapshotClient,
    SnapshotManifest,
    SnapshotServer,
    SyncReport,
)
from .errors import SyncError

__all__ = [
    "__version__",
    "SimClock",
    "SteppingClock",
    "IdFactory",
    "ReproError",
    "Block",
    "Blockchain",
    "ChainParams",
    "Mempool",
    "StateStore",
    "Transaction",
    "TxKind",
    "PBFTCluster",
    "ProofOfAuthority",
    "ProofOfStake",
    "ProofOfWork",
    "RaftCluster",
    "Validator",
    "CaseForest",
    "KeyPair",
    "MerkleTree",
    "verify_proof",
    "ChainNode",
    "GossipProtocol",
    "LatencyModel",
    "SimNet",
    "AnchorService",
    "CaptureSink",
    "DirectCapture",
    "MultiSourceCapture",
    "ProvenanceGraph",
    "ProvenanceQueryEngine",
    "QueryCache",
    "RelationKind",
    "StoreMediatedCapture",
    "ThirdPartyCapture",
    "make_record",
    "CloudObjectStore",
    "ContentAddressedStore",
    "ProvenanceDatabase",
    "BlockCloud",
    "ForensiBlock",
    "ForensiCross",
    "IPFSProvenance",
    "LedgerViewSystem",
    "PrivChain",
    "ProvChain",
    "SciLedger",
    "SynergyChain",
    "Vassago",
    "AtomicSwap",
    "BridgeChain",
    "HTLCManager",
    "NotaryScheme",
    "PeggedSidechain",
    "RelayChain",
    "SwapParty",
    "BeaconChain",
    "CrossShardCoordinator",
    "ShardedChain",
    "ShardedQueryEngine",
    "ShardRouter",
    "BlockStore",
    "RecordStore",
    "StateSnapshotStore",
    "MemoryBlockStore",
    "DurableStorage",
    "SegmentLog",
    "IngestPipeline",
    "IngestStats",
    "QueueStats",
    "QueueFull",
    "ShardReplica",
    "SnapshotClient",
    "SnapshotManifest",
    "SnapshotServer",
    "SyncError",
    "SyncReport",
]
