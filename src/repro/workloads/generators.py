"""Per-domain workload generators.

Each generator emits deterministic *action lists* that drivers replay
against a system under test.  Keeping generation separate from execution
lets a bench replay the identical workload against two designs (e.g.
ProvChain vs BlockCloud) for a fair comparison.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .distributions import ZipfSampler


@dataclass(frozen=True)
class CloudOp:
    """One cloud-storage action."""

    op: str              # create | read | update | delete | share
    user: str
    key: str
    size: int = 64
    target_user: str = ""    # share recipient


class CloudOpsWorkload:
    """Skewed multi-user cloud-storage operation stream (RQ1 shape)."""

    OP_MIX = (("read", 0.55), ("update", 0.25), ("create", 0.12),
              ("share", 0.05), ("delete", 0.03))

    def __init__(self, n_users: int = 4, n_objects: int = 50,
                 zipf_s: float = 1.1, seed: int = 0) -> None:
        self.n_users = n_users
        self.n_objects = n_objects
        self.rng = random.Random(seed)
        self.object_sampler = ZipfSampler(n_objects, s=zipf_s, seed=seed + 1)

    def generate(self, count: int) -> list[CloudOp]:
        """A replayable op list.  Every object is created before use and
        deletes are deferred to the tail so replays never hit missing
        objects."""
        ops: list[CloudOp] = []
        owners: dict[str, str] = {}
        # Creation preamble: each object gets an owner.
        for i in range(self.n_objects):
            user = f"user-{self.rng.randrange(self.n_users):02d}"
            key = f"obj-{i:04d}"
            owners[key] = user
            ops.append(CloudOp(op="create", user=user, key=key,
                               size=self.rng.randint(32, 512)))
        labels = [name for name, _ in self.OP_MIX]
        weights = [w for _, w in self.OP_MIX]
        deletes: list[CloudOp] = []
        while len(ops) + len(deletes) < count + self.n_objects:
            key = f"obj-{self.object_sampler.sample():04d}"
            user = owners[key]
            op = self.rng.choices(labels, weights=weights)[0]
            if op == "create":
                op = "read"            # objects were pre-created
            if op == "delete":
                deletes.append(CloudOp(op="delete", user=user, key=key))
                continue
            if op == "share":
                other = f"user-{self.rng.randrange(self.n_users):02d}"
                ops.append(CloudOp(op="share", user=user, key=key,
                                   target_user=other))
                continue
            ops.append(CloudOp(op=op, user=user, key=key,
                               size=self.rng.randint(32, 512)))
        # Deduplicate deletes (an object can die once), keep the first.
        seen: set[str] = set()
        for op in deletes:
            if op.key not in seen:
                seen.add(op.key)
                ops.append(op)
        return ops[: count + self.n_objects]


@dataclass(frozen=True)
class WorkflowShape:
    """Parameters of a synthetic scientific workflow DAG."""

    n_tasks: int = 20
    fanout: int = 2          # outputs consumed by up to this many tasks
    users: int = 3
    seed: int = 0

    def tasks(self) -> list[dict]:
        """Task specs in design order: each consumes up to ``fanout``
        earlier outputs (guaranteeing a DAG) and produces one output."""
        rng = random.Random(self.seed)
        specs: list[dict] = []
        available_outputs: list[str] = ["external-input"]
        for i in range(self.n_tasks):
            k = min(len(available_outputs), rng.randint(1, self.fanout))
            inputs = rng.sample(available_outputs, k)
            output = f"data-{i:04d}"
            specs.append({
                "task_id": f"task-{i:04d}",
                "user_id": f"sci-{rng.randrange(self.users):02d}",
                "inputs": inputs,
                "outputs": [output],
            })
            available_outputs.append(output)
        return specs


@dataclass
class ForensicCaseWorkload:
    """A case's evidence + access plan across the five stages."""

    n_evidence: int = 20
    n_accesses: int = 40
    n_investigators: int = 4
    seed: int = 0
    file_types: tuple[str, ...] = ("image", "text", "video", "log")

    def plan(self) -> dict:
        rng = random.Random(self.seed)
        evidence = []
        for i in range(self.n_evidence):
            deps = []
            if i > 0 and rng.random() < 0.3:
                deps = [f"ev-{rng.randrange(i):04d}"]
            evidence.append({
                "evidence_id": f"ev-{i:04d}",
                "collector": f"inv-{rng.randrange(self.n_investigators):02d}",
                "content": rng.randbytes(rng.randint(16, 128)),
                "file_type": rng.choice(self.file_types),
                "depends_on": deps,
            })
        accesses = [
            {
                "evidence_id": f"ev-{rng.randrange(self.n_evidence):04d}",
                "actor": f"inv-{rng.randrange(self.n_investigators):02d}",
                "purpose": rng.choice(("analysis", "copy", "report")),
            }
            for _ in range(self.n_accesses)
        ]
        return {"evidence": evidence, "accesses": accesses}


@dataclass
class SupplyChainWorkload:
    """Products and their custody journeys through named parties."""

    n_products: int = 20
    parties: tuple[str, ...] = ("maker", "distributor", "pharmacy")
    hops_per_product: int = 2
    seed: int = 0

    def plan(self) -> list[dict]:
        rng = random.Random(self.seed)
        plans = []
        for i in range(self.n_products):
            journey = ["maker"]
            for _ in range(self.hops_per_product):
                journey.append(rng.choice(
                    [p for p in self.parties if p != journey[-1]]
                ))
            plans.append({
                "product_id": f"prod-{i:05d}",
                "batch": f"batch-{i // 10:03d}",
                "type": rng.choice(("vaccine", "device", "tablet")),
                "journey": journey,
                "temperatures": [rng.randint(10, 90) for _ in range(4)],
            })
        return plans


@dataclass(frozen=True)
class ShardOp:
    """One multi-tenant ingest action for the sharded-chain benches.

    ``kind`` is ``"record"`` (single-namespace write) or ``"cross"`` (a
    derivation handed off from ``subject``'s namespace to
    ``target_subject``'s — the two-phase-commit path when the namespaces
    land on different shards).
    """

    kind: str
    namespace: str
    subject: str
    actor: str
    operation: str
    timestamp: int
    size: int = 64
    target_namespace: str = ""
    target_subject: str = ""


class MultiTenantShardWorkload:
    """Zipf-skewed multi-tenant capture stream with cross-shard handoffs.

    Tenants (provenance namespaces) are sampled from a Zipf distribution
    — a few hot organizations dominate, as in any multi-tenant ingest
    plane — and a configurable fraction of operations derive an object
    in a *different* tenant's namespace (the cross-shard case).  Subjects
    are ``"{tenant}/obj-{i}"`` so the shard router's namespace prefix
    rule applies directly.
    """

    OPS = (("update", 0.6), ("create", 0.25), ("derive", 0.15))

    def __init__(
        self,
        n_tenants: int = 64,
        objects_per_tenant: int = 32,
        zipf_s: float = 0.9,
        cross_shard_ratio: float = 0.05,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= cross_shard_ratio <= 1.0:
            raise ValueError("cross_shard_ratio must be in [0, 1]")
        if n_tenants < 2 and cross_shard_ratio > 0:
            raise ValueError("cross-tenant ops need at least two tenants")
        self.n_tenants = n_tenants
        self.objects_per_tenant = objects_per_tenant
        self.cross_shard_ratio = cross_shard_ratio
        self.rng = random.Random(seed)
        self.tenant_sampler = ZipfSampler(n_tenants, s=zipf_s, seed=seed + 1)

    def _tenant(self) -> str:
        return f"tenant-{self.tenant_sampler.sample():03d}"

    def _subject(self, tenant: str) -> str:
        return f"{tenant}/obj-{self.rng.randrange(self.objects_per_tenant):04d}"

    def generate(self, count: int) -> list[ShardOp]:
        """A replayable op list; timestamps are strictly increasing."""
        labels = [name for name, _ in self.OPS]
        weights = [w for _, w in self.OPS]
        ops: list[ShardOp] = []
        for t in range(count):
            tenant = self._tenant()
            subject = self._subject(tenant)
            actor = f"agent-{self.rng.randrange(16):02d}"
            if self.rng.random() < self.cross_shard_ratio:
                target = self._tenant()
                while target == tenant:
                    target = self._tenant()
                ops.append(ShardOp(
                    kind="cross", namespace=tenant, subject=subject,
                    actor=actor, operation="handoff", timestamp=t,
                    size=self.rng.randint(32, 256),
                    target_namespace=target,
                    target_subject=self._subject(target),
                ))
                continue
            ops.append(ShardOp(
                kind="record", namespace=tenant, subject=subject,
                actor=actor, operation=self.rng.choices(labels,
                                                        weights=weights)[0],
                timestamp=t, size=self.rng.randint(32, 256),
            ))
        return ops


@dataclass
class QueryWorkload:
    """A Zipf-skewed query stream over known subjects (§6.2's repeated
    queries arise naturally from the skew)."""

    subjects: list[str] = field(default_factory=list)
    zipf_s: float = 1.1
    seed: int = 0

    def queries(self, count: int) -> list[str]:
        if not self.subjects:
            raise ValueError("no subjects to query")
        sampler = ZipfSampler(len(self.subjects), s=self.zipf_s,
                              seed=self.seed)
        return [self.subjects[i] for i in sampler.sample_many(count)]
