"""Seeded synthetic workload generators.

The paper releases no traces; these generators produce the structured
workloads its domains imply (stage-ordered investigations, DAG-shaped
workflows, Zipf-skewed query streams) deterministically from a seed, so
every benchmark run is reproducible.
"""

from .distributions import ZipfSampler, ArrivalProcess
from .generators import (
    CloudOpsWorkload,
    ForensicCaseWorkload,
    MultiTenantShardWorkload,
    QueryWorkload,
    ShardOp,
    SupplyChainWorkload,
    WorkflowShape,
)

__all__ = [
    "ZipfSampler",
    "ArrivalProcess",
    "CloudOpsWorkload",
    "ForensicCaseWorkload",
    "MultiTenantShardWorkload",
    "QueryWorkload",
    "ShardOp",
    "SupplyChainWorkload",
    "WorkflowShape",
]
