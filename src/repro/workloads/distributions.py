"""Sampling primitives for workload generation."""

from __future__ import annotations

import random


class ZipfSampler:
    """Zipf-distributed integers in ``[0, n)``.

    ``P(k) ∝ 1 / (k+1)^s``.  Used for skewed access patterns: hot objects
    in cloud storage, hot subjects in query streams (the repeated-query
    scenario of paper §6.2).
    """

    def __init__(self, n: int, s: float = 1.1, seed: int = 0) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        if s < 0:
            raise ValueError("s must be non-negative")
        self.n = n
        self.s = s
        self.rng = random.Random(seed)
        weights = [1.0 / (k + 1) ** s for k in range(n)]
        total = sum(weights)
        self._cdf: list[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # guard against float drift

    def sample(self) -> int:
        u = self.rng.random()
        lo, hi = 0, self.n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def sample_many(self, count: int) -> list[int]:
        return [self.sample() for _ in range(count)]


class ArrivalProcess:
    """Inter-arrival time generator: uniform, bursty, or constant."""

    def __init__(self, kind: str = "constant", mean: int = 1,
                 burst_size: int = 10, seed: int = 0) -> None:
        if kind not in ("constant", "uniform", "bursty"):
            raise ValueError(f"unknown arrival kind {kind!r}")
        if mean < 1:
            raise ValueError("mean must be >= 1")
        self.kind = kind
        self.mean = mean
        self.burst_size = burst_size
        self.rng = random.Random(seed)
        self._burst_left = 0

    def next_gap(self) -> int:
        """Ticks until the next arrival."""
        if self.kind == "constant":
            return self.mean
        if self.kind == "uniform":
            return self.rng.randint(1, 2 * self.mean - 1)
        # bursty: a burst of back-to-back arrivals, then a long gap.
        if self._burst_left > 0:
            self._burst_left -= 1
            return 0
        self._burst_left = self.burst_size - 1
        return self.mean * self.burst_size

    def timestamps(self, count: int, start: int = 0) -> list[int]:
        """Absolute arrival times for ``count`` events."""
        out = []
        t = start
        for _ in range(count):
            t += self.next_gap()
            out.append(t)
        return out
