"""Cross-chain message and outcome types."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..crypto.hashing import DOMAIN_XCHAIN, hash_canonical


@dataclass(frozen=True)
class CrossChainMessage:
    """A datum moving between chains (asset transfer or data/provenance).

    ``kind`` examples: ``"transfer"``, ``"header"``, ``"provenance"``,
    ``"stage_sync"``.
    """

    message_id: str
    source_chain: str
    target_chain: str
    kind: str
    payload: Mapping[str, Any] = field(default_factory=dict)
    timestamp: int = 0

    def to_canonical(self) -> dict:
        return {
            "message_id": self.message_id,
            "source_chain": self.source_chain,
            "target_chain": self.target_chain,
            "kind": self.kind,
            "payload": dict(self.payload),
            "timestamp": self.timestamp,
        }

    def digest(self) -> bytes:
        return hash_canonical(self.to_canonical(), DOMAIN_XCHAIN)


@dataclass
class TransferOutcome:
    """What a cross-chain transfer attempt cost and how it ended.

    ``status``: ``"completed"`` | ``"aborted"`` | ``"refunded"``.
    The EVAL-XCHAIN bench aggregates these across mechanisms.
    """

    mechanism: str
    status: str
    messages: int = 0
    on_chain_txs: int = 0
    latency_ticks: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def completed(self) -> bool:
        return self.status == "completed"
