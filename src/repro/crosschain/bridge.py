"""BridgeChain: a dedicated bridging chain with unanimous validation.

ForensiCross [11] "uses BridgeChain to facilitate interactions between
private blockchains via a novel communication protocol ... Nodes validate
transactions across blockchains, requiring unanimous agreement for
progression."  The bridge here is exactly that: a chain whose validators
all must endorse a cross-chain message before it is committed and
forwarded.  Unanimity is the conservative end of the trust spectrum the
EVAL-XCHAIN bench sweeps (1-of-1 notary ... m-of-n committee ...
n-of-n bridge).

Messages carry arbitrary payloads; ForensiCross uses them for evidence
transfer, provenance extraction requests, and investigation-stage
synchronization (see :mod:`repro.systems.forensicross`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chain import Blockchain, ChainParams, Transaction, TxKind
from ..clock import SimClock
from ..crypto.signatures import KeyPair, verify
from ..errors import BridgeError
from .messages import CrossChainMessage, TransferOutcome


@dataclass
class BridgeValidator:
    """A bridge node with an endorsement policy.

    ``honest`` controls failure injection: a dishonest/offline validator
    never endorses, which under unanimity blocks progression (the
    designed behaviour — forensic evidence must not move without every
    custodian's sign-off).
    """

    validator_id: str
    keypair: KeyPair
    honest: bool = True

    def endorse(self, message: CrossChainMessage) -> bytes | None:
        if not self.honest:
            return None
        return self.keypair.sign(message.digest())


@dataclass
class _PendingMessage:
    message: CrossChainMessage
    endorsements: dict[str, bytes] = field(default_factory=dict)
    status: str = "pending"     # pending | committed | rejected


class BridgeChain:
    """A validator-governed chain ferrying messages between member chains."""

    def __init__(
        self,
        clock: SimClock,
        validator_ids: list[str],
        chain_id: str = "bridge",
        unanimous: bool = True,
        seed: int = 0,
    ) -> None:
        if not validator_ids:
            raise BridgeError("bridge needs validators")
        self.clock = clock
        self.chain = Blockchain(ChainParams(chain_id=chain_id))
        self.unanimous = unanimous
        self.validators = [
            BridgeValidator(validator_id=vid,
                            keypair=KeyPair.generate(("bridge", seed, vid)))
            for vid in validator_ids
        ]
        self._members: dict[str, Blockchain] = {}
        self._pending: dict[str, _PendingMessage] = {}
        self._counter = 0
        self.messages_committed = 0
        self.network_messages = 0

    # ------------------------------------------------------------------
    @property
    def required_endorsements(self) -> int:
        n = len(self.validators)
        return n if self.unanimous else (2 * n) // 3 + 1

    def connect(self, chain: Blockchain) -> None:
        """Register a member chain with the bridge."""
        if chain.chain_id in self._members:
            raise BridgeError(f"{chain.chain_id} already connected")
        self._members[chain.chain_id] = chain

    def member(self, chain_id: str) -> Blockchain:
        chain = self._members.get(chain_id)
        if chain is None:
            raise BridgeError(f"chain {chain_id!r} not connected")
        return chain

    def set_validator_honesty(self, validator_id: str, honest: bool) -> None:
        for validator in self.validators:
            if validator.validator_id == validator_id:
                validator.honest = honest
                return
        raise BridgeError(f"unknown validator {validator_id!r}")

    # ------------------------------------------------------------------
    # Message lifecycle
    # ------------------------------------------------------------------
    def submit(self, source_chain: str, target_chain: str, kind: str,
               payload: dict) -> str:
        """A member chain submits a message; returns its id."""
        self.member(source_chain)
        self.member(target_chain)
        message = CrossChainMessage(
            message_id=f"bmsg-{self._counter:06d}",
            source_chain=source_chain,
            target_chain=target_chain,
            kind=kind,
            payload=payload,
            timestamp=self.clock.now(),
        )
        self._counter += 1
        self._pending[message.message_id] = _PendingMessage(message=message)
        self.network_messages += 1
        return message.message_id

    def process(self, message_id: str) -> TransferOutcome:
        """Collect endorsements and, on success, commit + deliver."""
        t0 = self.clock.now()
        pending = self._pending.get(message_id)
        if pending is None:
            raise BridgeError(f"no pending message {message_id!r}")
        if pending.status != "pending":
            raise BridgeError(f"message {message_id!r} already processed")
        digest = pending.message.digest()
        for validator in self.validators:
            self.network_messages += 1       # broadcast to validator
            signature = validator.endorse(pending.message)
            if signature is None:
                continue
            if not verify(digest, signature, validator.keypair.public):
                raise BridgeError(
                    f"validator {validator.validator_id} produced an "
                    "invalid endorsement"
                )
            pending.endorsements[validator.validator_id] = signature
            self.network_messages += 1       # endorsement returned
        self.clock.advance(len(self.validators))
        if len(pending.endorsements) < self.required_endorsements:
            pending.status = "rejected"
            return TransferOutcome(
                mechanism="bridge",
                status="aborted",
                messages=self.network_messages,
                on_chain_txs=0,
                latency_ticks=self.clock.now() - t0,
                extra={"endorsements": len(pending.endorsements),
                       "required": self.required_endorsements},
            )
        # Commit on the bridge chain.
        commit_tx = Transaction(
            sender="bridge-validators",
            kind=TxKind.CROSS_CHAIN,
            payload={
                "message_id": message_id,
                "kind": pending.message.kind,
                "source_chain": pending.message.source_chain,
                "target_chain": pending.message.target_chain,
                "digest": digest,
                "endorsers": sorted(pending.endorsements),
                "body": dict(pending.message.payload),
            },
            timestamp=self.clock.now(),
        )
        self.chain.append_block(self.chain.build_block(
            [commit_tx], timestamp=self.clock.now()
        ))
        # Deliver to the target member chain.
        target = self.member(pending.message.target_chain)
        deliver_tx = Transaction(
            sender="bridge",
            kind=TxKind.CROSS_CHAIN,
            payload={
                "message_id": message_id,
                "kind": pending.message.kind,
                "source_chain": pending.message.source_chain,
                "bridge_height": self.chain.height,
                "body": dict(pending.message.payload),
            },
            timestamp=self.clock.now(),
        )
        target.append_block(target.build_block(
            [deliver_tx], timestamp=self.clock.now()
        ))
        pending.status = "committed"
        self.messages_committed += 1
        return TransferOutcome(
            mechanism="bridge",
            status="completed",
            messages=self.network_messages,
            on_chain_txs=2,
            latency_ticks=self.clock.now() - t0,
            extra={"endorsements": len(pending.endorsements)},
        )

    def send(self, source_chain: str, target_chain: str, kind: str,
             payload: dict) -> TransferOutcome:
        """Submit + process in one step."""
        message_id = self.submit(source_chain, target_chain, kind, payload)
        return self.process(message_id)

    # ------------------------------------------------------------------
    def delivered_messages(self, chain_id: str,
                           kind: str | None = None) -> list[dict]:
        """Messages the bridge has delivered onto a member chain."""
        chain = self.member(chain_id)
        delivered = []
        for block in chain.blocks:
            for tx in block.transactions:
                if tx.sender != "bridge":
                    continue
                if kind is not None and tx.payload.get("kind") != kind:
                    continue
                delivered.append(dict(tx.payload))
        return delivered
