"""Hash time-locked contracts.

The primitive under atomic swaps: funds are locked against a *hashlock*
(the hash of a secret) and a *timelock*.  Whoever presents the preimage
before the timelock expires claims the funds; after expiry the original
sender can refund.  "Hash-locking contracts streamline asset exchanges"
(§2.3); the atomicity argument lives one level up in
:mod:`~repro.crosschain.atomic_swap`.

Each HTLC action (lock/claim/refund) is committed to the host chain as a
transaction, so cross-chain audits can verify the full story from the two
chains alone.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..chain import Blockchain, Transaction, TxKind
from ..clock import SimClock
from ..errors import CrossChainError, TimelockExpired


def make_hashlock(secret: bytes) -> bytes:
    """The hashlock for ``secret``."""
    return hashlib.sha256(b"htlc:" + secret).digest()


@dataclass
class HTLC:
    """One lock's state on one chain."""

    htlc_id: str
    chain_id: str
    sender: str
    recipient: str
    amount: int
    hashlock: bytes
    timelock: int            # absolute expiry on the shared clock
    status: str = "locked"   # locked | claimed | refunded
    revealed_secret: bytes | None = None


class HTLCManager:
    """Manages HTLCs on one chain, with on-chain audit transactions."""

    ESCROW = "htlc-escrow"

    def __init__(self, chain: Blockchain, clock: SimClock) -> None:
        self.chain = chain
        self.clock = clock
        self._locks: dict[str, HTLC] = {}
        self._counter = 0
        self.txs_committed = 0

    # ------------------------------------------------------------------
    def _commit(self, action: str, lock: HTLC, **extra) -> None:
        """Record an HTLC action on the host chain."""
        tx = Transaction(
            sender=lock.sender if action == "lock" else lock.recipient,
            kind=TxKind.CROSS_CHAIN,
            payload={
                "message_id": f"{lock.htlc_id}:{action}",
                "action": f"htlc_{action}",
                "htlc_id": lock.htlc_id,
                "hashlock": lock.hashlock,
                "amount": lock.amount,
                "timelock": lock.timelock,
                **extra,
            },
            timestamp=self.clock.now(),
        )
        self.chain.append_block(self.chain.build_block(
            [tx], timestamp=self.clock.now()
        ))
        self.txs_committed += 1

    # ------------------------------------------------------------------
    def lock(self, sender: str, recipient: str, amount: int,
             hashlock: bytes, timelock: int) -> HTLC:
        """Escrow ``amount`` from ``sender`` under a hashlock."""
        if amount <= 0:
            raise CrossChainError("lock amount must be positive")
        if timelock <= self.clock.now():
            raise CrossChainError("timelock must be in the future")
        self.chain.state.transfer(sender, self.ESCROW, amount)
        htlc_id = f"htlc-{self.chain.chain_id}-{self._counter:06d}"
        self._counter += 1
        lock = HTLC(
            htlc_id=htlc_id,
            chain_id=self.chain.chain_id,
            sender=sender,
            recipient=recipient,
            amount=amount,
            hashlock=hashlock,
            timelock=timelock,
        )
        self._locks[htlc_id] = lock
        self._commit("lock", lock, recipient=recipient)
        return lock

    def claim(self, htlc_id: str, secret: bytes) -> HTLC:
        """Recipient claims with the preimage (before expiry)."""
        lock = self._require(htlc_id)
        if lock.status != "locked":
            raise CrossChainError(f"{htlc_id} is {lock.status}, not locked")
        if self.clock.now() >= lock.timelock:
            raise TimelockExpired(
                f"{htlc_id} expired at t={lock.timelock} "
                f"(now t={self.clock.now()})"
            )
        if make_hashlock(secret) != lock.hashlock:
            raise CrossChainError(f"wrong preimage for {htlc_id}")
        self.chain.state.transfer(self.ESCROW, lock.recipient, lock.amount)
        lock.status = "claimed"
        lock.revealed_secret = secret
        self._commit("claim", lock, secret=secret)
        return lock

    def refund(self, htlc_id: str) -> HTLC:
        """Sender reclaims after expiry."""
        lock = self._require(htlc_id)
        if lock.status != "locked":
            raise CrossChainError(f"{htlc_id} is {lock.status}, not locked")
        if self.clock.now() < lock.timelock:
            raise CrossChainError(
                f"{htlc_id} not yet expired (t={self.clock.now()} < "
                f"{lock.timelock}); refund refused"
            )
        self.chain.state.transfer(self.ESCROW, lock.sender, lock.amount)
        lock.status = "refunded"
        self._commit("refund", lock)
        return lock

    # ------------------------------------------------------------------
    def _require(self, htlc_id: str) -> HTLC:
        lock = self._locks.get(htlc_id)
        if lock is None:
            raise CrossChainError(f"no HTLC {htlc_id!r}")
        return lock

    def get(self, htlc_id: str) -> HTLC:
        return self._require(htlc_id)

    def secret_revealed_by(self, hashlock: bytes) -> bytes | None:
        """Scan for a revealed preimage matching ``hashlock``.

        This is how the counterparty in a swap learns the secret: it was
        published on-chain by the claim transaction.
        """
        for lock in self._locks.values():
            if lock.hashlock == hashlock and lock.revealed_secret is not None:
                return lock.revealed_secret
        return None
