"""Notary schemes.

"Notary schemes use intermediaries to facilitate transactions between
chains" (§2.3).  The notary observes an event on the source chain and
attests to it on the target chain.  A single notary is the trusted-third-
party design the paper says is unavoidable without decentralized trust
[18, 44]; the committee variant distributes that trust: the target
accepts a transfer only with ``m`` of ``n`` notary signatures.

The EVAL-XCHAIN bench compares both against HTLC/relay on messages and
latency; the trust difference is qualitative and documented here.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chain import Blockchain, Transaction, TxKind
from ..clock import SimClock
from ..crypto.signatures import KeyPair, verify
from ..errors import BridgeError, CrossChainError
from .messages import CrossChainMessage, TransferOutcome


@dataclass(frozen=True)
class NotaryAttestation:
    """A notary's signed statement that a source-chain event happened."""

    notary_id: str
    message_digest: bytes
    signature: bytes


class NotaryScheme:
    """m-of-n notary committee bridging two chains."""

    def __init__(
        self,
        source: Blockchain,
        target: Blockchain,
        clock: SimClock,
        n_notaries: int = 1,
        threshold: int | None = None,
        seed: int = 0,
    ) -> None:
        if n_notaries < 1:
            raise CrossChainError("need at least one notary")
        self.source = source
        self.target = target
        self.clock = clock
        self.threshold = n_notaries if threshold is None else threshold
        if not 1 <= self.threshold <= n_notaries:
            raise CrossChainError("threshold out of range")
        self.notaries = [
            KeyPair.generate(("notary", seed, i)) for i in range(n_notaries)
        ]
        self._counter = 0
        self.transfers_completed = 0

    # ------------------------------------------------------------------
    def transfer(self, sender: str, recipient: str, amount: int,
                 honest_notaries: int | None = None) -> TransferOutcome:
        """Move ``amount`` from ``sender`` on the source chain to
        ``recipient`` on the target chain.

        ``honest_notaries`` caps how many notaries attest (failure
        injection); below the threshold the transfer aborts and the
        source escrow is released.
        """
        t0 = self.clock.now()
        messages = 0
        # 1. Escrow on the source chain.
        escrow = f"notary-escrow-{self.source.chain_id}"
        self.source.state.transfer(sender, escrow, amount)
        message = CrossChainMessage(
            message_id=f"ntx-{self._counter:06d}",
            source_chain=self.source.chain_id,
            target_chain=self.target.chain_id,
            kind="transfer",
            payload={"sender": sender, "recipient": recipient,
                     "amount": amount},
            timestamp=self.clock.now(),
        )
        self._counter += 1
        lock_tx = Transaction(
            sender=sender, kind=TxKind.CROSS_CHAIN,
            payload={"message_id": message.message_id, "action": "escrow",
                     "amount": amount},
            timestamp=self.clock.now(),
        )
        self.source.append_block(self.source.build_block(
            [lock_tx], timestamp=self.clock.now()
        ))
        on_chain = 1
        messages += 1            # user -> notaries announcement

        # 2. Notaries observe and attest.
        digest = message.digest()
        attesting = self.notaries if honest_notaries is None else \
            self.notaries[:honest_notaries]
        attestations = []
        for keypair in attesting:
            attestations.append(NotaryAttestation(
                notary_id=keypair.address,
                message_digest=digest,
                signature=keypair.sign(digest),
            ))
            messages += 2        # observe source + submit attestation
        self.clock.advance(len(self.notaries))  # sequential observation cost

        # 3. Target verifies the attestation quorum.
        valid = 0
        for attestation, keypair in zip(attestations, attesting):
            if attestation.message_digest == digest and verify(
                digest, attestation.signature, keypair.public
            ):
                valid += 1
        if valid < self.threshold:
            # Abort: release escrow back to the sender.
            self.source.state.transfer(escrow, sender, amount)
            abort_tx = Transaction(
                sender="notary-committee", kind=TxKind.CROSS_CHAIN,
                payload={"message_id": message.message_id, "action": "abort",
                         "valid_attestations": valid},
                timestamp=self.clock.now(),
            )
            self.source.append_block(self.source.build_block(
                [abort_tx], timestamp=self.clock.now()
            ))
            return TransferOutcome(
                mechanism=f"notary_{len(self.notaries)}",
                status="aborted",
                messages=messages,
                on_chain_txs=on_chain + 1,
                latency_ticks=self.clock.now() - t0,
                extra={"valid_attestations": valid,
                       "threshold": self.threshold},
            )

        # 4. Credit on the target chain.
        self.target.state.credit(recipient, amount)
        mint_tx = Transaction(
            sender="notary-committee", kind=TxKind.CROSS_CHAIN,
            payload={"message_id": message.message_id, "action": "mint",
                     "recipient": recipient, "amount": amount,
                     "attestations": valid},
            timestamp=self.clock.now(),
        )
        self.target.append_block(self.target.build_block(
            [mint_tx], timestamp=self.clock.now()
        ))
        self.transfers_completed += 1
        return TransferOutcome(
            mechanism=f"notary_{len(self.notaries)}",
            status="completed",
            messages=messages,
            on_chain_txs=on_chain + 1,
            latency_ticks=self.clock.now() - t0,
            extra={"valid_attestations": valid, "threshold": self.threshold},
        )

    def verify_attestation(self, attestation: NotaryAttestation,
                           digest: bytes) -> bool:
        """Standalone attestation check against the notary roster."""
        for keypair in self.notaries:
            if keypair.address == attestation.notary_id:
                if attestation.message_digest != digest:
                    return False
                return verify(digest, attestation.signature, keypair.public)
        raise BridgeError(f"unknown notary {attestation.notary_id}")
