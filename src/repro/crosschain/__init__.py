"""Cross-chain mechanisms (paper §2.3 and RQ3).

The five mechanism families the paper catalogs, each exercising the same
substrate chains:

* :mod:`~repro.crosschain.htlc` — hash time-locked contracts;
* :mod:`~repro.crosschain.atomic_swap` — Herlihy-style atomic swaps built
  from HTLCs (two-party and cyclic multi-party);
* :mod:`~repro.crosschain.notary` — single and committee notary schemes;
* :mod:`~repro.crosschain.relay` — a relay chain carrying block headers
  so targets can verify source-chain inclusion proofs;
* :mod:`~repro.crosschain.sidechain` — a two-way-pegged side chain with
  periodic state commitments to the main chain;
* :mod:`~repro.crosschain.bridge` — a ForensiCross-style bridge chain
  with unanimous validator voting.
"""

from .messages import CrossChainMessage, TransferOutcome
from .htlc import HTLC, HTLCManager
from .atomic_swap import AtomicSwap, SwapLeg, SwapParty
from .notary import NotaryScheme, NotaryAttestation
from .relay import RelayChain
from .sidechain import PeggedSidechain
from .bridge import BridgeChain, BridgeValidator

__all__ = [
    "CrossChainMessage",
    "TransferOutcome",
    "HTLC",
    "HTLCManager",
    "AtomicSwap",
    "SwapLeg",
    "SwapParty",
    "NotaryScheme",
    "NotaryAttestation",
    "RelayChain",
    "PeggedSidechain",
    "BridgeChain",
    "BridgeValidator",
]
