"""Atomic cross-chain swaps (Herlihy [35]).

Built on HTLCs: "atomic cross-chain swaps facilitate asset trading
between separate blockchains and ensure that all linked transactions are
either fully completed or entirely aborted" (§2.3).

Two-party protocol (Alice has X on chain A, Bob has Y on chain B):

1. Alice (the *leader*) picks secret ``s``, computes ``H(s)``, locks X on
   A for Bob with timelock ``2Δ``.
2. Bob sees the lock, locks Y on B for Alice under the *same* hashlock
   with timelock ``Δ`` (shorter — the classic ordering, so Bob can always
   refund before Alice's lock expires).
3. Alice claims Y on B, revealing ``s`` on-chain.
4. Bob reads ``s`` from chain B and claims X on A.

If anyone stops cooperating, timelocks expire and both sides refund —
the all-or-nothing property the property-based tests verify.  The cyclic
multi-party generalization chains the same hashlock through every leg
with decreasing timelocks.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..clock import SimClock
from ..errors import CrossChainError, SwapAborted
from .htlc import HTLCManager, make_hashlock
from .messages import TransferOutcome


@dataclass
class SwapParty:
    """A participant and what they offer."""

    name: str
    gives_amount: int
    on_manager: HTLCManager     # the chain where they lock their asset


@dataclass
class SwapLeg:
    """One HTLC leg of the swap (filled in as the protocol runs)."""

    sender: str
    recipient: str
    manager: HTLCManager
    amount: int
    timelock: int
    htlc_id: str = ""
    status: str = "pending"      # pending | locked | claimed | refunded


@dataclass
class AtomicSwap:
    """Coordinator for a cyclic atomic swap.

    ``parties[i]`` gives to ``parties[i+1 mod n]`` on ``parties[i]``'s
    chain.  The first party is the leader holding the secret.

    ``step_delta`` is the timelock spacing Δ between consecutive legs.
    """

    parties: list[SwapParty]
    clock: SimClock
    step_delta: int = 100
    secret_seed: bytes = b"swap-secret"
    legs: list[SwapLeg] = field(default_factory=list)
    messages: int = 0

    def __post_init__(self) -> None:
        if len(self.parties) < 2:
            raise CrossChainError("a swap needs at least two parties")
        self._secret = hashlib.sha256(
            b"swap:" + self.secret_seed
        ).digest()
        self.hashlock = make_hashlock(self._secret)

    # ------------------------------------------------------------------
    # Phase 1: locking (leader first, longest timelock)
    # ------------------------------------------------------------------
    def lock_all(self) -> None:
        """Create every leg's HTLC with the decreasing-timelock ladder."""
        n = len(self.parties)
        now = self.clock.now()
        for i, party in enumerate(self.parties):
            recipient = self.parties[(i + 1) % n].name
            # Leader (i=0) gets the longest timelock: (n - i) * Δ.
            timelock = now + (n - i) * self.step_delta
            leg = SwapLeg(
                sender=party.name,
                recipient=recipient,
                manager=party.on_manager,
                amount=party.gives_amount,
                timelock=timelock,
            )
            lock = party.on_manager.lock(
                sender=party.name,
                recipient=recipient,
                amount=party.gives_amount,
                hashlock=self.hashlock,
                timelock=timelock,
            )
            leg.htlc_id = lock.htlc_id
            leg.status = "locked"
            self.legs.append(leg)
            self.messages += 2      # lock announcement + counterparty watch

    def lock_partial(self, count: int) -> None:
        """Lock only the first ``count`` legs (failure injection)."""
        if self.legs:
            raise CrossChainError("legs already created")
        n = len(self.parties)
        now = self.clock.now()
        for i, party in enumerate(self.parties[:count]):
            recipient = self.parties[(i + 1) % n].name
            timelock = now + (n - i) * self.step_delta
            lock = party.on_manager.lock(
                sender=party.name,
                recipient=recipient,
                amount=party.gives_amount,
                hashlock=self.hashlock,
                timelock=timelock,
            )
            self.legs.append(SwapLeg(
                sender=party.name,
                recipient=recipient,
                manager=party.on_manager,
                amount=party.gives_amount,
                timelock=timelock,
                htlc_id=lock.htlc_id,
                status="locked",
            ))
            self.messages += 2

    # ------------------------------------------------------------------
    # Phase 2: claims propagate backwards from the last leg
    # ------------------------------------------------------------------
    def claim_all(self) -> None:
        """Run the claim cascade: the leader claims the last leg revealing
        the secret; every other participant claims using the now-public
        preimage."""
        if len(self.legs) != len(self.parties):
            raise SwapAborted("cannot claim: not all legs were locked")
        # The leader claims on the last leg (the one paying them).
        for leg in reversed(self.legs):
            if leg.status != "locked":
                raise SwapAborted(f"leg {leg.htlc_id} not locked")
            # Recipient reads the secret from any chain where it is
            # already revealed; the leader knows it outright.
            secret = self._secret if leg is self.legs[-1] else (
                self._published_secret()
            )
            if secret is None:  # pragma: no cover - cascade guarantees it
                raise SwapAborted("secret not available for claim")
            leg.manager.claim(leg.htlc_id, secret)
            leg.status = "claimed"
            self.messages += 1

    def _published_secret(self) -> bytes | None:
        for leg in self.legs:
            secret = leg.manager.secret_revealed_by(self.hashlock)
            if secret is not None:
                return secret
        return None

    # ------------------------------------------------------------------
    # Phase 3 (unhappy path): refunds after expiry
    # ------------------------------------------------------------------
    def refund_all_expired(self) -> int:
        """Refund every still-locked leg whose timelock has passed."""
        refunded = 0
        for leg in self.legs:
            if leg.status != "locked":
                continue
            if self.clock.now() >= leg.timelock:
                leg.manager.refund(leg.htlc_id)
                leg.status = "refunded"
                refunded += 1
                self.messages += 1
        return refunded

    # ------------------------------------------------------------------
    # One-shot drivers
    # ------------------------------------------------------------------
    def execute(self) -> TransferOutcome:
        """Happy path: lock everything, run the claim cascade."""
        t0 = self.clock.now()
        self.lock_all()
        self.clock.advance(1)
        self.claim_all()
        return TransferOutcome(
            mechanism="atomic_swap",
            status="completed",
            messages=self.messages,
            on_chain_txs=sum(1 for leg in self.legs) * 2,  # lock + claim
            latency_ticks=self.clock.now() - t0,
            extra={"parties": len(self.parties)},
        )

    def execute_with_abort(self, locked_legs: int) -> TransferOutcome:
        """Unhappy path: only ``locked_legs`` parties lock, then everyone
        times out and refunds.  Asserts all-or-nothing: no leg stays
        claimed."""
        t0 = self.clock.now()
        self.lock_partial(locked_legs)
        # Advance past every timelock.
        horizon = max((leg.timelock for leg in self.legs), default=0)
        self.clock.advance_to(horizon + 1)
        refunded = self.refund_all_expired()
        if any(leg.status == "claimed" for leg in self.legs):
            raise SwapAborted("claim observed on an aborted swap")
        return TransferOutcome(
            mechanism="atomic_swap",
            status="refunded",
            messages=self.messages,
            on_chain_txs=locked_legs + refunded,
            latency_ticks=self.clock.now() - t0,
            extra={"refunded_legs": refunded},
        )
