"""Relay chain: header-based trust-minimized interoperability.

"Relay chains focus solely on data transfer between different chains"
(§2.3).  Registered chains periodically submit their block headers to the
relay; any party can then prove to any chain that a transaction was
included in a source chain by exhibiting a Merkle inclusion proof against
a relayed header — no notary trusted with attestation, only with
liveness of header submission.

This is the verification backbone Vassago-style cross-chain provenance
queries use: a provenance record's anchor is checked against the relayed
header of its home chain.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chain import Blockchain, ChainParams, Transaction, TxKind
from ..chain.block import BlockHeader
from ..chain.transaction import Transaction as Tx
from ..clock import SimClock
from ..crypto.merkle import MerkleProof, verify_proof
from ..errors import CrossChainError
from .messages import TransferOutcome


@dataclass(frozen=True)
class RelayedHeader:
    """A header as stored on the relay chain."""

    chain_id: str
    height: int
    block_hash: bytes
    merkle_root: bytes
    timestamp: int


class RelayChain:
    """A chain whose payload is other chains' headers."""

    def __init__(self, clock: SimClock, chain_id: str = "relay") -> None:
        self.clock = clock
        self.chain = Blockchain(ChainParams(chain_id=chain_id))
        self._registered: dict[str, Blockchain] = {}
        # (chain_id, height) -> RelayedHeader
        self._headers: dict[tuple[str, int], RelayedHeader] = {}
        self.headers_relayed = 0
        self.messages = 0

    # ------------------------------------------------------------------
    # Registration & header submission
    # ------------------------------------------------------------------
    def register(self, chain: Blockchain) -> None:
        if chain.chain_id in self._registered:
            raise CrossChainError(f"{chain.chain_id} already registered")
        self._registered[chain.chain_id] = chain

    def registered_chains(self) -> list[str]:
        return sorted(self._registered)

    def submit_header(self, chain_id: str, header: BlockHeader) -> RelayedHeader:
        """A relayer submits one source-chain header to the relay."""
        if chain_id not in self._registered:
            raise CrossChainError(f"unregistered chain {chain_id!r}")
        relayed = RelayedHeader(
            chain_id=chain_id,
            height=header.height,
            block_hash=header.block_hash,
            merkle_root=header.merkle_root,
            timestamp=header.timestamp,
        )
        tx = Transaction(
            sender=f"relayer-{chain_id}",
            kind=TxKind.CROSS_CHAIN,
            payload={
                "message_id": f"hdr-{chain_id}-{header.height}",
                "kind": "header",
                "chain_id": chain_id,
                "height": header.height,
                "block_hash": header.block_hash,
                "merkle_root": header.merkle_root,
            },
            timestamp=self.clock.now(),
        )
        self.chain.append_block(self.chain.build_block(
            [tx], timestamp=self.clock.now()
        ))
        self._headers[(chain_id, header.height)] = relayed
        self.headers_relayed += 1
        self.messages += 1
        return relayed

    def sync_chain(self, chain_id: str) -> int:
        """Relay every header of a registered chain not yet relayed."""
        source = self._registered.get(chain_id)
        if source is None:
            raise CrossChainError(f"unregistered chain {chain_id!r}")
        submitted = 0
        for block in source.blocks:
            if (chain_id, block.height) not in self._headers:
                self.submit_header(chain_id, block.header)
                submitted += 1
        return submitted

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def header_for(self, chain_id: str, height: int) -> RelayedHeader:
        header = self._headers.get((chain_id, height))
        if header is None:
            raise CrossChainError(
                f"relay holds no header for {chain_id}@{height}"
            )
        return header

    def verify_inclusion(
        self,
        chain_id: str,
        height: int,
        tx: Tx,
        proof: MerkleProof,
    ) -> bool:
        """Check a source-chain transaction against the relayed header."""
        header = self.header_for(chain_id, height)
        return verify_proof(header.merkle_root, tx.tx_hash, proof)

    # ------------------------------------------------------------------
    # A relay-mediated transfer (burn-and-prove-and-mint)
    # ------------------------------------------------------------------
    def transfer(
        self,
        source: Blockchain,
        target: Blockchain,
        sender: str,
        recipient: str,
        amount: int,
    ) -> TransferOutcome:
        """Move value source→target with relay-verified proof of burn."""
        t0 = self.clock.now()
        if source.chain_id not in self._registered:
            self.register(source)
        # 1. Burn on the source chain.
        burn_address = f"relay-burn-{source.chain_id}"
        source.state.transfer(sender, burn_address, amount)
        burn_tx = Transaction(
            sender=sender,
            kind=TxKind.CROSS_CHAIN,
            payload={"message_id": f"burn-{sender}-{self.clock.now()}",
                     "action": "burn", "amount": amount,
                     "recipient": recipient,
                     "target_chain": target.chain_id},
            timestamp=self.clock.now(),
        )
        source.append_block(source.build_block(
            [burn_tx], timestamp=self.clock.now()
        ))
        # 2. Relay the header containing the burn.
        self.submit_header(source.chain_id, source.head.header)
        # 3. Prove inclusion and mint on the target chain.
        located = source.prove_transaction(burn_tx.tx_id)
        if located is None:
            raise CrossChainError("burn transaction vanished")
        block, proof = located
        self.messages += 2            # proof shipped + verified
        if not self.verify_inclusion(source.chain_id, block.height,
                                     burn_tx, proof):
            return TransferOutcome(
                mechanism="relay", status="aborted",
                messages=3, on_chain_txs=2,
                latency_ticks=self.clock.now() - t0,
            )
        target.state.credit(recipient, amount)
        mint_tx = Transaction(
            sender=f"relay-agent-{target.chain_id}",
            kind=TxKind.CROSS_CHAIN,
            payload={"message_id": f"mint-{recipient}-{self.clock.now()}",
                     "action": "mint", "amount": amount,
                     "proof_header": block.height,
                     "source_chain": source.chain_id},
            timestamp=self.clock.now(),
        )
        target.append_block(target.build_block(
            [mint_tx], timestamp=self.clock.now()
        ))
        return TransferOutcome(
            mechanism="relay", status="completed",
            messages=3, on_chain_txs=3,
            latency_ticks=self.clock.now() - t0,
            extra={"relayed_height": block.height},
        )
