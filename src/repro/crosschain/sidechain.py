"""Two-way pegged sidechain.

"Side chains run parallel to main chains, enhancing performance" (§2.3);
InfiniteChain [37] adds *distributed auditing of sidechains* by
committing side-chain state to the main chain.  Both appear here:

* **deposit** — lock on the main chain, mint on the side chain;
* **withdraw** — burn on the side chain, unlock on the main chain against
  a Merkle inclusion proof of the burn (verified through the side chain's
  committed headers, not trust in the operator);
* **checkpoint** — the side chain periodically commits its head header
  and state root to the main chain, giving main-chain auditors a
  tamper-evident view of side activity (the InfiniteChain audit hook).
"""

from __future__ import annotations

from ..chain import Blockchain, ChainParams, Transaction, TxKind
from ..clock import SimClock
from ..crypto.merkle import verify_proof
from ..errors import CrossChainError
from .messages import TransferOutcome


class PeggedSidechain:
    """A side chain pegged to a main chain with periodic checkpoints."""

    PEG_ACCOUNT = "sidechain-peg"

    def __init__(
        self,
        main: Blockchain,
        clock: SimClock,
        side_chain_id: str = "side-0",
        checkpoint_interval: int = 4,
    ) -> None:
        if checkpoint_interval < 1:
            raise CrossChainError("checkpoint interval must be >= 1")
        self.main = main
        self.clock = clock
        self.side = Blockchain(ChainParams(chain_id=side_chain_id))
        self.checkpoint_interval = checkpoint_interval
        self._blocks_since_checkpoint = 0
        self.checkpoints_committed = 0
        self.total_pegged = 0

    # ------------------------------------------------------------------
    def _append_side(self, txs: list[Transaction]) -> None:
        self.side.append_block(self.side.build_block(
            txs, timestamp=self.clock.now()
        ))
        self._blocks_since_checkpoint += 1
        if self._blocks_since_checkpoint >= self.checkpoint_interval:
            self.checkpoint()

    # ------------------------------------------------------------------
    # Peg operations
    # ------------------------------------------------------------------
    def deposit(self, user: str, amount: int) -> TransferOutcome:
        """Lock on main, mint on side."""
        t0 = self.clock.now()
        self.main.state.transfer(user, self.PEG_ACCOUNT, amount)
        lock_tx = Transaction(
            sender=user, kind=TxKind.CROSS_CHAIN,
            payload={"message_id": f"peg-in-{user}-{self.clock.now()}",
                     "action": "peg_lock", "amount": amount},
            timestamp=self.clock.now(),
        )
        self.main.append_block(self.main.build_block(
            [lock_tx], timestamp=self.clock.now()
        ))
        self.side.state.credit(user, amount)
        mint_tx = Transaction(
            sender="peg-operator", kind=TxKind.CROSS_CHAIN,
            payload={"message_id": f"peg-mint-{user}-{self.clock.now()}",
                     "action": "peg_mint", "amount": amount,
                     "main_lock_tx": lock_tx.tx_id},
            timestamp=self.clock.now(),
        )
        self._append_side([mint_tx])
        self.total_pegged += amount
        return TransferOutcome(
            mechanism="sidechain", status="completed",
            messages=2, on_chain_txs=2,
            latency_ticks=self.clock.now() - t0,
            extra={"direction": "deposit"},
        )

    def withdraw(self, user: str, amount: int) -> TransferOutcome:
        """Burn on side, unlock on main with proof of burn."""
        t0 = self.clock.now()
        self.side.state.transfer(user, "side-burn", amount)
        burn_tx = Transaction(
            sender=user, kind=TxKind.CROSS_CHAIN,
            payload={"message_id": f"peg-out-{user}-{self.clock.now()}",
                     "action": "peg_burn", "amount": amount},
            timestamp=self.clock.now(),
        )
        self._append_side([burn_tx])
        # Main-chain verification: the burn must be provable against a
        # checkpointed side header.  Force a checkpoint so the latest
        # side block is visible to main-chain verifiers.
        self.checkpoint()
        located = self.side.prove_transaction(burn_tx.tx_id)
        if located is None:
            raise CrossChainError("burn transaction vanished from side chain")
        block, proof = located
        committed_root = self._checkpointed_root(block.height)
        if committed_root is None or not verify_proof(
            committed_root, burn_tx.tx_hash, proof
        ):
            return TransferOutcome(
                mechanism="sidechain", status="aborted",
                messages=3, on_chain_txs=2,
                latency_ticks=self.clock.now() - t0,
                extra={"direction": "withdraw",
                       "reason": "burn not provable against checkpoint"},
            )
        self.main.state.transfer(self.PEG_ACCOUNT, user, amount)
        unlock_tx = Transaction(
            sender="peg-operator", kind=TxKind.CROSS_CHAIN,
            payload={"message_id": f"peg-unlock-{user}-{self.clock.now()}",
                     "action": "peg_unlock", "amount": amount,
                     "side_burn_height": block.height},
            timestamp=self.clock.now(),
        )
        self.main.append_block(self.main.build_block(
            [unlock_tx], timestamp=self.clock.now()
        ))
        self.total_pegged -= amount
        return TransferOutcome(
            mechanism="sidechain", status="completed",
            messages=3, on_chain_txs=3,
            latency_ticks=self.clock.now() - t0,
            extra={"direction": "withdraw"},
        )

    # ------------------------------------------------------------------
    # InfiniteChain-style auditing
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Commit the side chain's head header + state root to main."""
        head = self.side.head
        tx = Transaction(
            sender="peg-operator", kind=TxKind.CROSS_CHAIN,
            payload={
                "message_id": f"ckpt-{self.side.chain_id}-{head.height}",
                "action": "checkpoint",
                "side_chain": self.side.chain_id,
                "side_height": head.height,
                "side_block_hash": head.block_hash,
                "side_merkle_root": head.header.merkle_root,
                "side_state_root": self.side.state.state_root(),
            },
            timestamp=self.clock.now(),
        )
        self.main.append_block(self.main.build_block(
            [tx], timestamp=self.clock.now()
        ))
        self.checkpoints_committed += 1
        self._blocks_since_checkpoint = 0

    def _checkpointed_root(self, side_height: int) -> bytes | None:
        """Find the merkle root main-chain auditors hold for a side height."""
        for block in reversed(self.main.blocks):
            for tx in block.transactions:
                if (tx.payload.get("action") == "checkpoint"
                        and tx.payload.get("side_height") == side_height):
                    return tx.payload.get("side_merkle_root")
        return None

    def audit(self) -> bool:
        """Main-chain auditor: does the side chain match its checkpoints?

        Detects a side-chain rewrite (the attack InfiniteChain's
        distributed auditing is for): any checkpointed header that no
        longer matches the live side chain fails the audit.
        """
        for block in self.main.blocks:
            for tx in block.transactions:
                if tx.payload.get("action") != "checkpoint":
                    continue
                height = int(tx.payload["side_height"])
                if height > self.side.height:
                    return False
                live = self.side.block_at(height)
                if live.block_hash != tx.payload["side_block_hash"]:
                    return False
        return True
