"""One retry/backoff/failover policy for every SimNet req/resp client.

The ops client (:meth:`~repro.network.node.ChainNode.request_ops`) and
the snapshot-sync client (:class:`~repro.sync.client.SnapshotClient`)
both speak the same stop-and-wait idiom over :class:`~repro.network.
simnet.SimNet` — send a ``{"req": True, "req_id": ...}`` body, drain the
event loop, check a response mailbox — and each used to carry its own
copy of the retry loop, and the replica (:meth:`~repro.sync.replica.
ShardReplica.catch_up`) its own per-peer failover loop.  This module is
the single shared policy:

* :class:`RetryPolicy` — attempt budget plus **exponential backoff with
  seeded jitter**.  Backoff is expressed in simulated clock ticks and
  the jitter is drawn from the *network's* seeded RNG, so a retry
  schedule is exactly as deterministic as the rest of the simulation:
  same seed, same traffic → same retry timeline.
* :func:`request_with_retries` — the stop-and-wait loop.  Returns the
  response dict, or ``None`` once the budget is exhausted so the caller
  raises its own taxonomy error (both call sites preserve their
  historical ``reason="peer_unresponsive"`` :class:`~repro.errors.
  SyncError`).
* :func:`failover` — try each peer in order, collecting structured
  per-peer errors; raises the last peer's error when all fail.
* :meth:`RetryPolicy.backoff_s` / :func:`sleep_backoff` — the
  **async-aware, wall-clock** face of the same policy: the socket
  gateway client (:mod:`repro.gateway`) sleeps real seconds (the larger
  of the server's ``RETRY_AFTER`` hint and the exponential schedule)
  instead of advancing a simulated clock.

Instrumentation (process-default registry, labeled by topic):
``net_requests_total``, ``net_retries_total``,
``net_requests_unanswered_total``, ``net_backoff_ticks_total``, and
``net_failovers_total`` — one place for operators to see how often the
simulated fabric makes clients wait, whatever the subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from .errors import SyncError
from .network.message import NetMessage
from .obs.runtime import telemetry as default_telemetry


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget + exponential backoff shape.

    ``max_retries`` counts *re*-sends: every request gets
    ``max_retries + 1`` attempts.  Before retry attempt *k* (1-based)
    the caller's clock advances ``base_backoff_ticks * factor**(k-1)``
    ticks, capped at ``max_backoff_ticks``, plus a jitter tick count in
    ``[0, jitter_ticks]`` drawn from the supplied (seeded) RNG.  The
    first attempt never waits."""

    max_retries: int = 3
    base_backoff_ticks: int = 8
    factor: float = 2.0
    max_backoff_ticks: int = 256
    jitter_ticks: int = 4
    # Wall-clock value of one backoff tick for async/wall-clock callers
    # (the gateway client sleeps real seconds, not simulated ticks).
    tick_s: float = 0.001

    def backoff_ticks(self, attempt: int, rng=None) -> int:
        """Ticks to wait before retry ``attempt`` (1-based)."""
        if attempt <= 0:
            return 0
        ticks = min(
            int(self.base_backoff_ticks * self.factor ** (attempt - 1)),
            self.max_backoff_ticks,
        )
        if self.jitter_ticks > 0 and rng is not None:
            ticks += rng.randrange(self.jitter_ticks + 1)
        return ticks

    def backoff_s(self, attempt: int, rng=None,
                  hint_s: float = 0.0) -> float:
        """Wall-clock seconds to wait before retry ``attempt``: the
        larger of the exponential schedule (ticks × ``tick_s``) and a
        server-supplied hint (a ``QueueFull.retry_after_s`` translated
        into a ``RETRY_AFTER`` wire response).  The hint wins while the
        server knows best; the exponential floor takes over when the
        same client keeps getting bounced — repeat offenders back off
        *harder* than the hint alone asks."""
        return max(self.backoff_ticks(attempt, rng) * self.tick_s,
                   float(hint_s))


def request_with_retries(
    node: Any,
    peer: str,
    topic: str,
    body: dict,
    req_id: str,
    responses: dict,
    policy: RetryPolicy | None = None,
    on_attempt: Callable[[int], None] | None = None,
) -> dict | None:
    """Stop-and-wait request over ``node.net`` with retry + backoff.

    ``responses`` is the req_id-keyed mailbox the node's topic handler
    fills; ``on_attempt`` (attempt index, 0-based) lets callers keep
    their own request/retry accounting (the sync report).  Returns the
    response body, or ``None`` when every attempt went unanswered —
    raising the right taxonomy error is the caller's job."""
    policy = policy or RetryPolicy()
    registry = default_telemetry().registry
    rng = getattr(node.net, "rng", None)
    clock = getattr(node.net, "clock", None)
    for attempt in range(policy.max_retries + 1):
        if attempt:
            registry.counter("net_retries_total", topic=topic).inc()
            ticks = policy.backoff_ticks(attempt, rng)
            if ticks and clock is not None:
                clock.advance(ticks)
                registry.counter("net_backoff_ticks_total",
                                 topic=topic).inc(ticks)
        registry.counter("net_requests_total", topic=topic).inc()
        if on_attempt is not None:
            on_attempt(attempt)
        node.net.send(NetMessage(sender=node.node_id, recipient=peer,
                                 topic=topic, body=body))
        # Drain the event loop: with backoff applied the clock has moved
        # past held (reordered) deliveries, so stragglers land too.
        node.net.run()
        resp = responses.pop(req_id, None)
        if resp is not None:
            return resp
    registry.counter("net_requests_unanswered_total", topic=topic).inc()
    return None


async def sleep_backoff(
    policy: RetryPolicy,
    attempt: int,
    hint_s: float = 0.0,
    rng=None,
    topic: str = "gateway",
) -> float:
    """Async half of the policy: sleep :meth:`RetryPolicy.backoff_s`
    without blocking the event loop, and account the wait on the same
    counters the SimNet clients use (``net_retries_total``,
    ``net_backoff_ticks_total`` — ticks in ``policy.tick_s`` units).
    Returns the seconds slept so callers can report it."""
    import asyncio

    registry = default_telemetry().registry
    wait_s = policy.backoff_s(attempt, rng, hint_s=hint_s)
    if attempt > 0:
        registry.counter("net_retries_total", topic=topic).inc()
    if wait_s > 0:
        registry.counter("net_backoff_ticks_total", topic=topic).inc(
            max(1, int(wait_s / policy.tick_s))
        )
        await asyncio.sleep(wait_s)
    return wait_s


def failover(
    peers: Sequence[str] | Iterable[str],
    attempt: Callable[[str], Any],
    empty_error: SyncError | None = None,
) -> Any:
    """Run ``attempt(peer)`` against each peer in order; the first
    success wins.  A peer failing with :class:`~repro.errors.SyncError`
    (the structured, fail-closed taxonomy) moves on to the next peer;
    when every peer fails the *last* error propagates, and an empty
    peer list raises ``empty_error`` (default: ``reason="no_peers"``)."""
    registry = default_telemetry().registry
    last_error: SyncError | None = None
    for peer in peers:
        if last_error is not None:
            registry.counter("net_failovers_total").inc()
        try:
            return attempt(peer)
        except SyncError as exc:
            last_error = exc
            continue
    if last_error is not None:
        raise last_error
    raise empty_error if empty_error is not None else SyncError(
        "no peers available", reason="no_peers"
    )
