"""Deterministic identifier generation.

Real deployments use UUIDs; for reproducible simulations we derive ids from
a named, seeded counter so that two runs with the same seed produce the same
ids (and therefore the same hashes, blocks, and benchmark workloads).
"""

from __future__ import annotations

import hashlib
from collections import defaultdict


class IdFactory:
    """Produces deterministic, human-readable, unique identifiers.

    Ids look like ``tx-000042`` or, with ``hashed=True``,
    ``tx-9f86d081884c`` (a short digest that still depends only on the
    factory seed and the per-prefix counter).

    >>> ids = IdFactory(seed=7)
    >>> ids.next("tx")
    'tx-000000'
    >>> ids.next("tx")
    'tx-000001'
    >>> ids.next("block")
    'block-000000'
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._counters: defaultdict[str, int] = defaultdict(int)

    def next(self, prefix: str, hashed: bool = False) -> str:
        """Return the next id for ``prefix``.

        With ``hashed=True`` the sequential counter is replaced by a short
        digest of ``(seed, prefix, counter)`` which is harder to guess but
        equally deterministic.
        """
        n = self._counters[prefix]
        self._counters[prefix] = n + 1
        if not hashed:
            return f"{prefix}-{n:06d}"
        material = f"{self.seed}:{prefix}:{n}".encode()
        digest = hashlib.sha256(material).hexdigest()[:12]
        return f"{prefix}-{digest}"

    def issued(self, prefix: str) -> int:
        """Return how many ids have been issued for ``prefix``."""
        return self._counters.get(prefix, 0)


_GLOBAL = IdFactory(seed=0)


def fresh_id(prefix: str) -> str:
    """Module-level convenience wrapper over a process-global factory.

    Library code paths that matter for determinism accept an
    :class:`IdFactory` explicitly; this helper exists for quick scripts and
    interactive use.
    """
    return _GLOBAL.next(prefix)
