"""Simulated clocks.

Everything in the library that needs a notion of time takes a clock object
instead of calling ``time.time()``.  This keeps runs deterministic and lets
the network simulator, HTLC timelocks, and freshness checks all agree on a
single logical timeline that tests can advance explicitly.

Two implementations are provided:

* :class:`SimClock` — a logical clock advanced manually (or by the network
  simulator).  The unit is abstract "ticks"; benchmarks typically interpret
  one tick as one millisecond.
* :class:`SteppingClock` — a clock that auto-advances by a fixed step every
  time it is read, convenient for generating monotone timestamps in
  workload generators.
"""

from __future__ import annotations


class SimClock:
    """A deterministic, manually advanced logical clock.

    >>> clock = SimClock()
    >>> clock.now()
    0
    >>> clock.advance(5)
    5
    >>> clock.now()
    5
    """

    __slots__ = ("_now",)

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before t=0")
        self._now = int(start)

    def now(self) -> int:
        """Return the current logical time."""
        return self._now

    def advance(self, delta: int = 1) -> int:
        """Move time forward by ``delta`` ticks and return the new time."""
        if delta < 0:
            raise ValueError("time cannot move backwards")
        self._now += int(delta)
        return self._now

    def advance_to(self, timestamp: int) -> int:
        """Advance to an absolute ``timestamp`` (no-op if already later)."""
        if timestamp > self._now:
            self._now = int(timestamp)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(t={self._now})"


class SteppingClock(SimClock):
    """A clock that advances by ``step`` ticks on every read.

    Useful for workload generators that need strictly increasing
    timestamps without threading explicit ``advance`` calls through
    every call site.
    """

    __slots__ = ("step",)

    def __init__(self, start: int = 0, step: int = 1) -> None:
        super().__init__(start)
        if step <= 0:
            raise ValueError("step must be positive")
        self.step = int(step)

    def now(self) -> int:
        current = self._now
        self._now += self.step
        return current
