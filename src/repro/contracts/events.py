"""Chain-wide event log with filtering.

Event listeners are the provenance-capture mechanism several surveyed
systems use (BlockFlow's "integrated event listeners", PrivChain's
automated incentive payout on proof events).  ``EventLog`` subscribes to a
chain and indexes every event emitted by committed transactions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from ..chain.receipts import Event


@dataclass(frozen=True)
class LoggedEvent:
    """An event plus its position in the chain."""

    event: Event
    block_height: int
    tx_id: str


class EventLog:
    """Indexed, filterable log of all contract/chain events."""

    def __init__(self, chain=None) -> None:
        self._entries: list[LoggedEvent] = []
        self._by_name: dict[str, list[int]] = {}
        self._listeners: list[tuple[str | None, Callable[[LoggedEvent], None]]] = []
        if chain is not None:
            self.attach(chain)

    def attach(self, chain) -> None:
        """Start collecting events from ``chain`` commits."""
        chain.subscribe(self._on_block)

    def _on_block(self, block, receipts) -> None:
        for receipt in receipts:
            for event in receipt.events:
                self.record(event, block.height, receipt.tx_id)

    def record(self, event: Event, block_height: int, tx_id: str) -> None:
        entry = LoggedEvent(event=event, block_height=block_height, tx_id=tx_id)
        index = len(self._entries)
        self._entries.append(entry)
        self._by_name.setdefault(event.name, []).append(index)
        for name_filter, callback in self._listeners:
            if name_filter is None or name_filter == event.name:
                callback(entry)

    # ------------------------------------------------------------------
    def on(self, name: str | None, callback: Callable[[LoggedEvent], None]) -> None:
        """Register a live listener (``name=None`` matches everything)."""
        self._listeners.append((name, callback))

    def __len__(self) -> int:
        return len(self._entries)

    def all(self) -> list[LoggedEvent]:
        return list(self._entries)

    def by_name(self, name: str) -> list[LoggedEvent]:
        return [self._entries[i] for i in self._by_name.get(name, [])]

    def filter(
        self,
        name: str | None = None,
        source: str | None = None,
        since_height: int | None = None,
        where: Callable[[LoggedEvent], bool] | None = None,
    ) -> Iterator[LoggedEvent]:
        """Compound filter over the log."""
        candidates: list[LoggedEvent]
        if name is not None:
            candidates = self.by_name(name)
        else:
            candidates = self._entries
        for entry in candidates:
            if source is not None and entry.event.source != source:
                continue
            if since_height is not None and entry.block_height < since_height:
                continue
            if where is not None and not where(entry):
                continue
            yield entry
