"""Deterministic smart-contract runtime.

The surveyed systems use smart contracts for bookkeeping — provenance
registration (SmartProvenance), voting (BlockDFL), access control
(LedgerView), incentive payout (PrivChain) — not for general computation.
This runtime provides exactly that: contracts are Python classes whose
``@method``-decorated entry points execute inside a metered, journaled,
revert-on-error sandbox, driven by ordinary chain transactions.
"""

from .contract import Contract, method, view
from .runtime import ContractRuntime, deploy_payload, call_payload
from .events import EventLog
from .library.registry import ProvenanceRegistry
from .library.voting import ThresholdVoting
from .library.access_contract import AccessControlContract
from .library.escrow import IncentiveEscrow
from .library.token import SimpleToken

__all__ = [
    "Contract",
    "method",
    "view",
    "ContractRuntime",
    "deploy_payload",
    "call_payload",
    "EventLog",
    "ProvenanceRegistry",
    "ThresholdVoting",
    "AccessControlContract",
    "IncentiveEscrow",
    "SimpleToken",
]
