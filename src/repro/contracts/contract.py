"""Contract base class and method decorators.

A contract is a Python class; its persistent storage is a namespaced slice
of the chain's :class:`~repro.chain.state.StateStore`, accessed through
``self.storage``.  Only methods decorated with :func:`method` (mutating)
or :func:`view` (read-only) are callable from transactions.
"""

from __future__ import annotations

from typing import Any, Callable

from ..chain.receipts import Event
from ..errors import ContractError, ContractReverted


def method(fn: Callable) -> Callable:
    """Mark ``fn`` as a transaction-invokable, state-mutating entry point."""
    fn.__contract_entry__ = "method"
    return fn


def view(fn: Callable) -> Callable:
    """Mark ``fn`` as a read-only entry point (no state writes allowed)."""
    fn.__contract_entry__ = "view"
    return fn


class ContractStorage:
    """A contract's private keyspace inside the chain state."""

    def __init__(self, state, namespace: str, readonly: bool = False) -> None:
        self._state = state
        self._namespace = namespace
        self._readonly = readonly

    def get(self, key: str, default: Any = None) -> Any:
        return self._state.get(self._namespace, key, default)

    def set(self, key: str, value: Any) -> None:
        if self._readonly:
            raise ContractReverted("view methods may not write storage")
        self._state.set(self._namespace, key, value)

    def delete(self, key: str) -> None:
        if self._readonly:
            raise ContractReverted("view methods may not write storage")
        self._state.delete(self._namespace, key)

    def contains(self, key: str) -> bool:
        return self._state.contains(self._namespace, key)

    def items(self):
        return self._state.items(self._namespace)


class Contract:
    """Base class for all contracts.

    Subclasses implement ``setup(**kwargs)`` for constructor logic and any
    number of decorated entry points.  During execution the runtime
    injects:

    * ``self.address`` — this contract's address,
    * ``self.caller`` — the transaction sender,
    * ``self.storage`` — persistent storage,
    * ``self.gas`` — the gas meter (``self.charge(n)`` to spend),
    * ``self.emit(name, **data)`` — append an event to the receipt.
    """

    abi_version = 1

    def __init__(self) -> None:
        self.address: str = ""
        self.caller: str = ""
        self.storage: ContractStorage | None = None
        self._events: list[Event] = []
        self._gas_left = 0

    # ------------------------------------------------------------------
    # Runtime-facing plumbing
    # ------------------------------------------------------------------
    def bind(self, address: str, caller: str, storage: ContractStorage,
             gas: int) -> None:
        self.address = address
        self.caller = caller
        self.storage = storage
        self._events = []
        self._gas_left = gas

    def drain_events(self) -> list[Event]:
        events, self._events = self._events, []
        return events

    @property
    def gas_left(self) -> int:
        return self._gas_left

    # ------------------------------------------------------------------
    # Contract-facing helpers
    # ------------------------------------------------------------------
    def charge(self, amount: int = 1) -> None:
        """Spend gas; reverts the call when the allowance is exhausted."""
        from ..errors import OutOfGas

        self._gas_left -= amount
        if self._gas_left < 0:
            raise OutOfGas(f"{type(self).__name__} ran out of gas")

    def emit(self, name: str, **data: Any) -> None:
        self.charge(1)
        self._events.append(Event(name=name, source=self.address, data=data))

    def require(self, condition: bool, message: str = "requirement failed") -> None:
        """Solidity-style guard: revert unless ``condition`` holds."""
        if not condition:
            raise ContractReverted(message)

    def setup(self, **kwargs: Any) -> None:
        """Constructor hook; default is a no-op."""

    # ------------------------------------------------------------------
    @classmethod
    def entry_points(cls) -> dict[str, str]:
        """Map of callable entry point name -> kind ("method"/"view")."""
        entries: dict[str, str] = {}
        for name in dir(cls):
            if name.startswith("_"):
                continue
            fn = getattr(cls, name)
            kind = getattr(fn, "__contract_entry__", None)
            if kind is not None:
                entries[name] = kind
        return entries

    @classmethod
    def describe(cls) -> dict:
        """Self-describing ABI (used in deploy transactions)."""
        return {
            "name": cls.__name__,
            "abi_version": cls.abi_version,
            "entry_points": cls.entry_points(),
        }


def require_entry_point(contract_cls: type[Contract], name: str) -> str:
    """Return the entry kind for ``name`` or raise :class:`ContractError`."""
    entries = contract_cls.entry_points()
    if name not in entries:
        raise ContractError(
            f"{contract_cls.__name__} has no entry point {name!r}; "
            f"available: {sorted(entries)}"
        )
    return entries[name]
