"""Threshold-voting contract.

SmartProvenance [63] authenticates provenance records through a
"threshold-based voting system": a record becomes *accepted* once enough
distinct voters endorse it.  The same primitive drives BlockDFL's gradient
acceptance and the ForensiCross bridge's unanimous progression rule, so it
is factored into a reusable contract parameterized by threshold.
"""

from __future__ import annotations

from ..contract import Contract, method, view


class ThresholdVoting(Contract):
    """Propose items; accept them at ``threshold`` distinct approvals.

    ``threshold`` may be an absolute count or, with ``unanimous=True``,
    the full voter roll (recomputed as voters are added).
    """

    def setup(self, voters: list | None = None, threshold: int = 1,
              unanimous: bool = False) -> None:
        roll = sorted(set(voters or []))
        self.require(threshold >= 1, "threshold must be >= 1")
        self.require(not (not roll and unanimous),
                     "unanimous voting needs an explicit voter roll")
        self.storage.set("config:roll", roll)
        self.storage.set("config:threshold", int(threshold))
        self.storage.set("config:unanimous", bool(unanimous))

    def _effective_threshold(self) -> int:
        if bool(self.storage.get("config:unanimous")):
            return len(self.storage.get("config:roll", []))
        return int(self.storage.get("config:threshold", 1))

    def _is_voter(self, who: str) -> bool:
        roll = self.storage.get("config:roll", [])
        return not roll or who in roll

    # ------------------------------------------------------------------
    @method
    def propose(self, item_id: str, payload_hash: str = "") -> None:
        """Open a ballot for ``item_id``."""
        self.charge(2)
        self.require(not self.storage.contains(f"ballot:{item_id}"),
                     f"ballot {item_id} already exists")
        self.storage.set(f"ballot:{item_id}", {
            "item_id": item_id,
            "payload_hash": payload_hash,
            "proposer": self.caller,
            "approvals": [],
            "rejections": [],
            "status": "open",
        })
        self.emit("ballot_opened", item_id=item_id, proposer=self.caller)

    @method
    def vote(self, item_id: str, approve: bool = True) -> str:
        """Cast a vote; returns the ballot status afterwards."""
        self.charge(2)
        ballot = self.storage.get(f"ballot:{item_id}")
        self.require(ballot is not None, f"no ballot {item_id}")
        self.require(ballot["status"] == "open", "ballot is closed")
        self.require(self._is_voter(self.caller),
                     f"{self.caller} is not on the voter roll")
        ballot = dict(ballot)
        already = set(ballot["approvals"]) | set(ballot["rejections"])
        self.require(self.caller not in already,
                     f"{self.caller} already voted on {item_id}")
        key = "approvals" if approve else "rejections"
        ballot[key] = list(ballot[key]) + [self.caller]
        threshold = self._effective_threshold()
        if len(ballot["approvals"]) >= threshold:
            ballot["status"] = "accepted"
            self.emit("accepted", item_id=item_id,
                      approvals=len(ballot["approvals"]))
        elif bool(self.storage.get("config:unanimous")) and ballot["rejections"]:
            # One rejection sinks a unanimous ballot immediately.
            ballot["status"] = "rejected"
            self.emit("rejected", item_id=item_id)
        self.storage.set(f"ballot:{item_id}", ballot)
        return ballot["status"]

    # ------------------------------------------------------------------
    @view
    def status(self, item_id: str) -> str:
        self.charge(1)
        ballot = self.storage.get(f"ballot:{item_id}")
        self.require(ballot is not None, f"no ballot {item_id}")
        return str(ballot["status"])

    @view
    def tally(self, item_id: str) -> dict:
        self.charge(1)
        ballot = self.storage.get(f"ballot:{item_id}")
        self.require(ballot is not None, f"no ballot {item_id}")
        return {
            "approvals": len(ballot["approvals"]),
            "rejections": len(ballot["rejections"]),
            "threshold": self._effective_threshold(),
            "status": ballot["status"],
        }
