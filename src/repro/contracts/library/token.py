"""A minimal fungible token contract.

Used by the cross-chain mechanisms (sidechain pegs lock tokens on the main
chain and mint them on the side chain; HTLC legs move them between
parties) and by FL incentive schemes.  The interface is the familiar
mint/transfer/burn/balance quartet.
"""

from __future__ import annotations

from ..contract import Contract, method, view


class SimpleToken(Contract):
    """Fungible token with a single minter."""

    def setup(self, name: str = "TOKEN", minter: str = "",
              initial_supply: int = 0) -> None:
        self.storage.set("config:name", name)
        self.storage.set("config:minter", minter or self.caller)
        if initial_supply:
            self.storage.set("bal:" + (minter or self.caller),
                             int(initial_supply))
        self.storage.set("meta:supply", int(initial_supply))

    def _balance(self, account: str) -> int:
        return int(self.storage.get("bal:" + account, 0))

    # ------------------------------------------------------------------
    @method
    def mint(self, to: str, amount: int) -> None:
        self.charge(1)
        self.require(self.caller == self.storage.get("config:minter"),
                     "only the minter may mint")
        self.require(amount > 0, "amount must be positive")
        self.storage.set("bal:" + to, self._balance(to) + int(amount))
        self.storage.set("meta:supply",
                         int(self.storage.get("meta:supply", 0)) + int(amount))
        self.emit("minted", to=to, amount=amount)

    @method
    def burn(self, amount: int) -> None:
        self.charge(1)
        self.require(amount > 0, "amount must be positive")
        balance = self._balance(self.caller)
        self.require(balance >= amount, "insufficient balance to burn")
        self.storage.set("bal:" + self.caller, balance - int(amount))
        self.storage.set("meta:supply",
                         int(self.storage.get("meta:supply", 0)) - int(amount))
        self.emit("burned", account=self.caller, amount=amount)

    @method
    def transfer(self, to: str, amount: int) -> None:
        self.charge(1)
        self.require(amount > 0, "amount must be positive")
        balance = self._balance(self.caller)
        self.require(balance >= amount,
                     f"insufficient balance: {balance} < {amount}")
        self.storage.set("bal:" + self.caller, balance - int(amount))
        self.storage.set("bal:" + to, self._balance(to) + int(amount))
        self.emit("transferred", src=self.caller, dst=to, amount=amount)

    # ------------------------------------------------------------------
    @view
    def balance_of(self, account: str) -> int:
        self.charge(1)
        return self._balance(account)

    @view
    def total_supply(self) -> int:
        self.charge(1)
        return int(self.storage.get("meta:supply", 0))

    @view
    def token_name(self) -> str:
        self.charge(1)
        return str(self.storage.get("config:name", ""))
