"""On-chain access-control contract.

Grants are stored on-chain so that every permission change is itself part
of the provenance trail — the property healthcare designs (HealthBlock,
Niu et al.) and forensic designs (ForensiBlock) both insist on.  The
contract implements simple subject→(resource, action) grants plus
delegable admin roles; richer RBAC/ABAC policy evaluation lives off-chain
in :mod:`repro.access` and can be *anchored* through this contract.
"""

from __future__ import annotations

from ..contract import Contract, method, view


class AccessControlContract(Contract):
    """Grant, revoke, and check permissions; every change is an event."""

    def setup(self, admin: str = "") -> None:
        root = admin or self.caller
        self.storage.set("admin:" + root, True)
        self.emit("admin_added", subject=root)

    def _is_admin(self, who: str) -> bool:
        return bool(self.storage.get("admin:" + who, False))

    @staticmethod
    def _grant_key(subject: str, resource: str, action: str) -> str:
        return f"grant:{subject}|{resource}|{action}"

    # ------------------------------------------------------------------
    @method
    def add_admin(self, subject: str) -> None:
        self.charge(1)
        self.require(self._is_admin(self.caller), "admin only")
        self.storage.set("admin:" + subject, True)
        self.emit("admin_added", subject=subject)

    @method
    def grant(self, subject: str, resource: str, action: str,
              expires_at: int = 0) -> None:
        """Allow ``subject`` to perform ``action`` on ``resource``.

        ``expires_at`` of 0 means no expiry; otherwise the grant is valid
        only strictly before that (logical-clock) time.
        """
        self.charge(2)
        self.require(self._is_admin(self.caller), "admin only")
        self.storage.set(self._grant_key(subject, resource, action), {
            "granted_by": self.caller,
            "expires_at": int(expires_at),
        })
        self.emit("granted", subject=subject, resource=resource,
                  action=action, expires_at=expires_at)

    @method
    def revoke(self, subject: str, resource: str, action: str) -> None:
        self.charge(2)
        self.require(self._is_admin(self.caller), "admin only")
        key = self._grant_key(subject, resource, action)
        self.require(self.storage.contains(key), "no such grant")
        self.storage.delete(key)
        self.emit("revoked", subject=subject, resource=resource, action=action)

    # ------------------------------------------------------------------
    @view
    def check(self, subject: str, resource: str, action: str,
              at_time: int = 0) -> bool:
        """Is ``subject`` currently allowed ``action`` on ``resource``?"""
        self.charge(1)
        if self._is_admin(subject):
            return True
        grant = self.storage.get(self._grant_key(subject, resource, action))
        if grant is None:
            return False
        expires = int(grant.get("expires_at", 0))
        return expires == 0 or at_time < expires

    @view
    def grants_for(self, subject: str) -> list[dict]:
        """All active grants for a subject (audit support)."""
        self.charge(2)
        prefix = f"grant:{subject}|"
        result = []
        for key, value in self.storage.items():
            if key.startswith(prefix):
                _, spec = key.split(":", 1)
                _, resource, action = spec.split("|")
                result.append({"resource": resource, "action": action,
                               **dict(value)})
        return result
