"""On-chain provenance registry contract.

The minimal on-chain footprint most surveyed designs converge on: a map
from record id to ``(hash, owner, timestamp, prev)`` tuples, giving each
registered artifact a tamper-evident, linkable history while the bulky
record body stays off-chain.
"""

from __future__ import annotations

from typing import Any

from ..contract import Contract, method, view


class ProvenanceRegistry(Contract):
    """Register content hashes and link successive versions."""

    def setup(self, owner_transfers_allowed: bool = True) -> None:
        self.storage.set("config:transfers", bool(owner_transfers_allowed))
        self.storage.set("meta:count", 0)

    # ------------------------------------------------------------------
    @method
    def register(self, record_id: str, content_hash: str,
                 prev_record_id: str = "", meta: dict | None = None) -> dict:
        """Register a record hash; links to ``prev_record_id`` if given."""
        self.charge(3)
        self.require(bool(record_id), "record_id required")
        self.require(not self.storage.contains(f"rec:{record_id}"),
                     f"record {record_id} already registered")
        if prev_record_id:
            self.require(self.storage.contains(f"rec:{prev_record_id}"),
                         f"unknown prev record {prev_record_id}")
        entry = {
            "record_id": record_id,
            "content_hash": content_hash,
            "owner": self.caller,
            "prev": prev_record_id,
            "meta": dict(meta or {}),
        }
        self.storage.set(f"rec:{record_id}", entry)
        count = int(self.storage.get("meta:count", 0))
        self.storage.set("meta:count", count + 1)
        self.emit("registered", record_id=record_id,
                  content_hash=content_hash, owner=self.caller)
        return entry

    @method
    def transfer_ownership(self, record_id: str, new_owner: str) -> None:
        """Hand a record's ownership to ``new_owner`` (if enabled)."""
        self.charge(2)
        self.require(bool(self.storage.get("config:transfers")),
                     "ownership transfers disabled")
        entry = self.storage.get(f"rec:{record_id}")
        self.require(entry is not None, f"unknown record {record_id}")
        self.require(entry["owner"] == self.caller,
                     "only the owner may transfer")
        entry = dict(entry)
        entry["owner"] = new_owner
        self.storage.set(f"rec:{record_id}", entry)
        self.emit("ownership_transferred", record_id=record_id,
                  new_owner=new_owner)

    # ------------------------------------------------------------------
    @view
    def lookup(self, record_id: str) -> dict | None:
        self.charge(1)
        entry = self.storage.get(f"rec:{record_id}")
        return dict(entry) if entry is not None else None

    @view
    def verify(self, record_id: str, content_hash: str) -> bool:
        """Does the registered hash match ``content_hash``?"""
        self.charge(1)
        entry = self.storage.get(f"rec:{record_id}")
        return entry is not None and entry["content_hash"] == content_hash

    @view
    def history(self, record_id: str, max_depth: int = 64) -> list[dict]:
        """Follow ``prev`` links back from ``record_id`` (newest first)."""
        self.charge(2)
        chain: list[dict] = []
        current: Any = record_id
        for _ in range(max_depth):
            if not current:
                break
            entry = self.storage.get(f"rec:{current}")
            if entry is None:
                break
            chain.append(dict(entry))
            current = entry.get("prev", "")
        return chain

    @view
    def count(self) -> int:
        self.charge(1)
        return int(self.storage.get("meta:count", 0))
