"""Incentive escrow contract (PrivChain's payout mechanism).

PrivChain [52] pays supply-chain participants for supplying *valid*
zero-knowledge proofs: "proof verification and incentive payments are
automated through blockchain transactions, smart contracts, and events."
This contract escrows a bounty per request; a designated verifier reports
proof validity, and the contract releases (or returns) the funds and
emits the events the capture layer records.

Balances are kept in contract storage and settled against the chain's
account balances by the caller (the system layer does this), keeping the
contract runtime independent of the executor's balance namespace.
"""

from __future__ import annotations

from ..contract import Contract, method, view


class IncentiveEscrow(Contract):
    """Escrow bounties that release on verified proof submission."""

    def setup(self, verifier: str = "") -> None:
        self.storage.set("config:verifier", verifier or self.caller)

    # ------------------------------------------------------------------
    @method
    def open_bounty(self, bounty_id: str, amount: int, prover: str,
                    statement: str = "") -> None:
        """Escrow ``amount`` for ``prover`` until a proof is verified."""
        self.charge(2)
        self.require(amount > 0, "bounty must be positive")
        self.require(not self.storage.contains(f"bounty:{bounty_id}"),
                     f"bounty {bounty_id} exists")
        self.storage.set(f"bounty:{bounty_id}", {
            "funder": self.caller,
            "prover": prover,
            "amount": int(amount),
            "statement": statement,
            "status": "open",
        })
        self.emit("bounty_opened", bounty_id=bounty_id, amount=amount,
                  prover=prover)

    @method
    def submit_result(self, bounty_id: str, proof_valid: bool,
                      proof_ref: str = "") -> str:
        """Verifier reports the proof outcome; settles the bounty.

        Returns the final status: ``"paid"`` or ``"refunded"``.
        """
        self.charge(2)
        self.require(self.caller == self.storage.get("config:verifier"),
                     "only the verifier may settle")
        bounty = self.storage.get(f"bounty:{bounty_id}")
        self.require(bounty is not None, f"no bounty {bounty_id}")
        self.require(bounty["status"] == "open", "bounty already settled")
        bounty = dict(bounty)
        if proof_valid:
            bounty["status"] = "paid"
            self._credit(bounty["prover"], bounty["amount"])
            self.emit("bounty_paid", bounty_id=bounty_id,
                      prover=bounty["prover"], amount=bounty["amount"],
                      proof_ref=proof_ref)
        else:
            bounty["status"] = "refunded"
            self._credit(bounty["funder"], bounty["amount"])
            self.emit("bounty_refunded", bounty_id=bounty_id,
                      funder=bounty["funder"], proof_ref=proof_ref)
        self.storage.set(f"bounty:{bounty_id}", bounty)
        return bounty["status"]

    def _credit(self, account: str, amount: int) -> None:
        balance = int(self.storage.get(f"payable:{account}", 0))
        self.storage.set(f"payable:{account}", balance + amount)

    @method
    def withdraw(self) -> int:
        """Claim accumulated payouts; returns the amount withdrawn."""
        self.charge(1)
        amount = int(self.storage.get(f"payable:{self.caller}", 0))
        self.require(amount > 0, "nothing to withdraw")
        self.storage.set(f"payable:{self.caller}", 0)
        self.emit("withdrawn", account=self.caller, amount=amount)
        return amount

    # ------------------------------------------------------------------
    @view
    def payable_to(self, account: str) -> int:
        self.charge(1)
        return int(self.storage.get(f"payable:{account}", 0))

    @view
    def bounty_status(self, bounty_id: str) -> str:
        self.charge(1)
        bounty = self.storage.get(f"bounty:{bounty_id}")
        self.require(bounty is not None, f"no bounty {bounty_id}")
        return str(bounty["status"])
