"""Reusable contracts used by the reference systems."""

from .registry import ProvenanceRegistry
from .voting import ThresholdVoting
from .access_contract import AccessControlContract
from .escrow import IncentiveEscrow
from .token import SimpleToken

__all__ = [
    "ProvenanceRegistry",
    "ThresholdVoting",
    "AccessControlContract",
    "IncentiveEscrow",
    "SimpleToken",
]
