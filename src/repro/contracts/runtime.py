"""Contract runtime: executes deploy/call transactions against a chain.

The runtime attaches to a :class:`~repro.chain.blockchain.Blockchain`; the
chain's default executor forwards ``CONTRACT_DEPLOY`` / ``CONTRACT_CALL``
transactions here.  Execution is:

* **deterministic** — contracts are pure Python over ``StateStore`` data;
* **metered** — every storage access and event costs gas; exceeding the
  transaction's gas limit reverts;
* **atomic** — a state snapshot is taken per call and rolled back on any
  contract exception, so failed calls cannot corrupt state.

Contract *classes* are registered by name (the code registry plays the
role of known chaincode in Fabric); a deploy transaction instantiates a
named class at a fresh address with constructor arguments.
"""

from __future__ import annotations

from typing import Any, Mapping, Type

from ..chain.receipts import TransactionReceipt
from ..chain.state import StateStore
from ..chain.transaction import Transaction, TxKind
from ..crypto.hashing import hash_hex
from ..errors import ContractError, ContractNotFound, ContractReverted
from .contract import Contract, ContractStorage, require_entry_point

DEFAULT_GAS_LIMIT = 100_000


def deploy_payload(contract_name: str, gas_limit: int = DEFAULT_GAS_LIMIT,
                   **constructor_args: Any) -> dict:
    """Build the payload for a ``CONTRACT_DEPLOY`` transaction."""
    return {
        "contract": contract_name,
        "args": constructor_args,
        "gas_limit": gas_limit,
    }


def call_payload(address: str, entry: str, gas_limit: int = DEFAULT_GAS_LIMIT,
                 **call_args: Any) -> dict:
    """Build the payload for a ``CONTRACT_CALL`` transaction."""
    return {
        "address": address,
        "entry": entry,
        "args": call_args,
        "gas_limit": gas_limit,
    }


class ContractRuntime:
    """Executes contract transactions for one chain."""

    def __init__(self) -> None:
        self._registry: dict[str, Type[Contract]] = {}
        self._instances: dict[str, Type[Contract]] = {}  # address -> class
        self.calls_executed = 0
        self.total_gas_used = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def register(self, contract_cls: Type[Contract]) -> None:
        """Make a contract class deployable by name."""
        if not issubclass(contract_cls, Contract):
            raise ContractError(
                f"{contract_cls.__name__} does not subclass Contract"
            )
        self._registry[contract_cls.__name__] = contract_cls

    def attach(self, chain) -> None:
        """Connect this runtime to ``chain`` (one runtime per chain)."""
        chain.contract_runtime = self

    # ------------------------------------------------------------------
    # Execution (called from the chain executor)
    # ------------------------------------------------------------------
    def execute(self, tx: Transaction, state: StateStore) -> TransactionReceipt:
        if tx.kind == TxKind.CONTRACT_DEPLOY:
            return self._execute_deploy(tx, state)
        if tx.kind == TxKind.CONTRACT_CALL:
            return self._execute_call(tx, state)
        raise ContractError(f"runtime cannot execute tx kind {tx.kind}")

    def _execute_deploy(self, tx: Transaction, state: StateStore) -> TransactionReceipt:
        receipt = TransactionReceipt(tx_id=tx.tx_id, success=True)
        name = str(tx.payload.get("contract", ""))
        contract_cls = self._registry.get(name)
        if contract_cls is None:
            receipt.success = False
            receipt.error = f"unknown contract class {name!r}"
            return receipt
        address = "ct-" + hash_hex({"deploy": tx.tx_id})[:16]
        gas_limit = int(tx.payload.get("gas_limit", DEFAULT_GAS_LIMIT))
        snapshot = state.snapshot()
        instance = contract_cls()
        storage = ContractStorage(state, namespace=f"contract:{address}")
        instance.bind(address, tx.sender, storage, gas_limit)
        try:
            instance.setup(**dict(tx.payload.get("args", {})))
        except ContractReverted as exc:
            state.rollback(snapshot)
            receipt.success = False
            receipt.error = str(exc)
            receipt.gas_used = gas_limit - instance.gas_left
            return receipt
        state.commit_snapshot(snapshot)
        self._instances[address] = contract_cls
        state.set("contracts", address, contract_cls.__name__)
        receipt.output = address
        receipt.gas_used = gas_limit - instance.gas_left + 10
        receipt.events = instance.drain_events()
        self.calls_executed += 1
        self.total_gas_used += receipt.gas_used
        return receipt

    def _execute_call(self, tx: Transaction, state: StateStore) -> TransactionReceipt:
        receipt = TransactionReceipt(tx_id=tx.tx_id, success=True)
        address = str(tx.payload.get("address", ""))
        entry = str(tx.payload.get("entry", ""))
        try:
            output, gas_used, events = self.call(
                state,
                address=address,
                entry=entry,
                caller=tx.sender,
                args=dict(tx.payload.get("args", {})),
                gas_limit=int(tx.payload.get("gas_limit", DEFAULT_GAS_LIMIT)),
            )
            receipt.output = output
            receipt.gas_used = gas_used
            receipt.events = events
        except (ContractError, ContractReverted) as exc:
            receipt.success = False
            receipt.error = str(exc)
        self.calls_executed += 1
        self.total_gas_used += receipt.gas_used
        return receipt

    # ------------------------------------------------------------------
    # Direct call interface (also used for off-transaction views)
    # ------------------------------------------------------------------
    def call(
        self,
        state: StateStore,
        address: str,
        entry: str,
        caller: str,
        args: Mapping[str, Any] | None = None,
        gas_limit: int = DEFAULT_GAS_LIMIT,
    ) -> tuple[Any, int, list]:
        """Invoke ``entry`` on the contract at ``address``.

        Returns ``(output, gas_used, events)``.  Raises
        :class:`ContractReverted` (after rolling back) on failure.
        """
        contract_cls = self._instances.get(address)
        if contract_cls is None:
            # Instances may have been created on a replayed chain: recover
            # the class from state.
            class_name = state.get("contracts", address)
            contract_cls = self._registry.get(str(class_name)) if class_name else None
            if contract_cls is None:
                raise ContractNotFound(f"no contract at {address}")
            self._instances[address] = contract_cls
        kind = require_entry_point(contract_cls, entry)
        instance = contract_cls()
        storage = ContractStorage(
            state, namespace=f"contract:{address}", readonly=(kind == "view")
        )
        instance.bind(address, caller, storage, gas_limit)
        snapshot = state.snapshot()
        try:
            output = getattr(instance, entry)(**dict(args or {}))
        except ContractReverted:
            state.rollback(snapshot)
            raise
        except (TypeError, KeyError, ValueError) as exc:
            state.rollback(snapshot)
            raise ContractReverted(f"{entry} failed: {exc}") from exc
        except BaseException:
            # Any other contract failure must still unwind this frame:
            # the chain's per-block undo journal relies on strict
            # snapshot nesting, so a leaked frame would poison later
            # reorg rollbacks.
            state.rollback(snapshot)
            raise
        state.commit_snapshot(snapshot)
        gas_used = gas_limit - instance.gas_left
        return output, gas_used, instance.drain_events()

    def query(self, chain, address: str, entry: str, caller: str = "viewer",
              **args: Any) -> Any:
        """Convenience read-only query against a chain's current state."""
        output, _, _ = self.call(
            chain.state, address=address, entry=entry, caller=caller, args=args
        )
        return output

    def deployed_class(self, address: str) -> Type[Contract] | None:
        return self._instances.get(address)
