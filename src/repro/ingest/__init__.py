"""High-throughput ingestion pipeline (design note).

The paper frames provenance capture as a continuous, high-rate stream —
IoT sensor readings, supply-chain scan events — that the ledger must
absorb without stalling the capture source.  The synchronous path
(:meth:`~repro.sharding.shardchain.ShardedChain.submit_many`) couples the
capture source to admission: every submit pays routing, validation, and
mempool insertion inline, and a full mempool used to surface as an
opaque ``mempool full`` exception.  This package decouples the two.

Queue model
-----------
One bounded FIFO queue **per shard** sits between submission and
admission (:class:`~repro.ingest.pipeline.IngestPipeline`).  ``submit``
routes a transaction (one router pass per batch, memoized namespace
hash) and parks it in its home shard's queue in O(1) — the capture
source never waits on admission, executor work, or storage.  A *pump*
step later drains each queue in admission batches: one signature-
verification pass per batch (:func:`repro.crypto.signatures.
verify_encoded_batch`, de-duplicating registry lookups per signer), one
:meth:`~repro.chain.mempool.Mempool.add_batch` call per shard, and
lock-conflicted transactions rotate back to the queue head for the next
round.  Admission order per shard is queue order, so a pipelined stream
commits the same per-shard transaction sequence the synchronous path
would.

Backpressure contract
---------------------
A full queue **never drops silently**.  ``submit`` raises — and
``submit_many`` returns, paired per transaction — a structured
:class:`~repro.errors.QueueFull` signal carrying the queue's depth,
capacity, high watermark, and a retry-after estimate (rounds, and wall
time derived from the facade's recent round pace).  Watermark
accounting is explicit: a queue past its high watermark reports
saturated before it is full, so sources can shed load early.  The
:class:`~repro.sharding.shardchain.SubmitReport` buckets — accepted /
queued / deferred / rejected / duplicates — partition every submitted
transaction; ``backpressure_summary()`` gives the per-shard counters a
capture source throttles on.

Group-commit durability points
------------------------------
Sealing drains mempools through the chain's group-commit surface
(:meth:`~repro.chain.blockchain.Blockchain.append_blocks`): a round's
blocks per shard go down as **one** buffered segment-log write finished
by **one** fsync, then **one** sqlite transaction covers every
height/tx/receipt row (``executemany``).  The fsync is the durability
point: when ``seal_round`` returns, the sealed blocks are on stable
storage — strictly stronger than the per-append path, which deferred
durability to the next checkpoint, and cheaper, because the group
amortizes the write and index round-trips.  A crash anywhere inside a
group leaves either no index rows or all of them (frames are fsynced
before the index commit), so recovery truncates to a consistent
log+index boundary exactly as for single appends.  Record ingest group-
commits the same way through
:meth:`~repro.persist.durable.DurableRecordStore.append_many`.

Shards seal concurrently via the facade's thread pool (sqlite3, fsync,
and large hashes release the GIL), so wall-clock round time approaches
the slowest shard rather than the sum — see
:meth:`~repro.sharding.shardchain.ShardedChain.seal_round`.
"""

from .pipeline import IngestPipeline, IngestStats, QueueStats

__all__ = ["IngestPipeline", "IngestStats", "QueueStats"]
