"""``IngestPipeline``: bounded per-shard queues between capture and chain.

See the package docstring for the queue model, the backpressure
contract, and the group-commit durability points.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Sequence

import time

from ..chain.transaction import Transaction
from ..crypto import signatures as sig
from ..crypto.hashing import DOMAIN_SIG, hash_bytes
from ..crypto.signatures import verify_encoded_batch
from ..errors import CryptoError, InvalidTransaction, QueueFull, ShardError
from ..obs.runtime import telemetry as default_telemetry
from ..sharding.shardchain import RoundReport, ShardedChain, SubmitReport

# Admission batches below this size verify inline: a worker round-trip
# (encode + pipe + decode both ways) costs more than a handful of HMACs.
_OFFLOAD_MIN_BATCH = 8


@dataclass(frozen=True)
class QueueStats:
    """One shard queue's load snapshot (the backpressure observable)."""

    shard_id: int
    depth: int
    capacity: int
    high_watermark: int
    total_enqueued: int
    total_admitted: int
    total_rejected: int
    total_deferred: int

    @property
    def saturation(self) -> float:
        """0.0 empty → 1.0 full."""
        return self.depth / self.capacity

    @property
    def over_watermark(self) -> bool:
        return self.depth >= self.high_watermark


@dataclass(frozen=True)
class IngestStats:
    """Whole-pipeline counters (sums over every shard queue)."""

    submitted: int
    queued_now: int
    admitted: int
    rejected: int
    deferred: int
    duplicates: int
    invalid: int
    rounds_sealed: int


class _ShardQueue:
    """Bounded FIFO with watermark accounting for one shard."""

    __slots__ = ("shard_id", "capacity", "high_watermark", "items",
                 "total_enqueued", "total_admitted", "total_rejected",
                 "total_deferred")

    def __init__(self, shard_id: int, capacity: int,
                 high_watermark: int) -> None:
        self.shard_id = shard_id
        self.capacity = capacity
        self.high_watermark = high_watermark
        self.items: deque[Transaction] = deque()
        self.total_enqueued = 0
        self.total_admitted = 0
        self.total_rejected = 0
        self.total_deferred = 0

    def __len__(self) -> int:
        return len(self.items)

    @property
    def free(self) -> int:
        return self.capacity - len(self.items)

    def take(self, n: int) -> list[Transaction]:
        items = self.items
        return [items.popleft() for _ in range(min(n, len(items)))]

    def put_back_front(self, txs: Sequence[Transaction]) -> None:
        """Return lock-deferred transactions to the head, order kept."""
        for tx in reversed(txs):
            self.items.appendleft(tx)


class IngestPipeline:
    """Decouples transaction submission from admission and sealing.

    ``submit``/``submit_many`` park routed transactions in bounded
    per-shard queues and return immediately — a full queue yields a
    structured :class:`~repro.errors.QueueFull` with retry-after, never
    a silent drop.  ``pump`` drains the queues into the shard mempools
    in admission batches (one signature pass and one mempool call per
    batch); ``seal_round`` pumps and then seals, draining deep queues
    with multiple group-committed blocks per shard per round.

    ``verify_signatures=True`` makes admission reject unsigned or
    badly-signed transactions in the batch verification pass (they land
    in ``invalid_txs``, counted, never silently discarded).
    """

    def __init__(
        self,
        sharded: ShardedChain,
        queue_capacity: int = 8192,
        high_watermark: float = 0.75,
        admission_batch: int | None = None,
        verify_signatures: bool = False,
        max_blocks_per_round: int = 8,
        telemetry=None,
    ) -> None:
        if queue_capacity < 1:
            raise ShardError("queue_capacity must be >= 1")
        if not 0.0 < high_watermark <= 1.0:
            raise ShardError("high_watermark must be in (0, 1]")
        if max_blocks_per_round < 1:
            raise ShardError("max_blocks_per_round must be >= 1")
        self.sharded = sharded
        max_txs = sharded.shards[0].chain.params.max_block_txs
        self.admission_batch = (admission_batch if admission_batch
                                else max(max_txs, 1))
        self.verify_signatures = verify_signatures
        self.max_blocks_per_round = max_blocks_per_round
        hw = max(1, int(queue_capacity * high_watermark))
        self._queues = [
            _ShardQueue(shard.shard_id, queue_capacity, hw)
            for shard in sharded.shards
        ]
        # Most recent signature-rejected transactions, bounded: a
        # long-running stream of bad submissions must not leak memory.
        # total_invalid keeps the full count.
        self.invalid_txs: deque[Transaction] = deque(maxlen=1024)
        self.total_invalid = 0
        self.total_submitted = 0
        self.total_duplicates = 0
        # Telemetry: the hot submit path keeps its plain-int counters
        # (the collector below publishes them at snapshot time) and pays
        # only a sampling countdown; per-batch pump/verify paths observe
        # histograms directly.  Traces: a sampled submit opens a root
        # span and binds its context to the tx id, which seal_round
        # picks up so worker-side exec spans and the persist fsync span
        # descend from the submit.
        self.telemetry = telemetry if telemetry is not None \
            else default_telemetry()
        registry = self.telemetry.registry
        self._tracer = self.telemetry.tracer
        # Per-tx submit samples against an inline threshold (seeded from
        # the tracer's rate) instead of calling Tracer.should_sample():
        # at ~1µs per in-memory submit even the bound-method call is a
        # measurable fraction of the overhead budget.  A submit traces
        # when total_submitted reaches _next_sample; sampling-off parks
        # the threshold at +inf, so the disabled and the
        # unsampled-enabled paths execute the *same* compare-and-branch
        # and cost identically.
        self._sample_every = self._tracer.sample_every
        self._next_sample = 1 if self._sample_every else float("inf")
        self._m_admission_s = registry.histogram("ingest_admission_seconds")
        self._m_verify_s = registry.histogram("ingest_verify_seconds")
        self._m_quarantined = registry.counter("ingest_quarantined_total")
        registry.register_collector(self._collect_metrics)

    def _collect_metrics(self) -> None:
        """Publish the queues' plain-int counters into the registry
        (pull model: the submit path never touches the registry)."""
        registry = self.telemetry.registry
        for q in self._queues:
            shard = q.shard_id
            registry.gauge("ingest_queue_depth", shard=shard).set(len(q))
            registry.gauge("ingest_queue_high_watermark",
                           shard=shard).set(q.high_watermark)
            registry.counter("ingest_enqueued_total",
                             shard=shard).value = q.total_enqueued
            registry.counter("ingest_admitted_total",
                             shard=shard).value = q.total_admitted
            registry.counter("ingest_queuefull_total",
                             shard=shard).value = q.total_rejected
            registry.counter("ingest_deferred_total",
                             shard=shard).value = q.total_deferred
        registry.counter("ingest_submitted_total").value = \
            self.total_submitted
        registry.counter("ingest_duplicates_total").value = \
            self.total_duplicates
        registry.counter("ingest_invalid_total").value = self.total_invalid

    # ------------------------------------------------------------------
    # Submission (capture-source side; never blocks on admission)
    # ------------------------------------------------------------------
    def _signal_for(self, queue: _ShardQueue) -> QueueFull:
        return self.sharded.backpressure_signal(
            queue.shard_id, depth=len(queue), capacity=queue.capacity,
            high_watermark=queue.high_watermark,
        )

    def submit(self, tx: Transaction) -> int:
        """Route and enqueue one transaction; returns its shard id.

        Raises :class:`~repro.errors.QueueFull` (with depth, watermark,
        and retry-after) when the home shard's queue is at capacity.
        """
        shard_id = self.sharded.router.route(tx)
        queue = self._queues[shard_id]
        if queue.free <= 0:
            queue.total_rejected += 1
            raise self._signal_for(queue)
        queue.items.append(tx)
        queue.total_enqueued += 1
        self.total_submitted += 1
        if self.total_submitted >= self._next_sample:
            self._next_sample = self.total_submitted + self._sample_every
            with self._tracer.root_span("ingest.submit",
                                        sampled=True) as span:
                span.set_attr("shard", shard_id)
                span.set_attr("tx_id", tx.tx_id)
            self._tracer.bind_tx(tx.tx_id, span.ctx)
        return shard_id

    def submit_many(self, txs: Iterable[Transaction]) -> SubmitReport:
        """Batched submission: one router pass, per-shard enqueueing.

        Overflow comes back in ``report.rejected`` paired with its
        :class:`~repro.errors.QueueFull` signal; everything else is
        counted in ``report.queued`` per shard.  Nothing blocks and
        nothing is dropped.
        """
        report = SubmitReport()
        for shard_id, bucket in self.sharded.router.partition(txs).items():
            queue = self._queues[shard_id]
            free = queue.free
            taken = bucket[:free]
            overflow = bucket[free:]
            queue.items.extend(taken)
            queue.total_enqueued += len(taken)
            self.total_submitted += len(taken)
            if taken:
                report.queued[shard_id] = len(taken)
                # One sampling decision per shard bucket, not per tx:
                # a sampled batch traces through its first transaction.
                if self._tracer.should_sample():
                    with self._tracer.root_span("ingest.submit_many",
                                                sampled=True) as span:
                        span.set_attr("shard", shard_id)
                        span.set_attr("batch", len(taken))
                    self._tracer.bind_tx(taken[0].tx_id, span.ctx)
            if overflow:
                queue.total_rejected += len(overflow)
                signal = self._signal_for(queue)
                report.rejected.extend((tx, signal) for tx in overflow)
        return report

    # ------------------------------------------------------------------
    # Admission (pump) and sealing
    # ------------------------------------------------------------------
    def _offload_pool(self):
        """The sharded chain's exec pool, created on demand when the
        deployment seals in process mode; ``None`` keeps admission on
        the inline path (in-memory/thread deployments lose nothing)."""
        sharded = self.sharded
        pool = getattr(sharded, "exec_pool", None)
        if pool is None and getattr(sharded, "executor", None) == "process":
            pool = sharded._get_exec_pool()
        return pool

    def _verify_offloaded(self, signed: list[Transaction],
                          pool) -> list[bool]:
        """Batched signature verification in the exec workers.

        Already-memoized transactions are answered by a cache probe and
        never shipped; unknown signer keys fail closed (same verdict the
        inline path's :class:`CryptoError` fallback produces).  Worker
        passes are memoized in the parent (:func:`sig.record_verified`)
        so seal-time re-validation stays a cache probe — the offload
        must *populate* the caches, not bypass them.
        """
        verdicts = [False] * len(signed)
        pending: list[tuple[int, bytes, bytes, bytes, bytes]] = []
        for i, tx in enumerate(signed):
            digest = hash_bytes(tx._encoded_body(), DOMAIN_SIG)
            signer_bytes = tx.signer.key_bytes
            if sig.check_verified(digest, signer_bytes, tx.signature):
                verdicts[i] = True
                continue
            secret = sig.key_material(tx.signer)
            if secret is None:
                continue
            pending.append(
                (i, digest, signer_bytes, secret, tx.signature)
            )
        if pending:
            results = pool.verify_batch(
                [(digest, secret, tag)
                 for _, digest, _, secret, tag in pending]
            )
            for (i, digest, signer_bytes, _, tag), good in zip(pending,
                                                               results):
                if good:
                    sig.record_verified(digest, signer_bytes, tag)
                    verdicts[i] = True
        return verdicts

    def _verify_batch(
        self, batch: list[Transaction]
    ) -> tuple[list[Transaction], list[Transaction]]:
        """One signature pass over an admission batch → (ok, invalid)."""
        unsigned = [tx for tx in batch
                    if tx.signature is None or tx.signer is None
                    or tx.signer.address != tx.sender]
        signed = [tx for tx in batch
                  if tx.signature is not None and tx.signer is not None
                  and tx.signer.address == tx.sender]
        pool = (self._offload_pool()
                if len(signed) >= _OFFLOAD_MIN_BATCH else None)
        if pool is not None:
            verdicts = self._verify_offloaded(signed, pool)
            ok = [tx for tx, good in zip(signed, verdicts) if good]
            bad = unsigned + [tx for tx, good in zip(signed, verdicts)
                              if not good]
            return ok, bad
        try:
            verdicts = verify_encoded_batch(
                [(tx._encoded_body(), tx.signature, tx.signer)
                 for tx in signed]
            )
        except CryptoError:
            # An unregistered signer key anywhere in the batch (possible
            # on gateway-decoded transactions) must quarantine only that
            # transaction, not fail the batch: re-verify one by one.
            verdicts = []
            for tx in signed:
                try:
                    verdicts.append(tx.verify_signature())
                except CryptoError:
                    verdicts.append(False)
        ok = [tx for tx, good in zip(signed, verdicts) if good]
        bad = unsigned + [tx for tx, good in zip(signed, verdicts)
                          if not good]
        return ok, bad

    def _quarantine(self, txs: Iterable[Transaction]) -> None:
        for tx in txs:
            self.invalid_txs.append(tx)
            self.total_invalid += 1
            self._m_quarantined.inc()

    def _admit(self, queue: _ShardQueue, mempool,
               batch: list[Transaction]) -> tuple[int, int]:
        """Admit one taken batch, never losing transactions.

        Fast path is one ``add_batch`` call.  A structurally invalid
        transaction anywhere in the batch (possible because ``submit``
        deliberately does not validate on the capture source's clock)
        falls back to per-transaction admission so the poison
        transaction is quarantined in ``invalid_txs`` and its healthy
        batch-mates still land.  A full mempool puts the remainder back
        at the queue head — that is what the queue is for.
        """
        try:
            return mempool.add_batch(batch)
        except QueueFull:
            queue.put_back_front(batch)
            return 0, 0
        except (InvalidTransaction, CryptoError):
            pass
        accepted = duplicates = 0
        for i, tx in enumerate(batch):
            try:
                if mempool.add(tx):
                    accepted += 1
                else:
                    duplicates += 1
            except QueueFull:
                queue.put_back_front(batch[i:])
                break
            except (InvalidTransaction, CryptoError):
                self._quarantine([tx])
        return accepted, duplicates

    def pump(self, max_batches_per_shard: int | None = None) -> SubmitReport:
        """Drain queues into mempools in admission batches.

        Per shard and batch: one optional signature-verification pass,
        a lock check (conflicts rotate back to the queue head, counted
        as deferred), then **one** ``add_batch`` mempool call.  Batches
        are sized to the mempool's free capacity, so admission itself
        never overflows; a shard whose mempool is full simply keeps its
        queue — that is what the queue is for.
        """
        if max_batches_per_shard is None:
            max_batches_per_shard = self.max_blocks_per_round
        report = SubmitReport()
        sharded = self.sharded
        for queue in self._queues:
            shard = sharded.shards[queue.shard_id]
            mempool = shard.mempool
            accepted = 0
            deferred: list[Transaction] = []
            for _ in range(max_batches_per_shard):
                room = min(self.admission_batch, mempool.free_capacity)
                batch = queue.take(room)
                if not batch:
                    break
                batch_t0 = time.perf_counter()
                if self.verify_signatures:
                    batch, bad = self._verify_batch(batch)
                    self._m_verify_s.observe(
                        time.perf_counter() - batch_t0
                    )
                    if bad:
                        self._quarantine(bad)
                if sharded._locks:
                    kept = []
                    for tx in batch:
                        if sharded._blocked_by_lock(queue.shard_id, tx):
                            deferred.append(tx)
                        else:
                            kept.append(tx)
                    batch = kept
                if batch:
                    added, duplicates = self._admit(queue, mempool, batch)
                    self._m_admission_s.observe(
                        time.perf_counter() - batch_t0
                    )
                    accepted += added
                    report.duplicates += duplicates
                    self.total_duplicates += duplicates
            if deferred:
                # The pipeline owns the retry (next pump re-attempts
                # from the queue head), so deferrals are reported as
                # counters only — NOT in report.deferred, whose contract
                # says the caller must resubmit.  Listing them there too
                # would double-enqueue.
                queue.put_back_front(deferred)
                queue.total_deferred += len(deferred)
                report.deferred_by_shard[queue.shard_id] = len(deferred)
            if accepted:
                queue.total_admitted += accepted
                report.accepted[queue.shard_id] = accepted
            if len(queue):
                report.queued[queue.shard_id] = len(queue)
        return report

    def seal_round(self, timestamp: int | None = None) -> RoundReport:
        """Pump, then seal one round sized to the drained backlog.

        The deepest shard backlog decides ``blocks_per_shard`` (capped
        at ``max_blocks_per_round``), so a burst is absorbed with a few
        group-committed blocks per shard instead of many single-block
        rounds — each shard's round is one log write + one fsync + one
        index transaction on a durable deployment.
        """
        self.pump()
        max_txs = self.sharded.shards[0].chain.params.max_block_txs
        deepest = max((len(s.mempool) for s in self.sharded.shards),
                      default=0)
        blocks = min(self.max_blocks_per_round,
                     max(1, -(-deepest // max_txs)))
        return self.sharded.seal_round(timestamp=timestamp,
                                       blocks_per_shard=blocks)

    def run_until_drained(self, max_rounds: int = 10_000
                          ) -> list[RoundReport]:
        """Seal rounds until queues and mempools are empty."""
        reports: list[RoundReport] = []
        while (self.backlog or self.sharded.mempool_backlog) \
                and len(reports) < max_rounds:
            reports.append(self.seal_round())
        if self.backlog or self.sharded.mempool_backlog:
            raise ShardError(f"ingest not drained after {max_rounds} rounds")
        return reports

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def backlog(self) -> int:
        """Transactions parked in queues (excludes mempool backlog)."""
        return sum(len(q) for q in self._queues)

    def queue_stats(self, shard_id: int) -> QueueStats:
        if not 0 <= shard_id < len(self._queues):
            raise ShardError(f"no shard {shard_id}")
        q = self._queues[shard_id]
        return QueueStats(
            shard_id=q.shard_id, depth=len(q), capacity=q.capacity,
            high_watermark=q.high_watermark,
            total_enqueued=q.total_enqueued,
            total_admitted=q.total_admitted,
            total_rejected=q.total_rejected,
            total_deferred=q.total_deferred,
        )

    def backpressure(self, shard_id: int) -> QueueFull | None:
        """The signal a ``submit`` to ``shard_id`` would raise right
        now, or ``None`` while the queue is below its high watermark."""
        if not 0 <= shard_id < len(self._queues):
            raise ShardError(f"no shard {shard_id}")
        queue = self._queues[shard_id]
        if len(queue) < queue.high_watermark:
            return None
        return self._signal_for(queue)

    @property
    def stats(self) -> IngestStats:
        return IngestStats(
            submitted=self.total_submitted,
            queued_now=self.backlog,
            admitted=sum(q.total_admitted for q in self._queues),
            rejected=sum(q.total_rejected for q in self._queues),
            deferred=sum(q.total_deferred for q in self._queues),
            duplicates=self.total_duplicates,
            invalid=self.total_invalid,
            rounds_sealed=self.sharded.rounds_sealed,
        )
