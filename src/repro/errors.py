"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class SerializationError(ReproError):
    """A value could not be canonically serialized for hashing."""


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class InvalidSignature(CryptoError):
    """A signature failed verification."""


class InvalidProof(CryptoError):
    """A Merkle / commitment / range proof failed verification."""


class ChainError(ReproError):
    """Base class for blockchain-level failures."""


class InvalidBlock(ChainError):
    """A block violates a structural or consensus rule."""


class InvalidTransaction(ChainError):
    """A transaction is malformed or fails validation."""


class SealedMutation(ChainError):
    """A sealed (frozen) transaction or header was mutated."""


# A retry-after of zero is a footgun the moment the signal crosses a
# socket: a well-behaved remote client that honors the hint verbatim
# retries *immediately* and hot-loops the gateway.  Every QueueFull is
# therefore clamped to this floor (callers with a better estimate — the
# sharded facade's round-pace EWMA — pass a larger value, or their own
# floor via ``min_retry_after_s``).
RETRY_AFTER_FLOOR_S = 0.010


class QueueFull(InvalidTransaction):
    """A bounded admission queue (ingest queue or mempool) is at capacity.

    This is a *backpressure signal*, not a verdict on the transaction:
    the submission is well-formed but cannot be absorbed right now.  The
    structured fields tell the capture source exactly how loaded the
    queue is and when a retry is worth attempting, replacing the seed's
    opaque ``mempool full`` drop.

    ``retry_after_rounds`` counts sealing rounds expected before the
    queue drains below its high watermark; ``retry_after_s`` converts
    that to wall time using the ingest layer's recent round pace.  The
    wall estimate is never zero: it is clamped to ``min_retry_after_s``
    (default :data:`RETRY_AFTER_FLOOR_S`) so a remote client honoring
    it verbatim backs off instead of hot-looping — including in the
    pre-first-seal window where no round pace has been observed yet.
    """

    def __init__(self, message: str, *, shard_id: int | None = None,
                 depth: int = 0, capacity: int = 0,
                 high_watermark: int = 0,
                 retry_after_rounds: int = 1,
                 retry_after_s: float = 0.0,
                 min_retry_after_s: float | None = None) -> None:
        super().__init__(message)
        self.shard_id = shard_id
        self.depth = depth
        self.capacity = capacity
        self.high_watermark = high_watermark
        self.retry_after_rounds = retry_after_rounds
        if min_retry_after_s is None:
            min_retry_after_s = RETRY_AFTER_FLOOR_S
        self.retry_after_s = max(retry_after_s, min_retry_after_s)

    def as_dict(self) -> dict:
        """Structured form for reports, logs, and wire responses."""
        return {
            "shard_id": self.shard_id,
            "depth": self.depth,
            "capacity": self.capacity,
            "high_watermark": self.high_watermark,
            "retry_after_rounds": self.retry_after_rounds,
            "retry_after_s": self.retry_after_s,
        }


class ForkError(ChainError):
    """A fork-choice or reorganization problem."""


class TamperDetected(ChainError):
    """Integrity verification found a mutated block or record."""


class ShardError(ChainError):
    """A sharded-chain routing, sealing, or locking problem.

    ``reason`` is a stable machine code (``"lock_conflict"``,
    ``"fenced_epoch"``, ``"seal_failed"``, ``"quarantined"``, …) and
    ``shard_id`` attributes the failure to one shard, so operators and
    the chaos harness can classify failures without parsing messages.
    Both are optional: the plain ``ShardError("message")`` form keeps
    working everywhere.
    """

    def __init__(self, message: str, *, reason: str = "shard_error",
                 shard_id: int | None = None) -> None:
        super().__init__(message)
        self.reason = reason
        self.shard_id = shard_id

    def as_dict(self) -> dict:
        """Structured form for reports, logs, and health rollups."""
        return {
            "reason": self.reason,
            "shard_id": self.shard_id,
            "message": str(self),
        }


class ConsensusError(ReproError):
    """A consensus engine could not reach or verify agreement."""


class NetworkError(ReproError):
    """A simulated-network delivery failure."""


class PartitionError(NetworkError):
    """Message could not be delivered because of a network partition."""


class SyncError(NetworkError):
    """Snapshot-sync catch-up failed closed against a serving peer.

    Raised by the :mod:`repro.sync` client whenever downloaded material
    does not verify against the trust root (beacon headers) or the
    hash-bound manifest: a corrupt or forged chunk, a tail that does not
    hash-chain to the beacon-anchored head, a state image whose root
    mismatches the anchored commitment, a stale or wrong-height offer,
    or a peer that stops answering.  ``reason`` is a stable machine
    code (``"corrupt_chunk"``, ``"forged_tail"``, ``"state_root_mismatch"``,
    ``"stale_snapshot"``, ``"forged_offer"``, ``"peer_unresponsive"``, …)
    so callers can drive retry/failover policy without parsing messages.
    """

    def __init__(self, message: str, *, reason: str = "sync_failed",
                 shard_id: int | None = None,
                 peer: str | None = None,
                 detail: str = "") -> None:
        super().__init__(message)
        self.reason = reason
        self.shard_id = shard_id
        self.peer = peer
        self.detail = detail

    def as_dict(self) -> dict:
        """Structured form for reports, logs, and wire responses."""
        return {
            "reason": self.reason,
            "shard_id": self.shard_id,
            "peer": self.peer,
            "detail": self.detail,
        }


class GatewayError(NetworkError):
    """A socket-gateway protocol failure (see :mod:`repro.gateway`).

    ``reason`` is a stable machine code so clients and tests can drive
    policy without parsing messages: ``"frame_too_large"``,
    ``"corrupt_frame"``, ``"protocol"`` (op/sequence violations),
    ``"draining"`` (server refusing new work during graceful shutdown),
    ``"connection_closed"`` (peer vanished mid-exchange), and
    ``"backpressure_budget"`` (client retry budget exhausted with
    submissions still backpressured — nothing was dropped; the
    unaccepted transactions ride on ``pending``).
    """

    def __init__(self, message: str, *, reason: str = "gateway_error",
                 pending: list | None = None) -> None:
        super().__init__(message)
        self.reason = reason
        self.pending = pending if pending is not None else []

    def as_dict(self) -> dict:
        """Structured form for wire ``error`` frames and logs."""
        return {"reason": self.reason, "message": str(self)}


class ContractError(ReproError):
    """Base class for smart-contract runtime failures."""


class ContractNotFound(ContractError):
    """No contract is deployed at the given address."""


class ContractReverted(ContractError):
    """Contract execution reverted; state changes were rolled back."""


class OutOfGas(ContractReverted):
    """Execution exceeded its gas allowance."""


class StorageError(ReproError):
    """Base class for off-chain storage failures."""


class ObjectNotFound(StorageError):
    """Requested object/CID does not exist in the store."""


class ProvenanceError(ReproError):
    """Base class for provenance-layer failures."""


class UnknownEntity(ProvenanceError):
    """Referenced provenance node does not exist."""


class CycleDetected(ProvenanceError):
    """An operation would introduce a cycle into the provenance DAG."""


class RecordValidationError(ProvenanceError):
    """A domain provenance record is missing or has malformed fields."""


class CaptureError(ProvenanceError):
    """A provenance capture pathway could not record an operation."""


class AnchorError(ProvenanceError):
    """Anchoring provenance to the chain failed or proof was invalid."""


class QueryError(ProvenanceError):
    """A provenance query was malformed or could not be answered."""


class AccessDenied(ReproError):
    """An access-control policy denied the operation."""


class PolicyError(ReproError):
    """An access-control policy is malformed."""


class PrivacyError(ReproError):
    """Base class for privacy-layer failures."""


class DecryptionError(PrivacyError):
    """Ciphertext could not be decrypted with the supplied key."""


class CrossChainError(ReproError):
    """Base class for cross-chain protocol failures."""


class SwapAborted(CrossChainError):
    """An atomic swap was aborted; all legs refunded."""


class TimelockExpired(CrossChainError):
    """An HTLC timelock expired before the secret was revealed."""


class BridgeError(CrossChainError):
    """A bridge-chain transfer failed validation or voting."""


class DomainError(ReproError):
    """Base class for application-domain failures."""


class WorkflowError(DomainError):
    """Scientific workflow lifecycle violation."""


class CustodyError(DomainError):
    """Supply-chain or forensic chain-of-custody violation."""


class ConsentError(DomainError):
    """Healthcare consent requirement violated."""
