"""Pure-python gateway clients: asyncio and blocking-socket twins.

Both speak the frame grammar in :mod:`repro.gateway.frames` and share
one retry discipline, driven by the async-aware face of
:class:`~repro.net_retry.RetryPolicy`:

* :meth:`submit` is **one** wire round trip — send a batch, collect the
  streamed ``RETRY_AFTER`` chunks and the final ``REPORT``, and return
  a :class:`SubmitResult`.  Backpressure is data, not an exception.
* :meth:`submit_with_retry` is the loop capture sources actually want:
  bounced transactions are re-submitted after sleeping the larger of
  the server's retry-after hint and the policy's exponential schedule.
  When the attempt budget runs out the *still-pending* transactions
  come back attached to a :class:`~repro.errors.GatewayError`
  (``reason="backpressure_budget"``) — the client never silently drops
  a capture event, mirroring the server's never-drop contract.

The sync client exists so capture processes without an event loop (the
IoT-fleet example, benchmark drivers, REPL poking) get the identical
protocol with ``time.sleep`` in place of ``asyncio.sleep``.
"""

from __future__ import annotations

import asyncio
import socket
import time
from dataclasses import dataclass, field

from ..errors import GatewayError
from ..net_retry import RetryPolicy, sleep_backoff
from .frames import (
    OP_BYE,
    OP_ERROR,
    OP_GOODBYE,
    OP_HELLO,
    OP_HELLO_OK,
    OP_OPS,
    OP_OPS_OK,
    OP_PING,
    OP_PONG,
    OP_REPORT,
    OP_RETRY_AFTER,
    PROTOCOL_VERSION,
    encode_frame,
    read_frame,
    read_frame_sync,
    txs_to_frame_body,
)

__all__ = ["SubmitResult", "AsyncGatewayClient", "GatewayClient"]


@dataclass
class SubmitResult:
    """Outcome of one submit round trip (or one retry loop).

    ``rejected`` pairs each bounced tx id with the structured
    backpressure mapping off the wire (``retry_after_s``, ``depth``,
    ``capacity``, ...); ``retry_after_s`` is the server's soonest-retry
    hint for the whole batch (0.0 when nothing bounced)."""

    queued: int = 0
    queued_by_shard: dict = field(default_factory=dict)
    rejected: list = field(default_factory=list)
    retry_after_s: float = 0.0
    attempts: int = 1
    waited_s: float = 0.0

    @property
    def rejected_ids(self) -> list[str]:
        return [entry["tx_id"] for entry in self.rejected]


def _raise_wire_error(body: dict) -> None:
    raise GatewayError(
        str(body.get("message", "gateway error")),
        reason=str(body.get("reason", "gateway_error")),
    )


def _fold_reply(result: SubmitResult, body: dict) -> bool:
    """Fold one reply frame into ``result``; True once the final REPORT
    has landed."""
    op = body.get("op")
    if op == OP_ERROR:
        _raise_wire_error(body)
    if op == OP_GOODBYE:
        # The server drained mid-exchange: this submit was NOT acked.
        raise GatewayError("server drained the connection before "
                           "acknowledging the submit", reason="draining")
    if op == OP_RETRY_AFTER:
        result.rejected.extend(body.get("rejected", []))
        return False
    if op == OP_REPORT:
        result.queued += int(body.get("queued", 0))
        for sid, n in body.get("queued_by_shard", {}).items():
            result.queued_by_shard[int(sid)] = \
                result.queued_by_shard.get(int(sid), 0) + int(n)
        result.retry_after_s = float(body.get("retry_after_s", 0.0))
        return bool(body.get("final", True))
    raise GatewayError(f"unexpected reply op {op!r} to a submit",
                       reason="protocol")


def _pending_after(txs, result: SubmitResult) -> list:
    bounced = set(result.rejected_ids)
    return [tx for tx in txs if tx.tx_id in bounced]


def _budget_error(pending, attempts: int) -> GatewayError:
    return GatewayError(
        f"{len(pending)} transaction(s) still backpressured after "
        f"{attempts} attempts; resubmit exc.pending",
        reason="backpressure_budget",
        pending=list(pending),
    )


class AsyncGatewayClient:
    """One framed connection to a :class:`~repro.gateway.server.
    GatewayServer`, asyncio flavour.  Construct via :meth:`connect`."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, tenant: str,
                 policy: RetryPolicy | None = None) -> None:
        self._reader = reader
        self._writer = writer
        self.tenant = tenant
        self.policy = policy or RetryPolicy()
        self.conn_id: int | None = None
        self.server_draining = False
        self._seq = 0

    @classmethod
    async def connect(cls, host: str, port: int, tenant: str = "default",
                      policy: RetryPolicy | None = None
                      ) -> "AsyncGatewayClient":
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer, tenant, policy)
        await client._hello()
        return client

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    async def _send(self, body: dict) -> None:
        self._writer.write(encode_frame(body))
        await self._writer.drain()

    async def _recv(self) -> dict:
        body = await read_frame(self._reader)
        if body is None:
            raise GatewayError("server closed the connection",
                               reason="connection_closed")
        return body

    async def _hello(self) -> None:
        await self._send({"op": OP_HELLO, "seq": self._next_seq(),
                          "proto": PROTOCOL_VERSION,
                          "tenant": self.tenant})
        body = await self._recv()
        if body.get("op") == OP_ERROR:
            _raise_wire_error(body)
        if body.get("op") != OP_HELLO_OK:
            raise GatewayError("handshake got no hello_ok",
                               reason="protocol")
        self.conn_id = int(body.get("conn_id", 0))
        self.server_draining = bool(body.get("draining", False))

    async def submit(self, txs) -> SubmitResult:
        """One batched submit round trip (no retries — see
        :meth:`submit_with_retry`)."""
        txs = list(txs)
        seq = self._next_seq()
        await self._send(txs_to_frame_body(txs, seq))
        result = SubmitResult()
        while not _fold_reply(result, await self._recv()):
            pass
        return result

    async def submit_with_retry(self, txs,
                                max_attempts: int | None = None,
                                rng=None) -> SubmitResult:
        """Submit until everything is queued or the budget runs out.

        Sleeps :meth:`RetryPolicy.backoff_s` between attempts — the
        larger of the server's ``RETRY_AFTER`` hint and the exponential
        schedule.  Exhausting the budget raises
        :class:`~repro.errors.GatewayError`
        (``reason="backpressure_budget"``) with the still-pending
        transactions on ``exc.pending`` — nothing is silently dropped.
        """
        attempts = (max_attempts if max_attempts is not None
                    else self.policy.max_retries + 1)
        pending = list(txs)
        total = SubmitResult(attempts=0)
        for attempt in range(attempts):
            if attempt:
                total.waited_s += await sleep_backoff(
                    self.policy, attempt, hint_s=total.retry_after_s,
                    rng=rng,
                )
            total.attempts += 1
            result = await self.submit(pending)
            total.queued += result.queued
            for sid, n in result.queued_by_shard.items():
                total.queued_by_shard[sid] = \
                    total.queued_by_shard.get(sid, 0) + n
            total.retry_after_s = result.retry_after_s
            pending = _pending_after(pending, result)
            if not pending:
                total.rejected = []
                return total
            total.rejected = result.rejected
        raise _budget_error(pending, total.attempts)

    async def ops(self) -> dict:
        """The socket ops surface: registry snapshot + health rollup."""
        await self._send({"op": OP_OPS, "seq": self._next_seq()})
        body = await self._recv()
        if body.get("op") == OP_ERROR:
            _raise_wire_error(body)
        if body.get("op") != OP_OPS_OK:
            raise GatewayError("ops got no ops_ok", reason="protocol")
        return body

    async def ping(self) -> float:
        t0 = time.perf_counter()
        await self._send({"op": OP_PING, "seq": self._next_seq()})
        body = await self._recv()
        if body.get("op") != OP_PONG:
            raise GatewayError("ping got no pong", reason="protocol")
        return time.perf_counter() - t0

    async def close(self) -> None:
        """Polite goodbye; tolerates a server that already hung up."""
        try:
            await self._send({"op": OP_BYE, "seq": self._next_seq()})
            body = await read_frame(self._reader)
            if body is not None and body.get("op") != OP_GOODBYE:
                pass  # server may interleave late frames; we are leaving
        except (GatewayError, ConnectionError, OSError):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncGatewayClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()


class GatewayClient:
    """Blocking-socket twin of :class:`AsyncGatewayClient` — identical
    protocol and retry discipline with ``time.sleep`` backoff."""

    def __init__(self, host: str, port: int, tenant: str = "default",
                 policy: RetryPolicy | None = None,
                 timeout_s: float | None = 30.0) -> None:
        self.tenant = tenant
        self.policy = policy or RetryPolicy()
        self.conn_id: int | None = None
        self.server_draining = False
        self._seq = 0
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout_s)
        try:
            self._hello()
        except BaseException:
            self._sock.close()
            raise

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _send(self, body: dict) -> None:
        self._sock.sendall(encode_frame(body))

    def _recv(self) -> dict:
        body = read_frame_sync(self._sock)
        if body is None:
            raise GatewayError("server closed the connection",
                               reason="connection_closed")
        return body

    def _hello(self) -> None:
        self._send({"op": OP_HELLO, "seq": self._next_seq(),
                    "proto": PROTOCOL_VERSION, "tenant": self.tenant})
        body = self._recv()
        if body.get("op") == OP_ERROR:
            _raise_wire_error(body)
        if body.get("op") != OP_HELLO_OK:
            raise GatewayError("handshake got no hello_ok",
                               reason="protocol")
        self.conn_id = int(body.get("conn_id", 0))
        self.server_draining = bool(body.get("draining", False))

    def submit(self, txs) -> SubmitResult:
        txs = list(txs)
        self._send(txs_to_frame_body(txs, self._next_seq()))
        result = SubmitResult()
        while not _fold_reply(result, self._recv()):
            pass
        return result

    def submit_with_retry(self, txs, max_attempts: int | None = None,
                          rng=None) -> SubmitResult:
        """Sync twin of :meth:`AsyncGatewayClient.submit_with_retry`
        (same budget contract, same ``backpressure_budget`` error)."""
        attempts = (max_attempts if max_attempts is not None
                    else self.policy.max_retries + 1)
        pending = list(txs)
        total = SubmitResult(attempts=0)
        for attempt in range(attempts):
            if attempt:
                wait_s = self.policy.backoff_s(
                    attempt, rng, hint_s=total.retry_after_s
                )
                total.waited_s += wait_s
                time.sleep(wait_s)
            total.attempts += 1
            result = self.submit(pending)
            total.queued += result.queued
            for sid, n in result.queued_by_shard.items():
                total.queued_by_shard[sid] = \
                    total.queued_by_shard.get(sid, 0) + n
            total.retry_after_s = result.retry_after_s
            pending = _pending_after(pending, result)
            if not pending:
                total.rejected = []
                return total
            total.rejected = result.rejected
        raise _budget_error(pending, total.attempts)

    def ops(self) -> dict:
        self._send({"op": OP_OPS, "seq": self._next_seq()})
        body = self._recv()
        if body.get("op") == OP_ERROR:
            _raise_wire_error(body)
        if body.get("op") != OP_OPS_OK:
            raise GatewayError("ops got no ops_ok", reason="protocol")
        return body

    def ping(self) -> float:
        t0 = time.perf_counter()
        self._send({"op": OP_PING, "seq": self._next_seq()})
        body = self._recv()
        if body.get("op") != OP_PONG:
            raise GatewayError("ping got no pong", reason="protocol")
        return time.perf_counter() - t0

    def close(self) -> None:
        try:
            self._send({"op": OP_BYE, "seq": self._next_seq()})
            read_frame_sync(self._sock)
        except (GatewayError, ConnectionError, OSError):
            pass
        self._sock.close()

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
