"""Socket gateway: the network front door to the ingest pipeline.

Until this package, "capture clients" were function calls: every
provenance event entered through in-process
:meth:`~repro.ingest.pipeline.IngestPipeline.submit`.  The gateway
turns the pipeline's admission contract into a wire protocol so O(1000)
real capture processes — IoT sensors, supply-chain scanners, audit
shims — can stream transactions over TCP into one chain deployment,
with the same never-drop, backpressure-first semantics the in-process
path guarantees.

Design note
===========

Frame format
------------

One frame is ``u32 big-endian payload length || payload``; the payload
is :func:`repro.serialization.canonical_encode` of a str-keyed mapping.
That is deliberately the codec every hash and signature already uses
(:mod:`repro.persist.codec` adds the inverse), so the wire format
inherits the storage format's round-trip guarantee: a transaction
decoded off the socket re-encodes to the exact bytes it is hashed and
signed over — signatures verify server-side with no re-signing, and a
gateway-submitted batch seals to byte-identical blocks, Merkle roots,
and shard-beacon commitments as the same batch submitted in process
(``tests/test_gateway.py`` pins this).  Frames above a 16 MiB ceiling,
truncated frames, and payloads that do not decode to an op mapping are
refused fail-closed with structured ``error`` frames
(:class:`~repro.errors.GatewayError`), never half-parsed.

Every request carries ``op`` and ``seq``; replies echo ``seq``.  Ops:

====================  ===================================================
client → server       ``hello`` (proto + tenant), ``submit`` (a batch of
                      transaction mappings), ``ops``, ``ping``, ``bye``
server → client       ``hello_ok``, streamed ``retry_after`` chunks +
                      one final ``report`` per submit, ``ops_ok``,
                      ``pong``, ``error``, ``goodbye``
====================  ===================================================

Backpressure state machine
--------------------------

A SUBMIT batch goes through ``pipeline.submit_many`` — bounded queues,
never blocking, never dropping.  Per connection the server then walks:

``OPEN`` —(submit, all queued)→ ``OPEN`` (final ``report`` only,
``strikes := 0``)

``OPEN`` —(submit, some bounced)→ ``OPEN``: each bounced transaction
rides a ``retry_after`` chunk carrying the full structured
:class:`~repro.errors.QueueFull` mapping (depth, capacity, watermark,
``retry_after_s`` — EWMA round pace × rounds, clamped to the
:data:`~repro.errors.RETRY_AFTER_FLOOR_S` floor so a client honoring it
verbatim never hot-loops); ``strikes += 1``.

``OPEN`` —(strikes ≥ pause_after)→ ``PAUSED``: the server stops
*reading* the connection for the advertised retry-after (capped at
``pause_cap_s``), so a client that ignores hints is throttled by its
own kernel socket buffer instead of monopolizing the event loop;
counted in ``gateway_pauses_total``.  Any fully-queued submit resets to
``OPEN``.

Client side, :meth:`~repro.gateway.client.AsyncGatewayClient.
submit_with_retry` sleeps the larger of the server hint and
:class:`~repro.net_retry.RetryPolicy`'s exponential schedule
(:func:`~repro.net_retry.sleep_backoff`), resubmits only the bounced
tail, and — when the attempt budget runs out — raises
``GatewayError(reason="backpressure_budget")`` with the still-pending
transactions attached.  Between the queues' never-drop and the client's
pending-or-queued invariant, a capture event is only ever *somewhere*:
queued, sealed, or explicitly handed back.

Drain semantics
---------------

:meth:`~repro.gateway.server.GatewayServer.drain` is the graceful
shutdown, in contract order: (1) the acceptor closes — new connects are
refused at the socket; (2) in-flight submits finish and their streamed
reports flush, while later submits get ``error/"draining"`` frames;
(3) the pipeline pumps and seals until queues and mempools are empty;
(4) every surviving client receives ``goodbye`` and is closed.  A peer
that disconnects mid-reply is counted — every unflushed frame lands on
``gateway_frames_undeliverable_total`` (the same series
:class:`~repro.network.simnet.SimNet` uses for replies racing an
``unregister``) — and never aborts the accept loop.
"""

from .client import AsyncGatewayClient, GatewayClient, SubmitResult
from .frames import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    encode_frame,
    read_frame,
    read_frame_sync,
)
from .server import GatewayServer

__all__ = [
    "AsyncGatewayClient",
    "GatewayClient",
    "GatewayServer",
    "SubmitResult",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "encode_frame",
    "read_frame",
    "read_frame_sync",
]
