"""Length-prefixed frame codec for the socket gateway.

One frame is ``u32 big-endian payload length || payload``, where the
payload is the repo's canonical byte encoding
(:func:`repro.serialization.canonical_encode`) of a str-keyed mapping —
the same self-describing format every hash, signature, and segment-log
record already uses, so the wire inherits the storage layer's
round-trip guarantee: a transaction decoded off the socket re-encodes
to the exact bytes it is hashed and signed over.

Frame bodies always carry ``"op"`` (see the ``OP_*`` constants) and,
for request/response correlation on one connection, ``"seq"``.  Batched
submits put many transaction mappings in one frame (``"txs"``); batched
replies stream back as multiple frames (see :mod:`repro.gateway`'s
design note for the full state machine).

Corruption policy is fail-closed, mirroring :func:`repro.persist.codec.
canonical_decode`: an oversized length prefix, truncated payload, or a
payload that does not decode to a mapping raises
:class:`~repro.errors.GatewayError` — garbage never half-parses.
"""

from __future__ import annotations

import asyncio
import socket
import struct
from typing import Any

from ..errors import GatewayError, SerializationError
from ..persist.codec import (
    canonical_decode,
    transaction_from_mapping,
    transaction_to_mapping,
)
from ..serialization import canonical_encode

__all__ = [
    "MAX_FRAME_BYTES",
    "encode_frame",
    "decode_frame_payload",
    "read_frame",
    "read_frame_sync",
    "frame_to_txs",
    "txs_to_frame_body",
]

# Hard ceiling on one frame's payload.  A 4-byte prefix could announce
# 4 GiB; a gateway terminating thousands of untrusted capture clients
# must bound what a single frame can make it buffer.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LEN = struct.Struct(">I")

# Client → server ops.
OP_HELLO = "hello"
OP_SUBMIT = "submit"
OP_OPS = "ops"
OP_PING = "ping"
OP_BYE = "bye"
# Server → client ops.
OP_HELLO_OK = "hello_ok"
OP_RETRY_AFTER = "retry_after"
OP_REPORT = "report"
OP_OPS_OK = "ops_ok"
OP_PONG = "pong"
OP_ERROR = "error"
OP_GOODBYE = "goodbye"

# Wire protocol version: a HELLO carrying a different major version is
# refused with a structured error instead of mis-parsing frames.
PROTOCOL_VERSION = 1


def encode_frame(body: dict) -> bytes:
    """One wire frame for ``body`` (length prefix + canonical bytes)."""
    payload = canonical_encode(body)
    if len(payload) > MAX_FRAME_BYTES:
        raise GatewayError(
            f"frame payload {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte ceiling", reason="frame_too_large",
        )
    return _LEN.pack(len(payload)) + payload


def decode_frame_payload(payload: bytes) -> dict:
    """Decode one frame payload back to its body mapping (fail-closed)."""
    try:
        body = canonical_decode(payload)
    except SerializationError as exc:
        raise GatewayError(f"corrupt frame payload: {exc}",
                           reason="corrupt_frame") from None
    if not isinstance(body, dict) or "op" not in body:
        raise GatewayError("frame payload is not an op mapping",
                           reason="corrupt_frame")
    return body


def _check_length(raw: bytes) -> int:
    (length,) = _LEN.unpack(raw)
    if length > MAX_FRAME_BYTES:
        raise GatewayError(
            f"peer announced a {length}-byte frame (ceiling "
            f"{MAX_FRAME_BYTES})", reason="frame_too_large",
        )
    return length


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Read one frame from ``reader``.

    Returns ``None`` on a clean EOF at a frame boundary (the peer hung
    up between frames — a normal disconnect).  EOF *inside* a frame is
    a truncated write from a dying peer and raises
    :class:`~repro.errors.GatewayError` (``connection_closed``) so the
    caller can count the aborted connection.
    """
    try:
        raw_len = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise GatewayError("peer closed mid-frame (truncated length)",
                           reason="connection_closed") from None
    length = _check_length(raw_len)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise GatewayError("peer closed mid-frame (truncated payload)",
                           reason="connection_closed") from None
    return decode_frame_payload(payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(n - got)
        if not chunk:
            break
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def read_frame_sync(sock: socket.socket) -> dict | None:
    """Blocking-socket twin of :func:`read_frame` (same EOF contract)."""
    raw_len = _recv_exact(sock, _LEN.size)
    if not raw_len:
        return None
    if len(raw_len) < _LEN.size:
        raise GatewayError("peer closed mid-frame (truncated length)",
                           reason="connection_closed")
    length = _check_length(raw_len)
    payload = _recv_exact(sock, length)
    if len(payload) < length:
        raise GatewayError("peer closed mid-frame (truncated payload)",
                           reason="connection_closed")
    return decode_frame_payload(payload)


# ---------------------------------------------------------------------------
# Batched submits: one frame = many encoded transactions
# ---------------------------------------------------------------------------
def txs_to_frame_body(txs, seq: int) -> dict:
    """A SUBMIT body carrying a whole batch of transactions."""
    return {
        "op": OP_SUBMIT,
        "seq": seq,
        "txs": [transaction_to_mapping(tx) for tx in txs],
    }


def frame_to_txs(body: dict) -> list:
    """Decode a SUBMIT body's batch; malformed entries fail the frame
    (the gateway answers with a structured error, never a half-batch)."""
    raw = body.get("txs")
    if not isinstance(raw, list):
        raise GatewayError("submit frame carries no transaction list",
                           reason="protocol")
    try:
        return [transaction_from_mapping(m) for m in raw]
    except (KeyError, TypeError, ValueError) as exc:
        raise GatewayError(
            f"submit frame carries a malformed transaction: "
            f"{type(exc).__name__}: {exc}", reason="corrupt_frame",
        ) from None


def error_body(exc: GatewayError, seq: int | None = None) -> dict:
    """A structured ERROR frame body for ``exc``."""
    body: dict[str, Any] = {"op": OP_ERROR}
    body.update(exc.as_dict())
    if seq is not None:
        body["seq"] = seq
    return body
