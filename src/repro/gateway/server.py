"""``GatewayServer``: the asyncio network front door.

Terminates O(1000) concurrent framed-socket capture clients into one
:class:`~repro.ingest.pipeline.IngestPipeline`.  See the package
docstring for the frame grammar, the backpressure state machine, and
the drain semantics; this module is the event-loop half:

* one reader task per connection (``asyncio.start_server``);
* SUBMIT frames decode to transaction batches and land in the pipeline
  via one ``submit_many`` call — the ack streams back as chunked
  ``RETRY_AFTER`` frames (one per slice of bounced transactions, each
  carrying the structured :class:`~repro.errors.QueueFull` fields) and
  a final ``REPORT`` frame with totals;
* repeat offenders are paused: a connection whose last
  ``pause_after`` submits were all backpressured stops being *read*
  for the advertised retry-after (the kernel's TCP window then pushes
  back on the client for us);
* sealing runs off-loop (``auto_seal=True``) so admission latency stays
  decoupled from round sealing;
* :meth:`drain` is the graceful shutdown: new connects refused,
  in-flight submits answered, the pipeline pumped dry, every client
  dismissed with a ``GOODBYE`` frame.

Every structural event lands in the shared telemetry registry under
``gateway_*`` names with per-tenant labels, and sampled submits open
``gateway.submit`` root spans — the same observability surface as the
in-process path.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import asdict
from typing import Any

from ..errors import GatewayError, ReproError
from ..obs.runtime import telemetry as default_telemetry
from . import frames
from .frames import (
    OP_BYE,
    OP_GOODBYE,
    OP_HELLO,
    OP_HELLO_OK,
    OP_OPS,
    OP_OPS_OK,
    OP_PING,
    OP_PONG,
    OP_REPORT,
    OP_RETRY_AFTER,
    OP_SUBMIT,
    PROTOCOL_VERSION,
    encode_frame,
    error_body,
    frame_to_txs,
    read_frame,
)


class _ConnectionGone(Exception):
    """Internal: the peer vanished while we were writing to it."""


class _Connection:
    """Per-connection state the reader task threads through handlers."""

    __slots__ = ("reader", "writer", "conn_id", "tenant", "strikes",
                 "paused_s", "frames_in", "txs_in", "alive")

    def __init__(self, reader, writer, conn_id: int) -> None:
        self.reader = reader
        self.writer = writer
        self.conn_id = conn_id
        self.tenant = "unknown"
        self.strikes = 0          # consecutive submits that got bounced
        self.paused_s = 0.0
        self.frames_in = 0
        self.txs_in = 0
        self.alive = True


class GatewayServer:
    """Asyncio front door for one ingest pipeline (module docstring)."""

    def __init__(
        self,
        pipeline,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        auto_seal: bool = False,
        seal_interval_s: float = 0.005,
        report_chunk: int = 512,
        pause_after: int = 3,
        pause_cap_s: float = 0.5,
        telemetry=None,
    ) -> None:
        if report_chunk < 1:
            raise GatewayError("report_chunk must be >= 1")
        if pause_after < 1:
            raise GatewayError("pause_after must be >= 1")
        self.pipeline = pipeline
        self.host = host
        self.port = port
        self.auto_seal = auto_seal
        self.seal_interval_s = seal_interval_s
        self.report_chunk = report_chunk
        self.pause_after = pause_after
        self.pause_cap_s = pause_cap_s
        self.telemetry = telemetry if telemetry is not None \
            else default_telemetry()
        self._server: asyncio.AbstractServer | None = None
        self._sealer_task: asyncio.Task | None = None
        self._connections: dict[int, _Connection] = {}
        self._conn_seq = 0
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._draining = False
        self._stopped = False
        # Serializes seal rounds across the executor thread and drain.
        self._seal_lock = threading.Lock()
        registry = self.telemetry.registry
        self._tracer = self.telemetry.tracer
        self._m_conns = registry.counter("gateway_connections_total")
        self._m_active = registry.gauge("gateway_connections_active")
        self._m_aborted = registry.counter(
            "gateway_connections_aborted_total"
        )
        self._m_frames_in = {}   # op -> counter, filled lazily
        self._m_frames_out = registry.counter("gateway_frames_sent_total")
        self._m_undeliverable = registry.counter(
            "gateway_frames_undeliverable_total", transport="socket"
        )
        self._m_txs_rejected = registry.counter(
            "gateway_txs_rejected_total"
        )
        self._m_pauses = registry.counter("gateway_pauses_total")
        self._m_pause_s = registry.counter("gateway_pause_seconds_total")
        self._m_seal_errors = registry.counter("gateway_seal_errors_total")
        self._m_submit_s = registry.histogram("gateway_submit_seconds")
        self._m_batch_txs = registry.histogram(
            "gateway_submit_batch_txs",
            buckets=(1, 8, 32, 128, 512, 2048),
        )
        self._m_tenant_txs: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``."""
        if self._server is not None:
            raise GatewayError("server already started")
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        if self.auto_seal:
            self._sealer_task = asyncio.ensure_future(self._sealer())
        return self.host, self.port

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    @property
    def active_connections(self) -> int:
        return len(self._connections)

    @property
    def draining(self) -> bool:
        return self._draining

    async def _sealer(self) -> None:
        """Background sealing: pump + seal whenever there is backlog,
        off the event loop so admission keeps its microsecond acks."""
        loop = asyncio.get_running_loop()
        pipeline = self.pipeline
        while not self._stopped:
            if pipeline.backlog or pipeline.sharded.mempool_backlog:
                try:
                    await loop.run_in_executor(None, self._seal_once)
                except ReproError:
                    self._m_seal_errors.inc()
            else:
                await asyncio.sleep(self.seal_interval_s)

    def _seal_once(self) -> None:
        with self._seal_lock:
            self.pipeline.seal_round()

    def _drain_pipeline_blocking(self) -> None:
        with self._seal_lock:
            if (self.pipeline.backlog
                    or self.pipeline.sharded.mempool_backlog):
                self.pipeline.run_until_drained()

    async def drain(self, drain_pipeline: bool = True) -> None:
        """Graceful shutdown: refuse new connections, finish in-flight
        submits, pump the queues dry, dismiss every client.

        Order matters and is part of the contract:

        1. the acceptor closes — a new ``connect()`` is refused at the
           socket level;
        2. submits already *being handled* finish and their reports
           flush (``_inflight`` reaches zero); submits arriving after
           this point are answered with a structured
           ``error/"draining"`` frame, which well-behaved clients
           surface as :class:`~repro.errors.GatewayError`;
        3. the pipeline is pumped and sealed until queues and mempools
           are empty (``drain_pipeline=False`` skips this for callers
           that own sealing);
        4. every surviving connection gets a ``GOODBYE`` frame and is
           closed.  Nothing submitted-and-acked is lost: it was either
           sealed in step 3 or sits in the mempool of a facade the
           caller keeps.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._idle.wait()
        if self._sealer_task is not None:
            self._stopped = True
            await self._sealer_task
            self._sealer_task = None
        if drain_pipeline:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self._drain_pipeline_blocking)
        for conn in list(self._connections.values()):
            try:
                await self._send_frames(conn, [{"op": OP_GOODBYE}])
            except _ConnectionGone:
                pass   # already counted undeliverable; just close
            await self._close_connection(conn)

    async def stop(self) -> None:
        """Drain, then fully stop (idempotent)."""
        if not self._stopped or self._connections:
            await self.drain()
        self._stopped = True

    # ------------------------------------------------------------------
    # Frame plumbing
    # ------------------------------------------------------------------
    def _count_frame_in(self, op: str) -> None:
        counter = self._m_frames_in.get(op)
        if counter is None:
            counter = self.telemetry.registry.counter(
                "gateway_frames_total", op=op
            )
            self._m_frames_in[op] = counter
        counter.inc()

    def _tenant_counter(self, tenant: str):
        counter = self._m_tenant_txs.get(tenant)
        if counter is None:
            counter = self.telemetry.registry.counter(
                "gateway_txs_submitted_total", tenant=tenant
            )
            self._m_tenant_txs[tenant] = counter
        return counter

    async def _send_frames(self, conn: _Connection, bodies) -> None:
        """Write frames to one client; a peer that vanished mid-reply
        (disconnect during a batched/streamed response) is *counted* —
        every unflushed frame lands on
        ``gateway_frames_undeliverable_total`` — never raised through
        the event loop."""
        bodies = list(bodies)
        if not conn.alive:
            self._m_undeliverable.inc(len(bodies))
            raise _ConnectionGone()
        for i, body in enumerate(bodies):
            try:
                conn.writer.write(encode_frame(body))
                await conn.writer.drain()
                self._m_frames_out.inc()
            except (ConnectionError, OSError):
                conn.alive = False
                self._m_undeliverable.inc(len(bodies) - i)
                raise _ConnectionGone() from None

    async def _close_connection(self, conn: _Connection) -> None:
        conn.alive = False
        if self._connections.pop(conn.conn_id, None) is not None:
            self._m_active.dec()
        try:
            conn.writer.close()
            await conn.writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    # ------------------------------------------------------------------
    # Connection handler
    # ------------------------------------------------------------------
    async def _serve_connection(self, reader, writer) -> None:
        self._conn_seq += 1
        conn = _Connection(reader, writer, self._conn_seq)
        self._connections[conn.conn_id] = conn
        self._m_conns.inc()
        self._m_active.inc()
        try:
            while conn.alive:
                try:
                    body = await read_frame(reader)
                except GatewayError as exc:
                    # Truncated frame / oversize / garbage: the client
                    # died mid-write or is speaking something else.
                    # Count it, best-effort error frame, hang up.
                    self._m_aborted.inc()
                    if exc.reason != "connection_closed":
                        try:
                            await self._send_frames(
                                conn, [error_body(exc)]
                            )
                        except _ConnectionGone:
                            pass
                    break
                if body is None:
                    break  # clean EOF between frames
                conn.frames_in += 1
                op = str(body.get("op"))
                self._count_frame_in(op)
                try:
                    if op == OP_SUBMIT:
                        await self._handle_submit(conn, body)
                    elif op == OP_HELLO:
                        await self._handle_hello(conn, body)
                    elif op == OP_OPS:
                        await self._handle_ops(conn, body)
                    elif op == OP_PING:
                        await self._send_frames(conn, [
                            {"op": OP_PONG, "seq": int(body.get("seq", 0)),
                             "t": body.get("t", 0.0)}
                        ])
                    elif op == OP_BYE:
                        await self._send_frames(conn, [{"op": OP_GOODBYE}])
                        break
                    else:
                        await self._send_frames(conn, [error_body(
                            GatewayError(f"unknown op {op!r}",
                                         reason="protocol"),
                            seq=body.get("seq"),
                        )])
                except _ConnectionGone:
                    break
        finally:
            await self._close_connection(conn)

    async def _handle_hello(self, conn: _Connection, body: dict) -> None:
        proto = int(body.get("proto", 0))
        if proto != PROTOCOL_VERSION:
            await self._send_frames(conn, [error_body(GatewayError(
                f"protocol version {proto} unsupported "
                f"(server speaks {PROTOCOL_VERSION})", reason="protocol",
            ), seq=body.get("seq"))])
            conn.alive = False
            return
        conn.tenant = str(body.get("tenant", "default"))
        await self._send_frames(conn, [{
            "op": OP_HELLO_OK,
            "seq": int(body.get("seq", 0)),
            "proto": PROTOCOL_VERSION,
            "conn_id": conn.conn_id,
            "max_frame": frames.MAX_FRAME_BYTES,
            "draining": self._draining,
        }])

    # ------------------------------------------------------------------
    # Submit: the hot path
    # ------------------------------------------------------------------
    async def _handle_submit(self, conn: _Connection, body: dict) -> None:
        seq = int(body.get("seq", 0))
        if self._draining:
            await self._send_frames(conn, [error_body(
                GatewayError("gateway is draining; no new submissions",
                             reason="draining"), seq=seq,
            )])
            return
        try:
            txs = frame_to_txs(body)
        except GatewayError as exc:
            await self._send_frames(conn, [error_body(exc, seq=seq)])
            return
        self._inflight += 1
        self._idle.clear()
        t0 = time.perf_counter()
        sampled = self._tracer.should_sample()
        try:
            if sampled:
                with self._tracer.root_span("gateway.submit",
                                            sampled=True) as span:
                    span.set_attr("conn", conn.conn_id)
                    span.set_attr("tenant", conn.tenant)
                    span.set_attr("batch", len(txs))
                    report = self.pipeline.submit_many(txs)
                if txs:
                    self._tracer.bind_tx(txs[0].tx_id, span.ctx)
            else:
                report = self.pipeline.submit_many(txs)
            conn.txs_in += len(txs)
            self._tenant_counter(conn.tenant).inc(len(txs))
            self._m_batch_txs.observe(len(txs))
            await self._reply_submit(conn, seq, report)
            self._m_submit_s.observe(time.perf_counter() - t0)
            await self._maybe_pause(conn, report)
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()

    async def _reply_submit(self, conn: _Connection, seq: int,
                            report) -> None:
        """Stream the ack: chunked RETRY_AFTER frames for the bounced
        tail, then one final REPORT frame with totals."""
        rejected = report.rejected
        bodies: list[dict] = []
        for start in range(0, len(rejected), self.report_chunk):
            chunk = rejected[start:start + self.report_chunk]
            bodies.append({
                "op": OP_RETRY_AFTER,
                "seq": seq,
                "chunk": start // self.report_chunk,
                "rejected": [
                    dict(signal.as_dict(), tx_id=tx.tx_id)
                    for tx, signal in chunk
                ],
            })
        queued_total = report.queued_total
        bodies.append({
            "op": OP_REPORT,
            "seq": seq,
            "final": True,
            "queued": queued_total,
            "queued_by_shard": {str(sid): n
                                for sid, n in report.queued.items()},
            "rejected": len(rejected),
            "retry_after_s": (report.min_retry_after_s()
                              if rejected else 0.0),
        })
        if rejected:
            self._m_txs_rejected.inc(len(rejected))
        await self._send_frames(conn, bodies)

    async def _maybe_pause(self, conn: _Connection, report) -> None:
        """The repeat-offender half of backpressure: a connection whose
        submits keep bouncing stops being read for the advertised
        retry-after (capped), so its kernel socket buffer — not the
        event loop — absorbs its optimism."""
        if not report.rejected:
            conn.strikes = 0
            return
        conn.strikes += 1
        if conn.strikes < self.pause_after:
            return
        pause = min(report.min_retry_after_s(), self.pause_cap_s)
        if pause <= 0:
            return
        self._m_pauses.inc()
        self._m_pause_s.inc(max(1, int(pause * 1000)) / 1000)
        conn.paused_s += pause
        await asyncio.sleep(pause)

    # ------------------------------------------------------------------
    # Ops: the HTTP-free operator surface
    # ------------------------------------------------------------------
    async def _handle_ops(self, conn: _Connection, body: dict) -> None:
        """Same shape as the SimNet ``ops/metrics`` topic: a registry
        snapshot plus a health rollup, over the same socket the data
        plane uses."""
        try:
            health = self.pipeline.sharded.health_report()
        except ReproError:
            health = {}
        resp = {
            "op": OP_OPS_OK,
            "seq": int(body.get("seq", 0)),
            "snapshot": self.telemetry.registry.snapshot(),
            "health": health,
            "ingest": asdict(self.pipeline.stats),
            "gateway": {
                "connections_active": len(self._connections),
                "draining": self._draining,
                "inflight_submits": self._inflight,
            },
        }
        await self._send_frames(conn, [resp])
