"""Durable backend: append-only segment logs indexed by sqlite.

One :class:`DurableStorage` per store directory owns

* ``blocks-log/`` — a :class:`~repro.persist.segment.SegmentLog` of
  canonical block encodings,
* ``records-log/`` — a segment log of canonical provenance records,
* ``index.db`` — a stdlib :mod:`sqlite3` database holding every index
  the ISSUE's query paths need: height → log offset, tx_id → (height,
  position), receipts, record_id → log location, the state snapshot
  (``namespace`` → keys → canonical value), and a small meta table.

Commit discipline (the crash-recovery contract): an entry **counts iff
its sqlite index row is committed and its log frame is CRC-valid**.
Appends write the log frame first (flushed), then commit the index row;
truncations delete index rows first, then cut the log.  A crash between
the two steps therefore always leaves the log *ahead* of the index, and
:meth:`DurableStorage._recover` reconciles on open by walking the index
tail backwards until it finds a valid frame, dropping orphaned rows, and
truncating the log to the last indexed frame.  The fault-injection hook
on the segment log makes every intermediate byte state reachable in
tests.
"""

from __future__ import annotations

import os
import sqlite3
from collections import OrderedDict
from collections.abc import Mapping as MappingABC
from typing import Any, Iterator, Sequence

from ..chain.block import Block
from ..chain.receipts import TransactionReceipt
from ..errors import InvalidBlock, StorageError, UnknownEntity
from ..serialization import canonical_encode
from .codec import (
    canonical_decode,
    decode_block,
    decode_receipt,
    decode_record,
    encode_block,
    encode_receipt,
    encode_record,
)
from .segment import FRAME_OVERHEAD, SegmentLog
from .stores import BlockStore, MetaStore, RecordStore, StateSnapshotStore

_SCHEMA = """
CREATE TABLE IF NOT EXISTS blocks(
    height INTEGER PRIMARY KEY,
    segment INTEGER NOT NULL,
    offset INTEGER NOT NULL,
    length INTEGER NOT NULL,
    block_hash BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS txs(
    tx_id TEXT PRIMARY KEY,
    height INTEGER NOT NULL,
    pos INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS txs_by_height ON txs(height);
CREATE TABLE IF NOT EXISTS receipts(
    tx_id TEXT PRIMARY KEY,
    height INTEGER NOT NULL,
    body BLOB NOT NULL
);
CREATE INDEX IF NOT EXISTS receipts_by_height ON receipts(height);
CREATE TABLE IF NOT EXISTS records(
    position INTEGER PRIMARY KEY,
    record_id TEXT UNIQUE,
    segment INTEGER NOT NULL,
    offset INTEGER NOT NULL,
    length INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS state_entries(
    namespace TEXT NOT NULL,
    key TEXT NOT NULL,
    value BLOB NOT NULL,
    PRIMARY KEY(namespace, key)
);
CREATE TABLE IF NOT EXISTS meta(
    key TEXT PRIMARY KEY,
    value BLOB NOT NULL
);
"""


class _SqliteReceiptsMap(MappingABC):
    """Lazy tx_id → receipt mapping served from the receipts table."""

    def __init__(self, conn: sqlite3.Connection) -> None:
        self._conn = conn

    def __len__(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM receipts"
                                  ).fetchone()[0]

    def __iter__(self) -> Iterator[str]:
        for (tx_id,) in self._conn.execute(
                "SELECT tx_id FROM receipts ORDER BY rowid"):
            yield tx_id

    def __getitem__(self, tx_id: str) -> TransactionReceipt:
        row = self._conn.execute(
            "SELECT body FROM receipts WHERE tx_id = ?", (tx_id,)
        ).fetchone()
        if row is None:
            raise KeyError(tx_id)
        return decode_receipt(row[0])

    def __contains__(self, tx_id: object) -> bool:
        return self._conn.execute(
            "SELECT 1 FROM receipts WHERE tx_id = ?", (tx_id,)
        ).fetchone() is not None


class DurableBlockStore(BlockStore):
    """Block log + sqlite index, with a bounded decoded-block cache."""

    def __init__(self, conn: sqlite3.Connection, log: SegmentLog,
                 cache_size: int = 256) -> None:
        self._conn = conn
        self._log = log
        self._cache: OrderedDict[int, Block] = OrderedDict()
        self._cache_size = cache_size
        row = conn.execute("SELECT MAX(height) FROM blocks").fetchone()
        self._height = -1 if row[0] is None else row[0]

    # -- write path ----------------------------------------------------
    def append_block(self, block: Block,
                     receipts: Sequence[TransactionReceipt]) -> None:
        if block.height != self._height + 1:
            raise StorageError(
                f"store expects height {self._height + 1}, "
                f"got {block.height}"
            )
        loc = self._log.append(encode_block(block))
        with self._conn:
            self._conn.execute(
                "INSERT INTO blocks(height, segment, offset, length, "
                "block_hash) VALUES (?,?,?,?,?)",
                (block.height, loc.segment, loc.offset, loc.length,
                 block.block_hash),
            )
            self._conn.executemany(
                "INSERT OR REPLACE INTO txs(tx_id, height, pos) "
                "VALUES (?,?,?)",
                [(tx.tx_id, block.height, pos)
                 for pos, tx in enumerate(block.transactions)],
            )
            self._conn.executemany(
                "INSERT OR REPLACE INTO receipts(tx_id, height, body) "
                "VALUES (?,?,?)",
                [(r.tx_id, block.height, encode_receipt(r))
                 for r in receipts],
            )
        self._height = block.height
        self._cache_put(block)

    def append_blocks(
        self,
        pairs: Sequence[tuple[Block, Sequence[TransactionReceipt]]],
    ) -> None:
        """Group-commit several consecutive blocks.

        All frames go down in one buffered log write finished by one
        fsync (the group's durability point), then every index row —
        heights, tx locations, receipts — lands in **one** sqlite
        transaction via ``executemany``.  A crash anywhere inside the
        group leaves either no index rows (log ahead of index: recovery
        truncates the orphaned frames) or all of them (frames fsynced
        before the index commit), so the group is atomic on disk.
        """
        if not pairs:
            return
        for i, (block, _) in enumerate(pairs):
            if block.height != self._height + 1 + i:
                raise StorageError(
                    f"store expects height {self._height + 1 + i}, "
                    f"got {block.height}"
                )
        locs = self._log.append_many(
            [encode_block(block) for block, _ in pairs]
        )
        with self._conn:
            self._conn.executemany(
                "INSERT INTO blocks(height, segment, offset, length, "
                "block_hash) VALUES (?,?,?,?,?)",
                [(block.height, loc.segment, loc.offset, loc.length,
                  block.block_hash)
                 for (block, _), loc in zip(pairs, locs)],
            )
            self._conn.executemany(
                "INSERT OR REPLACE INTO txs(tx_id, height, pos) "
                "VALUES (?,?,?)",
                [(tx.tx_id, block.height, pos)
                 for block, _ in pairs
                 for pos, tx in enumerate(block.transactions)],
            )
            self._conn.executemany(
                "INSERT OR REPLACE INTO receipts(tx_id, height, body) "
                "VALUES (?,?,?)",
                [(r.tx_id, block.height, encode_receipt(r))
                 for block, receipts in pairs
                 for r in receipts],
            )
        for block, _ in pairs:
            self._height = block.height
            self._cache_put(block)

    def truncate_above(self, height: int) -> None:
        if height >= self._height:
            return
        row = self._conn.execute(
            "SELECT segment, offset FROM blocks WHERE height = ?",
            (height + 1,),
        ).fetchone()
        with self._conn:
            self._conn.execute("DELETE FROM blocks WHERE height > ?",
                               (height,))
            self._conn.execute("DELETE FROM txs WHERE height > ?",
                               (height,))
            self._conn.execute("DELETE FROM receipts WHERE height > ?",
                               (height,))
        if row is not None:
            self._log.truncate_to(row[0], row[1])
        self._height = height
        for h in [h for h in self._cache if h > height]:
            del self._cache[h]

    # -- read path -----------------------------------------------------
    def _cache_put(self, block: Block) -> None:
        self._cache[block.height] = block
        self._cache.move_to_end(block.height)
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)

    def block_at(self, height: int) -> Block:
        cached = self._cache.get(height)
        if cached is not None:
            self._cache.move_to_end(height)
            return cached
        row = self._conn.execute(
            "SELECT segment, offset, block_hash FROM blocks "
            "WHERE height = ?", (height,),
        ).fetchone()
        if row is None:
            raise InvalidBlock(f"no block at height {height}")
        block = decode_block(self._log.read(row[0], row[1]),
                             expected_hash=bytes(row[2]))
        self._cache_put(block)
        return block

    def head_block(self) -> Block:
        return self.block_at(self._height)

    def height(self) -> int:
        return self._height

    def __len__(self) -> int:
        return self._height + 1

    def iter_blocks(self, start: int = 0) -> Iterator[Block]:
        for height in range(start, self._height + 1):
            yield self.block_at(height)

    def tx_location(self, tx_id: str) -> tuple[int, int] | None:
        row = self._conn.execute(
            "SELECT height, pos FROM txs WHERE tx_id = ?", (tx_id,)
        ).fetchone()
        return None if row is None else (row[0], row[1])

    # -- raw-frame surface (snapshot sync) -----------------------------
    def raw_block_item(self, height: int) -> dict:
        """Everything a snapshot server streams for one block, straight
        off the log — **no decode**: the exact frame bytes (the canonical
        block encoding) with their CRC, the indexed block hash, and the
        index rows a replica needs to install the frame (tx ids in
        position order, receipt bodies aligned with them)."""
        items = self.raw_block_items(height, 1)
        if not items:
            raise InvalidBlock(f"no block at height {height}")
        return items[0]

    def raw_block_items(self, start: int, count: int) -> list[dict]:
        """Range form of :meth:`raw_block_item`: three range queries and
        one log pass instead of three queries + one read per block — the
        snapshot server's tail hot path."""
        import zlib

        stop = start + count            # exclusive
        rows = self._conn.execute(
            "SELECT height, segment, offset, block_hash FROM blocks "
            "WHERE height >= ? AND height < ? ORDER BY height",
            (start, stop),
        ).fetchall()
        tx_rows: dict[int, list[str]] = {}
        for tx_id, height in self._conn.execute(
                "SELECT tx_id, height FROM txs WHERE height >= ? AND "
                "height < ? ORDER BY height, pos", (start, stop)):
            tx_rows.setdefault(height, []).append(tx_id)
        # Receipts were committed in transaction order per height, so a
        # height-grouped scan pairs them positionally with tx_ids.
        receipt_bodies: dict[int, dict[str, bytes]] = {}
        for tx_id, height, body in self._conn.execute(
                "SELECT tx_id, height, body FROM receipts WHERE "
                "height >= ? AND height < ?", (start, stop)):
            receipt_bodies.setdefault(height, {})[tx_id] = body
        items = []
        for height, segment, offset, block_hash in rows:
            frame = self._log.read(segment, offset)
            tx_ids = tx_rows.get(height, [])
            bodies = receipt_bodies.get(height, {})
            items.append({
                "height": height,
                "block_hash": bytes(block_hash),
                "frame": frame,
                "crc": zlib.crc32(frame),
                "tx_ids": tx_ids,
                "receipts": [bodies.get(tx_id) for tx_id in tx_ids],
            })
        return items

    def install_raw(self, items: Sequence[dict]) -> None:
        """Group-install already-verified raw block frames (the snapshot
        client's surface).  Each item is a :meth:`raw_block_item`-shaped
        mapping; heights must be consecutive from the current head.  The
        frames go down exactly like :meth:`append_blocks` — one buffered
        log write + one fsync, then one sqlite transaction — but nothing
        is decoded and nothing is executed: the caller vouches for the
        content (hash-chain + beacon verification happened upstream).
        """
        if not items:
            return
        for i, item in enumerate(items):
            if item["height"] != self._height + 1 + i:
                raise StorageError(
                    f"store expects height {self._height + 1 + i}, "
                    f"got {item['height']}"
                )
        locs = self._log.append_many([item["frame"] for item in items])
        # Bulk rows are sorted by primary key before insertion: the
        # tx_id b-tree fills with far better page locality than the
        # hash-random arrival order offers (a pure install-path win —
        # table content is order-independent).
        tx_rows = sorted(
            (tx_id, item["height"], pos)
            for item in items
            for pos, tx_id in enumerate(item["tx_ids"])
        )
        receipt_rows = sorted(
            (tx_id, item["height"], body)
            for item in items
            for tx_id, body in zip(item["tx_ids"], item["receipts"])
            if body is not None
        )
        with self._conn:
            self._conn.executemany(
                "INSERT INTO blocks(height, segment, offset, length, "
                "block_hash) VALUES (?,?,?,?,?)",
                [(item["height"], loc.segment, loc.offset, loc.length,
                  item["block_hash"])
                 for item, loc in zip(items, locs)],
            )
            self._conn.executemany(
                "INSERT OR REPLACE INTO txs(tx_id, height, pos) "
                "VALUES (?,?,?)", tx_rows,
            )
            self._conn.executemany(
                "INSERT OR REPLACE INTO receipts(tx_id, height, body) "
                "VALUES (?,?,?)", receipt_rows,
            )
        self._height = items[-1]["height"]

    def receipt_for(self, tx_id: str) -> TransactionReceipt | None:
        row = self._conn.execute(
            "SELECT body FROM receipts WHERE tx_id = ?", (tx_id,)
        ).fetchone()
        return None if row is None else decode_receipt(row[0])

    def receipts_map(self) -> MappingABC:
        return _SqliteReceiptsMap(self._conn)

    def sync(self) -> None:
        self._log.sync()

    def close(self) -> None:
        self._log.close()


class DurableRecordStore(RecordStore):
    """Record log + sqlite index (record_id → location, position order)."""

    def __init__(self, conn: sqlite3.Connection, log: SegmentLog,
                 cache_size: int = 1024) -> None:
        self._conn = conn
        self._log = log
        self._cache: OrderedDict[int, dict] = OrderedDict()
        self._cache_size = cache_size
        row = conn.execute("SELECT MAX(position) FROM records").fetchone()
        self._count = 0 if row[0] is None else row[0] + 1

    def append(self, record: dict) -> int:
        position = self._count
        loc = self._log.append(encode_record(record))
        with self._conn:
            self._conn.execute(
                "INSERT INTO records(position, record_id, segment, offset, "
                "length) VALUES (?,?,?,?,?)",
                (position, str(record.get("record_id") or position),
                 loc.segment, loc.offset, loc.length),
            )
        self._count = position + 1
        self._cache_put(position, dict(record))
        return position

    def append_many(self, records: Sequence[dict]) -> list[int]:
        """Group-commit a batch of records: one buffered log write + one
        fsync + one index transaction, versus one of each *per record*
        on the :meth:`append` path — the dominant saving on the durable
        ingest hot path (capture streams arrive thousands at a time)."""
        if not records:
            return []
        start = self._count
        locs = self._log.append_many(
            [encode_record(record) for record in records]
        )
        with self._conn:
            self._conn.executemany(
                "INSERT INTO records(position, record_id, segment, offset, "
                "length) VALUES (?,?,?,?,?)",
                [(start + i, str(record.get("record_id") or (start + i)),
                  loc.segment, loc.offset, loc.length)
                 for i, (record, loc) in enumerate(zip(records, locs))],
            )
        positions = list(range(start, start + len(records)))
        self._count = start + len(records)
        for position, record in zip(positions, records):
            self._cache_put(position, dict(record))
        return positions

    def replace(self, position: int, record: dict) -> None:
        """Annotation support: append the updated copy, repoint the index
        (the old frame becomes dead weight in the log — append-only)."""
        if not 0 <= position < self._count:
            raise UnknownEntity(f"no record at position {position}")
        loc = self._log.append(encode_record(record))
        with self._conn:
            self._conn.execute(
                "UPDATE records SET segment = ?, offset = ?, length = ? "
                "WHERE position = ?",
                (loc.segment, loc.offset, loc.length, position),
            )
        self._cache_put(position, dict(record))

    def _cache_put(self, position: int, record: dict) -> None:
        self._cache[position] = record
        self._cache.move_to_end(position)
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)

    def get(self, position: int) -> dict:
        cached = self._cache.get(position)
        if cached is not None:
            self._cache.move_to_end(position)
            return dict(cached)
        row = self._conn.execute(
            "SELECT segment, offset FROM records WHERE position = ?",
            (position,),
        ).fetchone()
        if row is None:
            raise UnknownEntity(f"no record at position {position}")
        record = decode_record(self._log.read(row[0], row[1]))
        self._cache_put(position, record)
        return dict(record)

    def __len__(self) -> int:
        return self._count

    def iter_items(self) -> Iterator[tuple[int, dict]]:
        # Driven by the index, not range(count): external damage to a
        # replaced record can leave a position hole after recovery.
        positions = [pos for (pos,) in self._conn.execute(
            "SELECT position FROM records ORDER BY position")]
        for position in positions:
            yield position, self.get(position)

    def iter_records(self) -> Iterator[dict]:
        for _, record in self.iter_items():
            yield record

    def location_of_id(self, record_id: str) -> int | None:
        """sqlite-level record_id → position (survives restarts even
        before the in-memory indexes are rebuilt)."""
        row = self._conn.execute(
            "SELECT position FROM records WHERE record_id = ?",
            (record_id,),
        ).fetchone()
        return None if row is None else row[0]

    def sync(self) -> None:
        self._log.sync()

    def close(self) -> None:
        self._log.close()


class DurableStateSnapshotStore(StateSnapshotStore):
    """The state image lives entirely in sqlite (namespace → keys),
    replaced atomically in one transaction per checkpoint."""

    _HEIGHT_KEY = "state_snapshot_height"
    _HASH_KEY = "state_snapshot_block_hash"

    def __init__(self, conn: sqlite3.Connection) -> None:
        self._conn = conn

    def save(self, height: int,
             entries: Sequence[tuple[str, str, Any]],
             block_hash: bytes = b"") -> None:
        with self._conn:
            self._conn.execute("DELETE FROM state_entries")
            self._conn.executemany(
                "INSERT INTO state_entries(namespace, key, value) "
                "VALUES (?,?,?)",
                [(ns, key, canonical_encode(value))
                 for ns, key, value in entries],
            )
            self._conn.execute(
                "INSERT OR REPLACE INTO meta(key, value) VALUES (?,?)",
                (self._HEIGHT_KEY, canonical_encode(height)),
            )
            self._conn.execute(
                "INSERT OR REPLACE INTO meta(key, value) VALUES (?,?)",
                (self._HASH_KEY, canonical_encode(block_hash)),
            )

    def load(self) -> tuple[int, list[tuple[str, str, Any]]] | None:
        height = self.snapshot_height()
        if height is None:
            return None
        entries = [
            (ns, key, canonical_decode(value))
            for ns, key, value in self._conn.execute(
                "SELECT namespace, key, value FROM state_entries "
                "ORDER BY namespace, key")
        ]
        return height, entries

    def snapshot_height(self) -> int | None:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (self._HEIGHT_KEY,)
        ).fetchone()
        return None if row is None else canonical_decode(row[0])

    def snapshot_block_hash(self) -> bytes:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (self._HASH_KEY,)
        ).fetchone()
        return b"" if row is None else canonical_decode(row[0])

    def clear(self) -> None:
        with self._conn:
            self._conn.execute("DELETE FROM state_entries")
            self._conn.execute(
                "DELETE FROM meta WHERE key IN (?, ?)",
                (self._HEIGHT_KEY, self._HASH_KEY),
            )


class DurableStorage(MetaStore):
    """One directory = one durable chain stack (blocks, records, state,
    meta).  Runs crash recovery on open; see the module docstring for
    the commit discipline it enforces."""

    def __init__(self, directory: str | os.PathLike,
                 max_segment_bytes: int = 4 * 1024 * 1024,
                 block_cache_size: int = 256) -> None:
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        # check_same_thread=False: the parallel sealing round drives each
        # shard's storage from a worker thread (one worker per shard per
        # round, never two threads on one connection concurrently).
        self._conn = sqlite3.connect(
            os.path.join(self.directory, "index.db"),
            check_same_thread=False,
        )
        self._conn.executescript(_SCHEMA)
        # WAL keeps index commits append-only (no per-commit journal
        # rewrite) — an order of magnitude cheaper for the one-row
        # transactions the append path issues; synchronous=NORMAL still
        # fsyncs the WAL at checkpoints, matching the segment logs'
        # fsync-on-seal discipline.
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self.block_log = SegmentLog(
            os.path.join(self.directory, "blocks-log"),
            max_segment_bytes=max_segment_bytes,
        )
        self.record_log = SegmentLog(
            os.path.join(self.directory, "records-log"),
            max_segment_bytes=max_segment_bytes,
        )
        self.recovered_blocks = self._recover_blocks()
        self.recovered_records = self._recover_records()
        self.blocks = DurableBlockStore(self._conn, self.block_log,
                                        cache_size=block_cache_size)
        self.records = DurableRecordStore(self._conn, self.record_log)
        self.state = DurableStateSnapshotStore(self._conn)

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def _frame_ok(self, log: SegmentLog, segment: int, offset: int,
                  length: int) -> bool:
        payload = log.frame_at(segment, offset)
        return payload is not None and \
            len(payload) + FRAME_OVERHEAD == length

    def _recover_blocks(self) -> int:
        """Reconcile the block log with its index table.

        Walks the index tail backwards dropping rows whose frames are
        partial/garbled (a crash mid-append, or an operator truncating
        the segment file), then truncates the log to the end of the last
        surviving indexed frame — discarding any frames that were written
        but never indexed (a crash between log flush and index commit).
        Blocks are append-only, so height order *is* log-address order.
        Returns the number of index rows dropped.
        """
        dropped = 0
        while True:
            row = self._conn.execute(
                "SELECT height, segment, offset, length FROM blocks "
                "ORDER BY height DESC LIMIT 1"
            ).fetchone()
            if row is None:
                self.block_log.truncate_to(0, 0)
                return dropped
            height, segment, offset, length = row
            if self._frame_ok(self.block_log, segment, offset, length):
                self.block_log.truncate_to(segment, offset + length)
                return dropped
            with self._conn:
                for table in ("blocks", "txs", "receipts"):
                    self._conn.execute(
                        f"DELETE FROM {table} WHERE height = ?", (height,)
                    )
            dropped += 1

    def _recover_records(self) -> int:
        """Like :meth:`_recover_blocks` for the record log — but ordered
        by **log address**, not position: ``replace()`` (annotation) can
        repoint an *old* position at the newest frame, so the frame the
        log must be truncated after is the highest-addressed one any row
        references, which is not necessarily the highest position's.
        """
        dropped = 0
        while True:
            row = self._conn.execute(
                "SELECT position, segment, offset, length FROM records "
                "ORDER BY segment DESC, offset DESC LIMIT 1"
            ).fetchone()
            if row is None:
                self.record_log.truncate_to(0, 0)
                return dropped
            position, segment, offset, length = row
            if self._frame_ok(self.record_log, segment, offset, length):
                self.record_log.truncate_to(segment, offset + length)
                return dropped
            with self._conn:
                self._conn.execute(
                    "DELETE FROM records WHERE position = ?", (position,)
                )
            dropped += 1

    # ------------------------------------------------------------------
    # Meta
    # ------------------------------------------------------------------
    def put_meta(self, key: str, value: Any) -> None:
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO meta(key, value) VALUES (?,?)",
                (key, canonical_encode(value)),
            )

    def get_meta(self, key: str, default: Any = None) -> Any:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return default if row is None else canonical_decode(row[0])

    # ------------------------------------------------------------------
    def sync(self) -> None:
        self.block_log.sync()
        self.record_log.sync()
        # WAL commits under synchronous=NORMAL are not individually
        # fsynced; flushing the WAL into the main database here makes
        # everything indexed so far power-loss durable — checkpoints are
        # the durability points, same as the logs' fsync-on-seal.
        self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")

    def close(self) -> None:
        self.block_log.close()
        self.record_log.close()
        self._conn.commit()
        self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        self._conn.close()
