"""Durable backend: append-only segment logs indexed by sqlite.

One :class:`DurableStorage` per store directory owns

* ``blocks-log/`` — a :class:`~repro.persist.segment.SegmentLog` of
  canonical block encodings,
* ``records-log/`` — a segment log of canonical provenance records,
* ``index.db`` — a stdlib :mod:`sqlite3` database holding every index
  the ISSUE's query paths need: height → log offset, tx_id → (height,
  position), receipts, record_id → log location, the state snapshot
  (``namespace`` → keys → canonical value), and a small meta table.

Commit discipline (the crash-recovery contract): an entry **counts iff
its sqlite index row is committed and its log frame is CRC-valid**.
Appends write the log frame first (flushed), then commit the index row;
truncations delete index rows first, then cut the log.  A crash between
the two steps therefore always leaves the log *ahead* of the index, and
:meth:`DurableStorage._recover` reconciles on open by walking the index
tail backwards until it finds a valid frame, dropping orphaned rows, and
truncating the log to the last indexed frame.  The fault-injection hook
on the segment log makes every intermediate byte state reachable in
tests.
"""

from __future__ import annotations

import os
import shutil
import sqlite3
from collections import OrderedDict
from collections.abc import Mapping as MappingABC
from typing import Any, Iterator, Sequence

from ..chain.block import Block
from ..chain.receipts import TransactionReceipt
from ..errors import InvalidBlock, StorageError, UnknownEntity
from ..serialization import canonical_encode
from .codec import (
    canonical_decode,
    decode_block,
    decode_receipt,
    decode_record,
    encode_block,
    encode_receipt,
    encode_record,
)
from .segment import CrashPoint, SegmentCodec, SegmentLog
from .stores import BlockStore, MetaStore, RecordStore, StateSnapshotStore

_SCHEMA = """
CREATE TABLE IF NOT EXISTS blocks(
    height INTEGER PRIMARY KEY,
    segment INTEGER NOT NULL,
    offset INTEGER NOT NULL,
    length INTEGER NOT NULL,
    block_hash BLOB NOT NULL,
    cas_key TEXT
);
CREATE TABLE IF NOT EXISTS txs(
    tx_id TEXT PRIMARY KEY,
    height INTEGER NOT NULL,
    pos INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS txs_by_height ON txs(height);
CREATE TABLE IF NOT EXISTS receipts(
    tx_id TEXT PRIMARY KEY,
    height INTEGER NOT NULL,
    body BLOB NOT NULL
);
CREATE INDEX IF NOT EXISTS receipts_by_height ON receipts(height);
CREATE TABLE IF NOT EXISTS records(
    position INTEGER PRIMARY KEY,
    record_id TEXT UNIQUE,
    segment INTEGER NOT NULL,
    offset INTEGER NOT NULL,
    length INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS state_entries(
    namespace TEXT NOT NULL,
    key TEXT NOT NULL,
    value BLOB NOT NULL,
    PRIMARY KEY(namespace, key)
);
CREATE TABLE IF NOT EXISTS meta(
    key TEXT PRIMARY KEY,
    value BLOB NOT NULL
);
"""


class _SqliteReceiptsMap(MappingABC):
    """Lazy tx_id → receipt mapping served from the receipts table."""

    def __init__(self, conn: sqlite3.Connection) -> None:
        self._conn = conn

    def __len__(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM receipts"
                                  ).fetchone()[0]

    def __iter__(self) -> Iterator[str]:
        for (tx_id,) in self._conn.execute(
                "SELECT tx_id FROM receipts ORDER BY rowid"):
            yield tx_id

    def __getitem__(self, tx_id: str) -> TransactionReceipt:
        row = self._conn.execute(
            "SELECT body FROM receipts WHERE tx_id = ?", (tx_id,)
        ).fetchone()
        if row is None:
            raise KeyError(tx_id)
        return decode_receipt(row[0])

    def __contains__(self, tx_id: object) -> bool:
        return self._conn.execute(
            "SELECT 1 FROM receipts WHERE tx_id = ?", (tx_id,)
        ).fetchone() is not None


class DurableBlockStore(BlockStore):
    """Block log + sqlite index, with a bounded decoded-block cache."""

    def __init__(self, conn: sqlite3.Connection, log: SegmentLog,
                 cache_size: int = 256) -> None:
        self._conn = conn
        self._log = log
        self._cas = None
        self._cache: OrderedDict[int, Block] = OrderedDict()
        self._cache_size = cache_size
        row = conn.execute("SELECT MAX(height) FROM blocks").fetchone()
        self._height = -1 if row[0] is None else row[0]

    def attach_cas(self, cas) -> None:
        """Connect the cold tier: blocks whose index row says
        ``segment = -1`` are fetched from this CAS by ``cas_key``."""
        self._cas = cas

    def _cas_fetch(self, cas_key: str | None) -> bytes:
        if self._cas is None:
            raise StorageError(
                "block is archived but no CAS is attached"
            )
        if not cas_key or ":" not in cas_key:
            raise StorageError(f"malformed archive key {cas_key!r}")
        from ..storage.cas import CID

        kind, _, hexdigest = cas_key.partition(":")
        return self._cas.get(CID(bytes.fromhex(hexdigest), kind))

    def archived_boundary(self) -> int | None:
        """Highest archived height, or ``None`` when nothing has been
        moved to the cold tier."""
        row = self._conn.execute(
            "SELECT MAX(height) FROM blocks WHERE segment < 0"
        ).fetchone()
        return row[0]

    # -- write path ----------------------------------------------------
    def append_block(self, block: Block,
                     receipts: Sequence[TransactionReceipt]) -> None:
        if block.height != self._height + 1:
            raise StorageError(
                f"store expects height {self._height + 1}, "
                f"got {block.height}"
            )
        loc = self._log.append(encode_block(block))
        with self._conn:
            self._conn.execute(
                "INSERT INTO blocks(height, segment, offset, length, "
                "block_hash) VALUES (?,?,?,?,?)",
                (block.height, loc.segment, loc.offset, loc.length,
                 block.block_hash),
            )
            self._conn.executemany(
                "INSERT OR REPLACE INTO txs(tx_id, height, pos) "
                "VALUES (?,?,?)",
                [(tx.tx_id, block.height, pos)
                 for pos, tx in enumerate(block.transactions)],
            )
            self._conn.executemany(
                "INSERT OR REPLACE INTO receipts(tx_id, height, body) "
                "VALUES (?,?,?)",
                [(r.tx_id, block.height, encode_receipt(r))
                 for r in receipts],
            )
        self._height = block.height
        self._cache_put(block)

    def append_blocks(
        self,
        pairs: Sequence[tuple[Block, Sequence[TransactionReceipt]]],
    ) -> None:
        """Group-commit several consecutive blocks.

        All frames go down in one buffered log write finished by one
        fsync (the group's durability point), then every index row —
        heights, tx locations, receipts — lands in **one** sqlite
        transaction via ``executemany``.  A crash anywhere inside the
        group leaves either no index rows (log ahead of index: recovery
        truncates the orphaned frames) or all of them (frames fsynced
        before the index commit), so the group is atomic on disk.
        """
        if not pairs:
            return
        for i, (block, _) in enumerate(pairs):
            if block.height != self._height + 1 + i:
                raise StorageError(
                    f"store expects height {self._height + 1 + i}, "
                    f"got {block.height}"
                )
        locs = self._log.append_many(
            [encode_block(block) for block, _ in pairs]
        )
        with self._conn:
            self._conn.executemany(
                "INSERT INTO blocks(height, segment, offset, length, "
                "block_hash) VALUES (?,?,?,?,?)",
                [(block.height, loc.segment, loc.offset, loc.length,
                  block.block_hash)
                 for (block, _), loc in zip(pairs, locs)],
            )
            self._conn.executemany(
                "INSERT OR REPLACE INTO txs(tx_id, height, pos) "
                "VALUES (?,?,?)",
                [(tx.tx_id, block.height, pos)
                 for block, _ in pairs
                 for pos, tx in enumerate(block.transactions)],
            )
            self._conn.executemany(
                "INSERT OR REPLACE INTO receipts(tx_id, height, body) "
                "VALUES (?,?,?)",
                [(r.tx_id, block.height, encode_receipt(r))
                 for block, receipts in pairs
                 for r in receipts],
            )
        for block, _ in pairs:
            self._height = block.height
            self._cache_put(block)

    def truncate_above(self, height: int) -> None:
        if height >= self._height:
            return
        boundary = self.archived_boundary()
        if boundary is not None and height < boundary:
            raise StorageError(
                f"cannot truncate to height {height}: blocks up to "
                f"{boundary} are archived (the cold tier is immutable "
                "by construction — keep_tail must exceed the reorg "
                "journal depth)"
            )
        row = self._conn.execute(
            "SELECT segment, offset FROM blocks WHERE height = ?",
            (height + 1,),
        ).fetchone()
        with self._conn:
            self._conn.execute("DELETE FROM blocks WHERE height > ?",
                               (height,))
            self._conn.execute("DELETE FROM txs WHERE height > ?",
                               (height,))
            self._conn.execute("DELETE FROM receipts WHERE height > ?",
                               (height,))
        if row is not None:
            self._log.truncate_to(row[0], row[1])
        self._height = height
        for h in [h for h in self._cache if h > height]:
            del self._cache[h]

    # -- read path -----------------------------------------------------
    def _cache_put(self, block: Block) -> None:
        self._cache[block.height] = block
        self._cache.move_to_end(block.height)
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)

    def cache_decoded(self, blocks: Sequence[Block]) -> None:
        """Prime the decoded-block cache with blocks the caller already
        holds (the process-pool commit path installs raw frames, so
        without this the first read after a round would re-decode)."""
        for block in blocks:
            self._cache_put(block)

    def block_at(self, height: int) -> Block:
        cached = self._cache.get(height)
        if cached is not None:
            self._cache.move_to_end(height)
            return cached
        row = self._conn.execute(
            "SELECT segment, offset, block_hash, cas_key FROM blocks "
            "WHERE height = ?", (height,),
        ).fetchone()
        if row is None:
            raise InvalidBlock(f"no block at height {height}")
        if row[0] < 0:
            frame = self._cas_fetch(row[3])
        else:
            frame = self._log.read(row[0], row[1])
        block = decode_block(frame, expected_hash=bytes(row[2]))
        self._cache_put(block)
        return block

    def head_block(self) -> Block:
        return self.block_at(self._height)

    def height(self) -> int:
        return self._height

    def __len__(self) -> int:
        return self._height + 1

    def iter_blocks(self, start: int = 0) -> Iterator[Block]:
        for height in range(start, self._height + 1):
            yield self.block_at(height)

    def tx_location(self, tx_id: str) -> tuple[int, int] | None:
        row = self._conn.execute(
            "SELECT height, pos FROM txs WHERE tx_id = ?", (tx_id,)
        ).fetchone()
        return None if row is None else (row[0], row[1])

    # -- raw-frame surface (snapshot sync) -----------------------------
    def raw_block_item(self, height: int) -> dict:
        """Everything a snapshot server streams for one block, straight
        off the log — **no decode**: the exact frame bytes (the canonical
        block encoding) with their CRC, the indexed block hash, and the
        index rows a replica needs to install the frame (tx ids in
        position order, receipt bodies aligned with them)."""
        items = self.raw_block_items(height, 1)
        if not items:
            raise InvalidBlock(f"no block at height {height}")
        return items[0]

    def raw_block_items(self, start: int, count: int) -> list[dict]:
        """Range form of :meth:`raw_block_item`: three range queries and
        one log pass instead of three queries + one read per block — the
        snapshot server's tail hot path."""
        import zlib

        stop = start + count            # exclusive
        rows = self._conn.execute(
            "SELECT height, segment, offset, block_hash FROM blocks "
            "WHERE height >= ? AND height < ? ORDER BY height",
            (start, stop),
        ).fetchall()
        archived = [height for height, segment, _, _ in rows
                    if segment < 0]
        if archived:
            raise StorageError(
                f"heights {archived[0]}..{archived[-1]} are archived; "
                "raw frames are served from the hot tail only (snapshot "
                "sync starts replicas from the state image, not cold "
                "history)"
            )
        tx_rows: dict[int, list[str]] = {}
        for tx_id, height in self._conn.execute(
                "SELECT tx_id, height FROM txs WHERE height >= ? AND "
                "height < ? ORDER BY height, pos", (start, stop)):
            tx_rows.setdefault(height, []).append(tx_id)
        # Receipts were committed in transaction order per height, so a
        # height-grouped scan pairs them positionally with tx_ids.
        receipt_bodies: dict[int, dict[str, bytes]] = {}
        for tx_id, height, body in self._conn.execute(
                "SELECT tx_id, height, body FROM receipts WHERE "
                "height >= ? AND height < ?", (start, stop)):
            receipt_bodies.setdefault(height, {})[tx_id] = body
        items = []
        for height, segment, offset, block_hash in rows:
            frame = self._log.read(segment, offset)
            tx_ids = tx_rows.get(height, [])
            bodies = receipt_bodies.get(height, {})
            items.append({
                "height": height,
                "block_hash": bytes(block_hash),
                "frame": frame,
                "crc": zlib.crc32(frame),
                "tx_ids": tx_ids,
                "receipts": [bodies.get(tx_id) for tx_id in tx_ids],
            })
        return items

    def install_raw(self, items: Sequence[dict]) -> None:
        """Group-install already-verified raw block frames (the snapshot
        client's surface).  Each item is a :meth:`raw_block_item`-shaped
        mapping; heights must be consecutive from the current head.  The
        frames go down exactly like :meth:`append_blocks` — one buffered
        log write + one fsync, then one sqlite transaction — but nothing
        is decoded and nothing is executed: the caller vouches for the
        content (hash-chain + beacon verification happened upstream).
        """
        if not items:
            return
        for i, item in enumerate(items):
            if item["height"] != self._height + 1 + i:
                raise StorageError(
                    f"store expects height {self._height + 1 + i}, "
                    f"got {item['height']}"
                )
        locs = self._log.append_many([item["frame"] for item in items])
        # Bulk rows are sorted by primary key before insertion: the
        # tx_id b-tree fills with far better page locality than the
        # hash-random arrival order offers (a pure install-path win —
        # table content is order-independent).
        tx_rows = sorted(
            (tx_id, item["height"], pos)
            for item in items
            for pos, tx_id in enumerate(item["tx_ids"])
        )
        receipt_rows = sorted(
            (tx_id, item["height"], body)
            for item in items
            for tx_id, body in zip(item["tx_ids"], item["receipts"])
            if body is not None
        )
        with self._conn:
            self._conn.executemany(
                "INSERT INTO blocks(height, segment, offset, length, "
                "block_hash) VALUES (?,?,?,?,?)",
                [(item["height"], loc.segment, loc.offset, loc.length,
                  item["block_hash"])
                 for item, loc in zip(items, locs)],
            )
            self._conn.executemany(
                "INSERT OR REPLACE INTO txs(tx_id, height, pos) "
                "VALUES (?,?,?)", tx_rows,
            )
            self._conn.executemany(
                "INSERT OR REPLACE INTO receipts(tx_id, height, body) "
                "VALUES (?,?,?)", receipt_rows,
            )
        self._height = items[-1]["height"]

    def receipt_for(self, tx_id: str) -> TransactionReceipt | None:
        row = self._conn.execute(
            "SELECT body FROM receipts WHERE tx_id = ?", (tx_id,)
        ).fetchone()
        return None if row is None else decode_receipt(row[0])

    def receipts_map(self) -> MappingABC:
        return _SqliteReceiptsMap(self._conn)

    def sync(self) -> None:
        self._log.sync()

    def close(self) -> None:
        self._log.close()


class DurableRecordStore(RecordStore):
    """Record log + sqlite index (record_id → location, position order)."""

    def __init__(self, conn: sqlite3.Connection, log: SegmentLog,
                 cache_size: int = 1024) -> None:
        self._conn = conn
        self._log = log
        self._cache: OrderedDict[int, dict] = OrderedDict()
        self._cache_size = cache_size
        row = conn.execute("SELECT MAX(position) FROM records").fetchone()
        self._count = 0 if row[0] is None else row[0] + 1

    def append(self, record: dict) -> int:
        position = self._count
        loc = self._log.append(encode_record(record))
        with self._conn:
            self._conn.execute(
                "INSERT INTO records(position, record_id, segment, offset, "
                "length) VALUES (?,?,?,?,?)",
                (position, str(record.get("record_id") or position),
                 loc.segment, loc.offset, loc.length),
            )
        self._count = position + 1
        self._cache_put(position, dict(record))
        return position

    def append_many(self, records: Sequence[dict]) -> list[int]:
        """Group-commit a batch of records: one buffered log write + one
        fsync + one index transaction, versus one of each *per record*
        on the :meth:`append` path — the dominant saving on the durable
        ingest hot path (capture streams arrive thousands at a time)."""
        if not records:
            return []
        start = self._count
        locs = self._log.append_many(
            [encode_record(record) for record in records]
        )
        with self._conn:
            self._conn.executemany(
                "INSERT INTO records(position, record_id, segment, offset, "
                "length) VALUES (?,?,?,?,?)",
                [(start + i, str(record.get("record_id") or (start + i)),
                  loc.segment, loc.offset, loc.length)
                 for i, (record, loc) in enumerate(zip(records, locs))],
            )
        positions = list(range(start, start + len(records)))
        self._count = start + len(records)
        for position, record in zip(positions, records):
            self._cache_put(position, dict(record))
        return positions

    def replace(self, position: int, record: dict) -> None:
        """Annotation support: append the updated copy, repoint the index
        (the old frame becomes dead weight in the log — append-only)."""
        if not 0 <= position < self._count:
            raise UnknownEntity(f"no record at position {position}")
        loc = self._log.append(encode_record(record))
        with self._conn:
            self._conn.execute(
                "UPDATE records SET segment = ?, offset = ?, length = ? "
                "WHERE position = ?",
                (loc.segment, loc.offset, loc.length, position),
            )
        self._cache_put(position, dict(record))

    def _cache_put(self, position: int, record: dict) -> None:
        self._cache[position] = record
        self._cache.move_to_end(position)
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)

    def get(self, position: int) -> dict:
        cached = self._cache.get(position)
        if cached is not None:
            self._cache.move_to_end(position)
            return dict(cached)
        row = self._conn.execute(
            "SELECT segment, offset FROM records WHERE position = ?",
            (position,),
        ).fetchone()
        if row is None:
            raise UnknownEntity(f"no record at position {position}")
        record = decode_record(self._log.read(row[0], row[1]))
        self._cache_put(position, record)
        return dict(record)

    def __len__(self) -> int:
        return self._count

    def iter_items(self) -> Iterator[tuple[int, dict]]:
        # Driven by the index, not range(count): external damage to a
        # replaced record can leave a position hole after recovery.
        positions = [pos for (pos,) in self._conn.execute(
            "SELECT position FROM records ORDER BY position")]
        for position in positions:
            yield position, self.get(position)

    def iter_records(self) -> Iterator[dict]:
        for _, record in self.iter_items():
            yield record

    def location_of_id(self, record_id: str) -> int | None:
        """sqlite-level record_id → position (survives restarts even
        before the in-memory indexes are rebuilt)."""
        row = self._conn.execute(
            "SELECT position FROM records WHERE record_id = ?",
            (record_id,),
        ).fetchone()
        return None if row is None else row[0]

    def sync(self) -> None:
        self._log.sync()

    def close(self) -> None:
        self._log.close()


class DurableStateSnapshotStore(StateSnapshotStore):
    """The state image lives entirely in sqlite (namespace → keys),
    replaced atomically in one transaction per checkpoint."""

    _HEIGHT_KEY = "state_snapshot_height"
    _HASH_KEY = "state_snapshot_block_hash"

    def __init__(self, conn: sqlite3.Connection) -> None:
        self._conn = conn

    def save(self, height: int,
             entries: Sequence[tuple[str, str, Any]],
             block_hash: bytes = b"") -> None:
        with self._conn:
            self._conn.execute("DELETE FROM state_entries")
            self._conn.executemany(
                "INSERT INTO state_entries(namespace, key, value) "
                "VALUES (?,?,?)",
                [(ns, key, canonical_encode(value))
                 for ns, key, value in entries],
            )
            self._conn.execute(
                "INSERT OR REPLACE INTO meta(key, value) VALUES (?,?)",
                (self._HEIGHT_KEY, canonical_encode(height)),
            )
            self._conn.execute(
                "INSERT OR REPLACE INTO meta(key, value) VALUES (?,?)",
                (self._HASH_KEY, canonical_encode(block_hash)),
            )

    def load(self) -> tuple[int, list[tuple[str, str, Any]]] | None:
        height = self.snapshot_height()
        if height is None:
            return None
        entries = [
            (ns, key, canonical_decode(value))
            for ns, key, value in self._conn.execute(
                "SELECT namespace, key, value FROM state_entries "
                "ORDER BY namespace, key")
        ]
        return height, entries

    def snapshot_height(self) -> int | None:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (self._HEIGHT_KEY,)
        ).fetchone()
        return None if row is None else canonical_decode(row[0])

    def snapshot_block_hash(self) -> bytes:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (self._HASH_KEY,)
        ).fetchone()
        return b"" if row is None else canonical_decode(row[0])

    def clear(self) -> None:
        with self._conn:
            self._conn.execute("DELETE FROM state_entries")
            self._conn.execute(
                "DELETE FROM meta WHERE key IN (?, ?)",
                (self._HEIGHT_KEY, self._HASH_KEY),
            )


class DurableStorage(MetaStore):
    """One directory = one durable chain stack (blocks, records, state,
    meta).  Runs crash recovery on open; see the module docstring for
    the commit discipline it enforces."""

    _BLOCK_GEN_KEY = "blocks_log_gen"
    _RECORD_GEN_KEY = "records_log_gen"
    _ARCHIVED_KEY = "blocks_archived"

    def __init__(self, directory: str | os.PathLike,
                 max_segment_bytes: int = 4 * 1024 * 1024,
                 block_cache_size: int = 256,
                 codec: str | SegmentCodec = SegmentCodec.RAW,
                 cas=None) -> None:
        # Fork-safety contract (audited for the exec process pool):
        # exec workers *never* open durable state — they execute against
        # in-memory replicas and return deltas; only the parent commits.
        # A forked child inherits this object's sqlite handle and log
        # fds, but the pid guards below make any accidental use loud
        # instead of silently corrupting the parent's files.
        from ..exec.worker import in_worker

        if in_worker():
            raise StorageError(
                "DurableStorage may not be opened inside an exec "
                "worker: workers hold no durable handles; only the "
                "parent process commits"
            )
        self.directory = os.fspath(directory)
        self._owner_pid = os.getpid()
        self._max_segment_bytes = max_segment_bytes
        self.codec = (codec if isinstance(codec, SegmentCodec)
                      else SegmentCodec(codec))
        os.makedirs(self.directory, exist_ok=True)
        # check_same_thread=False: the parallel sealing round drives each
        # shard's storage from a worker thread (one worker per shard per
        # round, never two threads on one connection concurrently).
        self._conn = sqlite3.connect(
            os.path.join(self.directory, "index.db"),
            check_same_thread=False,
        )
        self._conn.executescript(_SCHEMA)
        self._migrate_schema()
        # WAL keeps index commits append-only (no per-commit journal
        # rewrite) — an order of magnitude cheaper for the one-row
        # transactions the append path issues; synchronous=NORMAL still
        # fsyncs the WAL at checkpoints, matching the segment logs'
        # fsync-on-seal discipline.
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        # Compaction rewrites a log into a fresh *generation* directory
        # and repoints the index in one transaction; the committed
        # generation numbers say which directories are live.  Anything
        # else (a crashed compaction's half-written next gen, or a
        # superseded previous gen whose cleanup was interrupted) is
        # swept before the logs open.
        self._block_gen = int(self.get_meta(self._BLOCK_GEN_KEY, 0))
        self._record_gen = int(self.get_meta(self._RECORD_GEN_KEY, 0))
        self._sweep_stale_log_dirs()
        self.block_log = SegmentLog(
            self._log_dir("blocks-log", self._block_gen),
            max_segment_bytes=max_segment_bytes,
            codec=self.codec,
        )
        self.record_log = SegmentLog(
            self._log_dir("records-log", self._record_gen),
            max_segment_bytes=max_segment_bytes,
            codec=self.codec,
        )
        self.recovered_blocks = self._recover_blocks()
        self.recovered_records = self._recover_records()
        self.blocks = DurableBlockStore(self._conn, self.block_log,
                                        cache_size=block_cache_size)
        self.records = DurableRecordStore(self._conn, self.record_log)
        self.state = DurableStateSnapshotStore(self._conn)
        self._cas = cas
        if self._cas is None and \
                self.get_meta(self._ARCHIVED_KEY) is not None:
            from ..storage.cas import FileCAS

            self._cas = FileCAS(os.path.join(self.directory, "archive"))
        if self._cas is not None:
            self.blocks.attach_cas(self._cas)

    def _migrate_schema(self) -> None:
        """Additive migrations for stores created by older versions."""
        columns = [row[1] for row in
                   self._conn.execute("PRAGMA table_info(blocks)")]
        if "cas_key" not in columns:
            with self._conn:
                self._conn.execute(
                    "ALTER TABLE blocks ADD COLUMN cas_key TEXT"
                )

    def _check_owner(self) -> None:
        if os.getpid() != self._owner_pid:
            raise StorageError(
                "durable storage crossed a fork: only the parent "
                "process may commit (exec workers return deltas)"
            )

    def _log_dir(self, base: str, generation: int) -> str:
        name = base if generation == 0 else f"{base}.g{generation}"
        return os.path.join(self.directory, name)

    def _sweep_stale_log_dirs(self) -> None:
        current = {
            os.path.basename(self._log_dir("blocks-log", self._block_gen)),
            os.path.basename(self._log_dir("records-log",
                                           self._record_gen)),
        }
        for name in os.listdir(self.directory):
            for base in ("blocks-log", "records-log"):
                if name != base and not name.startswith(base + ".g"):
                    continue
                if name in current:
                    continue
                if name != base:
                    try:
                        int(name[len(base) + 2:])
                    except ValueError:
                        continue
                path = os.path.join(self.directory, name)
                if os.path.isdir(path):
                    shutil.rmtree(path, ignore_errors=True)
                break

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def _frame_ok(self, log: SegmentLog, segment: int, offset: int,
                  length: int) -> bool:
        # Compare the on-disk frame length, not the decoded payload
        # size: under a compressing codec the two differ.
        info = log.frame_info_at(segment, offset)
        return info is not None and info[1] == length

    def _recover_blocks(self) -> int:
        """Reconcile the block log with its index table.

        Walks the index tail backwards dropping rows whose frames are
        partial/garbled (a crash mid-append, or an operator truncating
        the segment file), then truncates the log to the end of the last
        surviving indexed frame — discarding any frames that were written
        but never indexed (a crash between log flush and index commit).
        Blocks are append-only, so height order *is* log-address order.
        Returns the number of index rows dropped.
        """
        dropped = 0
        while True:
            # Archived rows (segment < 0) live in the CAS, not the log:
            # the walk only reconciles the hot tail.
            row = self._conn.execute(
                "SELECT height, segment, offset, length FROM blocks "
                "WHERE segment >= 0 ORDER BY height DESC LIMIT 1"
            ).fetchone()
            if row is None:
                self.block_log.truncate_to(0, 0)
                return dropped
            height, segment, offset, length = row
            if self._frame_ok(self.block_log, segment, offset, length):
                self.block_log.truncate_to(segment, offset + length)
                return dropped
            with self._conn:
                for table in ("blocks", "txs", "receipts"):
                    self._conn.execute(
                        f"DELETE FROM {table} WHERE height = ?", (height,)
                    )
            dropped += 1

    def _recover_records(self) -> int:
        """Like :meth:`_recover_blocks` for the record log — but ordered
        by **log address**, not position: ``replace()`` (annotation) can
        repoint an *old* position at the newest frame, so the frame the
        log must be truncated after is the highest-addressed one any row
        references, which is not necessarily the highest position's.
        """
        dropped = 0
        while True:
            row = self._conn.execute(
                "SELECT position, segment, offset, length FROM records "
                "ORDER BY segment DESC, offset DESC LIMIT 1"
            ).fetchone()
            if row is None:
                self.record_log.truncate_to(0, 0)
                return dropped
            position, segment, offset, length = row
            if self._frame_ok(self.record_log, segment, offset, length):
                self.record_log.truncate_to(segment, offset + length)
                return dropped
            with self._conn:
                self._conn.execute(
                    "DELETE FROM records WHERE position = ?", (position,)
                )
            dropped += 1

    # ------------------------------------------------------------------
    # Storage tiering: compaction + cold-block archival
    # ------------------------------------------------------------------
    def disk_usage(self, include_archive: bool = False) -> int:
        """Bytes on disk for the hot tier (segment logs + sqlite index,
        WAL included); the archive's cold bytes only when asked — the
        whole point of tiering is that they can live on other media."""
        total = 0
        for path in (self.block_log.directory, self.record_log.directory):
            total += _dir_bytes(path)
        for suffix in ("", "-wal", "-shm"):
            try:
                total += os.path.getsize(
                    os.path.join(self.directory, "index.db" + suffix))
            except OSError:
                pass
        if include_archive:
            total += _dir_bytes(os.path.join(self.directory, "archive"))
        return total

    def _compact_log(self, table: str, fail_after_bytes: int | None,
                     crash_before_cleanup: bool) -> dict:
        """Rewrite one log's live frames into a fresh generation.

        Protocol: (1) copy every indexed frame into the next-generation
        directory and fsync it; (2) repoint every index row *and* bump
        the generation meta key in **one** sqlite transaction; (3) swap
        the in-memory log object; (4) remove the old directory.  A crash
        before (2) leaves the index on the old generation — the
        half-written new directory is swept on reopen; a crash after (2)
        leaves the new generation committed — the old directory is swept
        on reopen.  There is no intermediate state: the transaction *is*
        the swap.
        """
        if table == "blocks":
            base, meta_key, gen = ("blocks-log", self._BLOCK_GEN_KEY,
                                   self._block_gen)
            old_log = self.block_log
            rows = self._conn.execute(
                "SELECT height, segment, offset FROM blocks "
                "WHERE segment >= 0 ORDER BY height").fetchall()
            key_column = "height"
        else:
            base, meta_key, gen = ("records-log", self._RECORD_GEN_KEY,
                                   self._record_gen)
            old_log = self.record_log
            # Position order, not address order: the rewritten log reads
            # sequentially for iter_items even after heavy annotation.
            rows = self._conn.execute(
                "SELECT position, segment, offset FROM records "
                "ORDER BY position").fetchall()
            key_column = "position"
        bytes_before = _dir_bytes(old_log.directory)
        new_gen = gen + 1
        new_dir = self._log_dir(base, new_gen)
        if os.path.isdir(new_dir):
            # A previous compaction attempt crashed mid-write in this
            # same process lifetime; its frames were never committed.
            shutil.rmtree(new_dir)
        new_log = SegmentLog(new_dir,
                             max_segment_bytes=self._max_segment_bytes,
                             codec=self.codec)
        if fail_after_bytes is not None:
            new_log.fail_after_bytes = fail_after_bytes
        payloads = [old_log.read(segment, offset)
                    for _, segment, offset in rows]
        locations = new_log.append_many(payloads, fsync=True)
        with self._conn:
            self._conn.executemany(
                f"UPDATE {table} SET segment = ?, offset = ?, "
                f"length = ? WHERE {key_column} = ?",
                [(loc.segment, loc.offset, loc.length, key)
                 for (key, _, _), loc in zip(rows, locations)],
            )
            self._conn.execute(
                "INSERT OR REPLACE INTO meta(key, value) VALUES (?,?)",
                (meta_key, canonical_encode(new_gen)),
            )
        old_dir = old_log.directory
        old_log.close()
        if table == "blocks":
            self.block_log = new_log
            self._block_gen = new_gen
            self.blocks._log = new_log
        else:
            self.record_log = new_log
            self._record_gen = new_gen
            self.records._log = new_log
        if crash_before_cleanup:
            raise CrashPoint(
                "injected crash after compaction commit, before cleanup"
            )
        shutil.rmtree(old_dir, ignore_errors=True)
        return {
            "generation": new_gen,
            "live_frames": len(rows),
            "bytes_before": bytes_before,
            "bytes_after": _dir_bytes(new_dir),
        }

    def compact(self, which: str = "both",
                fail_after_bytes: int | None = None,
                crash_before_cleanup: bool = False) -> dict:
        """Drop dead log weight: garbage block frames left by reorg
        truncation and archival, and dead record frames left by
        ``replace`` (annotation).  The crash hooks drive the tiering
        fault-injection tests; see :meth:`_compact_log` for why every
        crash point reconciles on reopen."""
        self._check_owner()
        if which not in ("both", "blocks", "records"):
            raise StorageError(f"unknown compaction target {which!r}")
        stats: dict[str, dict] = {}
        if which in ("both", "blocks"):
            stats["blocks"] = self._compact_log(
                "blocks", fail_after_bytes, crash_before_cleanup)
        if which in ("both", "records"):
            stats["records"] = self._compact_log(
                "records", fail_after_bytes, crash_before_cleanup)
        return stats

    def archive_blocks(self, keep_tail: int = 64, cas=None) -> dict:
        """Move cold block frames into the CAS and repoint the index.

        Every block at or below ``height - keep_tail`` is CAS-put (the
        exact canonical frame, so CIDs are content addresses of what the
        log held), then **one** sqlite transaction flips those rows to
        ``segment = -1`` with their ``cas_key`` and records the archival
        boundary.  A crash before the transaction leaves only orphan CAS
        blobs (dedup reclaims them on retry); the index still points at
        the log, which compaction has not yet touched.  The log space is
        reclaimed by the *next* :meth:`compact`, which skips archived
        rows — :meth:`tier` runs both in order.
        """
        self._check_owner()
        if keep_tail < 0:
            raise StorageError("keep_tail must be >= 0")
        boundary = self.blocks.height() - keep_tail
        rows = self._conn.execute(
            "SELECT height, segment, offset FROM blocks "
            "WHERE segment >= 0 AND height <= ? ORDER BY height",
            (boundary,),
        ).fetchall()
        if cas is not None:
            self._cas = cas
        if not rows:
            return {"archived": 0,
                    "boundary": self.blocks.archived_boundary()}
        if self._cas is None:
            from ..storage.cas import FileCAS

            self._cas = FileCAS(os.path.join(self.directory, "archive"))
        updates = []
        for height, segment, offset in rows:
            frame = self.block_log.read(segment, offset)
            cid = self._cas.put(frame)
            updates.append((f"{cid.kind}:{cid.hex}", height))
        sync = getattr(self._cas, "sync", None)
        if sync is not None:
            sync()
        with self._conn:
            self._conn.executemany(
                "UPDATE blocks SET segment = -1, offset = 0, "
                "length = 0, cas_key = ? WHERE height = ?", updates,
            )
            self._conn.execute(
                "INSERT OR REPLACE INTO meta(key, value) VALUES (?,?)",
                (self._ARCHIVED_KEY, canonical_encode(rows[-1][0])),
            )
        self.blocks.attach_cas(self._cas)
        return {"archived": len(rows), "boundary": rows[-1][0]}

    def tier(self, keep_tail: int = 64, cas=None,
             compact_records: bool = True) -> dict:
        """One tiering pass: archive cold blocks, then compact the logs
        so the hot tier is exactly the pruned profile — state image +
        hot block tail + live records.  Returns before/after hot-tier
        byte counts alongside each step's stats."""
        self._check_owner()
        bytes_before = self.disk_usage()
        archived = self.archive_blocks(keep_tail=keep_tail, cas=cas)
        compacted = self.compact(
            which="both" if compact_records else "blocks")
        self.sync()
        stats = {
            "archived": archived,
            "compacted": compacted,
            "bytes_before": bytes_before,
            "bytes_after": self.disk_usage(),
        }
        from ..obs.runtime import telemetry

        registry = telemetry().registry
        registry.counter("tier_passes_total").inc()
        registry.counter("tier_blocks_archived_total").inc(
            archived["archived"]
        )
        registry.counter("tier_bytes_reclaimed_total").inc(
            max(0, bytes_before - stats["bytes_after"])
        )
        return stats

    # ------------------------------------------------------------------
    # Meta
    # ------------------------------------------------------------------
    def put_meta(self, key: str, value: Any) -> None:
        self._check_owner()
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO meta(key, value) VALUES (?,?)",
                (key, canonical_encode(value)),
            )

    def get_meta(self, key: str, default: Any = None) -> Any:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return default if row is None else canonical_decode(row[0])

    # ------------------------------------------------------------------
    def sync(self) -> None:
        self._check_owner()
        self.block_log.sync()
        self.record_log.sync()
        # WAL commits under synchronous=NORMAL are not individually
        # fsynced; flushing the WAL into the main database here makes
        # everything indexed so far power-loss durable — checkpoints are
        # the durability points, same as the logs' fsync-on-seal.
        self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")

    def close(self) -> None:
        self._check_owner()
        self.block_log.close()
        self.record_log.close()
        close_cas = getattr(self._cas, "close", None)
        if close_cas is not None:
            close_cas()
        self._conn.commit()
        self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        self._conn.close()


def _dir_bytes(path: str) -> int:
    """Total file bytes under ``path`` (0 for a missing directory)."""
    total = 0
    for root, _, names in os.walk(path):
        for name in names:
            try:
                total += os.path.getsize(os.path.join(root, name))
            except OSError:
                pass
    return total
