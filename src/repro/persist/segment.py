"""Append-only segment log — the durable backend's byte layer.

A log is a directory of numbered segment files (``seg-00000000.log``,
``seg-00000001.log``, …).  Entries are framed as

    [4-byte LE payload length][payload][4-byte LE CRC-32 of payload]

and addressed by ``(segment, offset)``.  Frames never span segments: when
the current segment would exceed ``max_segment_bytes`` it is *sealed* —
flushed, fsynced, closed — and a new segment starts.  ``sync()`` fsyncs
the live segment on demand (the chain layer calls it at checkpoints).

Crash recovery contract: a frame is *valid* iff its length prefix fits in
the file and the CRC matches.  A crash mid-write leaves a partial or
garbled tail; :meth:`frame_at` reports it invalid and the index layer
truncates back to the last entry it committed.  The ``fail_after_bytes``
fault-injection hook makes that scenario reproducible in tests: the next
append writes only a prefix of the frame and then raises
:class:`CrashPoint`, exactly what ``kill -9`` mid-``write`` leaves
behind.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from dataclasses import dataclass
from typing import Iterator, Sequence

from ..errors import StorageError

# Telemetry handles, cached per default-telemetry instance (same
# pattern as repro.crypto.signatures).  Every durability point routes
# through _timed_fsync: the fsync latency histogram is the persist
# layer's headline metric, and the "persist.fsync" span implicitly
# nests under whatever seal/commit span is active on this thread.
_TELEMETRY_HANDLES: tuple | None = None


def _fsync_instruments() -> tuple:
    global _TELEMETRY_HANDLES
    from ..obs.runtime import telemetry

    tel = telemetry()
    handles = _TELEMETRY_HANDLES
    if handles is None or handles[0] is not tel:
        handles = (
            tel,
            tel.registry.histogram("persist_fsync_seconds"),
            tel.registry.counter("persist_fsyncs_total"),
            tel.tracer,
        )
        _TELEMETRY_HANDLES = handles
    return handles


def _timed_fsync(fd: int) -> None:
    _, hist, count, tracer = _fsync_instruments()
    with tracer.span("persist.fsync"):
        t0 = time.perf_counter()
        os.fsync(fd)
        hist.observe(time.perf_counter() - t0)
    count.inc()

_LEN = struct.Struct("<I")
FRAME_OVERHEAD = 8          # 4-byte length + 4-byte CRC
_MAX_PAYLOAD = 1 << 28      # 256 MiB sanity bound on the length prefix

# Bit 31 of the length word marks a zlib-compressed frame body.  The
# sanity bound leaves bits 28..31 permanently clear in legacy frames, so
# the flag is unambiguous — old logs read fine under new code and new
# *uncompressed* frames read fine under old code.  Compression is a
# per-frame property of the bytes on disk, not a log-level mode: a log
# opened with ``codec="raw"`` still decodes compressed frames, so codec
# choice never has to match across reopen.
_FLAG_COMPRESSED = 0x8000_0000
_LEN_MASK = 0x7FFF_FFFF


class SegmentCodec:
    """Frame-body codec: ``raw`` stores payloads verbatim; ``zlib``
    deflates each payload and keeps the smaller of the two (so
    incompressible payloads never grow).  The CRC always covers the
    *stored* bytes — corruption is detected before any decompression."""

    RAW = "raw"
    ZLIB = "zlib"

    def __init__(self, name: str = RAW, level: int = 6) -> None:
        if name not in (self.RAW, self.ZLIB):
            raise StorageError(f"unknown segment codec {name!r}")
        self.name = name
        self.level = level

    def encode(self, payload: bytes) -> tuple[bytes, bool]:
        """``(stored_bytes, compressed?)`` for one frame body."""
        if self.name == self.ZLIB:
            packed = zlib.compress(payload, self.level)
            if len(packed) < len(payload):
                return packed, True
        return payload, False

    @staticmethod
    def decode(stored: bytes, compressed: bool) -> bytes | None:
        """Inverse of :meth:`encode`; ``None`` on a garbled body."""
        if not compressed:
            return stored
        try:
            return zlib.decompress(stored)
        except zlib.error:
            return None


class CrashPoint(StorageError):
    """Raised by the fault-injection hook to simulate a mid-write crash."""


@dataclass(frozen=True)
class LogLocation:
    """Address of one frame: segment number, byte offset, total frame length."""

    segment: int
    offset: int
    length: int

    @property
    def end_offset(self) -> int:
        return self.offset + self.length


def _segment_name(segment: int) -> str:
    return f"seg-{segment:08d}.log"


class SegmentLog:
    """Append-only, CRC-framed, segment-rolled byte log."""

    def __init__(self, directory: str | os.PathLike,
                 max_segment_bytes: int = 4 * 1024 * 1024,
                 codec: str | SegmentCodec = SegmentCodec.RAW) -> None:
        if max_segment_bytes < FRAME_OVERHEAD + 1:
            raise StorageError("max_segment_bytes is too small to hold a frame")
        self.directory = os.fspath(directory)
        self.max_segment_bytes = max_segment_bytes
        self.codec = (codec if isinstance(codec, SegmentCodec)
                      else SegmentCodec(codec))
        os.makedirs(self.directory, exist_ok=True)
        # Fault injection: when set, the next append writes only this many
        # bytes of the frame, flushes, and raises CrashPoint.
        self.fail_after_bytes: int | None = None
        self.appends = 0
        self.segments_sealed = 0
        # Fork guard: exec workers inherit this object (and possibly its
        # open write fd) across fork, but must never write — a child and
        # the parent sharing one append fd would interleave frames.  The
        # read path is fork-safe (fresh handle per read).
        self._owner_pid = os.getpid()
        segments = self._discover()
        self._current = segments[-1] if segments else 0
        # Size of the live segment, tracked in memory so the append hot
        # path never stats the filesystem.
        self._current_size = self.segment_size(self._current)
        self._write_fh = None   # opened lazily by append/truncate

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def _discover(self) -> list[int]:
        found = []
        for name in os.listdir(self.directory):
            if name.startswith("seg-") and name.endswith(".log"):
                try:
                    found.append(int(name[4:-4]))
                except ValueError:
                    continue
        return sorted(found)

    def _path(self, segment: int) -> str:
        return os.path.join(self.directory, _segment_name(segment))

    def segment_size(self, segment: int) -> int:
        try:
            return os.path.getsize(self._path(segment))
        except OSError:
            return 0

    @property
    def current_segment(self) -> int:
        return self._current

    def end_location(self) -> tuple[int, int]:
        """``(segment, offset)`` one past the last byte written."""
        return self._current, self._current_size

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def _open_for_append(self):
        if os.getpid() != self._owner_pid:
            raise StorageError(
                "segment log crossed a fork: only the owning process "
                "may append (exec workers hold no durable handles)"
            )
        if self._write_fh is None:
            self._write_fh = open(self._path(self._current), "ab")
        return self._write_fh

    def _seal_current(self) -> None:
        """Flush + fsync + close the live segment and start the next."""
        fh = self._open_for_append()
        fh.flush()
        _timed_fsync(fh.fileno())
        fh.close()
        self._write_fh = None
        self._current += 1
        self._current_size = 0
        self.segments_sealed += 1

    def _frame(self, payload: bytes) -> bytes:
        """Encode + frame one payload (codec applied, CRC over the
        stored bytes)."""
        if len(payload) > _MAX_PAYLOAD:
            raise StorageError("payload exceeds the frame sanity bound")
        stored, compressed = self.codec.encode(payload)
        word = len(stored) | (_FLAG_COMPRESSED if compressed else 0)
        return _LEN.pack(word) + stored + _LEN.pack(zlib.crc32(stored))

    def append(self, payload: bytes) -> LogLocation:
        """Frame and append ``payload``; returns its address.

        The frame is flushed to the OS before returning (readable by any
        other handle); fsync happens at seal/sync/close time.
        """
        if self._current_size >= self.max_segment_bytes:
            self._seal_current()
        fh = self._open_for_append()
        offset = self._current_size
        frame = self._frame(payload)
        if self.fail_after_bytes is not None:
            cut = min(self.fail_after_bytes, len(frame))
            self.fail_after_bytes = None
            fh.write(frame[:cut])
            fh.flush()
            self._current_size += cut
            raise CrashPoint(
                f"injected crash after {cut}/{len(frame)} frame bytes"
            )
        fh.write(frame)
        fh.flush()
        self._current_size += len(frame)
        self.appends += 1
        return LogLocation(self._current, offset, len(frame))

    def append_many(self, payloads: Sequence[bytes],
                    fsync: bool = True) -> list[LogLocation]:
        """Group-commit append: frame every payload, write each segment's
        share as **one** buffered write, and (by default) fsync once at
        the end — the batch becomes the durability point.

        Compared to a loop of :meth:`append` (one write + flush per
        frame, durability deferred to the next checkpoint), a group of N
        frames costs one write and one fsync per segment touched, and
        the caller knows the whole group is on stable storage when the
        call returns.  Frames still never span segments.

        The ``fail_after_bytes`` crash hook is honored across the
        *concatenated* group: the injected crash leaves a byte-exact
        prefix of the group on disk, so recovery tests can kill a group
        commit at any byte, including between two frames.
        """
        locations: list[LogLocation] = []
        chunk: list[bytes] = []
        chunk_bytes = 0
        for payload in payloads:
            if self._current_size + chunk_bytes >= self.max_segment_bytes \
                    and chunk:
                self._write_chunk(b"".join(chunk), fsync=False)
                chunk, chunk_bytes = [], 0
            if self._current_size >= self.max_segment_bytes:
                self._seal_current()
            frame = self._frame(payload)
            locations.append(LogLocation(
                self._current, self._current_size + chunk_bytes, len(frame)
            ))
            chunk.append(frame)
            chunk_bytes += len(frame)
        if chunk:
            self._write_chunk(b"".join(chunk), fsync=fsync)
        elif fsync:
            self.sync()
        self.appends += len(locations)
        return locations

    def _write_chunk(self, data: bytes, fsync: bool) -> None:
        """One buffered write of several already-framed entries into the
        live segment (crash hook honored byte-exactly: the budget counts
        down across the group's chunks, so a crash point beyond a
        segment roll lands at exactly the requested byte)."""
        fh = self._open_for_append()
        if self.fail_after_bytes is not None:
            if self.fail_after_bytes <= len(data):
                cut = self.fail_after_bytes
                self.fail_after_bytes = None
                fh.write(data[:cut])
                fh.flush()
                self._current_size += cut
                raise CrashPoint(
                    f"injected crash after {cut}/{len(data)} chunk bytes"
                )
            self.fail_after_bytes -= len(data)
        fh.write(data)
        fh.flush()
        self._current_size += len(data)
        if fsync:
            _timed_fsync(fh.fileno())

    def sync(self) -> None:
        """Flush + fsync the live segment (checkpoint durability)."""
        if self._write_fh is not None:
            self._write_fh.flush()
            _timed_fsync(self._write_fh.fileno())

    def close(self) -> None:
        if self._write_fh is not None:
            self._write_fh.flush()
            _timed_fsync(self._write_fh.fileno())
            self._write_fh.close()
            self._write_fh = None

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def frame_info_at(self, segment: int,
                      offset: int) -> tuple[bytes, int] | None:
        """``(payload, on_disk_frame_length)`` for the frame at
        ``(segment, offset)``, or ``None`` if the frame is partial,
        garbled, or absent (CRC checked before decompression).

        The on-disk length is what the index stores in its ``length``
        column; with a compressing codec it differs from
        ``len(payload) + FRAME_OVERHEAD``, so recovery must compare
        against this, never against the decoded payload size.
        """
        if self._write_fh is not None:
            self._write_fh.flush()
        path = self._path(segment)
        try:
            with open(path, "rb") as fh:
                fh.seek(offset)
                head = fh.read(4)
                if len(head) != 4:
                    return None
                (word,) = _LEN.unpack(head)
                compressed = bool(word & _FLAG_COMPRESSED)
                length = word & _LEN_MASK
                if length > _MAX_PAYLOAD:
                    return None
                body = fh.read(length + 4)
                if len(body) != length + 4:
                    return None
                stored, crc_bytes = body[:length], body[length:]
                if zlib.crc32(stored) != _LEN.unpack(crc_bytes)[0]:
                    return None
                payload = SegmentCodec.decode(stored, compressed)
                if payload is None:
                    return None
                return payload, FRAME_OVERHEAD + length
        except OSError:
            return None

    def frame_at(self, segment: int, offset: int) -> bytes | None:
        """Payload of the frame at ``(segment, offset)``, or ``None`` if
        the frame is partial, garbled, or absent (CRC checked)."""
        info = self.frame_info_at(segment, offset)
        return None if info is None else info[0]

    def read(self, segment: int, offset: int) -> bytes:
        """Payload at an address the index vouches for; raises on damage."""
        payload = self.frame_at(segment, offset)
        if payload is None:
            raise StorageError(
                f"invalid frame at segment {segment} offset {offset} "
                "(index and log disagree — run recovery)"
            )
        return payload

    def scan(self, start: tuple[int, int] = (0, 0)
             ) -> Iterator[tuple[LogLocation, bytes]]:
        """Iterate valid frames from ``start``, stopping at the first
        invalid one (the recovery boundary)."""
        segment, offset = start
        while True:
            info = self.frame_info_at(segment, offset)
            if info is None:
                # End of this segment: advance iff a later segment exists.
                nxt = segment + 1
                if (offset == self.segment_size(segment)
                        and os.path.exists(self._path(nxt))):
                    segment, offset = nxt, 0
                    continue
                return
            payload, frame_length = info
            loc = LogLocation(segment, offset, frame_length)
            yield loc, payload
            offset = loc.end_offset

    # ------------------------------------------------------------------
    # Truncation (recovery + reorgs)
    # ------------------------------------------------------------------
    def truncate_to(self, segment: int, offset: int) -> None:
        """Discard every byte at/after ``(segment, offset)``.

        Used two ways: recovery truncates a garbled tail, and reorgs cut
        the log back to the fork point before appending the new suffix.
        """
        self.close()
        for seg in self._discover():
            if seg > segment:
                os.unlink(self._path(seg))
        path = self._path(segment)
        if os.path.exists(path):
            with open(path, "rb+") as fh:
                fh.truncate(offset)
        elif offset != 0:
            raise StorageError(
                f"cannot truncate into missing segment {segment}"
            )
        self._current = segment
        self._current_size = offset
