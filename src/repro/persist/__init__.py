"""Pluggable durable storage for chains, records, and state.

Design note (ISSUE 3 tentpole)
------------------------------

The SOK paper's provenance systems assume the ledger *survives*: SciChain
makes durable, auditable storage the core of trustworthy scientific
provenance, and the smart-contract provenance managers it surveys all
depend on a persistent, tamper-evident store.  Before this package, every
store in the library was a Python list or dict — a shard crash meant
genesis replay, and a chain could never outgrow RAM.

Three narrow interfaces (:mod:`repro.persist.stores`) now sit between the
domain layers and their bytes:

* :class:`BlockStore` — committed blocks, the tx index, receipts;
* :class:`RecordStore` — the append-only provenance record list;
* :class:`StateSnapshotStore` — one checkpointed state image.

with two backends each:

* **memory** — the seed's original lists/dicts, extracted behind the
  interface (zero behavior change; still the default everywhere);
* **durable** (:mod:`repro.persist.durable`) — append-only segment logs
  (length-prefixed canonical encodings, per-frame CRC-32, fsync-on-seal;
  :mod:`repro.persist.segment`) indexed by stdlib sqlite3: height→offset,
  tx_id→location, record_id→location, and the state snapshot stored as a
  namespace→key table.

**Why the hash encoding is the wire format.**  Frames hold the *same*
canonical bytes every hash and signature already commits to
(:mod:`repro.serialization`), and :func:`repro.persist.codec.canonical_decode`
is its exact inverse.  A block read back from disk therefore re-hashes to
the block hash the index recorded — corruption surfaces as a hash
mismatch, never as silently different data, which is precisely the
tamper-evidence argument the chain itself makes.

**Crash recovery.**  The commit point is the sqlite row: log frame first
(flushed), index row second.  On open, :class:`DurableStorage` walks the
index tail backwards past rows whose frames fail CRC, then truncates the
log to the last indexed frame.  Reorgs run the same truncation in the
other order (index rows deleted first), so a crash at *any* byte leaves
the pair reconcilable — the property the fault-injection suite in
``tests/test_persist.py`` exercises frame-byte by frame-byte.

**Restart without replay.**  :class:`~repro.chain.blockchain.Blockchain`
accepts ``store=`` and ``snapshot_store=``; ``checkpoint()`` saves the
state image at the head, and a reopened chain restores it and re-executes
only blocks above the snapshot (``blocks_replayed_on_open`` counts them —
0 after a clean close).  :class:`~repro.sharding.shardchain.ShardedChain`
wires a per-shard directory plus a beacon directory, persisting the
anchor batches, beacon rounds, and the facade's lock/round state in the
meta table, so a restarted deployment serves identical query and proof
results with no genesis replay.  Snapshot sync and 2PC coordinator
recovery (ROADMAP) build on exactly these pieces.
"""

from .codec import canonical_decode, decode_block, encode_block
from .durable import (
    DurableBlockStore,
    DurableRecordStore,
    DurableStateSnapshotStore,
    DurableStorage,
)
from .segment import FRAME_OVERHEAD, CrashPoint, LogLocation, SegmentLog
from .stores import (
    BlockSequenceView,
    BlockStore,
    MemoryBlockStore,
    MemoryMetaStore,
    MemoryRecordStore,
    MemoryStateSnapshotStore,
    MetaStore,
    RecordStore,
    StateSnapshotStore,
)

__all__ = [
    "canonical_decode",
    "encode_block",
    "decode_block",
    "SegmentLog",
    "LogLocation",
    "CrashPoint",
    "FRAME_OVERHEAD",
    "BlockStore",
    "RecordStore",
    "StateSnapshotStore",
    "MetaStore",
    "MemoryBlockStore",
    "MemoryRecordStore",
    "MemoryStateSnapshotStore",
    "MemoryMetaStore",
    "BlockSequenceView",
    "DurableStorage",
    "DurableBlockStore",
    "DurableRecordStore",
    "DurableStateSnapshotStore",
]
