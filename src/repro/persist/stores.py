"""Storage interfaces and the in-memory backend.

Three abstractions, one per kind of durable truth a chain stack owns:

* :class:`BlockStore` — the committed chain itself: blocks in height
  order, the transaction index (tx_id → height/position), and execution
  receipts.  Truncation above a height is a first-class operation because
  reorgs are.
* :class:`RecordStore` — the append-only provenance record list the
  off-chain database indexes; positions are stable ints.
* :class:`StateSnapshotStore` — one materialized ``StateStore`` image at
  a height, so a reopened chain resumes from its last checkpoint instead
  of replaying from genesis.

Plus a small :class:`MetaStore` key→value surface the higher layers use
to persist their rebuildable side-state (anchor batches, beacon rounds,
facade lock tables).

The in-memory backend here is the seed's original behavior, extracted
behind the interfaces: ``Blockchain.blocks`` / ``receipts`` /
``_tx_index`` live in :class:`MemoryBlockStore` now, and
``ProvenanceDatabase._records`` lives in :class:`MemoryRecordStore`.  The
durable counterparts are in :mod:`repro.persist.durable`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterator, Mapping, Sequence

from ..chain.block import Block
from ..chain.receipts import TransactionReceipt
from ..errors import InvalidBlock, StorageError


# ---------------------------------------------------------------------------
# Interfaces
# ---------------------------------------------------------------------------
class BlockStore(ABC):
    """Committed blocks + transaction index + receipts, by height."""

    @abstractmethod
    def append_block(self, block: Block,
                     receipts: Sequence[TransactionReceipt]) -> None:
        """Commit ``block`` (height must be exactly head + 1) and its
        receipts atomically."""

    def append_blocks(
        self,
        pairs: Sequence[tuple[Block, Sequence[TransactionReceipt]]],
    ) -> None:
        """Commit several consecutive blocks as **one** group.

        Backends that can group-commit (one buffered log write, one
        fsync, one index transaction) override this; the default is a
        loop of :meth:`append_block`, which preserves per-append
        semantics on backends with nothing to group.
        """
        for block, receipts in pairs:
            self.append_block(block, receipts)

    @abstractmethod
    def block_at(self, height: int) -> Block:
        """The block at ``height``; raises :class:`InvalidBlock` when absent."""

    @abstractmethod
    def head_block(self) -> Block:
        """The highest block (hot path: called on every append)."""

    @abstractmethod
    def height(self) -> int:
        """Head height (genesis is 0); -1 when the store is empty."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of stored blocks (height + 1 when non-empty)."""

    @abstractmethod
    def iter_blocks(self, start: int = 0) -> Iterator[Block]:
        """Blocks in height order from ``start`` to the head."""

    @abstractmethod
    def tx_location(self, tx_id: str) -> tuple[int, int] | None:
        """``(height, position)`` of a committed transaction."""

    @abstractmethod
    def receipt_for(self, tx_id: str) -> TransactionReceipt | None:
        """Execution receipt of a committed transaction."""

    @abstractmethod
    def receipts_map(self) -> Mapping[str, TransactionReceipt]:
        """Read-only mapping view tx_id → receipt (len/iter/lookup)."""

    @abstractmethod
    def truncate_above(self, height: int) -> None:
        """Drop every block above ``height`` plus its tx index entries
        and receipts (the reorg primitive)."""

    def sync(self) -> None:
        """Make everything appended so far durable (no-op in memory)."""

    def close(self) -> None:
        """Release resources; the store must be reopenable afterwards."""


class RecordStore(ABC):
    """Append-only provenance records addressed by integer position."""

    @abstractmethod
    def append(self, record: dict) -> int:
        """Store a record; returns its position."""

    def append_many(self, records: Sequence[dict]) -> list[int]:
        """Store several records; returns their positions.

        Group-commit point for durable backends (one log write + fsync
        + one index transaction); the default loops :meth:`append`.
        """
        return [self.append(record) for record in records]

    @abstractmethod
    def get(self, position: int) -> dict:
        """A *copy* of the record at ``position``."""

    @abstractmethod
    def replace(self, position: int, record: dict) -> None:
        """Overwrite the record at ``position`` (annotation support)."""

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def iter_items(self) -> Iterator[tuple[int, dict]]:
        """``(position, record copy)`` pairs in position order."""

    def iter_records(self) -> Iterator[dict]:
        """Record copies in position order."""
        for _, record in self.iter_items():
            yield record

    def iter_records_raw(self) -> Iterator[Mapping[str, Any]]:
        """Read-only iteration *without* per-record copies — the honest
        scan baseline (callers copy only what they keep)."""
        return self.iter_records()

    def sync(self) -> None: ...

    def close(self) -> None: ...


class StateSnapshotStore(ABC):
    """At most one materialized state image, tagged with its height.

    The snapshot also records the *block hash* at its height, binding the
    image to one specific branch: after a reorg (or a crash recovery that
    truncated the chain), a restore only trusts the image if the block at
    ``snapshot_height`` still hashes the same.
    """

    @abstractmethod
    def save(self, height: int,
             entries: Sequence[tuple[str, str, Any]],
             block_hash: bytes = b"") -> None:
        """Replace the snapshot with ``entries`` (namespace, key, value)."""

    @abstractmethod
    def load(self) -> tuple[int, list[tuple[str, str, Any]]] | None:
        """``(height, entries)`` of the stored snapshot, or ``None``."""

    @abstractmethod
    def snapshot_height(self) -> int | None:
        """Height of the stored snapshot without loading its entries."""

    @abstractmethod
    def snapshot_block_hash(self) -> bytes:
        """Block hash the snapshot was taken at (b"" when unrecorded)."""

    @abstractmethod
    def clear(self) -> None:
        """Drop the snapshot (it became unreachable after a reorg)."""


class MetaStore(ABC):
    """Tiny durable key→value surface for layer side-state."""

    @abstractmethod
    def put_meta(self, key: str, value: Any) -> None: ...

    @abstractmethod
    def get_meta(self, key: str, default: Any = None) -> Any: ...


# ---------------------------------------------------------------------------
# In-memory backend (the seed's original data structures, extracted)
# ---------------------------------------------------------------------------
class MemoryBlockStore(BlockStore):
    """Blocks in a list, tx index and receipts in dicts — RAM only."""

    def __init__(self) -> None:
        self._blocks: list[Block] = []
        self._tx_index: dict[str, tuple[int, int]] = {}
        self._receipts: dict[str, TransactionReceipt] = {}

    def append_block(self, block: Block,
                     receipts: Sequence[TransactionReceipt]) -> None:
        if block.height != len(self._blocks):
            raise StorageError(
                f"store expects height {len(self._blocks)}, "
                f"got {block.height}"
            )
        self._blocks.append(block)
        for pos, tx in enumerate(block.transactions):
            self._tx_index[tx.tx_id] = (block.height, pos)
        for receipt in receipts:
            self._receipts[receipt.tx_id] = receipt

    def block_at(self, height: int) -> Block:
        if not 0 <= height < len(self._blocks):
            raise InvalidBlock(f"no block at height {height}")
        return self._blocks[height]

    def head_block(self) -> Block:
        return self._blocks[-1]

    def height(self) -> int:
        return len(self._blocks) - 1

    def __len__(self) -> int:
        return len(self._blocks)

    def iter_blocks(self, start: int = 0) -> Iterator[Block]:
        return iter(self._blocks[start:])

    def tx_location(self, tx_id: str) -> tuple[int, int] | None:
        return self._tx_index.get(tx_id)

    def receipt_for(self, tx_id: str) -> TransactionReceipt | None:
        return self._receipts.get(tx_id)

    def receipts_map(self) -> Mapping[str, TransactionReceipt]:
        return self._receipts

    def truncate_above(self, height: int) -> None:
        while len(self._blocks) - 1 > height:
            block = self._blocks.pop()
            for tx in block.transactions:
                self._tx_index.pop(tx.tx_id, None)
                self._receipts.pop(tx.tx_id, None)

    # Test/bench conveniences (tamper simulation; not part of BlockStore).
    def reset(self, blocks: list[Block]) -> None:
        """Wholesale-replace the chain (bench probes build tampered
        copies this way); receipts are cleared, the tx index rebuilt."""
        self._blocks = list(blocks)
        self._receipts.clear()
        self._tx_index = {
            tx.tx_id: (block.height, pos)
            for block in self._blocks
            for pos, tx in enumerate(block.transactions)
        }

    def replace_at(self, height: int, block: Block) -> None:
        """Raw item assignment (tamper benches corrupt mid-chain blocks)."""
        self._blocks[height] = block


class MemoryRecordStore(RecordStore):
    """The seed's ``ProvenanceDatabase._records`` list, behind the API."""

    def __init__(self) -> None:
        self._records: list[dict] = []

    def append(self, record: dict) -> int:
        self._records.append(dict(record))
        return len(self._records) - 1

    def get(self, position: int) -> dict:
        return dict(self._records[position])

    def replace(self, position: int, record: dict) -> None:
        self._records[position] = dict(record)

    def __len__(self) -> int:
        return len(self._records)

    def iter_items(self) -> Iterator[tuple[int, dict]]:
        for position, record in enumerate(self._records):
            yield position, dict(record)

    def iter_records_raw(self) -> Iterator[dict]:
        return iter(self._records)


class MemoryStateSnapshotStore(StateSnapshotStore):
    def __init__(self) -> None:
        self._snapshot: tuple[int, list, bytes] | None = None

    def save(self, height: int,
             entries: Sequence[tuple[str, str, Any]],
             block_hash: bytes = b"") -> None:
        self._snapshot = (height, [tuple(e) for e in entries], block_hash)

    def load(self) -> tuple[int, list[tuple[str, str, Any]]] | None:
        if self._snapshot is None:
            return None
        height, entries, _ = self._snapshot
        return height, list(entries)

    def snapshot_height(self) -> int | None:
        return self._snapshot[0] if self._snapshot else None

    def snapshot_block_hash(self) -> bytes:
        return self._snapshot[2] if self._snapshot else b""

    def clear(self) -> None:
        self._snapshot = None


class MemoryMetaStore(MetaStore):
    def __init__(self) -> None:
        self._meta: dict[str, Any] = {}

    def put_meta(self, key: str, value: Any) -> None:
        self._meta[key] = value

    def get_meta(self, key: str, default: Any = None) -> Any:
        return self._meta.get(key, default)


# ---------------------------------------------------------------------------
# Sequence view — keeps the `chain.blocks` reading API alive
# ---------------------------------------------------------------------------
class BlockSequenceView(Sequence):
    """Read-only sequence facade over a :class:`BlockStore`.

    Supports the access patterns the rest of the library (and its tests
    and benches) use on the former ``Blockchain.blocks`` list: indexing
    with negative indices, slicing, ``len``, iteration.  Item assignment
    is forwarded to the memory backend's tamper hook so the Figure-2
    corruption benches keep working; durable stores refuse it.
    """

    def __init__(self, store: BlockStore) -> None:
        self._store = store

    def __len__(self) -> int:
        return len(self._store)

    def __iter__(self) -> Iterator[Block]:
        return self._store.iter_blocks()

    def __getitem__(self, index):
        n = len(self._store)
        if isinstance(index, slice):
            return [self._store.block_at(i)
                    for i in range(*index.indices(n))]
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("block index out of range")
        return self._store.block_at(index)

    def __setitem__(self, index: int, block: Block) -> None:
        if not isinstance(self._store, MemoryBlockStore):
            raise StorageError(
                "direct block assignment is a tamper-simulation hook; "
                "durable stores only mutate via append/truncate"
            )
        if index < 0:
            index += len(self._store)
        self._store.replace_at(index, block)
