"""Byte codec for durable storage.

The repo already has one canonical, deterministic byte encoding — the
type-tagged, length-prefixed format in :mod:`repro.serialization` that
every hash and signature is computed over.  Durable storage reuses it as
the *wire format* of the segment logs: the encoding is self-describing
(every value carries its tag and length), so this module adds the exact
inverse, :func:`canonical_decode`, plus mapping converters for the three
object kinds the stores persist — blocks (with their transactions),
execution receipts, and provenance records.

Using the hash encoding as the storage encoding is what makes the
round-trip guarantees cheap to state: a decoded transaction re-encodes to
the *same bytes* it was hashed over, so a block read back from disk
recomputes the same Merkle root and block hash it had when sealed, and
any on-disk corruption surfaces as a hash mismatch rather than silently
different data.
"""

from __future__ import annotations

from typing import Any

from ..chain.block import Block
from ..chain.receipts import Event, TransactionReceipt
from ..chain.transaction import Transaction, TxKind
from ..crypto.signatures import PublicKey
from ..errors import SerializationError, StorageError
from ..serialization import canonical_encode

__all__ = [
    "canonical_decode",
    "encode_block",
    "decode_block",
    "encode_record",
    "decode_record",
    "receipt_to_mapping",
    "receipt_from_mapping",
    "transaction_to_mapping",
    "transaction_from_mapping",
]


# ---------------------------------------------------------------------------
# canonical_decode — inverse of repro.serialization.canonical_encode
# ---------------------------------------------------------------------------
def canonical_decode(data: bytes) -> Any:
    """Decode canonical bytes back into the value that produced them.

    Exact inverse of :func:`repro.serialization.canonical_encode` for
    every value that function accepts (sequences come back as lists,
    mappings as dicts).  Raises :class:`SerializationError` on trailing
    bytes, truncation, or an unknown tag — corruption never decodes.
    """
    value, end = _decode_from(data, 0)
    if end != len(data):
        raise SerializationError(
            f"trailing bytes after canonical value ({len(data) - end})"
        )
    return value


def _read_length(data: bytes, pos: int) -> tuple[int, int]:
    """Parse the ``<digits>:`` length prefix starting at ``pos``."""
    colon = data.find(b":", pos)
    if colon < 0:
        raise SerializationError("truncated length prefix")
    digits = data[pos:colon]
    if not digits.isdigit():
        raise SerializationError(f"bad length prefix {digits!r}")
    return int(digits), colon + 1


def _decode_from(data: bytes, pos: int) -> tuple[Any, int]:
    if pos >= len(data):
        raise SerializationError("truncated canonical value")
    tag = data[pos:pos + 1]
    pos += 1
    if tag == b"N":
        return None, pos
    if tag == b"T":
        return True, pos
    if tag == b"F":
        return False, pos
    if tag in (b"i", b"f", b"s", b"b"):
        length, pos = _read_length(data, pos)
        body = data[pos:pos + length]
        if len(body) != length:
            raise SerializationError("truncated scalar body")
        pos += length
        if tag == b"i":
            return int(body), pos
        if tag == b"f":
            return float(body), pos
        if tag == b"s":
            return body.decode("utf-8"), pos
        return bytes(body), pos
    if tag == b"d":
        count, pos = _read_length(data, pos)
        out: dict[str, Any] = {}
        for _ in range(count):
            key, pos = _decode_from(data, pos)
            if not isinstance(key, str):
                raise SerializationError("mapping key must decode to str")
            out[key], pos = _decode_from(data, pos)
        if data[pos:pos + 1] != b"e":
            raise SerializationError("unterminated mapping")
        return out, pos + 1
    if tag == b"l":
        count, pos = _read_length(data, pos)
        items = []
        for _ in range(count):
            item, pos = _decode_from(data, pos)
            items.append(item)
        if data[pos:pos + 1] != b"e":
            raise SerializationError("unterminated sequence")
        return items, pos + 1
    raise SerializationError(f"unknown canonical tag {tag!r}")


# ---------------------------------------------------------------------------
# Transactions
# ---------------------------------------------------------------------------
def _transaction_to_mapping(tx: Transaction) -> dict:
    m = tx.signing_body()
    if tx.signature is not None and tx.signer is not None:
        m["_sig"] = tx.signature
        m["_signer"] = tx.signer.key_bytes
    if tx.is_sealed:
        m["_sealed"] = True
    return m


def _transaction_from_mapping(m: dict) -> Transaction:
    tx = Transaction(
        sender=m["sender"],
        kind=TxKind(m["kind"]),
        payload=m["payload"],
        nonce=m["nonce"],
        timestamp=m["timestamp"],
        fee=m["fee"],
    )
    if "_sig" in m:
        tx.signature = m["_sig"]
        tx.signer = PublicKey(m["_signer"])
    if m.get("_sealed"):
        tx.seal()
    return tx


# Public aliases: the mapping form is also the *wire* form — the
# gateway (repro.gateway) batches many of these inside one canonical
# length-prefixed frame, so a transaction decoded off the socket
# re-encodes to the same bytes it is hashed and signed over.
def transaction_to_mapping(tx: Transaction) -> dict:
    """Canonical-encodable mapping for one transaction (signature,
    signer key, and seal flag included when present)."""
    return _transaction_to_mapping(tx)


def transaction_from_mapping(m: dict) -> Transaction:
    """Exact inverse of :func:`transaction_to_mapping`."""
    return _transaction_from_mapping(m)


# ---------------------------------------------------------------------------
# Blocks
# ---------------------------------------------------------------------------
def encode_block(block: Block) -> bytes:
    """Canonical bytes for one block (header fields + transactions)."""
    header = block.header
    return canonical_encode({
        "height": header.height,
        "prev_hash": header.prev_hash,
        "merkle_root": header.merkle_root,
        "timestamp": header.timestamp,
        "proposer": header.proposer,
        "consensus_meta": dict(header.consensus_meta),
        "nonce": header.nonce,
        "transactions": [_transaction_to_mapping(tx)
                         for tx in block.transactions],
    })


def decode_block(payload: bytes, expected_hash: bytes | None = None) -> Block:
    """Rebuild a block from :func:`encode_block` bytes.

    The block is reconstructed through the normal constructor, so its
    Merkle tree is rebuilt from the decoded transactions; a mismatch with
    the stored ``merkle_root`` (or with ``expected_hash``, when the index
    recorded one) means the bytes were corrupted and raises
    :class:`StorageError` rather than returning a silently different
    block.
    """
    m = canonical_decode(payload)
    block = Block(
        height=m["height"],
        prev_hash=m["prev_hash"],
        transactions=[_transaction_from_mapping(t)
                      for t in m["transactions"]],
        timestamp=m["timestamp"],
        proposer=m["proposer"],
        consensus_meta=m["consensus_meta"],
        nonce=m["nonce"],
    )
    if block.header.merkle_root != m["merkle_root"]:
        raise StorageError(
            f"stored block {m['height']} fails Merkle-root check "
            "(on-disk corruption)"
        )
    if expected_hash is not None and block.block_hash != expected_hash:
        raise StorageError(
            f"stored block {m['height']} does not hash to its indexed "
            "block hash (on-disk corruption)"
        )
    return block


# ---------------------------------------------------------------------------
# Receipts
# ---------------------------------------------------------------------------
def receipt_to_mapping(receipt: TransactionReceipt) -> dict:
    m: dict[str, Any] = {
        "tx_id": receipt.tx_id,
        "success": receipt.success,
        "gas_used": receipt.gas_used,
        "events": [e.to_canonical() for e in receipt.events],
    }
    if receipt.error is not None:
        m["error"] = receipt.error
    if receipt.block_height is not None:
        m["block_height"] = receipt.block_height
    if receipt.output is not None:
        try:
            canonical_encode(receipt.output)
        except SerializationError:
            pass  # non-encodable outputs (live objects) are not persisted
        else:
            m["output"] = receipt.output
    return m


def receipt_from_mapping(m: dict) -> TransactionReceipt:
    return TransactionReceipt(
        tx_id=m["tx_id"],
        success=m["success"],
        gas_used=m["gas_used"],
        output=m.get("output"),
        error=m.get("error"),
        events=[Event(name=e["name"], source=e["source"], data=e["data"])
                for e in m["events"]],
        block_height=m.get("block_height"),
    )


def encode_receipt(receipt: TransactionReceipt) -> bytes:
    return canonical_encode(receipt_to_mapping(receipt))


def decode_receipt(payload: bytes) -> TransactionReceipt:
    return receipt_from_mapping(canonical_decode(payload))


# ---------------------------------------------------------------------------
# Provenance records (plain canonical dicts)
# ---------------------------------------------------------------------------
def encode_record(record: dict) -> bytes:
    return canonical_encode(record)


def decode_record(payload: bytes) -> dict:
    record = canonical_decode(payload)
    if not isinstance(record, dict):
        raise StorageError("stored record did not decode to a mapping")
    return record
