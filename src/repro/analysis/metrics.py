"""Measurement utilities along the paper's §6.1 evaluation axes:
throughput, retrieval latency, storage overhead, upload overhead, and
validation time."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


class LatencyRecorder:
    """Collects samples (wall-clock seconds or simulated ticks) and
    reports percentiles."""

    def __init__(self) -> None:
        self._samples: list[float] = []

    def record(self, value: float) -> None:
        self._samples.append(float(value))

    def time_block(self):
        """Context manager measuring one wall-clock sample.

        >>> rec = LatencyRecorder()
        >>> with rec.time_block():
        ...     _ = sum(range(10))
        >>> rec.count
        1
        """
        recorder = self

        class _Timer:
            def __enter__(self):
                self._t0 = time.perf_counter()
                return self

            def __exit__(self, *exc):
                recorder.record(time.perf_counter() - self._t0)
                return False

        return _Timer()

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return len(self._samples)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile; ``p`` in [0, 100]."""
        if not self._samples:
            raise ValueError("no samples recorded")
        ordered = sorted(self._samples)
        if p <= 0:
            return ordered[0]
        if p >= 100:
            return ordered[-1]
        rank = max(1, round(p / 100 * len(ordered)))
        return ordered[rank - 1]

    def mean(self) -> float:
        if not self._samples:
            raise ValueError("no samples recorded")
        return sum(self._samples) / len(self._samples)

    def summary(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.percentile(100),
        }


class ThroughputMeter:
    """Operations per wall-clock second over an explicit window."""

    def __init__(self) -> None:
        self._t0: float | None = None
        self._ops = 0
        self._elapsed = 0.0

    def start(self) -> None:
        self._t0 = time.perf_counter()

    def add_ops(self, count: int = 1) -> None:
        self._ops += count

    def stop(self) -> None:
        if self._t0 is None:
            raise ValueError("meter never started")
        self._elapsed += time.perf_counter() - self._t0
        self._t0 = None

    @property
    def ops(self) -> int:
        return self._ops

    def per_second(self) -> float:
        if self._elapsed <= 0:
            raise ValueError("no measured window")
        return self._ops / self._elapsed


@dataclass
class StorageAccounting:
    """On-chain vs off-chain byte accounting (the storage-locus axis)."""

    on_chain_bytes: int = 0
    off_chain_bytes: int = 0
    proof_bytes: int = 0
    labels: dict = field(default_factory=dict)

    def add_on_chain(self, n: int, label: str = "") -> None:
        self.on_chain_bytes += n
        if label:
            self.labels[label] = self.labels.get(label, 0) + n

    def add_off_chain(self, n: int, label: str = "") -> None:
        self.off_chain_bytes += n
        if label:
            self.labels[label] = self.labels.get(label, 0) + n

    def add_proof(self, n: int) -> None:
        self.proof_bytes += n

    @property
    def total(self) -> int:
        return self.on_chain_bytes + self.off_chain_bytes

    def on_chain_fraction(self) -> float:
        if self.total == 0:
            return 0.0
        return self.on_chain_bytes / self.total

    def expansion_factor(self, payload_bytes: int) -> float:
        """Total stored bytes per payload byte (overhead multiple)."""
        if payload_bytes <= 0:
            raise ValueError("payload_bytes must be positive")
        return self.total / payload_bytes
