"""Measurement and reporting.

* :mod:`~repro.analysis.metrics` — throughput/latency/storage accounting
  along the evaluation axes the paper's §6.1 enumerates;
* :mod:`~repro.analysis.harness` — parameter sweeps with tabular output;
* :mod:`~repro.analysis.tables` — regenerates the paper's Tables 1 and 2
  from the implemented schemas and domain capability registries;
* :mod:`~repro.analysis.figures` — emits figure-shaped series (ASCII/CSV)
  for the five conceptual figures.
"""

from .metrics import LatencyRecorder, StorageAccounting, ThroughputMeter
from .harness import Sweep, SweepResult, format_table
from .tables import render_table1, render_table2, table1_data, table2_data
from .figures import ascii_series, series_to_csv

__all__ = [
    "LatencyRecorder",
    "StorageAccounting",
    "ThroughputMeter",
    "Sweep",
    "SweepResult",
    "format_table",
    "render_table1",
    "render_table2",
    "table1_data",
    "table2_data",
    "ascii_series",
    "series_to_csv",
]
