"""Figure-shaped output: ASCII sparklines and CSV series.

The paper's figures are conceptual diagrams; the FIG benches emit the
*measured* counterpart of each as (x, y) series.  These helpers render
the series for terminal output and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence

_BLOCKS = "▁▂▃▄▅▆▇█"


def ascii_series(values: Sequence[float], width: int = 60) -> str:
    """A one-line sparkline of ``values`` (downsampled to ``width``)."""
    if not values:
        return "(empty series)"
    values = list(values)
    if len(values) > width:
        stride = len(values) / width
        values = [values[int(i * stride)] for i in range(width)]
    lo, hi = min(values), max(values)
    if hi == lo:
        return _BLOCKS[0] * len(values)
    out = []
    for v in values:
        idx = int((v - lo) / (hi - lo) * (len(_BLOCKS) - 1))
        out.append(_BLOCKS[idx])
    return "".join(out)


def series_to_csv(xs: Sequence, ys: Sequence,
                  x_name: str = "x", y_name: str = "y") -> str:
    """CSV text for a single series."""
    lines = [f"{x_name},{y_name}"]
    for x, y in zip(xs, ys):
        lines.append(f"{x},{y}")
    return "\n".join(lines)


def multi_series_to_csv(xs: Sequence, named_series: dict,
                        x_name: str = "x") -> str:
    """CSV with one column per named series."""
    names = list(named_series)
    lines = [",".join([x_name, *names])]
    for i, x in enumerate(xs):
        row = [str(x)] + [str(named_series[name][i]) for name in names]
        lines.append(",".join(row))
    return "\n".join(lines)
