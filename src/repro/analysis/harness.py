"""Parameter-sweep harness.

Benchmarks that sweep a parameter (node count, batch size, attacker
fraction) use :class:`Sweep` to run each point through a measurement
function and collect rows; :func:`format_table` prints them in the
aligned form EXPERIMENTS.md quotes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

Measurement = Callable[[Any], Mapping[str, Any]]


@dataclass
class SweepResult:
    """Rows of a completed sweep."""

    parameter: str
    rows: list[dict] = field(default_factory=list)

    def column(self, name: str) -> list:
        return [row[name] for row in self.rows]

    def to_table(self, columns: list[str] | None = None) -> str:
        if not self.rows:
            return "(empty sweep)"
        columns = columns or list(self.rows[0])
        return format_table(self.rows, columns)

    def is_monotonic(self, column: str, increasing: bool = True) -> bool:
        """Sanity predicate used by bench assertions (shape checks)."""
        values = self.column(column)
        pairs = zip(values, values[1:])
        if increasing:
            return all(a <= b for a, b in pairs)
        return all(a >= b for a, b in pairs)


@dataclass
class Sweep:
    """Run ``measure(point)`` for every point of a parameter range."""

    parameter: str
    points: Iterable[Any]
    measure: Measurement

    def run(self) -> SweepResult:
        result = SweepResult(parameter=self.parameter)
        for point in self.points:
            row = {self.parameter: point}
            row.update(self.measure(point))
            result.rows.append(row)
        return result


def format_table(rows: list[Mapping[str, Any]], columns: list[str]) -> str:
    """Fixed-width text table (benchmarks print these for the report)."""
    def fmt(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    widths = {
        col: max(len(col), *(len(fmt(r.get(col, ""))) for r in rows))
        for col in columns
    }
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    rule = "  ".join("-" * widths[col] for col in columns)
    lines = [header, rule]
    for row in rows:
        lines.append("  ".join(
            fmt(row.get(col, "")).ljust(widths[col]) for col in columns
        ))
    return "\n".join(lines)
