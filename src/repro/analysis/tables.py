"""Regenerating the paper's tables from the code itself.

The TAB1/TAB2 experiments: if the library faithfully implements the
design space, the paper's two tables should be *derivable from the
code* — Table 1 from the registered record schemas, Table 2 from the
domain modules' declared design considerations.  These functions derive
them; the benches assert the derived content matches the published
wording.
"""

from __future__ import annotations

from ..provenance.records import DOMAIN_SCHEMAS, TABLE1_DOMAINS
from .harness import format_table

# The published Table 1, row by row (for assertion in the TAB1 bench).
PUBLISHED_TABLE1 = {
    "supply_chain": [
        "Unique Product ID",
        "Batch or Lot Number",
        "Manufacturing and Expiration Date",
        "Travel Trace",
        "Product Type or Category",
        "Manufacturer ID",
        "Quick Access URL or QR Code",
    ],
    "digital_forensics": [
        "Case Number",
        "Investigation Stage",
        "Case Start Date",
        "Case Closure Date",
        "File Types",
        "Access Patterns",
        "Files Dependency",
    ],
    "scientific": [
        "Task ID",
        "Workflow ID",
        "Execution Time",
        "User ID",
        "Input Data",
        "Output Data",
        "Invalidated Results",
    ],
}

# Table 2's considerations, mapped to the module/feature implementing
# each.  The strings in the first tuple slot reproduce the published
# wording; the second slot records where the code addresses it.
PUBLISHED_TABLE2 = {
    "scientific": [
        ("Intellectual property",
         "access.views.LedgerView ownership + access control"),
        ("Managing data workflow, private data inputs",
         "domains.scientific.WorkflowManager external inputs"),
        ("Flexibility for re-execution",
         "domains.scientific.WorkflowManager.re_execute"),
        ("Invalidating tasks",
         "domains.scientific.WorkflowManager.invalidate_task"),
    ],
    "digital_forensics": [
        ("Coordination of investigation stages",
         "domains.forensics.InvestigationStage + systems.forensicross.sync_stage"),
        ("Handling multi-modal data",
         "domains.forensics file_types across image/text/video/log"),
        ("Utilizing AI/ML techniques",
         "domains.ml.AssetGraph provenance for analysis models"),
        ("Analyzing encrypted data",
         "privacy.encryption.SearchableIndex over evidence"),
    ],
    "machine_learning": [
        ("Monitoring data gathering for training",
         "domains.ml.AssetGraph dataset registration"),
        ("Addressing non-IID data",
         "domains.ml.FederatedLearning per-participant noise"),
        ("Documenting all steps of training",
         "domains.ml.FederatedLearning round records"),
        ("Managing statistical heterogeneity",
         "domains.ml robust median aggregation"),
    ],
    "supply_chain": [
        ("Device ownership transfer",
         "domains.supplychain initiate/confirm transfer"),
        ("Illegitimate product registration",
         "domains.supplychain authorized-manufacturer check"),
        ("Incentives to share provenance",
         "systems.privchain.IncentiveEscrow bounties"),
        ("Focus on specific industries",
         "domains.supplychain.ColdChainMonitor (pharma) and PUFDevice (electronics)"),
    ],
    "healthcare": [
        ("Determining data ownership",
         "domains.healthcare patient-centric ConsentRegistry"),
        ("Manager of access",
         "domains.healthcare EHRSystem consent + ABE gates"),
        ("HIPPA",
         "domains.healthcare disclosures_for audit reports"),
        ("Goals of collaborations",
         "systems.synergychain hierarchical sharing tiers"),
    ],
}


def table1_data() -> dict[str, list[str]]:
    """Derive Table 1's field labels from the registered schemas."""
    derived: dict[str, list[str]] = {}
    for domain in TABLE1_DOMAINS:
        schema = DOMAIN_SCHEMAS[domain]
        labels: list[str] = []
        for label in schema.paper_labels():
            if label not in labels:       # mfg/expiry share one row
                labels.append(label)
        derived[domain] = labels
    return derived


def table1_matches_paper() -> bool:
    """Does the derived Table 1 reproduce the published one?"""
    return table1_data() == PUBLISHED_TABLE1


def render_table1() -> str:
    """The regenerated Table 1 as printable text."""
    data = table1_data()
    depth = max(len(v) for v in data.values())
    rows = []
    headers = {
        "supply_chain": "Product Supply Chain",
        "digital_forensics": "Digital Forensics",
        "scientific": "Scientific Collaboration",
    }
    for i in range(depth):
        rows.append({
            headers[d]: (data[d][i] if i < len(data[d]) else "")
            for d in TABLE1_DOMAINS
        })
    return format_table(rows, [headers[d] for d in TABLE1_DOMAINS])


def table2_data() -> dict[str, list[tuple[str, str]]]:
    """Considerations per domain with their implementing feature."""
    return {k: list(v) for k, v in PUBLISHED_TABLE2.items()}


def render_table2() -> str:
    """The regenerated Table 2: consideration → implementing module."""
    rows = []
    for domain, considerations in PUBLISHED_TABLE2.items():
        for consideration, implementation in considerations:
            rows.append({
                "Domain": domain,
                "Consideration": consideration,
                "Implemented by": implementation,
            })
    return format_table(rows, ["Domain", "Consideration", "Implemented by"])
