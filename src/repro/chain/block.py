"""Blocks: header + transaction body (the paper's Figure 2).

A block header commits to

* its position (``height``) and parent (``prev_hash``),
* the transactions via ``merkle_root``,
* the proposer and consensus-specific metadata (PoW nonce/difficulty,
  PoS stake proof, PBFT view, …).

Any mutation of any transaction changes the Merkle root and hence the
header hash, which invalidates the ``prev_hash`` of the next block — the
chain-of-hashes immutability argument the paper summarizes in §2.1.

Caching invariants
------------------

``BlockHeader.block_hash`` is computed once and cached; assigning *any*
header field invalidates the cache, so a tampered header re-hashes to its
current content on the next read (the chain-break the auditor detects).
``Block`` builds its Merkle tree once at construction from the (cached)
transaction hashes.  The fast integrity check used on the append hot path
(``verify_structure(use_cached_tree=True)``) trusts that tree; the auditor
paths (:meth:`verify_structure` default, :meth:`recompute_merkle_root`)
rebuild the tree from the transaction hashes, and ``deep=True`` recomputes
even those from the raw payload bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

from ..crypto.hashing import DOMAIN_BLOCK, ZERO_HASH, hash_canonical
from ..crypto.merkle import MerkleProof, MerkleTree, leaf_hash
from ..errors import InvalidBlock
from .transaction import Transaction

GENESIS_PREV_HASH = ZERO_HASH

# Every header field participates in the header hash.
_HEADER_FIELDS = frozenset(
    {"height", "prev_hash", "merkle_root", "timestamp", "proposer",
     "consensus_meta", "nonce"}
)


@dataclass
class BlockHeader:
    """Canonical block header.

    The header hash is cached after first computation; assigning any
    field drops the cache (invalidate-on-assign, mirroring
    :class:`~repro.chain.transaction.Transaction`).
    """

    height: int
    prev_hash: bytes
    merkle_root: bytes
    timestamp: int
    proposer: str
    consensus_meta: Mapping[str, Any] = field(default_factory=dict)
    nonce: int = 0

    def __setattr__(self, name: str, value: Any) -> None:
        if name in _HEADER_FIELDS:
            self.__dict__.pop("_cache_hash", None)
            self.__dict__.pop("_cache_id", None)
        object.__setattr__(self, name, value)

    def to_canonical(self) -> dict:
        return {
            "height": self.height,
            "prev_hash": self.prev_hash,
            "merkle_root": self.merkle_root,
            "timestamp": self.timestamp,
            "proposer": self.proposer,
            "consensus_meta": dict(self.consensus_meta),
            "nonce": self.nonce,
        }

    def compute_block_hash(self) -> bytes:
        """Recompute the hash of the current content, bypassing the cache
        (auditor primitive, used by ``Blockchain.verify(deep=True)``)."""
        return hash_canonical(self.to_canonical(), DOMAIN_BLOCK)

    @property
    def block_hash(self) -> bytes:
        h = self.__dict__.get("_cache_hash")
        if h is None:
            h = self.compute_block_hash()
            self.__dict__["_cache_hash"] = h
        return h

    @property
    def block_id(self) -> str:
        i = self.__dict__.get("_cache_id")
        if i is None:
            i = self.block_hash.hex()
            self.__dict__["_cache_id"] = i
        return i


class Block:
    """A block binds a header to its transaction body.

    The Merkle tree over transactions is built once at construction and
    cached so inclusion proofs are cheap.
    """

    def __init__(
        self,
        height: int,
        prev_hash: bytes,
        transactions: Sequence[Transaction],
        timestamp: int = 0,
        proposer: str = "",
        consensus_meta: Mapping[str, Any] | None = None,
        nonce: int = 0,
    ) -> None:
        self.transactions: list[Transaction] = list(transactions)
        self._tree = MerkleTree([tx.tx_hash for tx in self.transactions])
        self.header = BlockHeader(
            height=height,
            prev_hash=prev_hash,
            merkle_root=self._tree.root,
            timestamp=timestamp,
            proposer=proposer,
            consensus_meta=dict(consensus_meta or {}),
            nonce=nonce,
        )

    # ------------------------------------------------------------------
    # Identity & access
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        return self.header.height

    @property
    def block_hash(self) -> bytes:
        return self.header.block_hash

    @property
    def block_id(self) -> str:
        return self.header.block_id

    def __len__(self) -> int:
        return len(self.transactions)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self.transactions)

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------
    def recompute_merkle_root(self, deep: bool = False) -> bytes:
        """Root over the *current* transaction list (tamper check).

        The tree is always rebuilt node-by-node; with ``deep=True`` even
        the transaction hashes are recomputed from the raw payloads
        (paranoid audit — catches in-place payload-dict mutation that the
        invalidate-on-assign caches cannot see).
        """
        if deep:
            leaves = [tx.compute_tx_hash() for tx in self.transactions]
        else:
            leaves = [tx.tx_hash for tx in self.transactions]
        return MerkleTree(leaves).root

    def verify_structure(self, *, use_cached_tree: bool = False,
                         deep: bool = False) -> None:
        """Check internal consistency; raises :class:`InvalidBlock`.

        The default mode rebuilds the Merkle root and catches the
        Figure-2 attack: a transaction in the body was mutated after the
        header was formed.  ``use_cached_tree=True`` is the append-path
        fast mode: instead of rebuilding interior nodes it checks each
        transaction's (cached, invalidate-on-assign) hash against the
        tree's leaves — no SHA work for untouched blocks, but a
        transaction list or field mutated between build and append is
        still rejected, which matters when the appender received the
        block from another (possibly byzantine) node.  In-place mutation
        of an unsealed payload *mapping* is the one case only
        ``deep=True`` sees.
        """
        if use_cached_tree and not deep:
            if len(self._tree) != len(self.transactions):
                raise InvalidBlock(
                    f"block {self.height}: transaction list changed "
                    "since construction"
                )
            for i, tx in enumerate(self.transactions):
                if self._tree.leaf(i) != leaf_hash(tx.tx_hash):
                    raise InvalidBlock(
                        f"block {self.height}: transaction {i} changed "
                        "since construction"
                    )
            root = self._tree.root
        else:
            root = self.recompute_merkle_root(deep=deep)
        if root != self.header.merkle_root:
            raise InvalidBlock(
                f"block {self.height}: merkle root mismatch "
                "(transaction body was modified)"
            )
        if self.header.height < 0:
            raise InvalidBlock("negative height")

    def prove_inclusion(self, index: int) -> MerkleProof:
        """Merkle inclusion proof for the transaction at ``index``."""
        return self._tree.prove(index)

    def find_transaction(self, tx_id: str) -> tuple[int, Transaction] | None:
        for i, tx in enumerate(self.transactions):
            if tx.tx_id == tx_id:
                return i, tx
        return None

    @property
    def size_bytes(self) -> int:
        """Approximate serialized size (storage benches)."""
        from ..serialization import canonical_encode

        header_size = len(canonical_encode(self.header.to_canonical()))
        return header_size + sum(tx.size_bytes for tx in self.transactions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Block(height={self.height}, txs={len(self.transactions)}, "
            f"id={self.block_id[:10]}…)"
        )
