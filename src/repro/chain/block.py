"""Blocks: header + transaction body (the paper's Figure 2).

A block header commits to

* its position (``height``) and parent (``prev_hash``),
* the transactions via ``merkle_root``,
* the proposer and consensus-specific metadata (PoW nonce/difficulty,
  PoS stake proof, PBFT view, …).

Any mutation of any transaction changes the Merkle root and hence the
header hash, which invalidates the ``prev_hash`` of the next block — the
chain-of-hashes immutability argument the paper summarizes in §2.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from ..crypto.hashing import DOMAIN_BLOCK, ZERO_HASH, hash_canonical
from ..crypto.merkle import MerkleProof, MerkleTree
from ..errors import InvalidBlock
from .transaction import Transaction

GENESIS_PREV_HASH = ZERO_HASH


@dataclass
class BlockHeader:
    """Canonical block header."""

    height: int
    prev_hash: bytes
    merkle_root: bytes
    timestamp: int
    proposer: str
    consensus_meta: Mapping[str, Any] = field(default_factory=dict)
    nonce: int = 0

    def to_canonical(self) -> dict:
        return {
            "height": self.height,
            "prev_hash": self.prev_hash,
            "merkle_root": self.merkle_root,
            "timestamp": self.timestamp,
            "proposer": self.proposer,
            "consensus_meta": dict(self.consensus_meta),
            "nonce": self.nonce,
        }

    @property
    def block_hash(self) -> bytes:
        return hash_canonical(self.to_canonical(), DOMAIN_BLOCK)

    @property
    def block_id(self) -> str:
        return self.block_hash.hex()


class Block:
    """A block binds a header to its transaction body.

    The Merkle tree over transactions is built once at construction and
    cached so inclusion proofs are cheap.
    """

    def __init__(
        self,
        height: int,
        prev_hash: bytes,
        transactions: Sequence[Transaction],
        timestamp: int = 0,
        proposer: str = "",
        consensus_meta: Mapping[str, Any] | None = None,
        nonce: int = 0,
    ) -> None:
        self.transactions: list[Transaction] = list(transactions)
        self._tree = MerkleTree([tx.tx_hash for tx in self.transactions])
        self.header = BlockHeader(
            height=height,
            prev_hash=prev_hash,
            merkle_root=self._tree.root,
            timestamp=timestamp,
            proposer=proposer,
            consensus_meta=dict(consensus_meta or {}),
            nonce=nonce,
        )

    # ------------------------------------------------------------------
    # Identity & access
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        return self.header.height

    @property
    def block_hash(self) -> bytes:
        return self.header.block_hash

    @property
    def block_id(self) -> str:
        return self.header.block_id

    def __len__(self) -> int:
        return len(self.transactions)

    def __iter__(self) -> Iterable[Transaction]:
        return iter(self.transactions)

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------
    def recompute_merkle_root(self) -> bytes:
        """Root over the *current* transaction list (tamper check)."""
        return MerkleTree([tx.tx_hash for tx in self.transactions]).root

    def verify_structure(self) -> None:
        """Check internal consistency; raises :class:`InvalidBlock`.

        Catches the Figure-2 attack: a transaction in the body was
        mutated after the header was formed.
        """
        if self.recompute_merkle_root() != self.header.merkle_root:
            raise InvalidBlock(
                f"block {self.height}: merkle root mismatch "
                "(transaction body was modified)"
            )
        if self.header.height < 0:
            raise InvalidBlock("negative height")

    def prove_inclusion(self, index: int) -> MerkleProof:
        """Merkle inclusion proof for the transaction at ``index``."""
        return self._tree.prove(index)

    def find_transaction(self, tx_id: str) -> tuple[int, Transaction] | None:
        for i, tx in enumerate(self.transactions):
            if tx.tx_id == tx_id:
                return i, tx
        return None

    @property
    def size_bytes(self) -> int:
        """Approximate serialized size (storage benches)."""
        from ..serialization import canonical_encode

        header_size = len(canonical_encode(self.header.to_canonical()))
        return header_size + sum(tx.size_bytes for tx in self.transactions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Block(height={self.height}, txs={len(self.transactions)}, "
            f"id={self.block_id[:10]}…)"
        )
